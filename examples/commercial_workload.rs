//! The paper's motivating scenario: commercial server workloads with *low
//! spatial locality*, where classic stream prefetchers fail but Adaptive
//! Stream Detection still finds the short (length 2–5) streams that make
//! up 37–62% of all streams (paper Figures 7, 12, 13).
//!
//! Runs all five commercial benchmarks (tpcc, trade2, cpw2, sap,
//! notesbench), printing the performance gains, the stream-length
//! anatomy, and the prefetch-efficiency measures.
//!
//! ```text
//! cargo run --release --example commercial_workload
//! ```

use asd_sim::experiment::{four_way_suite, mean, FourWay};
use asd_sim::report::{pct, Table};
use asd_sim::slh_study;
use asd_sim::RunOpts;
use asd_trace::suites;

fn main() {
    let opts = RunOpts::default().with_accesses(60_000);

    println!("== Stream anatomy (Figure 12): why ASD works on low-locality workloads ==\n");
    let mut anatomy = Table::new(["benchmark", "len1", "len2-5", ">5"]);
    for profile in suites::commercial() {
        let s = slh_study::stream_shares(&profile, 40_000, opts.seed)
            .expect("40k accesses of a commercial profile always complete an epoch");
        anatomy.row([
            profile.name.clone(),
            pct(s.shares[0] * 100.0),
            pct(s.len2_to_5() * 100.0),
            pct(s.longer * 100.0),
        ]);
    }
    println!("{}", anatomy.render());

    println!("== Performance (Figure 7) ==\n");
    // All 5 benchmarks x 4 configurations fan out across cores.
    let results: Vec<FourWay> =
        four_way_suite(&suites::commercial(), &opts).expect("generated suite runs never fail");
    let mut perf = Table::new(["benchmark", "PMS vs NP", "MS vs NP", "PMS vs PS"]);
    for f in &results {
        perf.row([f.benchmark.clone(), pct(f.pms_vs_np()), pct(f.ms_vs_np()), pct(f.pms_vs_ps())]);
    }
    perf.row([
        "Average".into(),
        pct(mean(&results.iter().map(|f| f.pms_vs_np()).collect::<Vec<_>>())),
        pct(mean(&results.iter().map(|f| f.ms_vs_np()).collect::<Vec<_>>())),
        pct(mean(&results.iter().map(|f| f.pms_vs_ps()).collect::<Vec<_>>())),
    ]);
    println!("{}", perf.render());

    println!("== Prefetch efficiency (Figure 13) ==\n");
    let mut eff = Table::new(["benchmark", "useful", "coverage", "delayed regular"]);
    for f in &results {
        let m = f.pms.mc.prefetch_metrics();
        eff.row([
            f.benchmark.clone(),
            pct(m.useful_pct()),
            pct(m.coverage_pct()),
            pct(m.delayed_pct()),
        ]);
    }
    println!("{}", eff.render());

    println!("== DRAM power/energy (Figure 10) ==\n");
    let mut pw = Table::new(["benchmark", "power increase", "energy reduction"]);
    for f in &results {
        pw.row([f.benchmark.clone(), pct(f.power_increase()), pct(f.energy_reduction())]);
    }
    println!("{}", pw.render());
}

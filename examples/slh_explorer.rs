//! Explore Stream Length Histograms: the paper's Figures 2, 3 and 16 for
//! any benchmark.
//!
//! Prints the all-epoch SLH, two individual epochs (showing phase
//! behaviour where present), and the finite-filter approximation next to
//! the oracle for one epoch.
//!
//! ```text
//! cargo run --release --example slh_explorer [benchmark]
//! ```

use asd_core::{AsdConfig, Slh};
use asd_sim::slh_study::{epoch_histograms, mean_l1_distance};
use asd_trace::suites;

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "GemsFDTD".to_string());
    let profile = match suites::by_name(&bench) {
        Some(p) => p,
        None => {
            eprintln!("unknown benchmark `{bench}`");
            std::process::exit(1);
        }
    };

    let asd = AsdConfig::default();
    let epochs = match epoch_histograms(&profile, 150_000, &asd, 0x5eed) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    if epochs.is_empty() {
        eprintln!("{bench} produced no full epochs (too few DRAM reads) — it may be compute bound");
        std::process::exit(0);
    }
    println!("{bench}: {} epochs of {} DRAM reads each\n", epochs.len(), asd.epoch_reads);

    let mut merged = Slh::new();
    for e in &epochs {
        merged += &e.oracle;
    }
    println!("All epochs (Figure 3, left):\n{}", merged.ascii_chart(48));

    for pick in [epochs.len() / 3, (2 * epochs.len()) / 3] {
        let e = &epochs[pick.min(epochs.len() - 1)];
        println!("Epoch {} (Figure 3):\n{}", e.epoch, e.oracle.ascii_chart(48));
    }

    let sample = &epochs[epochs.len() / 2];
    println!("Figure 16 — epoch {}:", sample.epoch);
    println!("actual:\n{}", sample.oracle.ascii_chart(40));
    println!("our approximation (8-slot Stream Filter):\n{}", sample.approx.ascii_chart(40));
    println!(
        "mean L1 distance across all epochs: {:.3} (0 = identical, 2 = disjoint)",
        mean_l1_distance(&epochs)
    );
}

//! Quickstart: run one benchmark under all four paper configurations
//! (NP / PS / MS / PMS) and print the headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark]
//! ```
//!
//! Defaults to `milc`; any benchmark from the three suites works
//! (see `asd_trace::suites`). The four configurations run in parallel
//! (`FourWay::run` fans out through `asd_sim::sweep::Sweep`).

use asd_sim::experiment::FourWay;
use asd_sim::report::{pct, Table};
use asd_sim::RunOpts;
use asd_trace::suites;

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "milc".to_string());
    let profile = match suites::by_name(&bench) {
        Some(p) => p,
        None => {
            eprintln!("unknown benchmark `{bench}`; known benchmarks:");
            for p in suites::all_profiles() {
                eprintln!("  {}", p.name);
            }
            std::process::exit(1);
        }
    };

    println!("Running {bench} under NP / PS / MS / PMS ...\n");
    let opts = RunOpts::default().with_accesses(60_000);
    let four = FourWay::run(&profile, &opts).expect("generated runs never fail");

    let mut t = Table::new(["config", "cycles", "DRAM reads", "prefetches", "coverage", "useful"]);
    for r in [&four.np, &four.ps, &four.ms, &four.pms] {
        let m = r.mc.prefetch_metrics();
        t.row([
            r.config.clone(),
            r.cycles.to_string(),
            r.dram.reads.to_string(),
            r.mc.prefetches_issued.to_string(),
            pct(m.coverage_pct()),
            pct(m.useful_pct()),
        ]);
    }
    println!("{}", t.render());

    println!("PMS vs NP : {:+.1}%", four.pms_vs_np());
    println!("MS  vs NP : {:+.1}%", four.ms_vs_np());
    println!("PMS vs PS : {:+.1}%", four.pms_vs_ps());
    println!("DRAM power increase (PMS vs PS): {:+.1}%", four.power_increase());
    println!("DRAM energy reduction (PMS vs PS): {:+.1}%", four.energy_reduction());
}

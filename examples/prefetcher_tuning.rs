//! Design-space exploration for the ASD prefetcher: the paper's
//! sensitivity studies (Figures 14 and 15) plus an epoch-length sweep the
//! paper leaves as an implicit design choice.
//!
//! All 17 design points run as one parallel [`Sweep`]; results come back
//! in push order, so each table just slices its range out of the batch.
//!
//! ```text
//! cargo run --release --example prefetcher_tuning [benchmark]
//! ```

use asd_core::AsdConfig;
use asd_mc::{EngineKind, McConfig};
use asd_sim::report::{ratio, Table};
use asd_sim::sweep::Sweep;
use asd_sim::{PrefetchKind, RunOpts, SystemConfig};
use asd_trace::suites;

const PB_LINES: [usize; 4] = [8, 16, 32, 1024];
const SF_SLOTS: [usize; 4] = [4, 8, 16, 64];
const EPOCHS: [u64; 5] = [500, 1000, 2000, 4000, 8000];
const DEGREES: [usize; 3] = [1, 2, 4];

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "GemsFDTD".to_string());
    let Some(profile) = suites::by_name(&bench) else {
        eprintln!("unknown benchmark `{bench}`");
        std::process::exit(1);
    };
    let opts = RunOpts::default().with_accesses(40_000);
    println!("Tuning study on {bench} (PMS, performance relative to the paper's default)\n");

    let pms = |mc: McConfig| SystemConfig::for_kind(PrefetchKind::Pms, 1).with_mc(mc);
    let mut sweep = Sweep::new(&opts);
    sweep.push(&profile, pms(McConfig::default()), "default");
    for lines in PB_LINES {
        let mc = McConfig { pb_lines: lines, pb_assoc: 4, ..McConfig::default() };
        sweep.push(&profile, pms(mc), &format!("pb{lines}"));
    }
    for slots in SF_SLOTS {
        let mc = McConfig {
            engine: EngineKind::Asd(AsdConfig::default().with_filter_slots(slots)),
            ..McConfig::default()
        };
        sweep.push(&profile, pms(mc), &format!("sf{slots}"));
    }
    for epoch in EPOCHS {
        let mc = McConfig {
            engine: EngineKind::Asd(AsdConfig::default().with_epoch_reads(epoch)),
            ..McConfig::default()
        };
        sweep.push(&profile, pms(mc), &format!("epoch{epoch}"));
    }
    for degree in DEGREES {
        let mc = McConfig {
            engine: EngineKind::Asd(AsdConfig { max_degree: degree, ..AsdConfig::default() }),
            ..McConfig::default()
        };
        sweep.push(&profile, pms(mc), &format!("degree{degree}"));
    }

    let results = sweep.run().expect("generated sweeps never fail");
    let base = results[0].cycles as f64;
    let mut rest = results[1..].iter();
    let mut table = |title: &str, labels: Vec<String>| {
        let mut t = Table::new([title, "relative performance"]);
        for label in labels {
            let r = rest.next().expect("one result per design point");
            t.row([label, ratio(base / r.cycles as f64)]);
        }
        println!("{}", t.render());
    };

    // Figure 14: Prefetch Buffer size.
    table("prefetch buffer (lines)", PB_LINES.iter().map(|s| s.to_string()).collect());
    // Figure 15: Stream Filter size.
    table("stream filter (slots)", SF_SLOTS.iter().map(|s| s.to_string()).collect());
    // Epoch length: how much history should one SLH summarize?
    table("epoch (reads)", EPOCHS.iter().map(|s| s.to_string()).collect());
    // Multi-line prefetching (the paper's §3.1 extension, not evaluated
    // there): allow up to `d` consecutive lines per trigger.
    table("max prefetch degree", DEGREES.iter().map(|s| s.to_string()).collect());
}

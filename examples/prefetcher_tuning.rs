//! Design-space exploration for the ASD prefetcher: the paper's
//! sensitivity studies (Figures 14 and 15) plus an epoch-length sweep the
//! paper leaves as an implicit design choice.
//!
//! ```text
//! cargo run --release --example prefetcher_tuning [benchmark]
//! ```

use asd_core::AsdConfig;
use asd_mc::{EngineKind, McConfig};
use asd_sim::experiment::run_custom;
use asd_sim::report::{ratio, Table};
use asd_sim::{PrefetchKind, RunOpts, SystemConfig};
use asd_trace::suites;

fn run_with(mc: McConfig, bench: &str, opts: &RunOpts, label: &str) -> u64 {
    let profile = suites::by_name(bench).expect("benchmark exists");
    let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1).with_mc(mc);
    run_custom(&profile, cfg, label, opts).cycles
}

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "GemsFDTD".to_string());
    if suites::by_name(&bench).is_none() {
        eprintln!("unknown benchmark `{bench}`");
        std::process::exit(1);
    }
    let opts = RunOpts::default().with_accesses(40_000);
    println!("Tuning study on {bench} (PMS, performance relative to the paper's default)\n");

    // Figure 14: Prefetch Buffer size.
    let base = run_with(McConfig::default(), &bench, &opts, "default");
    let mut t = Table::new(["prefetch buffer (lines)", "relative performance"]);
    for lines in [8usize, 16, 32, 1024] {
        let cycles = run_with(
            McConfig { pb_lines: lines, pb_assoc: 4, ..McConfig::default() },
            &bench,
            &opts,
            "pb",
        );
        t.row([lines.to_string(), ratio(base as f64 / cycles as f64)]);
    }
    println!("{}", t.render());

    // Figure 15: Stream Filter size.
    let mut t = Table::new(["stream filter (slots)", "relative performance"]);
    for slots in [4usize, 8, 16, 64] {
        let mc = McConfig {
            engine: EngineKind::Asd(AsdConfig::default().with_filter_slots(slots)),
            ..McConfig::default()
        };
        let cycles = run_with(mc, &bench, &opts, "sf");
        t.row([slots.to_string(), ratio(base as f64 / cycles as f64)]);
    }
    println!("{}", t.render());

    // Epoch length: how much history should one SLH summarize?
    let mut t = Table::new(["epoch (reads)", "relative performance"]);
    for epoch in [500u64, 1000, 2000, 4000, 8000] {
        let mc = McConfig {
            engine: EngineKind::Asd(AsdConfig::default().with_epoch_reads(epoch)),
            ..McConfig::default()
        };
        let cycles = run_with(mc, &bench, &opts, "epoch");
        t.row([epoch.to_string(), ratio(base as f64 / cycles as f64)]);
    }
    println!("{}", t.render());

    // Multi-line prefetching (the paper's §3.1 extension, not evaluated
    // there): allow up to `d` consecutive lines per trigger.
    let mut t = Table::new(["max prefetch degree", "relative performance"]);
    for degree in [1usize, 2, 4] {
        let mc = McConfig {
            engine: EngineKind::Asd(AsdConfig { max_degree: degree, ..AsdConfig::default() }),
            ..McConfig::default()
        };
        let cycles = run_with(mc, &bench, &opts, "degree");
        t.row([degree.to_string(), ratio(base as f64 / cycles as f64)]);
    }
    println!("{}", t.render());
}

//! One driver per table/figure of the paper. Every function returns the
//! structured data behind the figure plus a rendered text table, so the
//! bench harness, examples, and tests share one implementation.
//!
//! All multi-run drivers fan their simulations across OS threads through
//! [`crate::sweep::Sweep`]; results are bit-identical to the serial
//! equivalents.

use crate::config::{PrefetchKind, RunOpts, SystemConfig};
use crate::error::SimError;
use crate::experiment::{four_way_suite, mean, FourWay};
use crate::report::{pct, ratio, Table};
use crate::slh_study::{self, EpochSlh};
use crate::source::{TraceSource, TraceStream};
use crate::sweep::Sweep;
use crate::system::{RunResult, System};
use asd_core::cost::{hardware_cost, CostParams};
use asd_core::{AsdConfig, LpqPolicy};
use asd_mc::{EngineKind, LpqMode, McConfig, SchedulerKind};
use asd_telemetry::{expo, names, PrefetchMetrics, TelemetryConfig};
use asd_trace::suites::{self, Suite};

/// Figure 2: the Stream Length Histogram of one GemsFDTD epoch.
///
/// # Errors
///
/// [`SimError::NoEpochs`] when `opts.accesses` completes no ASD epoch.
pub fn fig2_slh(opts: &RunOpts) -> Result<(EpochSlh, String), SimError> {
    fig2_slh_from(&TraceSource::generate("GemsFDTD", opts.seed), opts)
}

/// [`fig2_slh`] over any [`TraceSource`] — replaying a recorded GemsFDTD
/// trace produces the identical histogram.
///
/// # Errors
///
/// [`SimError::NoEpochs`] when the stream completes no ASD epoch, plus
/// any source-resolution error ([`SimError::TraceIo`],
/// [`SimError::UnknownProfile`]).
pub fn fig2_slh_from(source: &TraceSource, opts: &RunOpts) -> Result<(EpochSlh, String), SimError> {
    let (benchmark, stream) = single_stream(source, opts)?;
    let asd = AsdConfig::default();
    let epochs = slh_study::epoch_histograms_from(stream, &asd)?;
    let sample = epochs
        .get(epochs.len() / 2)
        .or_else(|| epochs.first())
        .ok_or(SimError::NoEpochs { benchmark: benchmark.clone(), accesses: opts.accesses })?
        .clone();
    let text = format!(
        "Figure 2: SLH for one epoch of {benchmark} (epoch {})\n{}",
        sample.epoch,
        sample.oracle.ascii_chart(48)
    );
    Ok((sample, text))
}

/// Resolve `source` into its benchmark label and single thread-0 access
/// stream (the SLH studies are single-threaded: `opts.smt` is ignored).
fn single_stream(source: &TraceSource, opts: &RunOpts) -> Result<(String, TraceStream), SimError> {
    let no_smt = RunOpts { smt: false, ..opts.clone() };
    let resolved = source.resolve(&no_smt)?;
    let benchmark = resolved.benchmark;
    let stream = resolved
        .streams
        .into_iter()
        .next()
        // asd-lint: allow(D005) -- resolve always yields one stream per thread and threads >= 1
        .expect("resolved source has a thread-0 stream");
    Ok((benchmark, stream))
}

/// Figure 3: SLH variability across GemsFDTD epochs — the all-epoch merge
/// plus two individual epochs.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] from the epoch replay.
pub fn fig3_slh_epochs(opts: &RunOpts) -> Result<(Vec<EpochSlh>, String), SimError> {
    fig3_slh_epochs_from(&TraceSource::generate("GemsFDTD", opts.seed), opts)
}

/// [`fig3_slh_epochs`] over any [`TraceSource`].
///
/// # Errors
///
/// As [`fig2_slh_from`].
pub fn fig3_slh_epochs_from(
    source: &TraceSource,
    opts: &RunOpts,
) -> Result<(Vec<EpochSlh>, String), SimError> {
    let (benchmark, stream) = single_stream(source, opts)?;
    let asd = AsdConfig::default();
    let epochs = slh_study::epoch_histograms_from(stream, &asd)?;
    let mut merged = asd_core::Slh::new();
    for e in &epochs {
        merged += &e.oracle;
    }
    let mut text = format!("Figure 3: {benchmark} SLHs vary across epochs\n\nAll epochs:\n");
    text.push_str(&merged.ascii_chart(40));
    for pick in [epochs.len() / 3, 2 * epochs.len() / 3] {
        if let Some(e) = epochs.get(pick) {
            text.push_str(&format!("\nEpoch {}:\n{}", e.epoch, e.oracle.ascii_chart(40)));
        }
    }
    Ok((epochs, text))
}

/// One row of Figures 5–7.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Benchmark name.
    pub benchmark: String,
    /// PMS vs NP gain, percent.
    pub pms_vs_np: f64,
    /// MS vs NP gain, percent.
    pub ms_vs_np: f64,
    /// PMS vs PS gain, percent.
    pub pms_vs_ps: f64,
}

/// Run the four configurations for every benchmark of a suite (all
/// `4 x N` simulations in parallel).
///
/// # Errors
///
/// As [`four_way_suite`].
pub fn suite_results(suite: Suite, opts: &RunOpts) -> Result<Vec<FourWay>, SimError> {
    four_way_suite(&suite.profiles(), opts)
}

/// Figures 5 (SPEC2006fp), 6 (NAS), 7 (commercial): performance gains.
pub fn perf_figure(results: &[FourWay], title: &str) -> (Vec<PerfRow>, String) {
    let rows: Vec<PerfRow> = results
        .iter()
        .map(|f| PerfRow {
            benchmark: f.benchmark.clone(),
            pms_vs_np: f.pms_vs_np(),
            ms_vs_np: f.ms_vs_np(),
            pms_vs_ps: f.pms_vs_ps(),
        })
        .collect();
    let mut t = Table::new(["benchmark", "PMS vs NP", "MS vs NP", "PMS vs PS"]);
    for r in &rows {
        t.row([r.benchmark.clone(), pct(r.pms_vs_np), pct(r.ms_vs_np), pct(r.pms_vs_ps)]);
    }
    t.row([
        "Average".to_string(),
        pct(mean(&rows.iter().map(|r| r.pms_vs_np).collect::<Vec<_>>())),
        pct(mean(&rows.iter().map(|r| r.ms_vs_np).collect::<Vec<_>>())),
        pct(mean(&rows.iter().map(|r| r.pms_vs_ps).collect::<Vec<_>>())),
    ]);
    (rows, format!("{title}\n{}", t.render()))
}

/// One row of Figures 8–10.
#[derive(Debug, Clone)]
pub struct PowerRow {
    /// Benchmark name.
    pub benchmark: String,
    /// DRAM power increase of PMS over PS, percent.
    pub power_increase: f64,
    /// DRAM energy reduction of PMS over PS, percent.
    pub energy_reduction: f64,
}

/// Figures 8–10: DRAM power and energy, PMS vs PS.
pub fn power_figure(results: &[FourWay], title: &str) -> (Vec<PowerRow>, String) {
    let rows: Vec<PowerRow> = results
        .iter()
        .map(|f| PowerRow {
            benchmark: f.benchmark.clone(),
            power_increase: f.power_increase(),
            energy_reduction: f.energy_reduction(),
        })
        .collect();
    let mut t = Table::new(["benchmark", "power increase", "energy reduction"]);
    for r in &rows {
        t.row([r.benchmark.clone(), pct(r.power_increase), pct(r.energy_reduction)]);
    }
    t.row([
        "Average".to_string(),
        pct(mean(&rows.iter().map(|r| r.power_increase).collect::<Vec<_>>())),
        pct(mean(&rows.iter().map(|r| r.energy_reduction).collect::<Vec<_>>())),
    ]);
    (rows, format!("{title}\n{}", t.render()))
}

/// The eight memory-controller configurations of Figure 11, in bar order.
pub fn fig11_configs() -> Vec<(String, McConfig)> {
    let mut configs = Vec::new();
    let base = McConfig::default();
    configs.push(("ASD + Adaptive Scheduling".to_string(), base.clone()));
    for policy in LpqPolicy::ALL {
        configs.push((
            format!("ASD + scheduling method {}", policy.number()),
            McConfig { lpq_mode: LpqMode::Fixed(policy), ..base.clone() },
        ));
    }
    configs.push((
        "next-line + adaptive scheduling".to_string(),
        McConfig { engine: EngineKind::NextLine, ..base.clone() },
    ));
    configs.push((
        "P5-style + adaptive scheduling".to_string(),
        McConfig { engine: EngineKind::P5Style, ..base },
    ));
    configs
}

/// One benchmark's bars in Figure 11: execution time of each configuration
/// normalized to ASD + Adaptive Scheduling.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Benchmark name.
    pub benchmark: String,
    /// `(label, normalized execution time)` per configuration.
    pub bars: Vec<(String, f64)>,
}

/// Figure 11: Adaptive Stream Detection + Adaptive Scheduling against the
/// five fixed policies and the two alternative memory-side engines, on the
/// eight selected benchmarks.
/// # Errors
///
/// As [`Sweep::run`].
pub fn fig11_scheduling(opts: &RunOpts) -> Result<(Vec<Fig11Row>, String), SimError> {
    let configs = fig11_configs();
    let profiles = suites::selected_eight();
    let mut sweep = Sweep::new(opts);
    for profile in &profiles {
        for (label, mc) in &configs {
            let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1).with_mc(mc.clone());
            sweep.push(profile, cfg, label);
        }
    }
    let all = sweep.run()?;
    let mut rows = Vec::new();
    for (profile, runs) in profiles.iter().zip(all.chunks(configs.len())) {
        let baseline_cycles = runs[0].cycles as f64;
        rows.push(Fig11Row {
            benchmark: profile.name.clone(),
            bars: runs
                .iter()
                .map(|r| (r.config.clone(), r.cycles as f64 / baseline_cycles))
                .collect(),
        });
    }
    let mut t = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(configs.iter().map(|(l, _)| l.clone()))
            .collect::<Vec<_>>(),
    );
    for r in &rows {
        t.row(
            std::iter::once(r.benchmark.clone())
                .chain(r.bars.iter().map(|(_, v)| ratio(*v)))
                .collect::<Vec<_>>(),
        );
    }
    Ok((rows, format!("Figure 11: normalized execution time (ASD+Adaptive = 1.0)\n{}", t.render())))
}

/// Figure 12: stream-length shares (fraction of streams of length 1–5) for
/// the eight selected benchmarks.
///
/// # Errors
///
/// [`SimError::NoEpochs`] when a benchmark completes no ASD epoch within
/// `opts.accesses`.
pub fn fig12_stream_lengths(
    opts: &RunOpts,
) -> Result<(Vec<(String, slh_study::StreamShares)>, String), SimError> {
    let sources: Vec<TraceSource> = suites::selected_eight()
        .iter()
        .map(|p| TraceSource::generate(&p.name, opts.seed))
        .collect();
    fig12_stream_lengths_from(&sources, opts)
}

/// [`fig12_stream_lengths`] over any set of [`TraceSource`]s (one row per
/// source).
///
/// # Errors
///
/// As [`fig2_slh_from`].
pub fn fig12_stream_lengths_from(
    sources: &[TraceSource],
    opts: &RunOpts,
) -> Result<(Vec<(String, slh_study::StreamShares)>, String), SimError> {
    let mut rows = Vec::new();
    for source in sources {
        let (benchmark, stream) = single_stream(source, opts)?;
        let shares = slh_study::stream_shares_from(stream, &benchmark, opts.accesses)?;
        rows.push((benchmark, shares));
    }
    let mut t = Table::new(["benchmark", "len1", "len2", "len3", "len4", "len5", "len2-5", ">5"]);
    for (name, s) in &rows {
        t.row([
            name.clone(),
            pct(s.shares[0] * 100.0),
            pct(s.shares[1] * 100.0),
            pct(s.shares[2] * 100.0),
            pct(s.shares[3] * 100.0),
            pct(s.shares[4] * 100.0),
            pct(s.len2_to_5() * 100.0),
            pct(s.longer * 100.0),
        ]);
    }
    Ok((rows, format!("Figure 12: stream length distribution (% of streams)\n{}", t.render())))
}

/// One row of Figure 13.
#[derive(Debug, Clone)]
pub struct EfficiencyRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Useful-prefetch fraction, percent (paper: 82–91%).
    pub useful: f64,
    /// Coverage, percent (paper: 19–34%).
    pub coverage: f64,
    /// Delayed regular commands, percent (paper: 1–3%).
    pub delayed: f64,
}

/// Figure 13: prefetch efficiency of the PMS configuration on the eight
/// selected benchmarks.
/// # Errors
///
/// As [`Sweep::run`].
pub fn fig13_efficiency(opts: &RunOpts) -> Result<(Vec<EfficiencyRow>, String), SimError> {
    let threads = if opts.smt { 2 } else { 1 };
    let mut sweep = Sweep::new(opts);
    for profile in suites::selected_eight() {
        sweep.push(&profile, SystemConfig::for_kind(PrefetchKind::Pms, threads), "PMS");
    }
    let rows: Vec<EfficiencyRow> = sweep
        .run()?
        .iter()
        .map(|r| {
            let m = r.mc.prefetch_metrics();
            EfficiencyRow {
                benchmark: r.benchmark.clone(),
                useful: m.useful_pct(),
                coverage: m.coverage_pct(),
                delayed: m.delayed_pct(),
            }
        })
        .collect();
    let mut t = Table::new(["benchmark", "useful prefetches", "coverage", "delayed regular"]);
    for r in &rows {
        t.row([r.benchmark.clone(), pct(r.useful), pct(r.coverage), pct(r.delayed)]);
    }
    Ok((rows, format!("Figure 13: effectiveness of memory-side prefetching (PMS)\n{}", t.render())))
}

/// Sensitivity sweep row: performance of each size, normalized to the
/// paper's default.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Benchmark name.
    pub benchmark: String,
    /// `(size, relative performance)` — higher is better, 1.0 = default.
    pub points: Vec<(usize, f64)>,
}

fn size_sweep<F: Fn(usize) -> McConfig>(
    sizes: &[usize],
    default_size: usize,
    make: F,
    opts: &RunOpts,
) -> Result<Vec<SweepRow>, SimError> {
    let profiles = suites::selected_eight();
    let mut sweep = Sweep::new(opts);
    for profile in &profiles {
        for &s in sizes {
            let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1).with_mc(make(s));
            sweep.push(profile, cfg, &format!("{s}"));
        }
    }
    let all = sweep.run()?;
    Ok(profiles
        .iter()
        .zip(all.chunks(sizes.len()))
        .map(|(profile, runs)| {
            let baseline = sizes
                .iter()
                .zip(runs)
                .find(|(s, _)| **s == default_size)
                .map(|(_, r)| r.cycles as f64)
                // asd-lint: allow(D005) -- private helper; both callers pass a literal `sizes` array containing `default_size`
                .expect("default size in sweep");
            SweepRow {
                benchmark: profile.name.clone(),
                points: sizes
                    .iter()
                    .zip(runs)
                    .map(|(&s, r)| (s, baseline / r.cycles as f64))
                    .collect(),
            }
        })
        .collect())
}

/// Figure 14: sensitivity of PMS to Prefetch Buffer size
/// (8/16/32/1024 lines).
///
/// # Errors
///
/// As [`Sweep::run`].
pub fn fig14_buffer_size(opts: &RunOpts) -> Result<(Vec<SweepRow>, String), SimError> {
    let sizes = [8usize, 16, 32, 1024];
    let rows = size_sweep(
        &sizes,
        16,
        |s| McConfig { pb_lines: s, pb_assoc: 4, ..McConfig::default() },
        opts,
    )?;
    let text = render_sweep(
        &rows,
        &sizes,
        "Figure 14: sensitivity to prefetch buffer size (performance relative to 16 blocks)",
    );
    Ok((rows, text))
}

/// Figure 15: sensitivity of PMS to Stream Filter size (4/8/16/64 slots).
///
/// # Errors
///
/// As [`Sweep::run`].
pub fn fig15_filter_size(opts: &RunOpts) -> Result<(Vec<SweepRow>, String), SimError> {
    let sizes = [4usize, 8, 16, 64];
    let rows = size_sweep(
        &sizes,
        8,
        |s| McConfig {
            engine: EngineKind::Asd(AsdConfig::default().with_filter_slots(s)),
            ..McConfig::default()
        },
        opts,
    )?;
    let text = render_sweep(
        &rows,
        &sizes,
        "Figure 15: sensitivity to stream filter size (performance relative to 8 entries)",
    );
    Ok((rows, text))
}

fn render_sweep(rows: &[SweepRow], sizes: &[usize], title: &str) -> String {
    let mut header = vec!["benchmark".to_string()];
    header.extend(sizes.iter().map(|s| s.to_string()));
    let mut t = Table::new(header);
    for r in rows {
        let mut cells = vec![r.benchmark.clone()];
        cells.extend(r.points.iter().map(|(_, v)| ratio(*v)));
        t.row(cells);
    }
    format!("{title}\n{}", t.render())
}

/// Figure 16: accuracy of the finite-filter SLH approximation on a
/// GemsFDTD sample epoch.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] from the epoch replay.
pub fn fig16_slh_accuracy(opts: &RunOpts) -> Result<(Vec<EpochSlh>, String), SimError> {
    fig16_slh_accuracy_from(&TraceSource::generate("GemsFDTD", opts.seed), opts)
}

/// [`fig16_slh_accuracy`] over any [`TraceSource`].
///
/// # Errors
///
/// As [`fig2_slh_from`].
pub fn fig16_slh_accuracy_from(
    source: &TraceSource,
    opts: &RunOpts,
) -> Result<(Vec<EpochSlh>, String), SimError> {
    let (_benchmark, stream) = single_stream(source, opts)?;
    let asd = AsdConfig::default();
    let epochs = slh_study::epoch_histograms_from(stream, &asd)?;
    let mean_d = slh_study::mean_l1_distance(&epochs);
    let mut text = format!(
        "Figure 16: SLH approximation accuracy (mean L1 distance across {} epochs: {:.3})\n",
        epochs.len(),
        mean_d
    );
    if let Some(e) = epochs.get(epochs.len() / 2) {
        text.push_str(&format!("\nEpoch {} actual:\n{}", e.epoch, e.oracle.ascii_chart(40)));
        text.push_str(&format!(
            "\nEpoch {} our approximation:\n{}",
            e.epoch,
            e.approx.ascii_chart(40)
        ));
    }
    Ok((epochs, text))
}

/// Everything the telemetry walkthrough produces from one fully
/// instrumented run: the run itself (carrying the merged snapshot) and all
/// three expositions rendered from that single snapshot.
#[derive(Debug, Clone)]
pub struct TelemetryDemo {
    /// The instrumented PMS run; `result.telemetry` holds the snapshot.
    pub result: RunResult,
    /// Prometheus text exposition.
    pub prom: String,
    /// Chrome `trace_event` JSON (load in Perfetto or `chrome://tracing`).
    pub trace: String,
    /// Per-epoch CSV of every series.
    pub csv: String,
    /// Human-readable summary.
    pub text: String,
}

/// Telemetry walkthrough: run PMS on `bench` with metrics and events on,
/// then render every exposition backend from the run's one merged
/// snapshot. The summary re-derives the Figure 13 ratios, the CAQ
/// occupancy distribution, and the DRAM power breakdown purely from the
/// snapshot — the acceptance proof that they need no other source.
///
/// # Errors
///
/// [`SimError::UnknownProfile`] when `bench` names no workload profile.
pub fn telemetry_demo(bench: &str, opts: &RunOpts) -> Result<TelemetryDemo, SimError> {
    let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1).with_telemetry(TelemetryConfig::full());
    let source = TraceSource::generate(bench, opts.seed);
    let result = System::from_source(cfg, &source, opts)?.with_label("PMS").run();
    let snap = result.telemetry.clone().unwrap_or_default();
    let prom = expo::prom::render(&snap);
    let trace = expo::chrome::render(&snap);
    let csv = expo::csv::render(&snap);

    let mut text = format!("Telemetry walkthrough: {bench} / PMS ({} cycles)\n", result.cycles);
    if let Some(m) = PrefetchMetrics::from_snapshot(&snap) {
        let direct = result.mc.prefetch_metrics();
        let mut t = Table::new(["metric", "from snapshot", "from McStats"]);
        t.row(["coverage".to_string(), pct(m.coverage_pct()), pct(direct.coverage_pct())]);
        t.row(["useful prefetches".to_string(), pct(m.useful_pct()), pct(direct.useful_pct())]);
        t.row(["delayed regular".to_string(), pct(m.delayed_pct()), pct(direct.delayed_pct())]);
        text.push_str(&t.render());
    }
    if let Some(h) = snap.histogram(names::MC_CAQ_OCCUPANCY) {
        text.push_str(&format!("\nCAQ occupancy: {} samples, mean {:.2}\n", h.total(), h.mean()));
    }
    if let Some(e) = snap.gauge(names::DRAM_POWER_ENERGY_J) {
        text.push_str(&format!(
            "DRAM energy {:.4} J = background {:.4} + activate {:.4} + read {:.4} + write {:.4}\n",
            e,
            snap.gauge(names::DRAM_POWER_BACKGROUND_J).unwrap_or(0.0),
            snap.gauge(names::DRAM_POWER_ACTIVATE_J).unwrap_or(0.0),
            snap.gauge(names::DRAM_POWER_READ_J).unwrap_or(0.0),
            snap.gauge(names::DRAM_POWER_WRITE_J).unwrap_or(0.0),
        ));
    }
    text.push_str(&format!(
        "{} metrics, {} events ({} dropped) in the merged snapshot\n",
        snap.metrics.len(),
        snap.events.len(),
        snap.dropped_events
    ));
    Ok(TelemetryDemo { result, prom, trace, csv, text })
}

/// §5.1 hardware cost: bit inventory of the ASD additions.
pub fn hardware_cost_table() -> String {
    let cost = hardware_cost(&AsdConfig::default(), CostParams::default());
    let mut t = Table::new(["structure", "bits"]);
    t.row(["stream filter (per thread)".to_string(), cost.stream_filter_bits.to_string()]);
    t.row(["LHT tables (per thread)".to_string(), cost.lht_bits.to_string()]);
    t.row(["prefetch buffer data".to_string(), cost.prefetch_buffer_data_bits.to_string()]);
    t.row(["prefetch buffer tags".to_string(), cost.prefetch_buffer_tag_bits.to_string()]);
    t.row(["LPQ".to_string(), cost.lpq_bits.to_string()]);
    t.row(["TOTAL (4 threads), bytes".to_string(), cost.total_bytes().to_string()]);
    format!(
        "Hardware cost (paper §5.1: +6.08% memory controller area, +0.098% chip)\n{}\nfraction of 4x64KB competitor tables: {:.2}%\n",
        t.render(),
        cost.fraction_of_64kb_tables() * 100.0
    )
}

/// §5.2 SMT results: suite-average gains with two SMT threads.
///
/// # Errors
///
/// As [`Sweep::run`].
pub fn smt_table(opts: &RunOpts) -> Result<String, SimError> {
    let smt_opts = RunOpts { smt: true, ..opts.clone() };
    let kinds = [PrefetchKind::Np, PrefetchKind::Ps, PrefetchKind::Pms];
    let mut t = Table::new(["suite", "PMS vs NP (SMT)", "PMS vs PS (SMT)"]);
    for suite in Suite::ALL {
        let mut sweep = Sweep::new(&smt_opts);
        for profile in suite.profiles() {
            for kind in kinds {
                sweep.push(&profile, SystemConfig::for_kind(kind, 2), kind.name());
            }
        }
        let all = sweep.run()?;
        let mut vs_np = Vec::new();
        let mut vs_ps = Vec::new();
        for runs in all.chunks(kinds.len()) {
            let (np, ps, pms) = (&runs[0], &runs[1], &runs[2]);
            vs_np.push(pms.gain_over(np));
            vs_ps.push(pms.gain_over(ps));
        }
        t.row([suite.name().to_string(), pct(mean(&vs_np)), pct(mean(&vs_ps))]);
    }
    Ok(format!("SMT results (two threads, per-thread filters and LHTs)\n{}", t.render()))
}

/// §5.3 scheduler interaction: PMS-over-NP gain under each reorder-queue
/// scheduler, averaged over the eight selected benchmarks.
///
/// # Errors
///
/// As [`Sweep::run`].
pub fn scheduler_interaction_table(opts: &RunOpts) -> Result<String, SimError> {
    let mut t = Table::new(["scheduler", "PMS vs NP gain"]);
    for (name, kind) in [
        ("in-order", SchedulerKind::InOrder),
        ("memoryless", SchedulerKind::Memoryless),
        ("AHB", SchedulerKind::Ahb),
    ] {
        let mut sweep = Sweep::new(opts);
        for profile in suites::selected_eight() {
            let np_cfg = SystemConfig::for_kind(PrefetchKind::Np, 1).with_mc(McConfig {
                scheduler: kind,
                engine: EngineKind::None,
                ..McConfig::default()
            });
            let pms_cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1)
                .with_mc(McConfig { scheduler: kind, ..McConfig::default() });
            sweep.push(&profile, np_cfg, "NP");
            sweep.push(&profile, pms_cfg, "PMS");
        }
        let gains: Vec<f64> =
            sweep.run()?.chunks(2).map(|pair| pair[1].gain_over(&pair[0])).collect();
        t.row([name.to_string(), pct(mean(&gains))]);
    }
    Ok(format!(
        "Scheduler interaction (§5.3): prefetcher benefit by memory scheduler\n{}",
        t.render()
    ))
}

/// Regenerate one figure by catalog name and return its rendered text —
/// the single dispatch table behind both the `figures` CLI and the
/// `asd-serve` daemon, so a figure fetched from either path is
/// byte-identical by construction. Size overrides mirror the CLI: `fig3`
/// runs at 150 000 accesses and `smt` at 30 000 regardless of
/// `opts.accesses`; everything else uses `opts` as given.
///
/// # Errors
///
/// [`SimError::UnknownFigure`] for a name outside the catalog, plus any
/// error of the underlying driver.
pub fn figure_text(name: &str, opts: &RunOpts) -> Result<String, SimError> {
    match name {
        "fig2" => Ok(fig2_slh(opts)?.1),
        "fig3" => Ok(fig3_slh_epochs(&RunOpts { accesses: 150_000, ..opts.clone() })?.1),
        "fig5" => Ok(perf_figure(
            &suite_results(Suite::Spec2006Fp, opts)?,
            "Figure 5: SPEC2006fp performance gains",
        )
        .1),
        "fig6" => {
            Ok(perf_figure(&suite_results(Suite::Nas, opts)?, "Figure 6: NAS performance gains").1)
        }
        "fig7" => Ok(perf_figure(
            &suite_results(Suite::Commercial, opts)?,
            "Figure 7: commercial performance gains",
        )
        .1),
        "fig8" => Ok(power_figure(
            &suite_results(Suite::Spec2006Fp, opts)?,
            "Figure 8: SPEC2006fp DRAM power/energy (PMS vs PS)",
        )
        .1),
        "fig9" => Ok(power_figure(
            &suite_results(Suite::Nas, opts)?,
            "Figure 9: NAS DRAM power/energy (PMS vs PS)",
        )
        .1),
        "fig10" => Ok(power_figure(
            &suite_results(Suite::Commercial, opts)?,
            "Figure 10: commercial DRAM power/energy (PMS vs PS)",
        )
        .1),
        "fig11" => Ok(fig11_scheduling(opts)?.1),
        "fig12" => Ok(fig12_stream_lengths(opts)?.1),
        "fig13" => Ok(fig13_efficiency(opts)?.1),
        "fig14" => Ok(fig14_buffer_size(opts)?.1),
        "fig15" => Ok(fig15_filter_size(opts)?.1),
        "fig16" => Ok(fig16_slh_accuracy(opts)?.1),
        "cost" => Ok(hardware_cost_table()),
        "sched" => scheduler_interaction_table(opts),
        "smt" => smt_table(&RunOpts { accesses: 30_000, ..opts.clone() }),
        "ablations" => {
            let profiles: Vec<_> =
                ["milc", "tpcc"].iter().filter_map(|n| suites::by_name(n)).collect();
            crate::ablations::full_report(&profiles, opts)
        }
        _ => Err(SimError::UnknownFigure { name: name.to_string() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunOpts {
        RunOpts { accesses: 6_000, ..RunOpts::default() }
    }

    #[test]
    fn fig11_has_eight_configs() {
        let configs = fig11_configs();
        assert_eq!(configs.len(), 8);
        assert!(configs[0].0.contains("Adaptive"));
        assert!(configs[7].0.contains("P5"));
    }

    #[test]
    fn fig13_produces_rows() {
        let (rows, text) = fig13_efficiency(&tiny()).unwrap();
        assert_eq!(rows.len(), 8);
        assert!(text.contains("coverage"));
        for r in &rows {
            assert!((0.0..=100.0).contains(&r.coverage), "{}: {}", r.benchmark, r.coverage);
            assert!((0.0..=100.0).contains(&r.useful));
        }
    }

    #[test]
    fn cost_table_renders() {
        let s = hardware_cost_table();
        assert!(s.contains("stream filter"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn fig2_produces_histogram() {
        let opts = RunOpts { accesses: 20_000, ..RunOpts::default() };
        let (sample, text) = fig2_slh(&opts).unwrap();
        assert!(sample.oracle.total_reads() > 0);
        assert!(text.contains("Figure 2"));
    }

    #[test]
    fn figure_text_matches_direct_drivers() {
        let opts = RunOpts { accesses: 20_000, ..RunOpts::default() };
        assert_eq!(figure_text("cost", &opts).unwrap(), hardware_cost_table());
        assert_eq!(figure_text("fig2", &opts).unwrap(), fig2_slh(&opts).unwrap().1);
        assert!(matches!(figure_text("fig99", &opts), Err(SimError::UnknownFigure { .. })));
    }
}

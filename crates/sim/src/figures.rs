//! One driver per table/figure of the paper. Every function returns the
//! structured data behind the figure plus a rendered text table, so the
//! bench harness, examples, and tests share one implementation.
//!
//! All multi-run drivers fan their simulations across OS threads through
//! [`crate::sweep::Sweep`]; results are bit-identical to the serial
//! equivalents.

use crate::config::{PrefetchKind, RunOpts, SystemConfig};
use crate::error::SimError;
use crate::experiment::{four_way_assemble, four_way_jobs, four_way_suite, mean, FourWay};
use crate::pipeline::{FigureOutput, FigurePlan, Job, MetricValue};
use crate::report::{pct, ratio, Table};
use crate::slh_study::{self, EpochSlh};
use crate::source::{TraceSource, TraceStream};
use crate::sweep::Sweep;
use crate::system::{RunResult, System};
use asd_core::cost::{hardware_cost, CostParams};
use asd_core::{AsdConfig, LpqPolicy};
use asd_mc::{EngineKind, LpqMode, McConfig, SchedulerKind};
use asd_telemetry::{expo, names, PrefetchMetrics, TelemetryConfig};
use asd_trace::suites::{self, Suite};

/// Figure 2: the Stream Length Histogram of one GemsFDTD epoch.
///
/// # Errors
///
/// [`SimError::NoEpochs`] when `opts.accesses` completes no ASD epoch.
pub fn fig2_slh(opts: &RunOpts) -> Result<(EpochSlh, String), SimError> {
    fig2_slh_from(&TraceSource::generate("GemsFDTD", opts.seed), opts)
}

/// [`fig2_slh`] over any [`TraceSource`] — replaying a recorded GemsFDTD
/// trace produces the identical histogram.
///
/// # Errors
///
/// [`SimError::NoEpochs`] when the stream completes no ASD epoch, plus
/// any source-resolution error ([`SimError::TraceIo`],
/// [`SimError::UnknownProfile`]).
pub fn fig2_slh_from(source: &TraceSource, opts: &RunOpts) -> Result<(EpochSlh, String), SimError> {
    let (benchmark, stream) = single_stream(source, opts)?;
    let asd = AsdConfig::default();
    let epochs = slh_study::epoch_histograms_from(stream, &asd)?;
    let sample = epochs
        .get(epochs.len() / 2)
        .or_else(|| epochs.first())
        .ok_or(SimError::NoEpochs { benchmark: benchmark.clone(), accesses: opts.accesses })?
        .clone();
    let text = format!(
        "Figure 2: SLH for one epoch of {benchmark} (epoch {})\n{}",
        sample.epoch,
        sample.oracle.ascii_chart(48)
    );
    Ok((sample, text))
}

/// Resolve `source` into its benchmark label and single thread-0 access
/// stream (the SLH studies are single-threaded: `opts.smt` is ignored).
fn single_stream(source: &TraceSource, opts: &RunOpts) -> Result<(String, TraceStream), SimError> {
    let no_smt = RunOpts { smt: false, ..opts.clone() };
    let resolved = source.resolve(&no_smt)?;
    let benchmark = resolved.benchmark;
    let stream = resolved
        .streams
        .into_iter()
        .next()
        // asd-lint: allow(D005) -- resolve always yields one stream per thread and threads >= 1
        .expect("resolved source has a thread-0 stream");
    Ok((benchmark, stream))
}

/// Figure 3: SLH variability across GemsFDTD epochs — the all-epoch merge
/// plus two individual epochs.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] from the epoch replay.
pub fn fig3_slh_epochs(opts: &RunOpts) -> Result<(Vec<EpochSlh>, String), SimError> {
    fig3_slh_epochs_from(&TraceSource::generate("GemsFDTD", opts.seed), opts)
}

/// [`fig3_slh_epochs`] over any [`TraceSource`].
///
/// # Errors
///
/// As [`fig2_slh_from`].
pub fn fig3_slh_epochs_from(
    source: &TraceSource,
    opts: &RunOpts,
) -> Result<(Vec<EpochSlh>, String), SimError> {
    let (benchmark, stream) = single_stream(source, opts)?;
    let asd = AsdConfig::default();
    let epochs = slh_study::epoch_histograms_from(stream, &asd)?;
    let mut merged = asd_core::Slh::new();
    for e in &epochs {
        merged += &e.oracle;
    }
    let mut text = format!("Figure 3: {benchmark} SLHs vary across epochs\n\nAll epochs:\n");
    text.push_str(&merged.ascii_chart(40));
    for pick in [epochs.len() / 3, 2 * epochs.len() / 3] {
        if let Some(e) = epochs.get(pick) {
            text.push_str(&format!("\nEpoch {}:\n{}", e.epoch, e.oracle.ascii_chart(40)));
        }
    }
    Ok((epochs, text))
}

/// One row of Figures 5–7.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Benchmark name.
    pub benchmark: String,
    /// PMS vs NP gain, percent.
    pub pms_vs_np: f64,
    /// MS vs NP gain, percent.
    pub ms_vs_np: f64,
    /// PMS vs PS gain, percent.
    pub pms_vs_ps: f64,
}

/// Run the four configurations for every benchmark of a suite (all
/// `4 x N` simulations in parallel).
///
/// # Errors
///
/// As [`four_way_suite`].
pub fn suite_results(suite: Suite, opts: &RunOpts) -> Result<Vec<FourWay>, SimError> {
    four_way_suite(&suite.profiles(), opts)
}

/// Figures 5 (SPEC2006fp), 6 (NAS), 7 (commercial): performance gains.
pub fn perf_figure(results: &[FourWay], title: &str) -> (Vec<PerfRow>, String) {
    let rows: Vec<PerfRow> = results
        .iter()
        .map(|f| PerfRow {
            benchmark: f.benchmark.clone(),
            pms_vs_np: f.pms_vs_np(),
            ms_vs_np: f.ms_vs_np(),
            pms_vs_ps: f.pms_vs_ps(),
        })
        .collect();
    let mut t = Table::new(["benchmark", "PMS vs NP", "MS vs NP", "PMS vs PS"]);
    for r in &rows {
        t.row([r.benchmark.clone(), pct(r.pms_vs_np), pct(r.ms_vs_np), pct(r.pms_vs_ps)]);
    }
    t.row([
        "Average".to_string(),
        pct(mean(&rows.iter().map(|r| r.pms_vs_np).collect::<Vec<_>>())),
        pct(mean(&rows.iter().map(|r| r.ms_vs_np).collect::<Vec<_>>())),
        pct(mean(&rows.iter().map(|r| r.pms_vs_ps).collect::<Vec<_>>())),
    ]);
    (rows, format!("{title}\n{}", t.render()))
}

/// One row of Figures 8–10.
#[derive(Debug, Clone)]
pub struct PowerRow {
    /// Benchmark name.
    pub benchmark: String,
    /// DRAM power increase of PMS over PS, percent.
    pub power_increase: f64,
    /// DRAM energy reduction of PMS over PS, percent.
    pub energy_reduction: f64,
}

/// Figures 8–10: DRAM power and energy, PMS vs PS.
pub fn power_figure(results: &[FourWay], title: &str) -> (Vec<PowerRow>, String) {
    let rows: Vec<PowerRow> = results
        .iter()
        .map(|f| PowerRow {
            benchmark: f.benchmark.clone(),
            power_increase: f.power_increase(),
            energy_reduction: f.energy_reduction(),
        })
        .collect();
    let mut t = Table::new(["benchmark", "power increase", "energy reduction"]);
    for r in &rows {
        t.row([r.benchmark.clone(), pct(r.power_increase), pct(r.energy_reduction)]);
    }
    t.row([
        "Average".to_string(),
        pct(mean(&rows.iter().map(|r| r.power_increase).collect::<Vec<_>>())),
        pct(mean(&rows.iter().map(|r| r.energy_reduction).collect::<Vec<_>>())),
    ]);
    (rows, format!("{title}\n{}", t.render()))
}

/// The eight memory-controller configurations of Figure 11, in bar order.
pub fn fig11_configs() -> Vec<(String, McConfig)> {
    let mut configs = Vec::new();
    let base = McConfig::default();
    configs.push(("ASD + Adaptive Scheduling".to_string(), base.clone()));
    for policy in LpqPolicy::ALL {
        configs.push((
            format!("ASD + scheduling method {}", policy.number()),
            McConfig { lpq_mode: LpqMode::Fixed(policy), ..base.clone() },
        ));
    }
    configs.push((
        "next-line + adaptive scheduling".to_string(),
        McConfig { engine: EngineKind::NextLine, ..base.clone() },
    ));
    configs.push((
        "P5-style + adaptive scheduling".to_string(),
        McConfig { engine: EngineKind::P5Style, ..base },
    ));
    configs
}

/// One benchmark's bars in Figure 11: execution time of each configuration
/// normalized to ASD + Adaptive Scheduling.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Benchmark name.
    pub benchmark: String,
    /// `(label, normalized execution time)` per configuration.
    pub bars: Vec<(String, f64)>,
}

/// The Figure 11 job list: eight configurations per selected benchmark,
/// in the chunk order [`fig11_assemble`] consumes.
fn fig11_jobs() -> Vec<Job> {
    let configs = fig11_configs();
    let profiles = suites::selected_eight();
    let mut jobs = Vec::with_capacity(profiles.len() * configs.len());
    for profile in &profiles {
        for (label, mc) in &configs {
            let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1).with_mc(mc.clone());
            jobs.push(Job::new(profile, cfg, label));
        }
    }
    jobs
}

/// Assemble [`fig11_jobs`] results into the Figure 11 rows and table.
fn fig11_assemble(results: &[RunResult]) -> (Vec<Fig11Row>, String) {
    let configs = fig11_configs();
    let profiles = suites::selected_eight();
    let mut rows = Vec::new();
    for (profile, runs) in profiles.iter().zip(results.chunks(configs.len())) {
        let baseline_cycles = runs[0].cycles as f64;
        rows.push(Fig11Row {
            benchmark: profile.name.clone(),
            bars: runs
                .iter()
                .map(|r| (r.config.clone(), r.cycles as f64 / baseline_cycles))
                .collect(),
        });
    }
    let mut t = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(configs.iter().map(|(l, _)| l.clone()))
            .collect::<Vec<_>>(),
    );
    for r in &rows {
        t.row(
            std::iter::once(r.benchmark.clone())
                .chain(r.bars.iter().map(|(_, v)| ratio(*v)))
                .collect::<Vec<_>>(),
        );
    }
    (rows, format!("Figure 11: normalized execution time (ASD+Adaptive = 1.0)\n{}", t.render()))
}

/// Figure 11: Adaptive Stream Detection + Adaptive Scheduling against the
/// five fixed policies and the two alternative memory-side engines, on the
/// eight selected benchmarks.
/// # Errors
///
/// As [`Sweep::run`].
pub fn fig11_scheduling(opts: &RunOpts) -> Result<(Vec<Fig11Row>, String), SimError> {
    let mut sweep = Sweep::new(opts);
    for job in fig11_jobs() {
        sweep.push(&job.profile, job.cfg, &job.label);
    }
    Ok(fig11_assemble(&sweep.run()?))
}

/// Figure 12: stream-length shares (fraction of streams of length 1–5) for
/// the eight selected benchmarks.
///
/// # Errors
///
/// [`SimError::NoEpochs`] when a benchmark completes no ASD epoch within
/// `opts.accesses`.
pub fn fig12_stream_lengths(
    opts: &RunOpts,
) -> Result<(Vec<(String, slh_study::StreamShares)>, String), SimError> {
    let sources: Vec<TraceSource> = suites::selected_eight()
        .iter()
        .map(|p| TraceSource::generate(&p.name, opts.seed))
        .collect();
    fig12_stream_lengths_from(&sources, opts)
}

/// [`fig12_stream_lengths`] over any set of [`TraceSource`]s (one row per
/// source).
///
/// # Errors
///
/// As [`fig2_slh_from`].
pub fn fig12_stream_lengths_from(
    sources: &[TraceSource],
    opts: &RunOpts,
) -> Result<(Vec<(String, slh_study::StreamShares)>, String), SimError> {
    let mut rows = Vec::new();
    for source in sources {
        let (benchmark, stream) = single_stream(source, opts)?;
        let shares = slh_study::stream_shares_from(stream, &benchmark, opts.accesses)?;
        rows.push((benchmark, shares));
    }
    let mut t = Table::new(["benchmark", "len1", "len2", "len3", "len4", "len5", "len2-5", ">5"]);
    for (name, s) in &rows {
        t.row([
            name.clone(),
            pct(s.shares[0] * 100.0),
            pct(s.shares[1] * 100.0),
            pct(s.shares[2] * 100.0),
            pct(s.shares[3] * 100.0),
            pct(s.shares[4] * 100.0),
            pct(s.len2_to_5() * 100.0),
            pct(s.longer * 100.0),
        ]);
    }
    Ok((rows, format!("Figure 12: stream length distribution (% of streams)\n{}", t.render())))
}

/// One row of Figure 13.
#[derive(Debug, Clone)]
pub struct EfficiencyRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Useful-prefetch fraction, percent (paper: 82–91%).
    pub useful: f64,
    /// Coverage, percent (paper: 19–34%).
    pub coverage: f64,
    /// Delayed regular commands, percent (paper: 1–3%).
    pub delayed: f64,
}

/// The Figure 13 job list: one PMS run per selected benchmark.
fn fig13_jobs(opts: &RunOpts) -> Vec<Job> {
    let threads = if opts.smt { 2 } else { 1 };
    suites::selected_eight()
        .iter()
        .map(|profile| Job::new(profile, SystemConfig::for_kind(PrefetchKind::Pms, threads), "PMS"))
        .collect()
}

/// Assemble [`fig13_jobs`] results into the Figure 13 rows and table.
fn fig13_assemble(results: &[RunResult]) -> (Vec<EfficiencyRow>, String) {
    let rows: Vec<EfficiencyRow> = results
        .iter()
        .map(|r| {
            let m = r.mc.prefetch_metrics();
            EfficiencyRow {
                benchmark: r.benchmark.clone(),
                useful: m.useful_pct(),
                coverage: m.coverage_pct(),
                delayed: m.delayed_pct(),
            }
        })
        .collect();
    let mut t = Table::new(["benchmark", "useful prefetches", "coverage", "delayed regular"]);
    for r in &rows {
        t.row([r.benchmark.clone(), pct(r.useful), pct(r.coverage), pct(r.delayed)]);
    }
    (rows, format!("Figure 13: effectiveness of memory-side prefetching (PMS)\n{}", t.render()))
}

/// Figure 13: prefetch efficiency of the PMS configuration on the eight
/// selected benchmarks.
/// # Errors
///
/// As [`Sweep::run`].
pub fn fig13_efficiency(opts: &RunOpts) -> Result<(Vec<EfficiencyRow>, String), SimError> {
    let mut sweep = Sweep::new(opts);
    for job in fig13_jobs(opts) {
        sweep.push(&job.profile, job.cfg, &job.label);
    }
    Ok(fig13_assemble(&sweep.run()?))
}

/// Sensitivity sweep row: performance of each size, normalized to the
/// paper's default.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Benchmark name.
    pub benchmark: String,
    /// `(size, relative performance)` — higher is better, 1.0 = default.
    pub points: Vec<(usize, f64)>,
}

/// The job list behind Figures 14/15: one PMS run per (benchmark, size),
/// sizes inner, in the chunk order [`size_sweep_assemble`] consumes.
fn size_sweep_jobs<F: Fn(usize) -> McConfig>(sizes: &[usize], make: F) -> Vec<Job> {
    let profiles = suites::selected_eight();
    let mut jobs = Vec::with_capacity(profiles.len() * sizes.len());
    for profile in &profiles {
        for &s in sizes {
            let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1).with_mc(make(s));
            jobs.push(Job::new(profile, cfg, &format!("{s}")));
        }
    }
    jobs
}

/// Assemble [`size_sweep_jobs`] results, normalizing each benchmark's
/// points to its `default_size` run.
fn size_sweep_assemble(
    sizes: &[usize],
    default_size: usize,
    results: &[RunResult],
) -> Vec<SweepRow> {
    suites::selected_eight()
        .iter()
        .zip(results.chunks(sizes.len()))
        .map(|(profile, runs)| {
            let baseline = sizes
                .iter()
                .zip(runs)
                .find(|(s, _)| **s == default_size)
                .map(|(_, r)| r.cycles as f64)
                // asd-lint: allow(D005) -- private helper; every caller passes a literal `sizes` array containing `default_size`
                .expect("default size in sweep");
            SweepRow {
                benchmark: profile.name.clone(),
                points: sizes
                    .iter()
                    .zip(runs)
                    .map(|(&s, r)| (s, baseline / r.cycles as f64))
                    .collect(),
            }
        })
        .collect()
}

fn size_sweep<F: Fn(usize) -> McConfig>(
    sizes: &[usize],
    default_size: usize,
    make: F,
    opts: &RunOpts,
) -> Result<Vec<SweepRow>, SimError> {
    let mut sweep = Sweep::new(opts);
    for job in size_sweep_jobs(sizes, make) {
        sweep.push(&job.profile, job.cfg, &job.label);
    }
    Ok(size_sweep_assemble(sizes, default_size, &sweep.run()?))
}

/// The literals defining one size-sensitivity figure (14 or 15): the
/// swept sizes, the normalization point, the config constructor, and the
/// table title. One definition feeds both the classic driver and the
/// pipeline plan.
struct SizeSweepSpec {
    sizes: [usize; 4],
    default_size: usize,
    make: fn(usize) -> McConfig,
    title: &'static str,
}

fn fig14_spec() -> SizeSweepSpec {
    SizeSweepSpec {
        sizes: [8, 16, 32, 1024],
        default_size: 16,
        make: |s| McConfig { pb_lines: s, pb_assoc: 4, ..McConfig::default() },
        title: "Figure 14: sensitivity to prefetch buffer size (performance relative to 16 blocks)",
    }
}

fn fig15_spec() -> SizeSweepSpec {
    SizeSweepSpec {
        sizes: [4, 8, 16, 64],
        default_size: 8,
        make: |s| McConfig {
            engine: EngineKind::Asd(AsdConfig::default().with_filter_slots(s)),
            ..McConfig::default()
        },
        title: "Figure 15: sensitivity to stream filter size (performance relative to 8 entries)",
    }
}

fn size_sweep_figure(
    spec: &SizeSweepSpec,
    opts: &RunOpts,
) -> Result<(Vec<SweepRow>, String), SimError> {
    let rows = size_sweep(&spec.sizes, spec.default_size, spec.make, opts)?;
    let text = render_sweep(&rows, &spec.sizes, spec.title);
    Ok((rows, text))
}

/// Figure 14: sensitivity of PMS to Prefetch Buffer size
/// (8/16/32/1024 lines).
///
/// # Errors
///
/// As [`Sweep::run`].
pub fn fig14_buffer_size(opts: &RunOpts) -> Result<(Vec<SweepRow>, String), SimError> {
    size_sweep_figure(&fig14_spec(), opts)
}

/// Figure 15: sensitivity of PMS to Stream Filter size (4/8/16/64 slots).
///
/// # Errors
///
/// As [`Sweep::run`].
pub fn fig15_filter_size(opts: &RunOpts) -> Result<(Vec<SweepRow>, String), SimError> {
    size_sweep_figure(&fig15_spec(), opts)
}

fn render_sweep(rows: &[SweepRow], sizes: &[usize], title: &str) -> String {
    let mut header = vec!["benchmark".to_string()];
    header.extend(sizes.iter().map(|s| s.to_string()));
    let mut t = Table::new(header);
    for r in rows {
        let mut cells = vec![r.benchmark.clone()];
        cells.extend(r.points.iter().map(|(_, v)| ratio(*v)));
        t.row(cells);
    }
    format!("{title}\n{}", t.render())
}

/// Figure 16: accuracy of the finite-filter SLH approximation on a
/// GemsFDTD sample epoch.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] from the epoch replay.
pub fn fig16_slh_accuracy(opts: &RunOpts) -> Result<(Vec<EpochSlh>, String), SimError> {
    fig16_slh_accuracy_from(&TraceSource::generate("GemsFDTD", opts.seed), opts)
}

/// [`fig16_slh_accuracy`] over any [`TraceSource`].
///
/// # Errors
///
/// As [`fig2_slh_from`].
pub fn fig16_slh_accuracy_from(
    source: &TraceSource,
    opts: &RunOpts,
) -> Result<(Vec<EpochSlh>, String), SimError> {
    let (_benchmark, stream) = single_stream(source, opts)?;
    let asd = AsdConfig::default();
    let epochs = slh_study::epoch_histograms_from(stream, &asd)?;
    let mean_d = slh_study::mean_l1_distance(&epochs);
    let mut text = format!(
        "Figure 16: SLH approximation accuracy (mean L1 distance across {} epochs: {:.3})\n",
        epochs.len(),
        mean_d
    );
    if let Some(e) = epochs.get(epochs.len() / 2) {
        text.push_str(&format!("\nEpoch {} actual:\n{}", e.epoch, e.oracle.ascii_chart(40)));
        text.push_str(&format!(
            "\nEpoch {} our approximation:\n{}",
            e.epoch,
            e.approx.ascii_chart(40)
        ));
    }
    Ok((epochs, text))
}

/// Everything the telemetry walkthrough produces from one fully
/// instrumented run: the run itself (carrying the merged snapshot) and all
/// three expositions rendered from that single snapshot.
#[derive(Debug, Clone)]
pub struct TelemetryDemo {
    /// The instrumented PMS run; `result.telemetry` holds the snapshot.
    pub result: RunResult,
    /// Prometheus text exposition.
    pub prom: String,
    /// Chrome `trace_event` JSON (load in Perfetto or `chrome://tracing`).
    pub trace: String,
    /// Per-epoch CSV of every series.
    pub csv: String,
    /// Human-readable summary.
    pub text: String,
}

/// Telemetry walkthrough: run PMS on `bench` with metrics and events on,
/// then render every exposition backend from the run's one merged
/// snapshot. The summary re-derives the Figure 13 ratios, the CAQ
/// occupancy distribution, and the DRAM power breakdown purely from the
/// snapshot — the acceptance proof that they need no other source.
///
/// # Errors
///
/// [`SimError::UnknownProfile`] when `bench` names no workload profile.
pub fn telemetry_demo(bench: &str, opts: &RunOpts) -> Result<TelemetryDemo, SimError> {
    let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1).with_telemetry(TelemetryConfig::full());
    let source = TraceSource::generate(bench, opts.seed);
    let result = System::from_source(cfg, &source, opts)?.with_label("PMS").run();
    let snap = result.telemetry.clone().unwrap_or_default();
    let prom = expo::prom::render(&snap);
    let trace = expo::chrome::render(&snap);
    let csv = expo::csv::render(&snap);

    let mut text = format!("Telemetry walkthrough: {bench} / PMS ({} cycles)\n", result.cycles);
    if let Some(m) = PrefetchMetrics::from_snapshot(&snap) {
        let direct = result.mc.prefetch_metrics();
        let mut t = Table::new(["metric", "from snapshot", "from McStats"]);
        t.row(["coverage".to_string(), pct(m.coverage_pct()), pct(direct.coverage_pct())]);
        t.row(["useful prefetches".to_string(), pct(m.useful_pct()), pct(direct.useful_pct())]);
        t.row(["delayed regular".to_string(), pct(m.delayed_pct()), pct(direct.delayed_pct())]);
        text.push_str(&t.render());
    }
    if let Some(h) = snap.histogram(names::MC_CAQ_OCCUPANCY) {
        text.push_str(&format!("\nCAQ occupancy: {} samples, mean {:.2}\n", h.total(), h.mean()));
    }
    if let Some(e) = snap.gauge(names::DRAM_POWER_ENERGY_J) {
        text.push_str(&format!(
            "DRAM energy {:.4} J = background {:.4} + activate {:.4} + read {:.4} + write {:.4}\n",
            e,
            snap.gauge(names::DRAM_POWER_BACKGROUND_J).unwrap_or(0.0),
            snap.gauge(names::DRAM_POWER_ACTIVATE_J).unwrap_or(0.0),
            snap.gauge(names::DRAM_POWER_READ_J).unwrap_or(0.0),
            snap.gauge(names::DRAM_POWER_WRITE_J).unwrap_or(0.0),
        ));
    }
    text.push_str(&format!(
        "{} metrics, {} events ({} dropped) in the merged snapshot\n",
        snap.metrics.len(),
        snap.events.len(),
        snap.dropped_events
    ));
    Ok(TelemetryDemo { result, prom, trace, csv, text })
}

/// §5.1 hardware cost: bit inventory of the ASD additions.
pub fn hardware_cost_table() -> String {
    let cost = hardware_cost(&AsdConfig::default(), CostParams::default());
    let mut t = Table::new(["structure", "bits"]);
    t.row(["stream filter (per thread)".to_string(), cost.stream_filter_bits.to_string()]);
    t.row(["LHT tables (per thread)".to_string(), cost.lht_bits.to_string()]);
    t.row(["prefetch buffer data".to_string(), cost.prefetch_buffer_data_bits.to_string()]);
    t.row(["prefetch buffer tags".to_string(), cost.prefetch_buffer_tag_bits.to_string()]);
    t.row(["LPQ".to_string(), cost.lpq_bits.to_string()]);
    t.row(["TOTAL (4 threads), bytes".to_string(), cost.total_bytes().to_string()]);
    format!(
        "Hardware cost (paper §5.1: +6.08% memory controller area, +0.098% chip)\n{}\nfraction of 4x64KB competitor tables: {:.2}%\n",
        t.render(),
        cost.fraction_of_64kb_tables() * 100.0
    )
}

/// The SMT prefetch kinds, in per-benchmark chunk order.
const SMT_KINDS: [PrefetchKind; 3] = [PrefetchKind::Np, PrefetchKind::Ps, PrefetchKind::Pms];

/// The §5.2 job list: every suite's benchmarks under NP/PS/PMS with two
/// SMT threads, suites outer, in the chunk order [`smt_assemble`]
/// consumes. (The jobs run under `smt: true` options — [`smt_opts`].)
fn smt_jobs() -> Vec<Job> {
    let mut jobs = Vec::new();
    for suite in Suite::ALL {
        for profile in suite.profiles() {
            for kind in SMT_KINDS {
                jobs.push(Job::new(&profile, SystemConfig::for_kind(kind, 2), kind.name()));
            }
        }
    }
    jobs
}

/// The effective options for the SMT table: `opts` with SMT forced on.
fn smt_opts(opts: &RunOpts) -> RunOpts {
    RunOpts { smt: true, ..opts.clone() }
}

/// Assemble [`smt_jobs`] results into the §5.2 suite-average table.
fn smt_assemble(results: &[RunResult]) -> String {
    let mut t = Table::new(["suite", "PMS vs NP (SMT)", "PMS vs PS (SMT)"]);
    let mut offset = 0;
    for suite in Suite::ALL {
        let count = suite.profiles().len() * SMT_KINDS.len();
        let all = &results[offset..offset + count];
        offset += count;
        let mut vs_np = Vec::new();
        let mut vs_ps = Vec::new();
        for runs in all.chunks(SMT_KINDS.len()) {
            let (np, ps, pms) = (&runs[0], &runs[1], &runs[2]);
            vs_np.push(pms.gain_over(np));
            vs_ps.push(pms.gain_over(ps));
        }
        t.row([suite.name().to_string(), pct(mean(&vs_np)), pct(mean(&vs_ps))]);
    }
    format!("SMT results (two threads, per-thread filters and LHTs)\n{}", t.render())
}

/// §5.2 SMT results: suite-average gains with two SMT threads.
///
/// # Errors
///
/// As [`Sweep::run`].
pub fn smt_table(opts: &RunOpts) -> Result<String, SimError> {
    let mut sweep = Sweep::new(&smt_opts(opts));
    for job in smt_jobs() {
        sweep.push(&job.profile, job.cfg, &job.label);
    }
    Ok(smt_assemble(&sweep.run()?))
}

/// The §5.3 schedulers, in table-row order.
const SCHED_KINDS: [(&str, SchedulerKind); 3] = [
    ("in-order", SchedulerKind::InOrder),
    ("memoryless", SchedulerKind::Memoryless),
    ("AHB", SchedulerKind::Ahb),
];

/// The §5.3 job list: per scheduler, an NP/PMS pair for each selected
/// benchmark, schedulers outer, in the chunk order [`sched_assemble`]
/// consumes.
fn sched_jobs() -> Vec<Job> {
    let mut jobs = Vec::new();
    for (_, kind) in SCHED_KINDS {
        for profile in suites::selected_eight() {
            let np_cfg = SystemConfig::for_kind(PrefetchKind::Np, 1).with_mc(McConfig {
                scheduler: kind,
                engine: EngineKind::None,
                ..McConfig::default()
            });
            let pms_cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1)
                .with_mc(McConfig { scheduler: kind, ..McConfig::default() });
            jobs.push(Job::new(&profile, np_cfg, "NP"));
            jobs.push(Job::new(&profile, pms_cfg, "PMS"));
        }
    }
    jobs
}

/// Assemble [`sched_jobs`] results into the §5.3 table.
fn sched_assemble(results: &[RunResult]) -> String {
    let per_sched = suites::selected_eight().len() * 2;
    let mut t = Table::new(["scheduler", "PMS vs NP gain"]);
    for ((name, _), runs) in SCHED_KINDS.iter().zip(results.chunks(per_sched)) {
        let gains: Vec<f64> = runs.chunks(2).map(|pair| pair[1].gain_over(&pair[0])).collect();
        t.row([(*name).to_string(), pct(mean(&gains))]);
    }
    format!("Scheduler interaction (§5.3): prefetcher benefit by memory scheduler\n{}", t.render())
}

/// §5.3 scheduler interaction: PMS-over-NP gain under each reorder-queue
/// scheduler, averaged over the eight selected benchmarks.
///
/// # Errors
///
/// As [`Sweep::run`].
pub fn scheduler_interaction_table(opts: &RunOpts) -> Result<String, SimError> {
    let mut sweep = Sweep::new(opts);
    for job in sched_jobs() {
        sweep.push(&job.profile, job.cfg, &job.label);
    }
    Ok(sched_assemble(&sweep.run()?))
}

fn perf_metric_list(rows: &[PerfRow]) -> Vec<(String, MetricValue)> {
    vec![
        ("benchmarks".to_string(), MetricValue::U64(rows.len() as u64)),
        (
            "mean_pms_vs_np_pct".to_string(),
            MetricValue::F64(mean(&rows.iter().map(|r| r.pms_vs_np).collect::<Vec<_>>())),
        ),
        (
            "mean_pms_vs_ps_pct".to_string(),
            MetricValue::F64(mean(&rows.iter().map(|r| r.pms_vs_ps).collect::<Vec<_>>())),
        ),
    ]
}

fn power_metric_list(rows: &[PowerRow]) -> Vec<(String, MetricValue)> {
    vec![
        ("benchmarks".to_string(), MetricValue::U64(rows.len() as u64)),
        (
            "mean_power_increase_pct".to_string(),
            MetricValue::F64(mean(&rows.iter().map(|r| r.power_increase).collect::<Vec<_>>())),
        ),
        (
            "mean_energy_reduction_pct".to_string(),
            MetricValue::F64(mean(&rows.iter().map(|r| r.energy_reduction).collect::<Vec<_>>())),
        ),
    ]
}

fn perf_plan(name: &str, suite: Suite, title: &'static str, opts: &RunOpts) -> FigurePlan {
    let profiles = suite.profiles();
    let jobs = four_way_jobs(&profiles, opts);
    FigurePlan::new(name, opts, jobs, move |results| {
        let (rows, text) = perf_figure(&four_way_assemble(&profiles, results), title);
        Ok(FigureOutput { text, metrics: perf_metric_list(&rows), artifacts: Vec::new() })
    })
}

fn power_plan(name: &str, suite: Suite, title: &'static str, opts: &RunOpts) -> FigurePlan {
    let profiles = suite.profiles();
    let jobs = four_way_jobs(&profiles, opts);
    FigurePlan::new(name, opts, jobs, move |results| {
        let (rows, text) = power_figure(&four_way_assemble(&profiles, results), title);
        Ok(FigureOutput { text, metrics: power_metric_list(&rows), artifacts: Vec::new() })
    })
}

/// The declarative catalog behind [`figure_text`] and the `figures`
/// binary: one [`FigurePlan`] per figure name. Equivalent to
/// [`plan_sized`] with the catalog's absolute size overrides applied
/// (`fig3` at 150 000 accesses, `smt` at 30 000).
///
/// # Errors
///
/// [`SimError::UnknownFigure`] for a name outside the catalog;
/// [`SimError::UnknownEngine`] from the arena roster.
pub fn plan(name: &str, opts: &RunOpts) -> Result<FigurePlan, SimError> {
    plan_sized(name, opts, false)
}

/// [`plan`] with the size overrides optionally suppressed: with
/// `uniform` set, every figure runs at `opts.accesses` as given (the
/// dual-mode identity tests use this to keep full catalog runs cheap).
///
/// # Errors
///
/// As [`plan`].
#[allow(clippy::too_many_lines)]
pub fn plan_sized(name: &str, opts: &RunOpts, uniform: bool) -> Result<FigurePlan, SimError> {
    let sized =
        |accesses: u64| if uniform { opts.clone() } else { RunOpts { accesses, ..opts.clone() } };
    match name {
        "fig2" => {
            let o = opts.clone();
            Ok(FigurePlan::new(name, opts, Vec::new(), move |_| {
                let (sample, text) = fig2_slh(&o)?;
                Ok(FigureOutput {
                    text,
                    metrics: vec![("epoch".to_string(), MetricValue::U64(sample.epoch))],
                    artifacts: Vec::new(),
                })
            }))
        }
        "fig3" => {
            let o = sized(150_000);
            let run_opts = o.clone();
            Ok(FigurePlan::new(name, &o, Vec::new(), move |_| {
                let (epochs, text) = fig3_slh_epochs(&run_opts)?;
                Ok(FigureOutput {
                    text,
                    metrics: vec![("epochs".to_string(), MetricValue::U64(epochs.len() as u64))],
                    artifacts: Vec::new(),
                })
            }))
        }
        "fig5" => {
            Ok(perf_plan(name, Suite::Spec2006Fp, "Figure 5: SPEC2006fp performance gains", opts))
        }
        "fig6" => Ok(perf_plan(name, Suite::Nas, "Figure 6: NAS performance gains", opts)),
        "fig7" => {
            Ok(perf_plan(name, Suite::Commercial, "Figure 7: commercial performance gains", opts))
        }
        "fig8" => Ok(power_plan(
            name,
            Suite::Spec2006Fp,
            "Figure 8: SPEC2006fp DRAM power/energy (PMS vs PS)",
            opts,
        )),
        "fig9" => {
            Ok(power_plan(name, Suite::Nas, "Figure 9: NAS DRAM power/energy (PMS vs PS)", opts))
        }
        "fig10" => Ok(power_plan(
            name,
            Suite::Commercial,
            "Figure 10: commercial DRAM power/energy (PMS vs PS)",
            opts,
        )),
        "fig11" => Ok(FigurePlan::new(name, opts, fig11_jobs(), |results| {
            let (rows, text) = fig11_assemble(results);
            Ok(FigureOutput {
                text,
                metrics: vec![
                    ("benchmarks".to_string(), MetricValue::U64(rows.len() as u64)),
                    (
                        "configs".to_string(),
                        MetricValue::U64(rows.first().map_or(0, |r| r.bars.len()) as u64),
                    ),
                ],
                artifacts: Vec::new(),
            })
        })),
        "fig12" => {
            let o = opts.clone();
            Ok(FigurePlan::new(name, opts, Vec::new(), move |_| {
                let (rows, text) = fig12_stream_lengths(&o)?;
                Ok(FigureOutput {
                    text,
                    metrics: vec![("benchmarks".to_string(), MetricValue::U64(rows.len() as u64))],
                    artifacts: Vec::new(),
                })
            }))
        }
        "fig13" => Ok(FigurePlan::new(name, opts, fig13_jobs(opts), |results| {
            let (rows, text) = fig13_assemble(results);
            Ok(FigureOutput {
                text,
                metrics: vec![
                    ("benchmarks".to_string(), MetricValue::U64(rows.len() as u64)),
                    (
                        "mean_useful_pct".to_string(),
                        MetricValue::F64(mean(&rows.iter().map(|r| r.useful).collect::<Vec<_>>())),
                    ),
                    (
                        "mean_coverage_pct".to_string(),
                        MetricValue::F64(mean(
                            &rows.iter().map(|r| r.coverage).collect::<Vec<_>>(),
                        )),
                    ),
                ],
                artifacts: Vec::new(),
            })
        })),
        "fig14" | "fig15" => {
            let spec = if name == "fig14" { fig14_spec() } else { fig15_spec() };
            let jobs = size_sweep_jobs(&spec.sizes, spec.make);
            Ok(FigurePlan::new(name, opts, jobs, move |results| {
                let rows = size_sweep_assemble(&spec.sizes, spec.default_size, results);
                let text = render_sweep(&rows, &spec.sizes, spec.title);
                Ok(FigureOutput {
                    text,
                    metrics: vec![("benchmarks".to_string(), MetricValue::U64(rows.len() as u64))],
                    artifacts: Vec::new(),
                })
            }))
        }
        "fig16" => {
            let o = opts.clone();
            Ok(FigurePlan::new(name, opts, Vec::new(), move |_| {
                let (epochs, text) = fig16_slh_accuracy(&o)?;
                Ok(FigureOutput {
                    text,
                    metrics: vec![("epochs".to_string(), MetricValue::U64(epochs.len() as u64))],
                    artifacts: Vec::new(),
                })
            }))
        }
        "cost" => Ok(FigurePlan::new(name, opts, Vec::new(), |_| {
            Ok(FigureOutput::text_only(hardware_cost_table()))
        })),
        "sched" => Ok(FigurePlan::new(name, opts, sched_jobs(), |results| {
            Ok(FigureOutput::text_only(sched_assemble(results)))
        })),
        "smt" => {
            let o = smt_opts(&sized(30_000));
            Ok(FigurePlan::new(name, &o, smt_jobs(), |results| {
                Ok(FigureOutput::text_only(smt_assemble(results)))
            }))
        }
        "ablations" => {
            let profiles: Vec<_> =
                ["milc", "tpcc"].iter().filter_map(|n| suites::by_name(n)).collect();
            Ok(crate::ablations::report_plan(&profiles, opts))
        }
        "arena" => {
            let roster = crate::arena::default_roster();
            let engines: Vec<&str> = roster.iter().map(String::as_str).collect();
            crate::arena::arena_plan(&engines, &suites::all_profiles(), opts)
        }
        "telemetry" => {
            let o = opts.clone();
            Ok(FigurePlan::new(name, opts, Vec::new(), move |_| {
                let demo = telemetry_demo("tpcc", &o)?;
                let snap = demo.result.telemetry.clone().unwrap_or_default();
                Ok(FigureOutput {
                    text: demo.text,
                    metrics: vec![
                        ("metrics".to_string(), MetricValue::U64(snap.metrics.len() as u64)),
                        ("events".to_string(), MetricValue::U64(snap.events.len() as u64)),
                        ("dropped_events".to_string(), MetricValue::U64(snap.dropped_events)),
                    ],
                    artifacts: vec![
                        ("telemetry.prom".to_string(), demo.prom),
                        ("telemetry.trace.json".to_string(), demo.trace),
                        ("telemetry.csv".to_string(), demo.csv),
                    ],
                })
            }))
        }
        _ => Err(SimError::UnknownFigure { name: name.to_string() }),
    }
}

/// Regenerate one figure by catalog name and return its rendered text —
/// the single dispatch table behind both the `figures` CLI and the
/// `asd-serve` daemon, so a figure fetched from either path is
/// byte-identical by construction. Implemented as [`plan`] + barrier-mode
/// [`FigurePlan::run`], which also guarantees CLI/daemon/pipeline
/// identity. Size overrides mirror the CLI: `fig3` runs at 150 000
/// accesses and `smt` at 30 000 regardless of `opts.accesses`;
/// everything else uses `opts` as given.
///
/// # Errors
///
/// [`SimError::UnknownFigure`] for a name outside the catalog, plus any
/// error of the underlying driver.
pub fn figure_text(name: &str, opts: &RunOpts) -> Result<String, SimError> {
    Ok(plan(name, opts)?.run()?.text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunOpts {
        RunOpts { accesses: 6_000, ..RunOpts::default() }
    }

    #[test]
    fn fig11_has_eight_configs() {
        let configs = fig11_configs();
        assert_eq!(configs.len(), 8);
        assert!(configs[0].0.contains("Adaptive"));
        assert!(configs[7].0.contains("P5"));
    }

    #[test]
    fn fig13_produces_rows() {
        let (rows, text) = fig13_efficiency(&tiny()).unwrap();
        assert_eq!(rows.len(), 8);
        assert!(text.contains("coverage"));
        for r in &rows {
            assert!((0.0..=100.0).contains(&r.coverage), "{}: {}", r.benchmark, r.coverage);
            assert!((0.0..=100.0).contains(&r.useful));
        }
    }

    #[test]
    fn cost_table_renders() {
        let s = hardware_cost_table();
        assert!(s.contains("stream filter"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn fig2_produces_histogram() {
        let opts = RunOpts { accesses: 20_000, ..RunOpts::default() };
        let (sample, text) = fig2_slh(&opts).unwrap();
        assert!(sample.oracle.total_reads() > 0);
        assert!(text.contains("Figure 2"));
    }

    #[test]
    fn figure_text_matches_direct_drivers() {
        let opts = RunOpts { accesses: 20_000, ..RunOpts::default() };
        assert_eq!(figure_text("cost", &opts).unwrap(), hardware_cost_table());
        assert_eq!(figure_text("fig2", &opts).unwrap(), fig2_slh(&opts).unwrap().1);
        assert!(matches!(figure_text("fig99", &opts), Err(SimError::UnknownFigure { .. })));
    }
}

//! Parallel experiment runner: fan a batch of (workload, configuration)
//! simulations across OS threads.
//!
//! Every figure in the paper is built from dozens of independent
//! simulations (benchmark x configuration), each fully determined by its
//! [`SystemConfig`], [`WorkloadProfile`], and the shared [`RunOpts`] seed.
//! A [`Sweep`] collects those jobs and [`Sweep::run`] executes them on a
//! scoped thread pool (`std::thread::scope` — no external dependencies),
//! returning results **in push order** regardless of thread count or OS
//! scheduling. Because each job owns its [`System`](crate::System) and
//! trace generator, parallel execution is bit-identical to
//! [`Sweep::run_serial`]; `tests/sweep.rs` asserts this.
//!
//! Worker count defaults to [`std::thread::available_parallelism`]; the
//! `ASD_SWEEP_THREADS` environment variable or [`Sweep::with_threads`]
//! overrides it (set it to `1` to force serial execution everywhere).

use crate::config::{RunOpts, SystemConfig};
use crate::error::SimError;
use crate::system::{RunResult, System};
use asd_trace::WorkloadProfile;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One queued simulation: a workload under a configuration, with a label
/// for reporting.
struct Job {
    profile: WorkloadProfile,
    cfg: SystemConfig,
    label: String,
}

/// A batch of independent simulation runs sharing one [`RunOpts`].
///
/// ```no_run
/// use asd_sim::sweep::Sweep;
/// use asd_sim::{PrefetchKind, RunOpts, SystemConfig};
/// use asd_trace::suites;
///
/// let opts = RunOpts::quick();
/// let mut sweep = Sweep::new(&opts);
/// for profile in suites::spec2006fp() {
///     for kind in PrefetchKind::ALL {
///         sweep.push(&profile, SystemConfig::for_kind(kind, 1), kind.name());
///     }
/// }
/// let results = sweep.run()?; // parallel; same order as the pushes
/// # Ok::<(), asd_sim::SimError>(())
/// ```
pub struct Sweep {
    opts: RunOpts,
    jobs: Vec<Job>,
    threads: Option<usize>,
}

impl Sweep {
    /// An empty sweep; all jobs run under `opts` (seed, access count,
    /// SMT).
    pub fn new(opts: &RunOpts) -> Self {
        Sweep { opts: opts.clone(), jobs: Vec::new(), threads: None }
    }

    /// Override the worker-thread count (also settable via the
    /// `ASD_SWEEP_THREADS` environment variable; `1` forces serial).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Queue one run of `profile` under `cfg`, labelled `label` in the
    /// returned [`RunResult::config`].
    pub fn push(&mut self, profile: &WorkloadProfile, cfg: SystemConfig, label: &str) {
        self.jobs.push(Job { profile: profile.clone(), cfg, label: label.to_string() });
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the sweep has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    fn run_job(&self, job: &Job) -> Result<RunResult, SimError> {
        // Identical (profile, opts, config) points across figures share one
        // simulation through the process-wide run cache; see crate::cache
        // for the key derivation and the exclusions.
        let key = crate::cache::key(&job.cfg, &job.profile, &self.opts);
        if let Some(k) = &key {
            if let Some(hit) = crate::cache::get(k, &job.label) {
                return Ok(hit);
            }
        }
        let result =
            System::new(job.cfg.clone(), &job.profile, &self.opts)?.with_label(&job.label).run();
        if let Some(k) = key {
            crate::cache::put(k, &result);
        }
        Ok(result)
    }

    /// Run every job on the calling thread, in push order.
    ///
    /// # Errors
    ///
    /// The first failing job's [`SimError`] (file-backed trace sources
    /// can fail to resolve; purely generated jobs cannot).
    pub fn run_serial(&self) -> Result<Vec<RunResult>, SimError> {
        self.jobs.iter().map(|j| self.run_job(j)).collect()
    }

    /// Run every job across a scoped thread pool and return the results in
    /// push order. Deterministic: identical to [`Sweep::run_serial`] for
    /// the same jobs and options.
    ///
    /// # Errors
    ///
    /// The error of the earliest (push-order) failing job — also
    /// deterministic, regardless of which worker hit an error first.
    pub fn run(&self) -> Result<Vec<RunResult>, SimError> {
        let workers = self.threads.unwrap_or_else(worker_count).min(self.jobs.len());
        if workers <= 1 {
            return self.run_serial();
        }
        // Chunked work-stealing: idle workers claim contiguous runs of
        // jobs via CAS on a shared cursor. Chunks shrink as the queue
        // drains — roughly 1/(4·workers) of the remaining work, clamped
        // to [1, 8] — so early claims amortize the cursor contention
        // while the tail degrades to single-job granularity and a
        // long-pole config (fig11's grid) never strands the finish line
        // behind one worker. Each worker writes every result into the
        // slot indexed by the job's push position, so claim order and
        // completion order never show in the output.
        let total = self.jobs.len();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<RunResult, SimError>>>> =
            self.jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let mut cur = next.load(Ordering::Relaxed);
                    let (start, end) = loop {
                        if cur >= total {
                            return;
                        }
                        let chunk = ((total - cur) / (workers * 4)).clamp(1, 8);
                        match next.compare_exchange_weak(
                            cur,
                            cur + chunk,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break (cur, cur + chunk),
                            Err(seen) => cur = seen,
                        }
                    };
                    for (slot, job) in slots[start..end].iter().zip(&self.jobs[start..end]) {
                        // asd-lint: allow(D005) -- a poisoned slot means a sibling worker already panicked; propagating is correct
                        *slot.lock().expect("result slot poisoned") = Some(self.run_job(job));
                    }
                });
            }
        });
        slots
            .into_iter()
            // asd-lint: allow(D005) -- the scope joined all workers: no poison, and the claimed chunks covered every slot
            .map(|slot| slot.into_inner().expect("result slot poisoned").expect("every job ran"))
            .collect()
    }
}

/// Default worker count: `ASD_SWEEP_THREADS` if set, else the machine's
/// available parallelism.
fn worker_count() -> usize {
    if let Ok(v) = std::env::var("ASD_SWEEP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchKind;
    use asd_trace::suites;

    fn small_sweep() -> Sweep {
        let opts = RunOpts::default().with_accesses(3_000);
        let mut sweep = Sweep::new(&opts);
        for bench in ["milc", "tonto", "lbm"] {
            let profile = suites::by_name(bench).unwrap();
            for kind in [PrefetchKind::Np, PrefetchKind::Pms] {
                sweep.push(&profile, SystemConfig::for_kind(kind, 1), kind.name());
            }
        }
        sweep
    }

    #[test]
    fn results_come_back_in_push_order() {
        let sweep = small_sweep().with_threads(4);
        let results = sweep.run().unwrap();
        assert_eq!(results.len(), 6);
        let labels: Vec<(&str, &str)> =
            results.iter().map(|r| (r.benchmark.as_str(), r.config.as_str())).collect();
        assert_eq!(
            labels,
            [
                ("milc", "NP"),
                ("milc", "PMS"),
                ("tonto", "NP"),
                ("tonto", "PMS"),
                ("lbm", "NP"),
                ("lbm", "PMS"),
            ]
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let sweep = small_sweep().with_threads(3);
        let par = sweep.run().unwrap();
        let ser = sweep.run_serial().unwrap();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.cycles, s.cycles, "{}/{}", p.benchmark, p.config);
            assert_eq!(p.mc, s.mc, "{}/{}", p.benchmark, p.config);
            assert_eq!(p.dram, s.dram, "{}/{}", p.benchmark, p.config);
        }
    }

    #[test]
    fn empty_sweep_runs() {
        let sweep = Sweep::new(&RunOpts::quick());
        assert!(sweep.is_empty());
        assert!(sweep.run().unwrap().is_empty());
    }

    #[test]
    fn single_thread_forces_serial_path() {
        let sweep = small_sweep().with_threads(1);
        let a = sweep.run().unwrap();
        let b = sweep.run_serial().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cycles, y.cycles);
        }
    }
}

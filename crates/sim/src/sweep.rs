//! Parallel experiment runner: fan a batch of (workload, configuration)
//! simulations across OS threads.
//!
//! Every figure in the paper is built from dozens of independent
//! simulations (benchmark x configuration), each fully determined by its
//! [`SystemConfig`], [`WorkloadProfile`], and the shared [`RunOpts`] seed.
//! A [`Sweep`] collects those jobs and [`Sweep::run`] executes them on a
//! scoped thread pool (`std::thread::scope` — no external dependencies),
//! returning results **in push order** regardless of thread count or OS
//! scheduling. Because each job owns its [`System`](crate::System) and
//! trace generator, parallel execution is bit-identical to
//! [`Sweep::run_serial`]; `tests/sweep.rs` asserts this.
//!
//! Worker count defaults to [`std::thread::available_parallelism`]; the
//! `ASD_SWEEP_THREADS` environment variable or [`Sweep::with_threads`]
//! overrides it (set it to `1` to force serial execution everywhere).
//!
//! The claiming/assembly machinery is factored out of [`Sweep::run`] as
//! [`Chunker`] (a shrinking-chunk work cursor) and [`Scheduler`] (cursor
//! plus push-order result slots) so that executors which do *not* own a
//! thread pool — notably the `asd-serve` daemon's shard dispatcher,
//! which hands chunks to subprocess workers over pipes — reuse the exact
//! same claiming discipline and merge discipline as the in-process pool.

use crate::config::{RunOpts, SystemConfig};
use crate::error::SimError;
use crate::system::RunResult;
use asd_trace::WorkloadProfile;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A shrinking-chunk work cursor over `total` items.
///
/// Idle executors claim contiguous ranges via CAS on a shared cursor.
/// Chunks shrink as the queue drains — roughly 1/(4·claimants) of the
/// remaining work, clamped to `[1, 8]` — so early claims amortize the
/// cursor contention while the tail degrades to single-item granularity
/// and a long-pole item (fig11's grid) never strands the finish line
/// behind one executor. Shared by the in-process thread pool and the
/// `asd-serve` cross-process shard dispatcher.
pub struct Chunker {
    next: AtomicUsize,
    total: usize,
    claimants: usize,
}

impl Chunker {
    /// A cursor over `total` items split between `claimants` executors.
    pub fn new(total: usize, claimants: usize) -> Self {
        Chunker { next: AtomicUsize::new(0), total, claimants: claimants.max(1) }
    }

    /// Claim the next chunk as a half-open `(start, end)` range, or
    /// `None` when the queue is drained.
    pub fn claim(&self) -> Option<(usize, usize)> {
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            if cur >= self.total {
                return None;
            }
            let chunk = ((self.total - cur) / (self.claimants * 4)).clamp(1, 8);
            match self.next.compare_exchange_weak(
                cur,
                cur + chunk,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some((cur, cur + chunk)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of items the cursor ranges over.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// A [`Chunker`] plus one result slot per item: claim ranges, deposit
/// each result under its item index, and read the batch back **in item
/// order** — claim order and completion order never show in the output.
///
/// This is the job-queue layer both [`Sweep::run`] and the `asd-serve`
/// shard merger sit on.
pub struct Scheduler<T> {
    chunker: Chunker,
    slots: Vec<Mutex<Option<T>>>,
    done: AtomicUsize,
}

impl<T> Scheduler<T> {
    /// Slots and a claim cursor for `total` items split between
    /// `claimants` executors.
    pub fn new(total: usize, claimants: usize) -> Self {
        Scheduler {
            chunker: Chunker::new(total, claimants),
            slots: (0..total).map(|_| Mutex::new(None)).collect(),
            done: AtomicUsize::new(0),
        }
    }

    /// Claim the next chunk of work (see [`Chunker::claim`]).
    pub fn claim(&self) -> Option<(usize, usize)> {
        self.chunker.claim()
    }

    /// Deposit the result for item `index`. Out-of-range deposits are
    /// ignored; depositing the same index twice keeps the latest value
    /// (and inflates [`Scheduler::done`] — claim ranges disjointly).
    pub fn deposit(&self, index: usize, value: T) {
        if let Some(slot) = self.slots.get(index) {
            // asd-lint: allow(D005) -- a poisoned slot means a sibling worker already panicked; propagating is correct
            *slot.lock().expect("result slot poisoned") = Some(value);
            self.done.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of deposits so far — the progress numerator.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Total number of items — the progress denominator.
    pub fn total(&self) -> usize {
        self.chunker.total()
    }

    /// Consume the scheduler and return the results in item order, or
    /// `None` if any slot is unfilled or poisoned (a worker died before
    /// depositing — the caller recomputes or reports, never panics).
    pub fn into_results(self) -> Option<Vec<T>> {
        self.slots.into_iter().map(|slot| slot.into_inner().ok().flatten()).collect()
    }
}

/// One queued simulation: a workload under a configuration, with a label
/// for reporting.
struct Job {
    profile: WorkloadProfile,
    cfg: SystemConfig,
    label: String,
}

/// A batch of independent simulation runs sharing one [`RunOpts`].
///
/// ```no_run
/// use asd_sim::sweep::Sweep;
/// use asd_sim::{PrefetchKind, RunOpts, SystemConfig};
/// use asd_trace::suites;
///
/// let opts = RunOpts::quick();
/// let mut sweep = Sweep::new(&opts);
/// for profile in suites::spec2006fp() {
///     for kind in PrefetchKind::ALL {
///         sweep.push(&profile, SystemConfig::for_kind(kind, 1), kind.name());
///     }
/// }
/// let results = sweep.run()?; // parallel; same order as the pushes
/// # Ok::<(), asd_sim::SimError>(())
/// ```
pub struct Sweep {
    opts: RunOpts,
    jobs: Vec<Job>,
    threads: Option<usize>,
}

impl Sweep {
    /// An empty sweep; all jobs run under `opts` (seed, access count,
    /// SMT).
    pub fn new(opts: &RunOpts) -> Self {
        Sweep { opts: opts.clone(), jobs: Vec::new(), threads: None }
    }

    /// Override the worker-thread count (also settable via the
    /// `ASD_SWEEP_THREADS` environment variable; `1` forces serial).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Queue one run of `profile` under `cfg`, labelled `label` in the
    /// returned [`RunResult::config`].
    pub fn push(&mut self, profile: &WorkloadProfile, cfg: SystemConfig, label: &str) {
        self.jobs.push(Job { profile: profile.clone(), cfg, label: label.to_string() });
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the sweep has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The (benchmark, label) pair of the job at `index`, if queued.
    /// Progress streams and shard dispatch use this to name work without
    /// running it.
    pub fn job_name(&self, index: usize) -> Option<(&str, &str)> {
        self.jobs.get(index).map(|j| (j.profile.name.as_str(), j.label.as_str()))
    }

    fn run_job(&self, job: &Job) -> Result<RunResult, SimError> {
        // Identical (profile, opts, config) points across figures share
        // one simulation through the process-wide run cache and its
        // single-flight registry; run_custom is the shared entry point.
        crate::experiment::run_custom(&job.profile, job.cfg.clone(), &job.label, &self.opts)
    }

    /// Run every job on the calling thread, in push order.
    ///
    /// # Errors
    ///
    /// The first failing job's [`SimError`] (file-backed trace sources
    /// can fail to resolve; purely generated jobs cannot).
    pub fn run_serial(&self) -> Result<Vec<RunResult>, SimError> {
        self.jobs.iter().map(|j| self.run_job(j)).collect()
    }

    /// Run the contiguous job range `[start, end)` on the calling
    /// thread, one `Result` per job in push order. Out-of-range indices
    /// are clamped to the queue. This is the shard-worker entry point:
    /// `asd-serve` hands claimed [`Chunker`] ranges to subprocess
    /// workers, which run them here and pipe the results back.
    pub fn run_range(&self, start: usize, end: usize) -> Vec<Result<RunResult, SimError>> {
        let end = end.min(self.jobs.len());
        let start = start.min(end);
        self.jobs[start..end].iter().map(|j| self.run_job(j)).collect()
    }

    /// Run every job across a scoped thread pool and return the results in
    /// push order. Deterministic: identical to [`Sweep::run_serial`] for
    /// the same jobs and options.
    ///
    /// # Errors
    ///
    /// The error of the earliest (push-order) failing job — also
    /// deterministic, regardless of which worker hit an error first.
    pub fn run(&self) -> Result<Vec<RunResult>, SimError> {
        self.run_observed(&|_, _| {})
    }

    /// [`Sweep::run`] with a progress observer: `progress(done, total)`
    /// fires after every completed job, from whichever worker finished
    /// it. Observers must be cheap and thread-safe; the daemon uses this
    /// to stream per-job progress events.
    ///
    /// # Errors
    ///
    /// As [`Sweep::run`]: the earliest (push-order) failing job.
    pub fn run_observed(
        &self,
        progress: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<Vec<RunResult>, SimError> {
        let total = self.jobs.len();
        let workers = self.threads.unwrap_or_else(worker_count).min(total);
        if workers <= 1 {
            let mut out = Vec::with_capacity(total);
            for job in &self.jobs {
                out.push(self.run_job(job)?);
                progress(out.len(), total);
            }
            return Ok(out);
        }
        // Workers claim shrinking chunks from the shared scheduler and
        // deposit each result under the job's push index; see the
        // Chunker/Scheduler docs for the claiming discipline.
        let sched: Scheduler<Result<RunResult, SimError>> = Scheduler::new(total, workers);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some((start, end)) = sched.claim() {
                        for (offset, job) in self.jobs[start..end].iter().enumerate() {
                            sched.deposit(start + offset, self.run_job(job));
                            progress(sched.done(), total);
                        }
                    }
                });
            }
        });
        let results = sched
            .into_results()
            // asd-lint: allow(D005) -- the scope joined all workers: no poison, and the claimed chunks covered every slot
            .expect("every job ran");
        let mut out = Vec::with_capacity(total);
        for r in results {
            out.push(r?);
        }
        Ok(out)
    }
}

/// Default worker count: `ASD_SWEEP_THREADS` if set, else the machine's
/// available parallelism.
pub(crate) fn worker_count() -> usize {
    if let Ok(v) = std::env::var("ASD_SWEEP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchKind;
    use asd_trace::suites;

    fn small_sweep() -> Sweep {
        let opts = RunOpts::default().with_accesses(3_000);
        let mut sweep = Sweep::new(&opts);
        for bench in ["milc", "tonto", "lbm"] {
            let profile = suites::by_name(bench).unwrap();
            for kind in [PrefetchKind::Np, PrefetchKind::Pms] {
                sweep.push(&profile, SystemConfig::for_kind(kind, 1), kind.name());
            }
        }
        sweep
    }

    #[test]
    fn results_come_back_in_push_order() {
        let sweep = small_sweep().with_threads(4);
        let results = sweep.run().unwrap();
        assert_eq!(results.len(), 6);
        let labels: Vec<(&str, &str)> =
            results.iter().map(|r| (r.benchmark.as_str(), r.config.as_str())).collect();
        assert_eq!(
            labels,
            [
                ("milc", "NP"),
                ("milc", "PMS"),
                ("tonto", "NP"),
                ("tonto", "PMS"),
                ("lbm", "NP"),
                ("lbm", "PMS"),
            ]
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let sweep = small_sweep().with_threads(3);
        let par = sweep.run().unwrap();
        let ser = sweep.run_serial().unwrap();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.cycles, s.cycles, "{}/{}", p.benchmark, p.config);
            assert_eq!(p.mc, s.mc, "{}/{}", p.benchmark, p.config);
            assert_eq!(p.dram, s.dram, "{}/{}", p.benchmark, p.config);
        }
    }

    #[test]
    fn empty_sweep_runs() {
        let sweep = Sweep::new(&RunOpts::quick());
        assert!(sweep.is_empty());
        assert!(sweep.run().unwrap().is_empty());
    }

    #[test]
    fn chunker_claims_cover_everything_disjointly() {
        let chunker = Chunker::new(103, 4);
        let mut seen = [false; 103];
        while let Some((start, end)) = chunker.claim() {
            assert!(start < end && end <= 103);
            for flag in &mut seen[start..end] {
                assert!(!*flag, "range claimed twice");
                *flag = true;
            }
        }
        assert!(seen.iter().all(|&f| f), "every index claimed");
        assert!(chunker.claim().is_none(), "drained cursor stays drained");
    }

    #[test]
    fn scheduler_reports_missing_slots() {
        let sched: Scheduler<u32> = Scheduler::new(3, 1);
        sched.deposit(0, 10);
        sched.deposit(2, 30);
        assert_eq!(sched.done(), 2);
        assert_eq!(sched.into_results(), None);
        let sched: Scheduler<u32> = Scheduler::new(2, 1);
        sched.deposit(1, 2);
        sched.deposit(0, 1);
        assert_eq!(sched.into_results(), Some(vec![1, 2]));
    }

    #[test]
    fn run_range_matches_serial_slice() {
        let sweep = small_sweep();
        let all = sweep.run_serial().unwrap();
        let range: Vec<_> = sweep.run_range(2, 5).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(range.len(), 3);
        for (r, s) in range.iter().zip(&all[2..5]) {
            assert_eq!(r.cycles, s.cycles);
            assert_eq!(r.benchmark, s.benchmark);
        }
        assert!(sweep.run_range(5, 99).len() == 1, "end clamps to queue");
        assert!(sweep.run_range(9, 12).is_empty(), "start clamps too");
    }

    #[test]
    fn run_observed_fires_once_per_job() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sweep = small_sweep().with_threads(3);
        let calls = AtomicUsize::new(0);
        let maxed = AtomicUsize::new(0);
        let results = sweep
            .run_observed(&|done, total| {
                assert_eq!(total, 6);
                calls.fetch_add(1, Ordering::Relaxed);
                maxed.fetch_max(done, Ordering::Relaxed);
            })
            .unwrap();
        assert_eq!(results.len(), 6);
        assert_eq!(calls.load(Ordering::Relaxed), 6);
        assert_eq!(maxed.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn job_name_reports_queued_jobs() {
        let sweep = small_sweep();
        assert_eq!(sweep.job_name(0), Some(("milc", "NP")));
        assert_eq!(sweep.job_name(5), Some(("lbm", "PMS")));
        assert_eq!(sweep.job_name(6), None);
    }

    #[test]
    fn single_thread_forces_serial_path() {
        let sweep = small_sweep().with_threads(1);
        let a = sweep.run().unwrap();
        let b = sweep.run_serial().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cycles, y.cycles);
        }
    }
}

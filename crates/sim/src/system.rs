//! The cycle-level system loop tying cores, controller, and DRAM together.
//!
//! The loop is event-driven: every component exposes the
//! [`asd_core::Clocked`] interface, and [`System::run`] folds the
//! [`NextEvent`]s they report into the next cycle worth simulating, so
//! idle stretches — long compute gaps, DRAM bursts in flight — are skipped
//! in one jump. [`System::run_cycle_accurate`] keeps the old
//! cycle-by-cycle pacing as a cross-check; both produce identical results.

use crate::config::{RunOpts, SystemConfig};
use crate::error::SimError;
use crate::source::{ResolvedTrace, TraceSource, TraceStream};
use asd_core::{CalendarQueue, Clocked, NextEvent};
use asd_cpu::{Core, MemoryPort, PortResponse};
use asd_dram::{Dram, DramStats, PowerReport};
use asd_mc::{
    AsdEngine, EngineKind, McStats, MemoryController, NextLineEngine, NoPrefetch, P5StyleEngine,
    PrefetchEngine, ReadCompletion, ReadResponse,
};
use asd_telemetry::{names, Registry, Snapshot, TelemetryConfig, Unit};
use asd_trace::{MemAccess, TraceGenerator, WorkloadProfile};

type Trace = TraceStream;

/// Everything measured in one simulation run — the raw material for every
/// figure in the paper.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Configuration label (NP/PS/MS/PMS or a custom label).
    pub config: String,
    /// Execution time in CPU cycles.
    pub cycles: u64,
    /// Core-side counters.
    pub core: asd_cpu::CoreStats,
    /// Memory-controller counters.
    pub mc: McStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// DRAM energy/power report.
    pub power: PowerReport,
    /// ASD detector counters aggregated across all per-thread detectors
    /// (when the memory-side engine is ASD).
    pub asd: Option<asd_core::AsdStats>,
    /// Merged telemetry snapshot: every counter above mirrored under its
    /// canonical name, plus the live-updated instruments (queue-occupancy
    /// histograms, per-epoch series, the event ring). `None` when
    /// [`SystemConfig::telemetry`](crate::SystemConfig) is fully off.
    pub telemetry: Option<Snapshot>,
}

impl RunResult {
    /// The paper's "performance gain of A over B" in percent:
    /// `(t_B / t_A - 1) * 100` with `self` as A (faster = positive).
    pub fn gain_over(&self, baseline: &RunResult) -> f64 {
        (baseline.cycles as f64 / self.cycles as f64 - 1.0) * 100.0
    }

    /// Execution time normalized to a baseline (Figure 11's y-axis).
    pub fn normalized_time(&self, baseline: &RunResult) -> f64 {
        self.cycles as f64 / baseline.cycles as f64
    }

    /// DRAM power increase of `self` relative to `baseline`, percent
    /// (Figures 8–10).
    pub fn power_increase_over(&self, baseline: &RunResult) -> f64 {
        (self.power.average_power_w / baseline.power.average_power_w - 1.0) * 100.0
    }

    /// DRAM energy reduction of `self` relative to `baseline`, percent
    /// (positive = `self` uses less energy).
    pub fn energy_reduction_over(&self, baseline: &RunResult) -> f64 {
        (1.0 - self.power.energy_j / baseline.power.energy_j) * 100.0
    }
}

struct McPort<'a, E: PrefetchEngine> {
    mc: &'a mut MemoryController<E>,
    /// Whether the core pushed anything into the controller this step —
    /// the event loop's signal that the controller saw new input and its
    /// cached next-event hint is stale.
    dirty: bool,
}

impl<E: PrefetchEngine> MemoryPort for McPort<'_, E> {
    fn read(&mut self, line: u64, thread: u8, now: u64) -> PortResponse {
        self.dirty = true;
        match self.mc.enqueue_read(line, thread, now) {
            ReadResponse::Done { at } => PortResponse::Done { at },
            ReadResponse::Queued => PortResponse::Queued,
            ReadResponse::Rejected => PortResponse::Rejected,
        }
    }

    fn write(&mut self, line: u64, now: u64) -> bool {
        self.dirty = true;
        self.mc.enqueue_write(line, now)
    }
}

/// Core + controller + DRAM instantiated for one concrete engine type:
/// the whole per-cycle path — `Core::step`, port enqueues, the engine's
/// `on_read`, the controller's `advance` — monomorphizes and inlines with
/// no virtual call anywhere.
struct Engined<E: PrefetchEngine> {
    core: Core<Trace>,
    mc: MemoryController<E>,
    /// Read completions in flight, bucketed by delivery cycle. Delivery
    /// order matches the `BinaryHeap<Reverse<(at, line, thread)>>` this
    /// replaces exactly.
    completions: CalendarQueue,
    /// Scratch for the completions due at the current cycle. Capacity is
    /// reused across iterations.
    due_buf: Vec<(u64, u64, u8)>,
    /// Scratch the controller drains `ReadCompletion`s into each step.
    /// Allocated once (controller queues bound its size) and reused.
    completion_buf: Vec<ReadCompletion>,
    now: u64,
}

/// The engine-selected machine. One variant per paper engine — picked
/// once at build time from [`asd_mc::EngineKind`] — plus the boxed
/// fallback for `EngineKind::Custom`, whose factories produce trait
/// objects by design.
enum Machine {
    None(Engined<NoPrefetch>),
    Asd(Engined<AsdEngine>),
    NextLine(Engined<NextLineEngine>),
    P5Style(Engined<P5StyleEngine>),
    Custom(Engined<Box<dyn PrefetchEngine>>),
}

/// One simulated machine: cores + memory controller + DRAM.
pub struct System {
    machine: Machine,
    benchmark: String,
    config_label: String,
    tel_cfg: TelemetryConfig,
}

impl System {
    /// Build a system running `profile` under `cfg`. With `opts.smt`, two
    /// thread contexts run the same profile with decorrelated seeds
    /// ([`asd_trace::thread_seed`]). When `cfg.trace` is set, the
    /// [`TraceSource`] overrides `profile` as the origin of the access
    /// stream (replay from file, capture, or generate by name).
    ///
    /// # Errors
    ///
    /// [`SimError::TraceIo`] or [`SimError::UnknownProfile`] from
    /// resolving `cfg.trace`; the default in-memory path is infallible.
    pub fn new(
        cfg: SystemConfig,
        profile: &WorkloadProfile,
        opts: &RunOpts,
    ) -> Result<Self, SimError> {
        let resolved = match &cfg.trace {
            Some(source) => source.resolve(opts)?,
            None => {
                let threads = if opts.smt { 2 } else { 1 };
                ResolvedTrace::generated(profile, opts.seed, threads, opts.accesses)
            }
        };
        Ok(Self::build(cfg, resolved))
    }

    /// Build a system directly from a [`TraceSource`], resolving the
    /// benchmark name from the source (the profile name for
    /// generate/capture, the ASDT header for replay).
    ///
    /// # Errors
    ///
    /// As [`System::new`] with `cfg.trace` set.
    pub fn from_source(
        cfg: SystemConfig,
        source: &TraceSource,
        opts: &RunOpts,
    ) -> Result<Self, SimError> {
        let resolved = source.resolve(opts)?;
        Ok(Self::build(cfg, resolved))
    }

    fn build(cfg: SystemConfig, resolved: ResolvedTrace) -> Self {
        let ResolvedTrace { benchmark, streams } = resolved;
        let mut mc_cfg = cfg.mc.clone();
        mc_cfg.threads = streams.len();
        // A completion lands at most one worst-case DRAM access (precharge
        // + activate + CAS + burst) plus the controller's fixed latencies
        // after the cycle it was scheduled, so the wheel sized from the
        // configuration never has to grow mid-run.
        let d = &cfg.dram;
        let horizon = d.ras_cpu()
            + d.rp_cpu()
            + d.rcd_cpu()
            + d.cl_cpu()
            + d.burst_cpu()
            + cfg.mc.transit_latency
            + cfg.mc.pb_hit_latency
            + 64;
        let threads = mc_cfg.threads;
        let dram = Dram::new(cfg.dram);
        // Select the monomorphized instantiation once, here; every cycle
        // after this dispatches statically. The engines are constructed
        // exactly as `asd_mc::build_engine` would.
        let machine = match mc_cfg.engine.clone() {
            EngineKind::None => {
                Machine::None(Engined::new(&cfg, mc_cfg, dram, streams, horizon, NoPrefetch))
            }
            EngineKind::Asd(acfg) => Machine::Asd(Engined::new(
                &cfg,
                mc_cfg,
                dram,
                streams,
                horizon,
                AsdEngine::new(&acfg, threads),
            )),
            EngineKind::NextLine => Machine::NextLine(Engined::new(
                &cfg,
                mc_cfg,
                dram,
                streams,
                horizon,
                NextLineEngine,
            )),
            EngineKind::P5Style => Machine::P5Style(Engined::new(
                &cfg,
                mc_cfg,
                dram,
                streams,
                horizon,
                P5StyleEngine::new(),
            )),
            EngineKind::Custom(factory) => Machine::Custom(Engined::new(
                &cfg,
                mc_cfg,
                dram,
                streams,
                horizon,
                factory.build(threads),
            )),
        };
        System { machine, benchmark, config_label: String::new(), tel_cfg: cfg.telemetry }
    }

    /// Attach a configuration label for reporting.
    pub fn with_label(mut self, label: &str) -> Self {
        self.config_label = label.to_string();
        self
    }

    /// Run to completion and return the measurements.
    ///
    /// Event-driven: each iteration simulates one cycle that at least one
    /// component declared interesting, then jumps straight to the next
    /// such cycle.
    pub fn run(self) -> RunResult {
        self.run_inner(false)
    }

    /// Reference pacing: one iteration per cycle whenever the memory
    /// controller is busy (the pre-event-loop behaviour). Slower but
    /// trivially correct — tests assert [`System::run`] matches it
    /// exactly.
    pub fn run_cycle_accurate(self) -> RunResult {
        self.run_inner(true)
    }

    fn run_inner(self, cycle_accurate: bool) -> RunResult {
        let System { machine, benchmark, config_label, tel_cfg } = self;
        match machine {
            Machine::None(m) => m.run(cycle_accurate, benchmark, config_label, tel_cfg),
            Machine::Asd(m) => m.run(cycle_accurate, benchmark, config_label, tel_cfg),
            Machine::NextLine(m) => m.run(cycle_accurate, benchmark, config_label, tel_cfg),
            Machine::P5Style(m) => m.run(cycle_accurate, benchmark, config_label, tel_cfg),
            Machine::Custom(m) => m.run(cycle_accurate, benchmark, config_label, tel_cfg),
        }
    }
}

impl<E: PrefetchEngine> Engined<E> {
    fn new(
        cfg: &SystemConfig,
        mc_cfg: asd_mc::McConfig,
        dram: Dram,
        streams: Vec<Trace>,
        horizon: u64,
        engine: E,
    ) -> Self {
        let mut mc = MemoryController::with_engine(mc_cfg, dram, engine);
        if cfg.telemetry.any() {
            mc.attach_telemetry(&cfg.telemetry);
        }
        Engined {
            core: Core::new(cfg.core.clone(), streams),
            mc,
            completions: CalendarQueue::with_horizon(horizon),
            due_buf: Vec::with_capacity(8),
            completion_buf: Vec::with_capacity(8),
            now: 0,
        }
    }

    // asd-lint: hot
    fn run(
        mut self,
        cycle_accurate: bool,
        benchmark: String,
        config_label: String,
        tel_cfg: TelemetryConfig,
    ) -> RunResult {
        // Cached next-event hints. `Clocked` promises no state change
        // before the hinted cycle absent new inputs, so a component whose
        // hint is in the future and whose inputs haven't changed can skip
        // its step entirely — the step would be a no-op (the
        // `event_driven_matches_cycle_accurate` test pins this down). The
        // core's only input is `on_fill`; the controller's only inputs are
        // the port enqueues the core makes while stepping.
        let mut core_next = NextEvent::At(0);
        let mut mc_next = NextEvent::At(0);
        let mut guard: u64 = 0;
        loop {
            // Deliver due read completions to the core, in the same
            // ascending (at, line, thread) order the old heap popped.
            let mut filled = false;
            if self.completions.peek().is_some_and(|at| at <= self.now) {
                self.completions.drain_due(self.now, &mut self.due_buf);
                for &(_at, line, _thread) in &self.due_buf {
                    self.core.on_fill(line, self.now);
                }
                self.due_buf.clear();
                filled = true;
            }

            // Core issues work (may enqueue reads/writes into the MC).
            let mut enqueued = false;
            if cycle_accurate || filled || core_next.at().is_some_and(|t| t <= self.now) {
                let mut port = McPort { mc: &mut self.mc, dirty: false };
                core_next = self.core.clocked(&mut port).step(self.now);
                enqueued = port.dirty;
            }

            // Controller performs this cycle's transitions.
            if cycle_accurate || enqueued || mc_next.at().is_some_and(|t| t <= self.now) {
                mc_next = Clocked::step(&mut self.mc, self.now);
                self.mc.drain_completions(&mut self.completion_buf);
                for c in self.completion_buf.drain(..) {
                    self.completions.push(c.at, c.line, c.thread);
                }
            }

            if self.core.finished() && !self.mc.busy() && self.completions.is_empty() {
                break;
            }

            // Advance time to the earliest cycle any component cares about.
            let mut next = core_next.min(mc_next);
            if let Some(at) = self.completions.peek() {
                next = next.min(NextEvent::At(at));
            }
            self.now = if cycle_accurate && self.mc.busy() {
                self.now + 1
            } else {
                match next.at() {
                    Some(t) => t.max(self.now + 1),
                    // Nothing scheduled anywhere: only in-flight MC work
                    // could wake us, but the MC is idle — this is a wedge.
                    // asd-lint: allow(D005) -- a wedged simulation is a simulator bug; aborting with state beats a wrong result
                    None => panic!(
                        "deadlock at cycle {}: core finished={} completions={}",
                        self.now,
                        self.core.finished(),
                        self.completions.len()
                    ),
                }
            };

            guard += 1;
            assert!(guard < 2_000_000_000, "runaway simulation");
        }
        let cycles = self.now;
        let asd = self.mc.engine().stats();
        let power = self.mc.dram_mut().power_report(cycles.max(1));
        let core = self.core.stats();
        let mc = self.mc.stats();
        let dram = self.mc.dram().stats();
        let telemetry = if tel_cfg.any() {
            let mut snap = mirror_stats(&tel_cfg, cycles, &core, &mc, &dram, &power, asd.as_ref());
            snap.merge(self.mc.telemetry_snapshot());
            snap.sort_events();
            Some(snap)
        } else {
            None
        };
        RunResult { benchmark, config: config_label, cycles, core, mc, dram, power, asd, telemetry }
    }
}

/// Mirror the authoritative end-of-run stats structs onto a top-level
/// registry section under the canonical [`names`] — the producer half of
/// the contract [`asd_telemetry::PrefetchMetrics::from_snapshot`] and the
/// exposition smoke checks consume.
#[allow(clippy::too_many_arguments)]
// asd-lint: cold -- exposition mirror: runs once at end of run, not per cycle
fn mirror_stats(
    cfg: &TelemetryConfig,
    cycles: u64,
    core: &asd_cpu::CoreStats,
    mc: &McStats,
    dram: &DramStats,
    power: &PowerReport,
    asd: Option<&asd_core::AsdStats>,
) -> Snapshot {
    let mut r = Registry::section("", cfg);
    r.fill_counter(names::SIM_CYCLES, Unit::Cycles, "total simulated cycles", cycles);

    r.fill_counter(names::CPU_ACCESSES, Unit::Accesses, "trace accesses executed", core.accesses);
    r.fill_counter(names::CPU_READS, Unit::Accesses, "loads executed", core.reads);
    r.fill_counter(names::CPU_WRITES, Unit::Accesses, "stores executed", core.writes);
    r.fill_counter(
        names::CPU_DEMAND_MEMORY_READS,
        Unit::Accesses,
        "demand reads that missed the whole hierarchy",
        core.demand_memory_reads,
    );
    r.fill_counter(
        names::CPU_PS_READS_SENT,
        Unit::Commands,
        "processor-side prefetch reads sent to memory",
        core.ps_reads_sent,
    );
    r.fill_counter(
        names::CPU_STALL_CYCLES,
        Unit::Cycles,
        "cycles threads spent stalled waiting on a fill",
        core.stall_cycles,
    );

    let cache = &core.cache;
    for (hits, misses, level) in [
        (names::CACHE_L1_HITS, names::CACHE_L1_MISSES, &cache.l1),
        (names::CACHE_L2_HITS, names::CACHE_L2_MISSES, &cache.l2),
        (names::CACHE_L3_HITS, names::CACHE_L3_MISSES, &cache.l3),
    ] {
        r.fill_counter(hits, Unit::Accesses, "lookups that hit", level.hits);
        r.fill_counter(misses, Unit::Accesses, "lookups that missed", level.misses);
    }
    r.fill_counter(
        names::CACHE_MEMORY_WRITEBACKS,
        Unit::Lines,
        "dirty lines written back to memory",
        cache.memory_writebacks,
    );

    for (name, help, v) in [
        (names::MC_READS, "read commands that entered the controller", mc.reads),
        (names::MC_WRITES, "write commands that entered the controller", mc.writes),
        (
            names::MC_PB_HITS_ON_ARRIVAL,
            "reads satisfied by the PB on arrival",
            mc.pb_hits_on_arrival,
        ),
        (names::MC_PB_HITS_AT_CAQ, "reads satisfied by the PB at the CAQ head", mc.pb_hits_at_caq),
        (
            names::MC_MERGED_WITH_PREFETCH,
            "reads merged with an in-flight prefetch",
            mc.merged_with_prefetch,
        ),
        (
            names::MC_PREFETCHES_ISSUED,
            "memory-side prefetches issued to DRAM",
            mc.prefetches_issued,
        ),
        (names::MC_LPQ_DROPPED, "prefetch candidates dropped for a full LPQ", mc.lpq_dropped),
        (
            names::MC_PREFETCH_REDUNDANT,
            "prefetch candidates skipped as redundant",
            mc.prefetch_redundant,
        ),
        (names::MC_LPQ_SQUASHED, "queued prefetches squashed by the demand read", mc.lpq_squashed),
        (names::MC_DELAYED_REGULAR, "regular commands delayed by a prefetch", mc.delayed_regular),
        (names::MC_READ_REJECTS, "reads rejected for a full reorder queue", mc.read_rejects),
        (names::MC_WRITE_REJECTS, "writes rejected for a full reorder queue", mc.write_rejects),
    ] {
        r.fill_counter(name, Unit::Commands, help, v);
    }
    r.fill_counter(names::MC_PB_INSERTS, Unit::Lines, "prefetch buffer inserts", mc.pb.inserts);
    r.fill_counter(
        names::MC_PB_READ_HITS,
        Unit::Lines,
        "prefetch buffer lines consumed by demand reads",
        mc.pb.read_hits,
    );
    r.fill_counter(
        names::MC_PB_WRITE_INVALIDATIONS,
        Unit::Lines,
        "prefetch buffer lines invalidated by writes",
        mc.pb.write_invalidations,
    );
    r.fill_counter(
        names::MC_PB_UNUSED_EVICTIONS,
        Unit::Lines,
        "prefetch buffer lines evicted unused",
        mc.pb.unused_evictions,
    );
    r.fill_counter(
        names::MC_SCHED_CONFLICTS,
        Unit::Events,
        "prefetch-induced conflicts seen by Adaptive Scheduling",
        mc.sched.conflicts,
    );
    r.fill_counter(
        names::MC_SCHED_TIGHTENED,
        Unit::Events,
        "policy steps toward conservative",
        mc.sched.tightened,
    );
    r.fill_counter(
        names::MC_SCHED_LOOSENED,
        Unit::Events,
        "policy steps toward aggressive",
        mc.sched.loosened,
    );

    r.fill_counter(names::DRAM_READS, Unit::Commands, "DRAM read bursts", dram.reads);
    r.fill_counter(names::DRAM_WRITES, Unit::Commands, "DRAM write bursts", dram.writes);
    r.fill_counter(names::DRAM_ACTIVATIONS, Unit::Events, "row activations", dram.activations);
    r.fill_counter(names::DRAM_ROW_HITS, Unit::Events, "open-row hits", dram.row_hits);
    for (name, help, v) in [
        (names::DRAM_POWER_ENERGY_J, "total DRAM energy over the run", power.energy_j),
        (names::DRAM_POWER_BACKGROUND_J, "background energy", power.background_j),
        (names::DRAM_POWER_ACTIVATE_J, "activate/precharge energy", power.activate_j),
        (names::DRAM_POWER_READ_J, "read-burst energy", power.read_j),
        (names::DRAM_POWER_WRITE_J, "write-burst energy", power.write_j),
    ] {
        r.fill_gauge(name, Unit::Joules, help, v);
    }
    r.fill_gauge(
        names::DRAM_POWER_ELAPSED_S,
        Unit::Seconds,
        "simulated seconds the energy was integrated over",
        power.elapsed_s,
    );
    r.fill_gauge(
        names::DRAM_POWER_AVERAGE_W,
        Unit::Watts,
        "average DRAM power over the run",
        power.average_power_w,
    );

    if let Some(a) = asd {
        r.fill_counter(names::ASD_READS, Unit::Accesses, "reads seen by the ASD engine", a.reads);
        r.fill_counter(
            names::ASD_PREFETCHES,
            Unit::Commands,
            "prefetch candidates the ASD engine generated",
            a.prefetches,
        );
        r.fill_counter(
            names::ASD_STREAMS_OBSERVED,
            Unit::Events,
            "streams reported to the histograms",
            a.streams_observed,
        );
        r.fill_counter(
            names::ASD_UNTRACKED_READS,
            Unit::Accesses,
            "reads not tracked by any filter slot",
            a.untracked_reads,
        );
        r.fill_counter(names::ASD_EPOCHS, Unit::Events, "completed epochs", a.epochs);
    }
    r.snapshot()
}

/// Build a plain access vector for ad-hoc experiments (re-exported
/// convenience used by examples).
pub fn collect_trace(profile: &WorkloadProfile, seed: u64, n: usize) -> Vec<MemAccess> {
    TraceGenerator::new(profile.clone(), seed).take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrefetchKind, SystemConfig};
    use asd_trace::suites;

    fn run(kind: PrefetchKind, bench: &str, accesses: u64) -> RunResult {
        let profile = suites::by_name(bench).expect("benchmark exists");
        let opts = RunOpts { accesses, ..RunOpts::default() };
        let cfg = SystemConfig::for_kind(kind, 1);
        System::new(cfg, &profile, &opts).expect("generated source").with_label(kind.name()).run()
    }

    #[test]
    fn np_run_completes_and_counts() {
        let r = run(PrefetchKind::Np, "milc", 5_000);
        assert_eq!(r.core.accesses, 5_000);
        assert!(r.cycles > 0);
        assert!(r.dram.reads > 0, "streaming workload must reach DRAM");
        assert_eq!(r.mc.prefetches_issued, 0);
        assert!(r.power.energy_j > 0.0);
    }

    #[test]
    fn pms_beats_np_on_streaming_workload() {
        let np = run(PrefetchKind::Np, "lbm", 12_000);
        let pms = run(PrefetchKind::Pms, "lbm", 12_000);
        assert!(pms.mc.prefetches_issued > 0, "ASD must fire on lbm");
        assert!(pms.gain_over(&np) > 5.0, "PMS gain over NP on lbm: {:.1}%", pms.gain_over(&np));
    }

    #[test]
    fn ms_beats_np_on_short_stream_workload() {
        let np = run(PrefetchKind::Np, "milc", 12_000);
        let ms = run(PrefetchKind::Ms, "milc", 12_000);
        assert!(ms.mc.prefetches_issued > 0);
        assert!(ms.gain_over(&np) > 0.0, "MS gain: {:.2}%", ms.gain_over(&np));
    }

    #[test]
    fn smt_doubles_accesses() {
        let profile = suites::by_name("milc").unwrap();
        let opts = RunOpts { accesses: 3_000, smt: true, ..RunOpts::default() };
        let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 2);
        let r = System::new(cfg, &profile, &opts)
            .expect("generated source")
            .with_label("PMS-SMT")
            .run();
        assert_eq!(r.core.accesses, 6_000);
    }

    #[test]
    fn event_driven_matches_cycle_accurate() {
        // The event loop must be a pure acceleration: identical results to
        // stepping the controller every cycle, across engines and
        // workloads.
        for (kind, bench) in [
            (PrefetchKind::Np, "milc"),
            (PrefetchKind::Ps, "tonto"),
            (PrefetchKind::Ms, "lbm"),
            (PrefetchKind::Pms, "milc"),
        ] {
            let profile = suites::by_name(bench).expect("benchmark exists");
            let opts = RunOpts { accesses: 6_000, ..RunOpts::default() };
            let cfg = SystemConfig::for_kind(kind, 1);
            let fast = System::new(cfg.clone(), &profile, &opts)
                .expect("generated source")
                .with_label(kind.name())
                .run();
            let slow = System::new(cfg, &profile, &opts)
                .expect("generated source")
                .with_label(kind.name())
                .run_cycle_accurate();
            assert_eq!(fast.cycles, slow.cycles, "{bench}/{}", kind.name());
            assert_eq!(fast.mc, slow.mc, "{bench}/{}", kind.name());
            assert_eq!(fast.dram, slow.dram, "{bench}/{}", kind.name());
            assert_eq!(fast.core, slow.core, "{bench}/{}", kind.name());
        }
    }

    #[test]
    fn deterministic_runs() {
        let a = run(PrefetchKind::Pms, "tonto", 4_000);
        let b = run(PrefetchKind::Pms, "tonto", 4_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mc.prefetches_issued, b.mc.prefetches_issued);
    }
}

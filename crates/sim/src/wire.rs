//! Compact binary codec for [`RunResult`]: the payload format of the
//! persistent disk run-cache tier ([`crate::cache`]) and of the
//! `asd-serve` shard-worker pipe protocol.
//!
//! Counters ride as LEB128 varints ([`asd_traceio::format`]'s codec —
//! small results stay small), floats as their exact IEEE-754 bit
//! patterns (little-endian `u64`), strings length-prefixed. A leading
//! version byte gates decoding, so a format change invalidates old disk
//! records instead of misreading them. Decoding is total: any truncated,
//! corrupt, or over-long input returns `None` — the disk tier and the
//! shard merger treat that as "recompute", never as a panic.
//!
//! **Scope.** Results carrying a telemetry [`Snapshot`] are *not*
//! encodable ([`encode_result`] returns `None`): snapshots hold
//! arbitrary instrument trees and event rings that only matter to the
//! process that recorded them. Sweeps run telemetry-off by default, so
//! the disk tier covers every cacheable job the figure pipeline and the
//! daemon actually run; instrumented runs simply stay in the in-memory
//! tier. `telemetry` here names the run-observability snapshot of
//! [`RunResult::telemetry`], not the `serve.*` daemon gauges.

use crate::system::RunResult;
use asd_cache::CacheStats;
use asd_core::{AsdStats, SchedulerStats};
use asd_cpu::CoreStats;
use asd_dram::{DramStats, PowerReport};
use asd_mc::McStats;
use asd_traceio::format::{get_varint, put_varint};

/// Version byte opening every encoded record.
pub const WIRE_VERSION: u8 = 1;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    put_varint(buf, v);
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    get_varint(buf, pos)
}

fn get_f64(buf: &[u8], pos: &mut usize) -> Option<f64> {
    let end = pos.checked_add(8)?;
    let bytes: [u8; 8] = buf.get(*pos..end)?.try_into().ok()?;
    *pos = end;
    Some(f64::from_bits(u64::from_le_bytes(bytes)))
}

fn get_str(buf: &[u8], pos: &mut usize) -> Option<String> {
    let len = usize::try_from(get_varint(buf, pos)?).ok()?;
    let end = pos.checked_add(len)?;
    let s = std::str::from_utf8(buf.get(*pos..end)?).ok()?;
    *pos = end;
    Some(s.to_string())
}

fn put_cache_level(buf: &mut Vec<u8>, s: &CacheStats) {
    for v in [s.hits, s.misses, s.evictions, s.dirty_evictions] {
        put_u64(buf, v);
    }
}

fn get_cache_level(buf: &[u8], pos: &mut usize) -> Option<CacheStats> {
    Some(CacheStats {
        hits: get_u64(buf, pos)?,
        misses: get_u64(buf, pos)?,
        evictions: get_u64(buf, pos)?,
        dirty_evictions: get_u64(buf, pos)?,
    })
}

fn put_core(buf: &mut Vec<u8>, s: &CoreStats) {
    for v in [
        s.accesses,
        s.reads,
        s.writes,
        s.demand_memory_reads,
        s.ps_reads_sent,
        s.stall_cycles,
        s.cache.memory_writebacks,
    ] {
        put_u64(buf, v);
    }
    put_cache_level(buf, &s.cache.l1);
    put_cache_level(buf, &s.cache.l2);
    put_cache_level(buf, &s.cache.l3);
}

fn get_core(buf: &[u8], pos: &mut usize) -> Option<CoreStats> {
    let mut s = CoreStats {
        accesses: get_u64(buf, pos)?,
        reads: get_u64(buf, pos)?,
        writes: get_u64(buf, pos)?,
        demand_memory_reads: get_u64(buf, pos)?,
        ps_reads_sent: get_u64(buf, pos)?,
        stall_cycles: get_u64(buf, pos)?,
        ..CoreStats::default()
    };
    s.cache.memory_writebacks = get_u64(buf, pos)?;
    s.cache.l1 = get_cache_level(buf, pos)?;
    s.cache.l2 = get_cache_level(buf, pos)?;
    s.cache.l3 = get_cache_level(buf, pos)?;
    Some(s)
}

fn put_mc(buf: &mut Vec<u8>, s: &McStats) {
    for v in [
        s.reads,
        s.writes,
        s.pb_hits_on_arrival,
        s.pb_hits_at_caq,
        s.merged_with_prefetch,
        s.prefetches_issued,
        s.lpq_dropped,
        s.prefetch_redundant,
        s.lpq_squashed,
        s.delayed_regular,
        s.read_rejects,
        s.write_rejects,
        s.pb.inserts,
        s.pb.read_hits,
        s.pb.write_invalidations,
        s.pb.unused_evictions,
        s.sched.conflicts,
        s.sched.tightened,
        s.sched.loosened,
    ] {
        put_u64(buf, v);
    }
}

fn get_mc(buf: &[u8], pos: &mut usize) -> Option<McStats> {
    let mut s = McStats {
        reads: get_u64(buf, pos)?,
        writes: get_u64(buf, pos)?,
        pb_hits_on_arrival: get_u64(buf, pos)?,
        pb_hits_at_caq: get_u64(buf, pos)?,
        merged_with_prefetch: get_u64(buf, pos)?,
        prefetches_issued: get_u64(buf, pos)?,
        lpq_dropped: get_u64(buf, pos)?,
        prefetch_redundant: get_u64(buf, pos)?,
        lpq_squashed: get_u64(buf, pos)?,
        delayed_regular: get_u64(buf, pos)?,
        read_rejects: get_u64(buf, pos)?,
        write_rejects: get_u64(buf, pos)?,
        ..McStats::default()
    };
    s.pb.inserts = get_u64(buf, pos)?;
    s.pb.read_hits = get_u64(buf, pos)?;
    s.pb.write_invalidations = get_u64(buf, pos)?;
    s.pb.unused_evictions = get_u64(buf, pos)?;
    s.sched = SchedulerStats {
        conflicts: get_u64(buf, pos)?,
        tightened: get_u64(buf, pos)?,
        loosened: get_u64(buf, pos)?,
    };
    Some(s)
}

/// Encode `r` into a self-contained byte record, or `None` when the
/// result carries a telemetry snapshot (see the module docs).
pub fn encode_result(r: &RunResult) -> Option<Vec<u8>> {
    if r.telemetry.is_some() {
        return None;
    }
    let mut buf = Vec::with_capacity(256);
    buf.push(WIRE_VERSION);
    put_str(&mut buf, &r.benchmark);
    put_str(&mut buf, &r.config);
    put_u64(&mut buf, r.cycles);
    put_core(&mut buf, &r.core);
    put_mc(&mut buf, &r.mc);
    for v in [r.dram.reads, r.dram.writes, r.dram.activations, r.dram.row_hits] {
        put_u64(&mut buf, v);
    }
    for v in [
        r.power.energy_j,
        r.power.background_j,
        r.power.activate_j,
        r.power.read_j,
        r.power.write_j,
        r.power.elapsed_s,
        r.power.average_power_w,
    ] {
        put_f64(&mut buf, v);
    }
    match &r.asd {
        None => buf.push(0),
        Some(a) => {
            buf.push(1);
            for v in [a.reads, a.prefetches, a.streams_observed, a.untracked_reads, a.epochs] {
                put_u64(&mut buf, v);
            }
        }
    }
    Some(buf)
}

/// Decode a record produced by [`encode_result`]. `None` on any
/// structural problem: wrong version, truncation, trailing bytes.
pub fn decode_result(buf: &[u8]) -> Option<RunResult> {
    let mut pos = 0usize;
    if *buf.first()? != WIRE_VERSION {
        return None;
    }
    pos += 1;
    let benchmark = get_str(buf, &mut pos)?;
    let config = get_str(buf, &mut pos)?;
    let cycles = get_u64(buf, &mut pos)?;
    let core = get_core(buf, &mut pos)?;
    let mc = get_mc(buf, &mut pos)?;
    let dram = DramStats {
        reads: get_u64(buf, &mut pos)?,
        writes: get_u64(buf, &mut pos)?,
        activations: get_u64(buf, &mut pos)?,
        row_hits: get_u64(buf, &mut pos)?,
    };
    let power = PowerReport {
        energy_j: get_f64(buf, &mut pos)?,
        background_j: get_f64(buf, &mut pos)?,
        activate_j: get_f64(buf, &mut pos)?,
        read_j: get_f64(buf, &mut pos)?,
        write_j: get_f64(buf, &mut pos)?,
        elapsed_s: get_f64(buf, &mut pos)?,
        average_power_w: get_f64(buf, &mut pos)?,
    };
    let asd = match *buf.get(pos)? {
        0 => {
            pos += 1;
            None
        }
        1 => {
            pos += 1;
            Some(AsdStats {
                reads: get_u64(buf, &mut pos)?,
                prefetches: get_u64(buf, &mut pos)?,
                streams_observed: get_u64(buf, &mut pos)?,
                untracked_reads: get_u64(buf, &mut pos)?,
                epochs: get_u64(buf, &mut pos)?,
            })
        }
        _ => return None,
    };
    if pos != buf.len() {
        return None;
    }
    Some(RunResult { benchmark, config, cycles, core, mc, dram, power, asd, telemetry: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrefetchKind, RunOpts, SystemConfig};
    use crate::system::System;

    fn real_result() -> RunResult {
        let profile = asd_trace::suites::by_name("milc").expect("suite profile");
        let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1);
        let opts = RunOpts::quick();
        System::new(cfg, &profile, &opts).expect("valid config").with_label("PMS").run()
    }

    #[test]
    fn roundtrip_is_lossless() {
        let r = real_result();
        let bytes = encode_result(&r).expect("telemetry-free result encodes");
        let back = decode_result(&bytes).expect("decodes");
        // RunResult has no PartialEq; the Debug render covers every field.
        assert_eq!(format!("{back:?}"), format!("{r:?}"));
    }

    #[test]
    fn truncation_never_panics_and_never_decodes() {
        let r = real_result();
        let bytes = encode_result(&r).expect("encodes");
        for cut in 0..bytes.len() {
            assert!(decode_result(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = real_result();
        let mut bytes = encode_result(&r).expect("encodes");
        bytes.push(0);
        assert!(decode_result(&bytes).is_none());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let r = real_result();
        let mut bytes = encode_result(&r).expect("encodes");
        bytes[0] = WIRE_VERSION + 1;
        assert!(decode_result(&bytes).is_none());
    }

    #[test]
    fn snapshot_carrying_results_do_not_encode() {
        let mut r = real_result();
        r.telemetry = Some(asd_telemetry::Snapshot::default());
        assert!(encode_result(&r).is_none());
    }

    #[test]
    fn asd_stats_roundtrip() {
        let mut r = real_result();
        assert!(r.asd.is_some(), "PMS run reports detector stats");
        let back = decode_result(&encode_result(&r).expect("encodes")).expect("decodes");
        assert_eq!(back.asd, r.asd);
        r.asd = None;
        let back = decode_result(&encode_result(&r).expect("encodes")).expect("decodes");
        assert_eq!(back.asd, None);
    }
}

//! Global job-graph executor: one scheduler for every requested figure.
//!
//! The barrier problem. `figures all` historically ran as 19+ sequential
//! barriers — each figure built its own [`Sweep`], blocked on
//! `sweep.run()`, then the next figure started. Total wall time was the
//! *sum* of per-figure critical paths, and the tail of every sweep left
//! most workers idle.
//!
//! This module replaces the barriers with a declarative split. Each
//! figure becomes a [`FigurePlan`]: a list of [`Job`]s (the simulations
//! it needs) plus a pure `assemble(&[RunResult]) -> FigureOutput`
//! closure (the formatting). A [`Pipeline`] accepts the union of all
//! requested figures' plans at once:
//!
//! - **Submission-time dedup.** Jobs are collapsed into *nodes* by their
//!   [`crate::cache`] key: two figures requesting the same point share
//!   one node (counted in [`PipelineStats::inflight_joins`]). Uncacheable
//!   jobs (trace-sourced, anonymous custom engines, cache disabled)
//!   always get their own node.
//! - **One work queue.** All nodes drain through a single shrinking-chunk
//!   [`Chunker`] — the same claiming discipline [`Sweep::run`] uses — so
//!   there is no idle tail between figures.
//! - **Eager assembly.** A figure's `assemble` runs on whichever worker
//!   deposits its last outstanding node; slow figures never block
//!   finished ones. Node results are freed as soon as their last
//!   consumer assembles ([`PipelineStats::peak_live_jobs`] tracks the
//!   high-water mark).
//! - **Deterministic output.** [`Pipeline::run`] returns figures in
//!   submission order with results re-stamped per job label, so graph
//!   mode is bit-identical to barrier mode. On failure it reports the
//!   earliest submission-order figure's earliest job error — the same
//!   error [`Sweep::run`] would pick.
//!
//! Node execution goes through [`crate::experiment::run_custom`], which
//! adds the cache's *single-flight* registry: even two independent
//! `Pipeline`s (e.g. concurrent `asd-serve` connections) computing the
//! same key run one simulation, with the loser joining the winner's
//! in-flight run (see [`crate::cache::flight_stats`]).
//!
//! The `ASD_PIPELINE=barrier` environment variable ([`barrier_mode`])
//! restores the sequential per-figure behavior for A/B verification;
//! [`FigurePlan::run`] is exactly that fallback.

use crate::config::{RunOpts, SystemConfig};
use crate::error::SimError;
use crate::experiment::run_custom;
use crate::sweep::{worker_count, Chunker, Sweep};
use crate::system::RunResult;
use asd_trace::WorkloadProfile;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// One simulation a figure needs: a workload under a configuration,
/// with a label for reporting (mirrors what [`Sweep::push`] takes).
pub struct Job {
    /// Workload to simulate.
    pub profile: WorkloadProfile,
    /// Full system configuration.
    pub cfg: SystemConfig,
    /// Reporting label stamped into [`RunResult::config`].
    pub label: String,
}

impl Job {
    /// Convenience constructor mirroring [`Sweep::push`].
    pub fn new(profile: &WorkloadProfile, cfg: SystemConfig, label: &str) -> Self {
        Job { profile: profile.clone(), cfg, label: label.to_string() }
    }
}

/// A typed metric value a figure reports alongside its text. The bench
/// binary converts these to its JSON values; keeping the enum here lets
/// figure metrics live next to the figure logic without `sim` depending
/// on a JSON layer (D007 layering).
#[derive(Debug)]
pub enum MetricValue {
    /// An integer count (rendered as a JSON number).
    U64(u64),
    /// A float (rendered as a JSON number).
    F64(f64),
    /// A string.
    Str(String),
    /// A list of objects, each a list of `(key, value)` pairs in
    /// insertion order (the arena league table uses this).
    Rows(Vec<Vec<(String, MetricValue)>>),
}

/// Everything a figure produces: the rendered text, the metrics block
/// for the JSON report, and named artifact bodies (the telemetry demo's
/// exposition files).
#[derive(Debug)]
pub struct FigureOutput {
    /// The figure text exactly as `figures` prints it.
    pub text: String,
    /// `(name, value)` metric pairs in report order.
    pub metrics: Vec<(String, MetricValue)>,
    /// `(file name, body)` pairs for figures that emit files.
    pub artifacts: Vec<(String, String)>,
}

impl FigureOutput {
    /// An output with text only.
    pub fn text_only(text: String) -> Self {
        FigureOutput { text, metrics: Vec::new(), artifacts: Vec::new() }
    }
}

/// The assembly half of a figure: a pure function from the figure's run
/// results (in job order, labels re-stamped) to its output.
pub type AssembleFn = Box<dyn FnOnce(&[RunResult]) -> Result<FigureOutput, SimError> + Send>;

/// A figure as data: its name, effective run options, required
/// simulations, and assembly closure. Built by the catalog in
/// [`crate::figures::plan`] (and [`crate::arena::arena_plan`]); executed
/// either standalone ([`FigurePlan::run`], the barrier path) or
/// submitted to a [`Pipeline`].
pub struct FigurePlan {
    name: String,
    opts: RunOpts,
    jobs: Vec<Job>,
    assemble: AssembleFn,
}

impl FigurePlan {
    /// A plan from its parts. `assemble` receives one [`RunResult`] per
    /// job, in job order, each re-stamped with that job's label.
    pub fn new(
        name: &str,
        opts: &RunOpts,
        jobs: Vec<Job>,
        assemble: impl FnOnce(&[RunResult]) -> Result<FigureOutput, SimError> + Send + 'static,
    ) -> Self {
        FigurePlan {
            name: name.to_string(),
            opts: opts.clone(),
            jobs,
            assemble: Box::new(assemble),
        }
    }

    /// The figure's name (`fig5`, `arena`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of simulations the plan requests (before any dedup).
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Barrier-mode execution: run the plan's jobs through one
    /// [`Sweep`] (push order = job order) and assemble. This is today's
    /// per-figure behavior, kept as the `ASD_PIPELINE=barrier` fallback.
    ///
    /// # Errors
    ///
    /// The earliest (job-order) failing job's [`SimError`], as
    /// [`Sweep::run`]; or the assembly's own error.
    pub fn run(self) -> Result<FigureOutput, SimError> {
        let mut sweep = Sweep::new(&self.opts);
        for job in &self.jobs {
            sweep.push(&job.profile, job.cfg.clone(), &job.label);
        }
        let results = sweep.run()?;
        (self.assemble)(&results)
    }
}

/// Pipeline execution mode from the `ASD_PIPELINE` environment variable:
/// `true` when set to `barrier` (sequential per-figure sweeps), `false`
/// otherwise (the global job graph). Read once per process.
pub fn barrier_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::var("ASD_PIPELINE").is_ok_and(|v| v == "barrier"))
}

/// A deduplicated simulation point: the first submitter's label and the
/// opts it runs under. Later jobs mapping here re-stamp their own label
/// onto a clone of the node's result at assembly.
struct Node {
    profile: WorkloadProfile,
    cfg: SystemConfig,
    opts: RunOpts,
    label: String,
}

/// One submitted figure: its per-job labels, the node each job maps to,
/// the deduplicated dependency list, and the assembly closure (taken
/// exactly once, by whichever worker readies the figure).
struct Planned {
    name: String,
    labels: Vec<String>,
    node_of_job: Vec<usize>,
    deps: Vec<usize>,
    assemble: Mutex<Option<AssembleFn>>,
}

/// Counters describing one [`Pipeline::run`].
#[derive(Debug)]
pub struct PipelineStats {
    /// Figures submitted.
    pub figures: usize,
    /// Jobs submitted across all figures, before dedup.
    pub submitted_jobs: usize,
    /// Distinct nodes actually scheduled.
    pub unique_jobs: usize,
    /// Jobs that joined an already-submitted node instead of scheduling
    /// a new one (`submitted_jobs - unique_jobs` for cacheable jobs).
    pub inflight_joins: u64,
    /// High-water mark of node results held live at once (results are
    /// freed as their last consuming figure assembles).
    pub peak_live_jobs: usize,
}

/// One finished figure out of [`Pipeline::run`].
#[derive(Debug)]
pub struct FigureRun {
    /// The plan's name.
    pub name: String,
    /// The assembled output.
    pub output: FigureOutput,
    /// The clock reading at the moment this figure's assembly finished.
    /// Under the graph scheduler figures overlap, so this is
    /// *time-to-ready from pipeline start*, not exclusive cost — the
    /// per-figure `wall_ms` the bench report documents.
    pub wall_ms: f64,
}

/// Everything [`Pipeline::run`] returns: figure outputs in submission
/// order plus the run's [`PipelineStats`].
#[derive(Debug)]
pub struct PipelineRun {
    /// One entry per submitted figure, in submission order.
    pub figures: Vec<FigureRun>,
    /// Dedup/liveness counters for the run.
    pub stats: PipelineStats,
}

/// The global job-graph scheduler. Submit every requested figure's
/// [`FigurePlan`], then [`Pipeline::run`] the union. See the module docs
/// for the execution model.
#[derive(Default)]
pub struct Pipeline {
    nodes: Vec<Node>,
    by_key: BTreeMap<String, usize>,
    figures: Vec<Planned>,
    submitted: usize,
    joins: u64,
    threads: Option<usize>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Override the worker-thread count (defaults to `ASD_SWEEP_THREADS`
    /// or the machine's available parallelism, like [`Sweep`]).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Number of figures submitted so far.
    pub fn figure_count(&self) -> usize {
        self.figures.len()
    }

    /// Jobs submitted so far, before dedup.
    pub fn submitted_jobs(&self) -> usize {
        self.submitted
    }

    /// Distinct nodes scheduled so far.
    pub fn unique_jobs(&self) -> usize {
        self.nodes.len()
    }

    /// Jobs that joined an already-submitted node.
    pub fn inflight_joins(&self) -> u64 {
        self.joins
    }

    /// Add a figure to the graph. Each of its jobs is collapsed onto an
    /// existing node when its cache key matches one already submitted
    /// (by this or an earlier figure); uncacheable jobs always get fresh
    /// nodes. The figure's assembly runs as soon as its last node lands.
    pub fn submit(&mut self, plan: FigurePlan) {
        let FigurePlan { name, opts, jobs, assemble } = plan;
        let mut labels = Vec::with_capacity(jobs.len());
        let mut node_of_job = Vec::with_capacity(jobs.len());
        let mut deps: Vec<usize> = Vec::new();
        for job in jobs {
            self.submitted += 1;
            let node = match crate::cache::key(&job.cfg, &job.profile, &opts) {
                Some(key) => {
                    if let Some(&existing) = self.by_key.get(&key) {
                        self.joins += 1;
                        existing
                    } else {
                        let idx = self.nodes.len();
                        self.nodes.push(Node {
                            profile: job.profile,
                            cfg: job.cfg,
                            opts: opts.clone(),
                            label: job.label.clone(),
                        });
                        self.by_key.insert(key, idx);
                        idx
                    }
                }
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        profile: job.profile,
                        cfg: job.cfg,
                        opts: opts.clone(),
                        label: job.label.clone(),
                    });
                    idx
                }
            };
            labels.push(job.label);
            node_of_job.push(node);
            if !deps.contains(&node) {
                deps.push(node);
            }
        }
        self.figures.push(Planned {
            name,
            labels,
            node_of_job,
            deps,
            assemble: Mutex::new(Some(assemble)),
        });
    }

    /// Execute the graph and assemble every figure, returning outputs in
    /// submission order. `clock` is sampled at each figure's assembly
    /// completion for its [`FigureRun::wall_ms`] (the `sim` crate takes
    /// an injected clock rather than reading time itself; pass
    /// `&|| 0.0` when timings are not needed).
    ///
    /// # Errors
    ///
    /// The earliest submission-order figure's earliest job-order
    /// [`SimError`] (matching [`Sweep::run`] semantics per figure), or
    /// the first figure's assembly error.
    pub fn run(self, clock: &(dyn Fn() -> f64 + Sync)) -> Result<PipelineRun, SimError> {
        let Pipeline { nodes, figures, submitted, joins, threads, .. } = self;
        let total = nodes.len();
        let workers = threads.unwrap_or_else(worker_count).clamp(1, total.max(1));

        let slots: Vec<ResultSlot> = (0..total).map(|_| Mutex::new(None)).collect();
        let outputs: Vec<OutputSlot> = figures.iter().map(|_| Mutex::new(None)).collect();
        let mut consumers_of: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (f, fig) in figures.iter().enumerate() {
            for &n in &fig.deps {
                consumers_of[n].push(f);
            }
        }
        let mut track = Track {
            remaining: figures.iter().map(|f| f.deps.len()).collect(),
            failed: vec![false; figures.len()],
            consumers: figures.iter().flat_map(|f| f.deps.iter().copied()).fold(
                vec![0usize; total],
                |mut acc, n| {
                    acc[n] += 1;
                    acc
                },
            ),
            ready: Vec::new(),
            live: 0,
            peak: 0,
        };
        for (f, fig) in figures.iter().enumerate() {
            if fig.deps.is_empty() {
                track.ready.push(f);
            }
        }
        let exec = Exec {
            nodes: &nodes,
            figures: &figures,
            consumers_of: &consumers_of,
            slots: &slots,
            outputs: &outputs,
            track: &Mutex::new(track),
            chunker: &Chunker::new(total, workers),
            clock,
        };
        std::thread::scope(|scope| {
            // One worker runs on the calling thread; spawning all of
            // them would leave it idle.
            for _ in 1..workers {
                scope.spawn(|| exec.worker());
            }
            exec.worker();
        });

        // Deterministic error selection, then output collection — in
        // figure submission order, jobs in job order within each figure,
        // mirroring Sweep::run's earliest-push-order-error contract.
        let mut out = Vec::with_capacity(figures.len());
        for (f, fig) in figures.iter().enumerate() {
            for &n in &fig.node_of_job {
                // asd-lint: allow(D005) -- the scope joined all workers, so no slot lock is poisoned
                let mut slot = slots[n].lock().expect("node slot poisoned");
                if matches!(slot.as_ref(), Some(Err(_))) {
                    if let Some(Err(e)) = slot.take() {
                        return Err(e);
                    }
                }
            }
            // asd-lint: allow(D005) -- the scope joined all workers, so no output lock is poisoned
            let assembled = outputs[f].lock().expect("figure output poisoned").take();
            match assembled {
                Some((Ok(output), wall_ms)) => {
                    out.push(FigureRun { name: fig.name.clone(), output, wall_ms });
                }
                Some((Err(e), _)) => return Err(e),
                // Unreachable: every figure either fails a dependency
                // (caught above) or is readied and assembled by the
                // worker that deposited its last node.
                // asd-lint: allow(D005) -- structurally unreachable; a panic here flags a scheduler bug loudly
                None => unreachable!("figure {} neither failed nor assembled", fig.name),
            }
        }
        let track = exec.track;
        // asd-lint: allow(D005) -- the scope joined all workers, so the tracker lock is not poisoned
        let peak = track.lock().expect("tracker poisoned").peak;
        Ok(PipelineRun {
            figures: out,
            stats: PipelineStats {
                figures: figures.len(),
                submitted_jobs: submitted,
                unique_jobs: total,
                inflight_joins: joins,
                peak_live_jobs: peak,
            },
        })
    }
}

type ResultSlot = Mutex<Option<Result<RunResult, SimError>>>;
type OutputSlot = Mutex<Option<(Result<FigureOutput, SimError>, f64)>>;

/// Mutable scheduling state shared by the workers, behind one mutex:
/// per-figure outstanding-dependency counts, per-node remaining-consumer
/// counts (for freeing results), the ready-to-assemble queue, and the
/// live-results high-water mark.
struct Track {
    remaining: Vec<usize>,
    failed: Vec<bool>,
    consumers: Vec<usize>,
    ready: Vec<usize>,
    live: usize,
    peak: usize,
}

/// The per-run executor the scoped workers share. Lock order: the
/// tracker mutex may be held while taking a node slot (freeing results),
/// but never the reverse — node deposits release the slot before
/// touching the tracker.
struct Exec<'a> {
    nodes: &'a [Node],
    figures: &'a [Planned],
    consumers_of: &'a [Vec<usize>],
    slots: &'a [ResultSlot],
    outputs: &'a [OutputSlot],
    track: &'a Mutex<Track>,
    chunker: &'a Chunker,
    clock: &'a (dyn Fn() -> f64 + Sync),
}

impl Exec<'_> {
    fn lock_track(&self) -> std::sync::MutexGuard<'_, Track> {
        // asd-lint: allow(D005) -- tracker poisoning means a sibling worker panicked mid-run; propagating is correct
        self.track.lock().expect("tracker poisoned")
    }

    /// Worker loop: prefer assembling ready figures (freeing their node
    /// results), otherwise claim and run a chunk of nodes. Exits when
    /// the node queue is drained and no figure is ready — any figure
    /// still pending at that point will be readied, and assembled, by
    /// the worker that deposits its last dependency.
    fn worker(&self) {
        loop {
            if let Some(f) = self.pop_ready() {
                self.assemble(f);
                continue;
            }
            match self.chunker.claim() {
                Some((start, end)) => {
                    for node in start..end {
                        self.run_node(node);
                    }
                }
                None => {
                    // A deposit may have readied a figure between our
                    // pop and the drained claim; drain once more.
                    if let Some(f) = self.pop_ready() {
                        self.assemble(f);
                        continue;
                    }
                    return;
                }
            }
        }
    }

    fn pop_ready(&self) -> Option<usize> {
        self.lock_track().ready.pop()
    }

    /// Run node `index` and deposit its result, readying (or failing)
    /// any figure whose last dependency this was.
    fn run_node(&self, index: usize) {
        let node = &self.nodes[index];
        let result = run_custom(&node.profile, node.cfg.clone(), &node.label, &node.opts);
        let ok = result.is_ok();
        {
            // asd-lint: allow(D005) -- slot poisoning means a sibling worker panicked mid-run; propagating is correct
            let mut slot = self.slots[index].lock().expect("node slot poisoned");
            *slot = Some(result);
        }
        let mut track = self.lock_track();
        if ok {
            track.live += 1;
            track.peak = track.peak.max(track.live);
        }
        for &f in &self.consumers_of[index] {
            if !ok {
                track.failed[f] = true;
            }
            track.remaining[f] -= 1;
            if track.remaining[f] == 0 {
                if track.failed[f] {
                    // The figure will never assemble; free its Ok
                    // dependencies now (Err slots stay for the final
                    // error scan).
                    self.release_deps(&mut track, f);
                } else {
                    track.ready.push(f);
                }
            }
        }
    }

    /// Assemble figure `f` (all dependencies landed Ok): clone each
    /// job's node result re-stamped with the job's label, run the
    /// assembly closure, record the output and completion time, and
    /// release the figure's claim on its node results.
    fn assemble(&self, f: usize) {
        let fig = &self.figures[f];
        let mut inputs = Vec::with_capacity(fig.node_of_job.len());
        for (job, &n) in fig.node_of_job.iter().enumerate() {
            // asd-lint: allow(D005) -- slot poisoning means a sibling worker panicked mid-run; propagating is correct
            let slot = self.slots[n].lock().expect("node slot poisoned");
            match slot.as_ref() {
                Some(Ok(r)) => {
                    let mut stamped = r.clone();
                    stamped.config = fig.labels[job].clone();
                    inputs.push(stamped);
                }
                // Unreachable: ready implies every dependency deposited
                // Ok, and results are only freed after the last consumer
                // assembles — which is happening right now.
                // asd-lint: allow(D005) -- structurally unreachable; a panic here flags a scheduler bug loudly
                _ => unreachable!("ready figure {} missing node {n}", fig.name),
            }
        }
        // asd-lint: allow(D005) -- assemble mutex poisoning means a sibling worker panicked mid-run; propagating is correct
        let assemble = self.figures[f].assemble.lock().expect("assemble slot poisoned").take();
        let Some(assemble) = assemble else { return };
        let output = assemble(&inputs);
        let wall_ms = (self.clock)();
        {
            // asd-lint: allow(D005) -- output poisoning means a sibling worker panicked mid-run; propagating is correct
            let mut out = self.outputs[f].lock().expect("figure output poisoned");
            *out = Some((output, wall_ms));
        }
        let mut track = self.lock_track();
        self.release_deps(&mut track, f);
    }

    /// Drop figure `f`'s claim on its dependency results; a node's Ok
    /// result is freed when its last consumer releases it.
    fn release_deps(&self, track: &mut Track, f: usize) {
        for &n in &self.figures[f].deps {
            track.consumers[n] -= 1;
            if track.consumers[n] == 0 {
                // asd-lint: allow(D005) -- slot poisoning means a sibling worker panicked mid-run; propagating is correct
                let mut slot = self.slots[n].lock().expect("node slot poisoned");
                if matches!(slot.as_ref(), Some(Ok(_))) {
                    *slot = None;
                    track.live -= 1;
                }
            }
        }
    }
}

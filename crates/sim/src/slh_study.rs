//! Stream-Length-Histogram studies (Figures 2, 3, 12, 16).
//!
//! These figures characterize the DRAM read stream itself, so they don't
//! need the full timing simulation: this module replays a workload through
//! the cache hierarchy (to obtain the DRAM read stream, exactly what the
//! memory controller sees) and feeds it to both the hardware ASD detector
//! (finite 8-slot Stream Filter) and the unbounded oracle decomposition.

use crate::error::SimError;
use asd_cache::{Hierarchy, HitLevel};
use asd_core::{AsdConfig, AsdDetector, PrefetchCandidate, Slh, MAX_STREAM_LEN};
use asd_cpu::CoreConfig;
use asd_trace::{AccessKind, MemAccess, OracleSlh, TraceGenerator, WorkloadProfile};

/// Per-epoch pair of histograms: the detector's finite-filter
/// approximation and the oracle's exact decomposition of the same reads.
#[derive(Debug, Clone)]
pub struct EpochSlh {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// The 8-slot Stream Filter approximation (what the hardware computes).
    pub approx: Slh,
    /// Ground truth from unbounded tracking.
    pub oracle: Slh,
}

/// Replay `accesses` of `profile` through the cache hierarchy and collect
/// one [`EpochSlh`] per completed ASD epoch of the resulting DRAM read
/// stream.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] if `asd` fails validation.
pub fn epoch_histograms(
    profile: &WorkloadProfile,
    accesses: usize,
    asd: &AsdConfig,
    seed: u64,
) -> Result<Vec<EpochSlh>, SimError> {
    epoch_histograms_from(TraceGenerator::new(profile.clone(), seed).take(accesses), asd)
}

/// [`epoch_histograms`] over any access stream — the entry point for
/// file-backed [`TraceSource`](crate::TraceSource)s: replaying a recorded
/// trace through this function is bit-identical to regenerating it,
/// because both paths feed the same records through the same hierarchy.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] if `asd` fails validation.
pub fn epoch_histograms_from<I: Iterator<Item = MemAccess>>(
    stream: I,
    asd: &AsdConfig,
) -> Result<Vec<EpochSlh>, SimError> {
    let core_cfg = CoreConfig::default();
    let mut hierarchy = Hierarchy::new(core_cfg.hierarchy);
    let mut det = AsdDetector::new(asd.clone())?;
    // Oracle stream window in *reads*, matched to the detector's
    // cycle-denominated lifetime at the ~100-cycle DRAM read spacing this
    // replay produces.
    let mut oracle = OracleSlh::new((asd.filter.extension_lifetime / 100).max(8));
    let mut out: Vec<EpochSlh> = Vec::new();
    let mut scratch: Vec<PrefetchCandidate> = Vec::new();
    let mut now = 0u64;
    let mut reads_in_epoch = 0u64;
    let mut epochs_seen = 0u64;

    for access in stream {
        now += u64::from(access.gap) + 2;
        let line = access.line();
        let outcome = hierarchy.access(line, access.kind == AccessKind::Write);
        if outcome.level == HitLevel::Memory {
            hierarchy.fill_from_memory(line, access.kind == AccessKind::Write);
            // This is a DRAM Read command: both trackers observe it.
            now += 80; // approximate DRAM service spacing
            scratch.clear();
            det.on_read(line, now, &mut scratch);
            oracle.on_read(line);
            reads_in_epoch += 1;
            if reads_in_epoch == asd.epoch_reads {
                reads_in_epoch = 0;
                let approx = *det.last_epoch_slh();
                let truth = oracle.flush();
                out.push(EpochSlh { epoch: epochs_seen, approx, oracle: truth });
                epochs_seen += 1;
            }
        }
    }
    Ok(out)
}

/// Aggregate stream-length shares for Figure 12: the fraction of *streams*
/// (not reads) of each length 1..=5, plus the remainder, from the oracle
/// decomposition of a profile's DRAM read stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamShares {
    /// `shares[i]` = fraction of streams with length `i + 1`, for
    /// `i < 5`.
    pub shares: [f64; 5],
    /// Fraction of streams longer than 5.
    pub longer: f64,
}

impl StreamShares {
    /// Share of streams with length 2..=5 (the paper quotes 37–62% for the
    /// commercial benchmarks).
    pub fn len2_to_5(&self) -> f64 {
        self.shares[1..].iter().sum()
    }
}

/// Compute [`StreamShares`] by merging all epoch oracle histograms of a
/// profile.
///
/// # Errors
///
/// [`SimError::NoEpochs`] when `accesses` is too small to complete a
/// single ASD epoch.
pub fn stream_shares(
    profile: &WorkloadProfile,
    accesses: usize,
    seed: u64,
) -> Result<StreamShares, SimError> {
    stream_shares_from(
        TraceGenerator::new(profile.clone(), seed).take(accesses),
        &profile.name,
        accesses as u64,
    )
}

/// [`stream_shares`] over any access stream (`benchmark` and `accesses`
/// label the [`SimError::NoEpochs`] error when the stream is too short).
///
/// # Errors
///
/// [`SimError::NoEpochs`] when the stream completes no ASD epoch.
pub fn stream_shares_from<I: Iterator<Item = MemAccess>>(
    stream: I,
    benchmark: &str,
    accesses: u64,
) -> Result<StreamShares, SimError> {
    let asd = AsdConfig::default();
    let epochs = epoch_histograms_from(stream, &asd)?;
    if epochs.is_empty() {
        return Err(SimError::NoEpochs { benchmark: benchmark.to_string(), accesses });
    }
    let mut merged = Slh::new();
    for e in &epochs {
        merged += &e.oracle;
    }
    Ok(slh_to_stream_shares(&merged))
}

/// Convert a read-weighted SLH into per-stream shares (bar `i` holds
/// `i x streams_i` reads, so divide by the length).
pub fn slh_to_stream_shares(slh: &Slh) -> StreamShares {
    let mut streams = [0.0f64; MAX_STREAM_LEN];
    for (idx, s) in streams.iter_mut().enumerate() {
        let len = idx + 1;
        *s = slh.reads_at(len) as f64 / len as f64;
    }
    let total: f64 = streams.iter().sum();
    let mut shares = [0.0; 5];
    if total > 0.0 {
        for i in 0..5 {
            shares[i] = streams[i] / total;
        }
    }
    // asd-lint: allow(D011) -- slice iteration: index order is fixed
    let longer = if total > 0.0 { streams[5..].iter().sum::<f64>() / total } else { 0.0 };
    StreamShares { shares, longer }
}

/// Mean L1 distance between approximate and oracle histograms across
/// epochs — the quantitative version of Figure 16's "closely matches".
pub fn mean_l1_distance(epochs: &[EpochSlh]) -> f64 {
    if epochs.is_empty() {
        return 0.0;
    }
    // asd-lint: allow(D011) -- slice iteration: epoch order is fixed
    epochs.iter().map(|e| e.approx.l1_distance(&e.oracle)).sum::<f64>() / epochs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use asd_trace::suites;

    #[test]
    fn gemsfdtd_epochs_vary() {
        // Figure 3: GemsFDTD's SLH varies widely across epochs.
        let profile = suites::by_name("GemsFDTD").unwrap();
        let asd = AsdConfig { epoch_reads: 1000, ..AsdConfig::default() };
        let epochs = epoch_histograms(&profile, 120_000, &asd, 7).unwrap();
        assert!(epochs.len() >= 3, "need several epochs, got {}", epochs.len());
        // At least one pair of epochs must differ substantially.
        let max_d =
            epochs.windows(2).map(|w| w[0].oracle.l1_distance(&w[1].oracle)).fold(0.0f64, f64::max);
        assert!(max_d > 0.3, "GemsFDTD phases must show: max distance {max_d}");
    }

    #[test]
    fn approximation_tracks_oracle() {
        // Figure 16: the 8-slot filter's histogram closely matches truth.
        let profile = suites::by_name("milc").unwrap();
        let asd = AsdConfig { epoch_reads: 1000, ..AsdConfig::default() };
        let epochs = epoch_histograms(&profile, 60_000, &asd, 11).unwrap();
        assert!(!epochs.is_empty());
        let d = mean_l1_distance(&epochs);
        // The finite filter under-tracks interleaved streams somewhat
        // (untracked reads become singles) — the paper's Figure 16 shows
        // the same qualitative bias; bounded, not zero.
        assert!(d < 0.5, "approximation drifted: mean L1 {d}");
    }

    #[test]
    fn commercial_shares_short() {
        // Figure 12: commercial benchmarks are dominated by short streams.
        let profile = suites::by_name("notesbench").unwrap();
        let s = stream_shares(&profile, 40_000, 3).unwrap();
        assert!(s.shares[0] + s.len2_to_5() > 0.85, "short streams dominate");
        assert!(s.len2_to_5() > 0.35, "len 2-5 share {}", s.len2_to_5());
    }

    #[test]
    fn shares_sum_to_one() {
        let profile = suites::by_name("tpcc").unwrap();
        let s = stream_shares(&profile, 30_000, 5).unwrap();
        let total: f64 = s.shares.iter().sum::<f64>() + s.longer;
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }
}

//! Ablations and extensions beyond the paper's evaluation:
//!
//! * **Processor-side ASD** — the paper's §6 future work ("we will
//!   consider applying Adaptive Stream Detection to processor-side
//!   prefetching"), compared head-to-head against the Power5-style PS
//!   unit and against no processor-side prefetching.
//! * **Direction ablation** — ASD with descending-stream tracking
//!   disabled (how much do negative streams contribute?).
//! * **Adaptivity ablation** — Adaptive Scheduling replaced by the middle
//!   fixed policy.
//! * **Multi-line ablation** — the §3.1 multi-line extension
//!   (inequality (6)) at degrees 1/2/4.

use crate::config::{PrefetchKind, RunOpts, SystemConfig};
use crate::error::SimError;
use crate::experiment::run_custom;
use crate::report::{pct, Table};
use crate::system::RunResult;
use asd_core::{AsdConfig, LpqPolicy};
use asd_cpu::PsKind;
use asd_mc::{EngineKind, LpqMode, McConfig};
use asd_trace::WorkloadProfile;

/// One ablation outcome: label plus the run.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// The measured run.
    pub result: RunResult,
}

/// Compare processor-side engines on one benchmark, with no memory-side
/// prefetching (isolating the processor-side contribution):
/// none / Power5-style / processor-side ASD.
///
/// # Errors
///
/// As [`run_custom`].
pub fn processor_side_engines(
    profile: &WorkloadProfile,
    opts: &RunOpts,
) -> Result<Vec<AblationRow>, SimError> {
    let mut rows = Vec::new();
    let variants: [(&str, PsKind); 3] = [
        ("no PS", PsKind::None),
        ("Power5-style PS", PsKind::Power5),
        ("processor-side ASD", PsKind::Asd(AsdConfig::default())),
    ];
    for (label, ps) in variants {
        let mut cfg = SystemConfig::for_kind(PrefetchKind::Np, 1);
        cfg.core.ps = ps;
        rows.push(AblationRow {
            label: label.to_string(),
            result: run_custom(profile, cfg, label, opts)?,
        });
    }
    Ok(rows)
}

/// ASD with and without descending-stream tracking (memory side, PMS).
///
/// # Errors
///
/// As [`run_custom`].
pub fn direction_ablation(
    profile: &WorkloadProfile,
    opts: &RunOpts,
) -> Result<Vec<AblationRow>, SimError> {
    let mut rows = Vec::new();
    for (label, track_negative) in [("both directions", true), ("ascending only", false)] {
        let asd = AsdConfig { track_negative, ..AsdConfig::default() };
        let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1)
            .with_mc(McConfig { engine: EngineKind::Asd(asd), ..McConfig::default() });
        rows.push(AblationRow {
            label: label.to_string(),
            result: run_custom(profile, cfg, label, opts)?,
        });
    }
    Ok(rows)
}

/// Adaptive Scheduling vs. the fixed middle policy (memory side, PMS).
///
/// # Errors
///
/// As [`run_custom`].
pub fn adaptivity_ablation(
    profile: &WorkloadProfile,
    opts: &RunOpts,
) -> Result<Vec<AblationRow>, SimError> {
    let mut rows = Vec::new();
    let variants = [
        ("adaptive scheduling", LpqMode::Adaptive),
        ("fixed policy 3", LpqMode::Fixed(LpqPolicy::CaqEmpty)),
    ];
    for (label, mode) in variants {
        let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1)
            .with_mc(McConfig { lpq_mode: mode, ..McConfig::default() });
        rows.push(AblationRow {
            label: label.to_string(),
            result: run_custom(profile, cfg, label, opts)?,
        });
    }
    Ok(rows)
}

/// The §3.1 multi-line extension: maximum prefetch degree 1 / 2 / 4.
///
/// # Errors
///
/// As [`run_custom`].
pub fn degree_ablation(
    profile: &WorkloadProfile,
    opts: &RunOpts,
) -> Result<Vec<AblationRow>, SimError> {
    let mut rows = Vec::new();
    for degree in [1usize, 2, 4] {
        let asd = AsdConfig { max_degree: degree, ..AsdConfig::default() };
        let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1)
            .with_mc(McConfig { engine: EngineKind::Asd(asd), ..McConfig::default() });
        let label = format!("max degree {degree}");
        rows.push(AblationRow {
            label: label.clone(),
            result: run_custom(profile, cfg, &label, opts)?,
        });
    }
    Ok(rows)
}

/// Render a set of ablation rows as a table of cycles and gain relative to
/// the first row.
pub fn render(rows: &[AblationRow], title: &str) -> String {
    let base = rows.first().map(|r| r.result.cycles).unwrap_or(1) as f64;
    let mut t = Table::new(["configuration", "cycles", "gain vs first", "coverage", "useful"]);
    for r in rows {
        let m = r.result.mc.prefetch_metrics();
        t.row([
            r.label.clone(),
            r.result.cycles.to_string(),
            pct((base / r.result.cycles as f64 - 1.0) * 100.0),
            pct(m.coverage_pct()),
            pct(m.useful_pct()),
        ]);
    }
    format!("{title}\n{}", t.render())
}

/// All ablations on a set of benchmarks, rendered.
///
/// # Errors
///
/// As [`run_custom`].
pub fn full_report(profiles: &[WorkloadProfile], opts: &RunOpts) -> Result<String, SimError> {
    let mut out = String::new();
    for p in profiles {
        out.push_str(&render(
            &processor_side_engines(p, opts)?,
            &format!("\n[{}] processor-side engine (no memory-side prefetching)", p.name),
        ));
        out.push_str(&render(
            &direction_ablation(p, opts)?,
            &format!("\n[{}] descending-stream tracking (PMS)", p.name),
        ));
        out.push_str(&render(
            &adaptivity_ablation(p, opts)?,
            &format!("\n[{}] adaptive vs fixed LPQ policy (PMS)", p.name),
        ));
        out.push_str(&render(
            &degree_ablation(p, opts)?,
            &format!("\n[{}] multi-line prefetch degree (PMS)", p.name),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asd_trace::suites;

    fn opts() -> RunOpts {
        RunOpts::default().with_accesses(15_000)
    }

    #[test]
    fn processor_side_asd_beats_nothing_on_streams() {
        let profile = suites::by_name("lbm").unwrap();
        let rows = processor_side_engines(&profile, &opts()).unwrap();
        let none = rows[0].result.cycles;
        let asd = rows[2].result.cycles;
        assert!(asd < none, "PS-ASD must speed up a streaming workload: {asd} vs {none}");
    }

    #[test]
    fn processor_side_asd_competitive_with_power5_on_short_streams() {
        // On short-stream workloads the histogram-driven unit should not
        // lose to the sequential Power5 unit.
        let profile = suites::by_name("milc").unwrap();
        let rows = processor_side_engines(&profile, &opts()).unwrap();
        let p5 = rows[1].result.cycles as f64;
        let asd = rows[2].result.cycles as f64;
        assert!(asd <= p5 * 1.03, "PS-ASD {asd} vs Power5 {p5}");
    }

    #[test]
    fn ascending_only_loses_on_negative_heavy_workload() {
        // Commercial profiles have 20% descending streams; disabling
        // negative tracking must not help.
        let profile = suites::by_name("notesbench").unwrap();
        let rows = direction_ablation(&profile, &opts()).unwrap();
        let both = rows[0].result.cycles;
        let asc = rows[1].result.cycles;
        assert!(both <= asc, "both {both} vs ascending-only {asc}");
    }

    #[test]
    fn ablation_rows_render() {
        let profile = suites::by_name("tonto").unwrap();
        let rows = adaptivity_ablation(&profile, &opts()).unwrap();
        let text = render(&rows, "test");
        assert!(text.contains("adaptive scheduling"));
        assert_eq!(rows.len(), 2);
    }
}

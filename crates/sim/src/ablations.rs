//! Ablations and extensions beyond the paper's evaluation:
//!
//! * **Processor-side ASD** — the paper's §6 future work ("we will
//!   consider applying Adaptive Stream Detection to processor-side
//!   prefetching"), compared head-to-head against the Power5-style PS
//!   unit and against no processor-side prefetching.
//! * **Direction ablation** — ASD with descending-stream tracking
//!   disabled (how much do negative streams contribute?).
//! * **Adaptivity ablation** — Adaptive Scheduling replaced by the middle
//!   fixed policy.
//! * **Multi-line ablation** — the §3.1 multi-line extension
//!   (inequality (6)) at degrees 1/2/4.
//!
//! Each section is defined once as a `(label, SystemConfig)` variant
//! list; the per-section drivers run them through [`run_custom`], while
//! [`full_report`] (and the pipeline's [`report_plan`]) batch every
//! section of every benchmark into one job list.

use crate::config::{PrefetchKind, RunOpts, SystemConfig};
use crate::error::SimError;
use crate::experiment::run_custom;
use crate::pipeline::{FigureOutput, FigurePlan, Job};
use crate::report::{pct, Table};
use crate::sweep::Sweep;
use crate::system::RunResult;
use asd_core::{AsdConfig, LpqPolicy};
use asd_cpu::PsKind;
use asd_mc::{EngineKind, LpqMode, McConfig};
use asd_trace::WorkloadProfile;

/// One ablation outcome: label plus the run.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// The measured run.
    pub result: RunResult,
}

fn ps_variants() -> Vec<(String, SystemConfig)> {
    let variants: [(&str, PsKind); 3] = [
        ("no PS", PsKind::None),
        ("Power5-style PS", PsKind::Power5),
        ("processor-side ASD", PsKind::Asd(AsdConfig::default())),
    ];
    variants
        .into_iter()
        .map(|(label, ps)| {
            let mut cfg = SystemConfig::for_kind(PrefetchKind::Np, 1);
            cfg.core.ps = ps;
            (label.to_string(), cfg)
        })
        .collect()
}

fn direction_variants() -> Vec<(String, SystemConfig)> {
    [("both directions", true), ("ascending only", false)]
        .into_iter()
        .map(|(label, track_negative)| {
            let asd = AsdConfig { track_negative, ..AsdConfig::default() };
            let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1)
                .with_mc(McConfig { engine: EngineKind::Asd(asd), ..McConfig::default() });
            (label.to_string(), cfg)
        })
        .collect()
}

fn adaptivity_variants() -> Vec<(String, SystemConfig)> {
    [
        ("adaptive scheduling", LpqMode::Adaptive),
        ("fixed policy 3", LpqMode::Fixed(LpqPolicy::CaqEmpty)),
    ]
    .into_iter()
    .map(|(label, mode)| {
        let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1)
            .with_mc(McConfig { lpq_mode: mode, ..McConfig::default() });
        (label.to_string(), cfg)
    })
    .collect()
}

fn degree_variants() -> Vec<(String, SystemConfig)> {
    [1usize, 2, 4]
        .into_iter()
        .map(|degree| {
            let asd = AsdConfig { max_degree: degree, ..AsdConfig::default() };
            let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1)
                .with_mc(McConfig { engine: EngineKind::Asd(asd), ..McConfig::default() });
            (format!("max degree {degree}"), cfg)
        })
        .collect()
}

/// Run one variant list on one benchmark through the shared cached-run
/// path, building the labelled rows.
fn run_variants(
    variants: Vec<(String, SystemConfig)>,
    profile: &WorkloadProfile,
    opts: &RunOpts,
) -> Result<Vec<AblationRow>, SimError> {
    variants
        .into_iter()
        .map(|(label, cfg)| {
            Ok(AblationRow { result: run_custom(profile, cfg, &label, opts)?, label })
        })
        .collect()
}

/// Compare processor-side engines on one benchmark, with no memory-side
/// prefetching (isolating the processor-side contribution):
/// none / Power5-style / processor-side ASD.
///
/// # Errors
///
/// As [`run_custom`].
pub fn processor_side_engines(
    profile: &WorkloadProfile,
    opts: &RunOpts,
) -> Result<Vec<AblationRow>, SimError> {
    run_variants(ps_variants(), profile, opts)
}

/// ASD with and without descending-stream tracking (memory side, PMS).
///
/// # Errors
///
/// As [`run_custom`].
pub fn direction_ablation(
    profile: &WorkloadProfile,
    opts: &RunOpts,
) -> Result<Vec<AblationRow>, SimError> {
    run_variants(direction_variants(), profile, opts)
}

/// Adaptive Scheduling vs. the fixed middle policy (memory side, PMS).
///
/// # Errors
///
/// As [`run_custom`].
pub fn adaptivity_ablation(
    profile: &WorkloadProfile,
    opts: &RunOpts,
) -> Result<Vec<AblationRow>, SimError> {
    run_variants(adaptivity_variants(), profile, opts)
}

/// The §3.1 multi-line extension: maximum prefetch degree 1 / 2 / 4.
///
/// # Errors
///
/// As [`run_custom`].
pub fn degree_ablation(
    profile: &WorkloadProfile,
    opts: &RunOpts,
) -> Result<Vec<AblationRow>, SimError> {
    run_variants(degree_variants(), profile, opts)
}

/// Render a set of ablation rows as a table of cycles and gain relative to
/// the first row.
pub fn render(rows: &[AblationRow], title: &str) -> String {
    let base = rows.first().map(|r| r.result.cycles).unwrap_or(1) as f64;
    let mut t = Table::new(["configuration", "cycles", "gain vs first", "coverage", "useful"]);
    for r in rows {
        let m = r.result.mc.prefetch_metrics();
        t.row([
            r.label.clone(),
            r.result.cycles.to_string(),
            pct((base / r.result.cycles as f64 - 1.0) * 100.0),
            pct(m.coverage_pct()),
            pct(m.useful_pct()),
        ]);
    }
    format!("{title}\n{}", t.render())
}

/// The four report sections of one benchmark: title suffix plus variant
/// list, in rendering order.
fn sections() -> [(&'static str, Vec<(String, SystemConfig)>); 4] {
    [
        ("processor-side engine (no memory-side prefetching)", ps_variants()),
        ("descending-stream tracking (PMS)", direction_variants()),
        ("adaptive vs fixed LPQ policy (PMS)", adaptivity_variants()),
        ("multi-line prefetch degree (PMS)", degree_variants()),
    ]
}

/// The full-report job list: every section's variants for every
/// benchmark, benchmarks outer, in the chunk order [`report_assemble`]
/// consumes.
fn report_jobs(profiles: &[WorkloadProfile]) -> Vec<Job> {
    let mut jobs = Vec::new();
    for profile in profiles {
        for (_, variants) in sections() {
            for (label, cfg) in variants {
                jobs.push(Job::new(profile, cfg, &label));
            }
        }
    }
    jobs
}

/// Assemble [`report_jobs`] results into the rendered report (labels are
/// read back from each result's `config` stamp).
fn report_assemble(profiles: &[WorkloadProfile], results: &[RunResult]) -> String {
    let mut out = String::new();
    let mut runs = results.iter();
    for profile in profiles {
        for (title, variants) in sections() {
            let rows: Vec<AblationRow> = variants
                .iter()
                .zip(runs.by_ref())
                .map(|(_, r)| AblationRow { label: r.config.clone(), result: r.clone() })
                .collect();
            out.push_str(&render(&rows, &format!("\n[{}] {title}", profile.name)));
        }
    }
    out
}

/// All ablations on a set of benchmarks, rendered. The underlying runs
/// fan out through one [`Sweep`]; results are bit-identical to calling
/// the per-section drivers in order.
///
/// # Errors
///
/// As [`run_custom`].
pub fn full_report(profiles: &[WorkloadProfile], opts: &RunOpts) -> Result<String, SimError> {
    let mut sweep = Sweep::new(opts);
    for job in report_jobs(profiles) {
        sweep.push(&job.profile, job.cfg, &job.label);
    }
    Ok(report_assemble(profiles, &sweep.run()?))
}

/// The ablations report as a [`FigurePlan`] for the pipeline.
pub(crate) fn report_plan(profiles: &[WorkloadProfile], opts: &RunOpts) -> FigurePlan {
    let jobs = report_jobs(profiles);
    let profiles = profiles.to_vec();
    FigurePlan::new("ablations", opts, jobs, move |results| {
        Ok(FigureOutput::text_only(report_assemble(&profiles, results)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asd_trace::suites;

    fn opts() -> RunOpts {
        RunOpts::default().with_accesses(15_000)
    }

    #[test]
    fn processor_side_asd_beats_nothing_on_streams() {
        let profile = suites::by_name("lbm").unwrap();
        let rows = processor_side_engines(&profile, &opts()).unwrap();
        let none = rows[0].result.cycles;
        let asd = rows[2].result.cycles;
        assert!(asd < none, "PS-ASD must speed up a streaming workload: {asd} vs {none}");
    }

    #[test]
    fn processor_side_asd_competitive_with_power5_on_short_streams() {
        // On short-stream workloads the histogram-driven unit should not
        // lose to the sequential Power5 unit.
        let profile = suites::by_name("milc").unwrap();
        let rows = processor_side_engines(&profile, &opts()).unwrap();
        let p5 = rows[1].result.cycles as f64;
        let asd = rows[2].result.cycles as f64;
        assert!(asd <= p5 * 1.03, "PS-ASD {asd} vs Power5 {p5}");
    }

    #[test]
    fn ascending_only_loses_on_negative_heavy_workload() {
        // Commercial profiles have 20% descending streams; disabling
        // negative tracking must not help.
        let profile = suites::by_name("notesbench").unwrap();
        let rows = direction_ablation(&profile, &opts()).unwrap();
        let both = rows[0].result.cycles;
        let asc = rows[1].result.cycles;
        assert!(both <= asc, "both {both} vs ascending-only {asc}");
    }

    #[test]
    fn ablation_rows_render() {
        let profile = suites::by_name("tonto").unwrap();
        let rows = adaptivity_ablation(&profile, &opts()).unwrap();
        let text = render(&rows, "test");
        assert!(text.contains("adaptive scheduling"));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn full_report_matches_per_section_drivers() {
        // The batched job list must render exactly what the four serial
        // drivers produce.
        let profile = suites::by_name("milc").unwrap();
        let o = opts();
        let report = full_report(std::slice::from_ref(&profile), &o).unwrap();
        let mut expected = String::new();
        expected.push_str(&render(
            &processor_side_engines(&profile, &o).unwrap(),
            &format!("\n[{}] processor-side engine (no memory-side prefetching)", profile.name),
        ));
        expected.push_str(&render(
            &direction_ablation(&profile, &o).unwrap(),
            &format!("\n[{}] descending-stream tracking (PMS)", profile.name),
        ));
        expected.push_str(&render(
            &adaptivity_ablation(&profile, &o).unwrap(),
            &format!("\n[{}] adaptive vs fixed LPQ policy (PMS)", profile.name),
        ));
        expected.push_str(&render(
            &degree_ablation(&profile, &o).unwrap(),
            &format!("\n[{}] multi-line prefetch degree (PMS)", profile.name),
        ));
        assert_eq!(report, expected);
    }
}

//! # Full-system ASD simulator
//!
//! Composes the substrate crates into the machine the paper evaluates
//! (§4.2): trace-driven Power5+-like cores ([`asd_cpu`]), a three-level
//! cache hierarchy ([`asd_cache`]), the extended memory controller
//! ([`asd_mc`]) and DDR2-533 DRAM with power accounting ([`asd_dram`]),
//! driven by the synthetic per-benchmark workloads of [`asd_trace`].
//!
//! The four configurations of the paper's §5.2 are first-class:
//!
//! | [`PrefetchKind`] | processor-side prefetch | memory-side (ASD) |
//! |---|---|---|
//! | `Np`  | off | off |
//! | `Ps`  | on  | off |
//! | `Ms`  | off | on  |
//! | `Pms` | on  | on  |
//!
//! [`experiment::run_benchmark`] runs one benchmark under one
//! configuration and returns a [`RunResult`] with cycles, controller and
//! DRAM statistics, and the DRAM power/energy report; the [`figures`]
//! module regenerates every table and figure of the paper from these
//! primitives. Multi-run studies go through [`sweep::Sweep`], which fans
//! independent (benchmark, configuration) runs across OS threads with
//! bit-deterministic, push-ordered results; whole figure sets go through
//! the [`pipeline`] job graph, which collapses points shared between
//! figures into single runs and removes the per-figure barriers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod arena;
pub mod cache;
mod config;
mod error;
pub mod experiment;
pub mod figures;
pub mod pipeline;
pub mod report;
pub mod slh_study;
mod source;
pub mod sweep;
mod system;
pub mod wire;

pub use config::{engine_by_name, engine_names, PrefetchKind, RunOpts, SystemConfig};
pub use error::SimError;
pub use source::{ReplayStream, ResolvedTrace, TraceSource, TraceStream};
pub use system::{collect_trace, RunResult, System};

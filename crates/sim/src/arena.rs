//! Tournament arena: every registered prefetch engine over every
//! workload, one memoized sweep, one league table.
//!
//! The arena turns the repo from a single-paper reproduction into a
//! prefetching test bench: the paper's engines (`asd`, `next-line`,
//! `p5-style`) and the zoo (`asd_engines`) all run as the memory-side
//! engine of an otherwise identical NP machine, against a shared
//! no-prefetch baseline, over the full 30-profile workload set. Rows are
//! ranked by mean IPC delta over the baseline; coverage, accuracy, DRAM
//! energy, and prefetch traffic complete the scoreboard.
//!
//! Every job goes through [`crate::sweep::Sweep`] and the cross-figure
//! run cache: the baseline column is byte-for-byte the NP configuration
//! of the paper's four-way comparisons, so an arena following the figure
//! suite pays for zero baseline simulations, and re-running the arena in
//! the same process is entirely cache hits. Results are bit-identical
//! serial vs parallel vs cache-disabled.

use crate::config::{engine_by_name, engine_names, PrefetchKind, RunOpts, SystemConfig};
use crate::error::SimError;
use crate::experiment::mean;
use crate::pipeline::{FigureOutput, FigurePlan, Job, MetricValue};
use crate::report::{pct, ratio, Table};
use crate::sweep::Sweep;
use crate::system::RunResult;
use asd_mc::EngineKind;
use asd_telemetry::{names, Registry, TelemetryConfig, Unit};
use asd_trace::{suites, WorkloadProfile};

/// One engine's line in the league table (means over all profiles ran).
#[derive(Debug, Clone, PartialEq)]
pub struct LeagueRow {
    /// Engine registry name.
    pub engine: String,
    /// Mean IPC delta over the no-prefetch baseline, percent (the run
    /// lengths are fixed, so cycle gain is IPC gain).
    pub ipc_delta_pct: f64,
    /// Mean prefetch coverage, percent of reads served by the Prefetch
    /// Buffer.
    pub coverage_pct: f64,
    /// Mean prefetch accuracy, percent of completed prefetches consumed.
    pub accuracy_pct: f64,
    /// Mean DRAM energy delta over the baseline, percent (negative =
    /// the engine saves energy).
    pub energy_delta_pct: f64,
    /// Mean prefetch commands issued per thousand demand reads.
    pub traffic_per_kread: f64,
}

/// The arena outcome: ranked league table plus the roster it ran.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaResult {
    /// League rows, best mean IPC delta first (ties break by name, so
    /// the ordering is total and deterministic).
    pub rows: Vec<LeagueRow>,
    /// Profile names the tournament ran over.
    pub profiles: Vec<String>,
    /// Rendered league-table figure.
    pub text: String,
}

/// The default tournament roster: every selectable engine except the
/// baseline itself.
pub fn default_roster() -> Vec<String> {
    engine_names().into_iter().filter(|n| n != "none").collect()
}

/// Run the full tournament: the default roster over all 30 profiles.
///
/// # Errors
///
/// As [`arena_with`].
pub fn arena(opts: &RunOpts) -> Result<ArenaResult, SimError> {
    let roster = default_roster();
    let engines: Vec<&str> = roster.iter().map(String::as_str).collect();
    let profiles = suites::all_profiles();
    arena_with(&engines, &profiles, opts)
}

/// Run a restricted tournament: `engines` (registry names) over
/// `profiles`. The smoke tests run 2 engines over 2 profiles through
/// exactly the code path of the full arena.
///
/// # Errors
///
/// [`SimError::UnknownEngine`] for an unrecognized engine name, plus any
/// sweep error.
pub fn arena_with(
    engines: &[&str],
    profiles: &[WorkloadProfile],
    opts: &RunOpts,
) -> Result<ArenaResult, SimError> {
    let threads = if opts.smt { 2 } else { 1 };
    let kinds = resolve_roster(engines)?;
    let mut sweep = Sweep::new(opts);
    for job in arena_jobs(&kinds, profiles, threads) {
        sweep.push(&job.profile, job.cfg, &job.label);
    }
    let names: Vec<String> = kinds.into_iter().map(|(n, _)| n).collect();
    Ok(arena_assemble(&names, profiles, &sweep.run()?))
}

/// Resolve the whole roster up front so a typo fails before any
/// simulation runs.
fn resolve_roster(engines: &[&str]) -> Result<Vec<(String, EngineKind)>, SimError> {
    engines.iter().map(|name| Ok(((*name).to_string(), engine_by_name(name)?))).collect()
}

/// The tournament job list: the shared NP baseline column first
/// (identical to the figure suite's NP runs, so the cache — and the
/// pipeline's job graph — unifies them), then one column per engine, in
/// the chunk order [`arena_assemble`] consumes.
fn arena_jobs(
    kinds: &[(String, EngineKind)],
    profiles: &[WorkloadProfile],
    threads: usize,
) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(profiles.len() * (kinds.len() + 1));
    for profile in profiles {
        jobs.push(Job::new(profile, SystemConfig::for_kind(PrefetchKind::Np, threads), "NP"));
    }
    for (name, kind) in kinds {
        for profile in profiles {
            let cfg = SystemConfig::for_kind(PrefetchKind::Np, threads).with_mc(asd_mc::McConfig {
                engine: kind.clone(),
                threads,
                ..Default::default()
            });
            jobs.push(Job::new(profile, cfg, name));
        }
    }
    jobs
}

/// Assemble [`arena_jobs`] results (job order) into the ranked league
/// table.
fn arena_assemble(
    names: &[String],
    profiles: &[WorkloadProfile],
    results: &[RunResult],
) -> ArenaResult {
    let (baselines, engine_runs) = results.split_at(profiles.len());
    let mut rows: Vec<LeagueRow> = names
        .iter()
        .zip(engine_runs.chunks(profiles.len()))
        .map(|(name, runs)| league_row(name, runs, baselines))
        .collect();
    rows.sort_by(|a, b| {
        b.ipc_delta_pct.total_cmp(&a.ipc_delta_pct).then_with(|| a.engine.cmp(&b.engine))
    });

    let mut t = Table::new([
        "rank",
        "engine",
        "IPC delta vs NP",
        "coverage",
        "accuracy",
        "DRAM energy delta",
        "pf / 1k reads",
    ]);
    for (i, r) in rows.iter().enumerate() {
        t.row([
            format!("{}", i + 1),
            r.engine.clone(),
            pct(r.ipc_delta_pct),
            pct(r.coverage_pct),
            pct(r.accuracy_pct),
            pct(r.energy_delta_pct),
            ratio(r.traffic_per_kread),
        ]);
    }
    let text = format!(
        "Arena: {} engines x {} profiles, ranked by mean IPC delta over NP\n{}",
        rows.len(),
        profiles.len(),
        t.render()
    );
    ArenaResult { rows, profiles: profiles.iter().map(|p| p.name.clone()).collect(), text }
}

/// The arena's metrics block, read back from a per-engine telemetry
/// section (`arena.<engine>.<metric>` gauges) so the exposition backends
/// and the bench JSON document share one source of truth.
fn arena_metric_values(a: &ArenaResult) -> Vec<(String, MetricValue)> {
    let mut tel = Registry::section("arena.", &TelemetryConfig::metrics_only());
    for r in &a.rows {
        for (metric, unit, help, v) in [
            ("ipc_delta_pct", Unit::None, "mean IPC delta over NP, percent", r.ipc_delta_pct),
            ("coverage_pct", Unit::None, "mean prefetch coverage, percent", r.coverage_pct),
            ("accuracy_pct", Unit::None, "mean useful-prefetch fraction, percent", r.accuracy_pct),
            (
                "energy_delta_pct",
                Unit::None,
                "mean DRAM energy delta over NP, percent",
                r.energy_delta_pct,
            ),
            (
                "traffic_per_kread",
                Unit::Commands,
                "mean prefetches issued per thousand demand reads",
                r.traffic_per_kread,
            ),
        ] {
            tel.fill_gauge(&names::arena_metric(&r.engine, metric), unit, help, v);
        }
    }
    let snap = tel.snapshot();
    let league = a
        .rows
        .iter()
        .map(|r| {
            let mut rec = vec![("engine".to_string(), MetricValue::Str(r.engine.clone()))];
            for metric in [
                "ipc_delta_pct",
                "coverage_pct",
                "accuracy_pct",
                "energy_delta_pct",
                "traffic_per_kread",
            ] {
                let name = format!("arena.{}", names::arena_metric(&r.engine, metric));
                rec.push((metric.to_string(), MetricValue::F64(snap.gauge(&name).unwrap_or(0.0))));
            }
            rec
        })
        .collect();
    let mut m = vec![
        ("engines".to_string(), MetricValue::U64(a.rows.len() as u64)),
        ("profiles".to_string(), MetricValue::U64(a.profiles.len() as u64)),
    ];
    if let Some(best) = a.rows.first() {
        m.push(("winner".to_string(), MetricValue::Str(best.engine.clone())));
    }
    m.push(("league".to_string(), MetricValue::Rows(league)));
    m
}

/// The tournament as a [`FigurePlan`] for the pipeline: the roster
/// resolves immediately (a typo fails before any simulation is
/// scheduled), and the assembly produces the league text plus the
/// `arena.*` metrics block.
///
/// # Errors
///
/// [`SimError::UnknownEngine`] for an unrecognized engine name.
pub fn arena_plan(
    engines: &[&str],
    profiles: &[WorkloadProfile],
    opts: &RunOpts,
) -> Result<FigurePlan, SimError> {
    let threads = if opts.smt { 2 } else { 1 };
    let kinds = resolve_roster(engines)?;
    let jobs = arena_jobs(&kinds, profiles, threads);
    let names: Vec<String> = kinds.into_iter().map(|(n, _)| n).collect();
    let profiles = profiles.to_vec();
    Ok(FigurePlan::new("arena", opts, jobs, move |results| {
        let a = arena_assemble(&names, &profiles, results);
        let metrics = arena_metric_values(&a);
        Ok(FigureOutput { text: a.text, metrics, artifacts: Vec::new() })
    }))
}

/// Aggregate one engine's runs against the per-profile baselines.
fn league_row(name: &str, runs: &[RunResult], baselines: &[RunResult]) -> LeagueRow {
    let per = |f: &dyn Fn(&RunResult, &RunResult) -> f64| -> Vec<f64> {
        runs.iter().zip(baselines).map(|(r, np)| f(r, np)).collect()
    };
    let ipc = per(&|r, np| r.gain_over(np));
    let coverage = per(&|r, _| r.mc.prefetch_metrics().coverage_pct());
    let accuracy = per(&|r, _| r.mc.prefetch_metrics().useful_pct());
    let energy = per(&|r, np| -r.energy_reduction_over(np));
    let traffic = per(&|r, _| {
        if r.mc.reads == 0 {
            0.0
        } else {
            r.mc.prefetches_issued as f64 * 1000.0 / r.mc.reads as f64
        }
    });
    LeagueRow {
        engine: name.to_string(),
        ipc_delta_pct: mean(&ipc),
        coverage_pct: mean(&coverage),
        accuracy_pct: mean(&accuracy),
        energy_delta_pct: mean(&energy),
        traffic_per_kread: mean(&traffic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_profiles() -> Vec<WorkloadProfile> {
        ["milc", "lbm"].iter().map(|n| suites::by_name(n).unwrap()).collect()
    }

    #[test]
    fn small_arena_ranks_deterministically() {
        let opts = RunOpts { accesses: 6_000, ..RunOpts::default() };
        let a = arena_with(&["asd", "next-line"], &two_profiles(), &opts).unwrap();
        assert_eq!(a.rows.len(), 2);
        assert_eq!(a.profiles, vec!["milc", "lbm"]);
        // Deterministic: the same call reproduces the same table.
        let b = arena_with(&["asd", "next-line"], &two_profiles(), &opts).unwrap();
        assert_eq!(a, b);
        // Ranked: best IPC delta first.
        assert!(a.rows[0].ipc_delta_pct >= a.rows[1].ipc_delta_pct);
        assert!(a.text.contains("rank"), "{}", a.text);
    }

    #[test]
    fn unknown_engine_fails_before_simulating() {
        let opts = RunOpts { accesses: 1_000, ..RunOpts::default() };
        let err = arena_with(&["asd", "warp-drive"], &two_profiles(), &opts).unwrap_err();
        assert!(matches!(err, SimError::UnknownEngine { .. }), "{err:?}");
    }

    #[test]
    fn default_roster_excludes_the_baseline() {
        let roster = default_roster();
        assert!(!roster.iter().any(|n| n == "none"));
        for expected in
            ["asd", "next-line", "p5-style", "stride", "stream-table", "dspatch", "reeses"]
        {
            assert!(roster.iter().any(|n| n == expected), "{expected} missing from {roster:?}");
        }
    }
}

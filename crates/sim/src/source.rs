//! Where a simulation's access stream comes from: generated in memory,
//! replayed from an ASDT file, or captured to one and then replayed.
//!
//! [`TraceSource::Replay`] verifies the whole file — structure and
//! per-chunk checksums — before the simulation starts, so a corrupt
//! corpus fails fast with a typed [`SimError::TraceIo`] instead of
//! producing silently wrong results mid-run.
//! [`TraceSource::Capture`] is record-then-replay: the generator is
//! streamed to disk first and the simulation then runs from the file,
//! which makes `Capture` bit-identical to `Replay` of its own output by
//! construction, and bit-identical to `Generate` because recording uses
//! the same [`asd_trace::thread_seed`] derivation the in-memory path
//! uses.

use crate::config::RunOpts;
use crate::error::SimError;
use asd_trace::{suites, thread_seed, MemAccess, TraceGenerator, WorkloadProfile, LINE_SHIFT};
use asd_traceio::{record_profile, TraceIoError, TraceReader};
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

/// The origin of the access stream a [`System`](crate::System) consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSource {
    /// Generate the trace in memory from a suite profile (the default
    /// path; no file I/O).
    Generate {
        /// Suite profile name (see [`asd_trace::suites`]).
        profile: String,
        /// Base workload seed; SMT threads decorrelate via
        /// [`asd_trace::thread_seed`].
        seed: u64,
    },
    /// Replay a previously recorded ASDT file.
    Replay {
        /// Path to the `.asdt` file.
        path: PathBuf,
    },
    /// Record the profile to `path`, then replay the recording.
    Capture {
        /// Suite profile name.
        profile: String,
        /// Base workload seed.
        seed: u64,
        /// Path the `.asdt` file is written to.
        path: PathBuf,
    },
}

impl TraceSource {
    /// A [`TraceSource::Generate`] for a named suite profile.
    pub fn generate(profile: &str, seed: u64) -> Self {
        TraceSource::Generate { profile: profile.to_string(), seed }
    }

    /// A [`TraceSource::Replay`] of an existing ASDT file.
    pub fn replay(path: impl Into<PathBuf>) -> Self {
        TraceSource::Replay { path: path.into() }
    }

    /// A [`TraceSource::Capture`] recording a profile to `path` first.
    pub fn capture(profile: &str, seed: u64, path: impl Into<PathBuf>) -> Self {
        TraceSource::Capture { profile: profile.to_string(), seed, path: path.into() }
    }

    /// Resolve into per-thread access streams for a run under `opts`
    /// (`opts.smt` selects two threads, `opts.accesses` records each).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownProfile`] for an unresolvable profile name;
    /// [`SimError::TraceIo`] when a file cannot be written, is corrupt,
    /// or was recorded with a different thread count, access count, or
    /// line size than the run requires.
    pub fn resolve(&self, opts: &RunOpts) -> Result<ResolvedTrace, SimError> {
        let threads: u8 = if opts.smt { 2 } else { 1 };
        match self {
            TraceSource::Generate { profile, seed } => {
                let p = profile_named(profile)?;
                Ok(ResolvedTrace::generated(&p, *seed, threads, opts.accesses))
            }
            TraceSource::Replay { path } => ResolvedTrace::replayed(path, threads, opts.accesses),
            TraceSource::Capture { profile, seed, path } => {
                let p = profile_named(profile)?;
                record_profile(path, &p, *seed, threads, opts.accesses)
                    .map_err(|e| trace_io(path, &e))?;
                ResolvedTrace::replayed(path, threads, opts.accesses)
            }
        }
    }
}

fn profile_named(name: &str) -> Result<WorkloadProfile, SimError> {
    suites::by_name(name).ok_or_else(|| SimError::UnknownProfile { name: name.to_string() })
}

fn trace_io(path: &Path, e: &TraceIoError) -> SimError {
    SimError::TraceIo { path: path.to_path_buf(), message: e.to_string() }
}

/// A [`TraceSource`] resolved into concrete per-thread streams.
pub struct ResolvedTrace {
    /// Benchmark name for run labelling (from the profile or the ASDT
    /// header).
    pub benchmark: String,
    /// One bounded access stream per hardware thread.
    pub streams: Vec<TraceStream>,
}

impl std::fmt::Debug for ResolvedTrace {
    // Hand-written: streams hold live generators / open file readers.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedTrace")
            .field("benchmark", &self.benchmark)
            .field("threads", &self.streams.len())
            .finish()
    }
}

impl ResolvedTrace {
    /// In-memory generation: one seeded generator per thread, exactly the
    /// streams [`System::new`](crate::System::new) has always built. When
    /// the run cache is enabled the stream is served from the process-wide
    /// trace memo (see [`crate::cache`]) — runs that differ only in system
    /// configuration then share one materialized trace per thread.
    pub fn generated(profile: &WorkloadProfile, seed: u64, threads: u8, accesses: u64) -> Self {
        let streams = (0..threads)
            .map(|t| match crate::cache::trace(profile, seed, t, accesses) {
                Some(accs) => TraceStream::memoized(accs),
                None => TraceStream::generated(
                    TraceGenerator::new(profile.clone(), thread_seed(seed, t)).with_thread(t),
                    accesses,
                ),
            })
            .collect();
        ResolvedTrace { benchmark: profile.name.clone(), streams }
    }

    /// File replay: verify the whole file once, then open one filtered
    /// reader per thread.
    fn replayed(path: &Path, threads: u8, accesses: u64) -> Result<Self, SimError> {
        let reader = TraceReader::open(path).map_err(|e| trace_io(path, &e))?;
        let meta = reader.meta().clone();
        reader.verify().map_err(|e| trace_io(path, &e))?;
        if meta.threads != threads {
            return Err(SimError::TraceIo {
                path: path.to_path_buf(),
                message: format!(
                    "trace was recorded with {} thread(s) but the run needs {threads}",
                    meta.threads
                ),
            });
        }
        if meta.accesses_per_thread() != accesses {
            return Err(SimError::TraceIo {
                path: path.to_path_buf(),
                message: format!(
                    "trace holds {} accesses per thread but the run needs {accesses}",
                    meta.accesses_per_thread()
                ),
            });
        }
        if meta.line_shift != LINE_SHIFT as u8 {
            return Err(SimError::TraceIo {
                path: path.to_path_buf(),
                message: format!(
                    "trace uses {}-byte lines but this build simulates {}-byte lines",
                    1u32 << meta.line_shift,
                    asd_trace::LINE_BYTES
                ),
            });
        }
        let streams = (0..threads)
            .map(|t| {
                let r = TraceReader::open(path).map_err(|e| trace_io(path, &e))?;
                Ok(TraceStream::replayed(r, t))
            })
            .collect::<Result<Vec<_>, SimError>>()?;
        Ok(ResolvedTrace { benchmark: meta.profile, streams })
    }
}

/// Accesses decoded per refill of a [`TraceStream`]'s chunk buffer.
///
/// Large enough to amortize the per-refill dispatch into the source
/// (generator step, memo copy, or file decode) over hundreds of
/// accesses; small enough that a refill stays within one L1 cache's
/// worth of records.
const CHUNK: usize = 256;

/// One bounded per-thread access stream, from any origin.
///
/// All origins refill a dense chunk buffer [`CHUNK`] accesses at a time;
/// the consumer-facing [`Iterator::next`] is an indexed read from that
/// buffer, with no per-access dispatch into the underlying source.
pub struct TraceStream {
    /// Decoded accesses waiting to be consumed.
    buf: Vec<MemAccess>,
    /// Read cursor into `buf`.
    pos: usize,
    src: StreamSrc,
}

/// Where a [`TraceStream`]'s refills come from.
enum StreamSrc {
    /// Generated in memory, `remaining` accesses still to come.
    Generated { gen: TraceGenerator, remaining: u64 },
    /// Served from the process-wide trace memo (same records the
    /// generator would produce, materialized once and shared);
    /// `taken` records copied out so far.
    Memoized { accs: std::sync::Arc<Vec<MemAccess>>, taken: usize },
    /// Replayed from a verified ASDT file.
    Replayed(ReplayStream),
}

impl TraceStream {
    fn new(src: StreamSrc) -> Self {
        TraceStream { buf: Vec::with_capacity(CHUNK), pos: 0, src }
    }

    /// A stream of the next `accesses` records of `gen`.
    fn generated(gen: TraceGenerator, accesses: u64) -> Self {
        TraceStream::new(StreamSrc::Generated { gen, remaining: accesses })
    }

    /// A stream serving a fully materialized memoized trace.
    fn memoized(accs: std::sync::Arc<Vec<MemAccess>>) -> Self {
        TraceStream::new(StreamSrc::Memoized { accs, taken: 0 })
    }

    /// A stream replaying thread `thread`'s records from `reader`.
    fn replayed(reader: TraceReader<BufReader<File>>, thread: u8) -> Self {
        TraceStream::new(StreamSrc::Replayed(ReplayStream {
            reader,
            thread,
            raw: Vec::with_capacity(CHUNK),
        }))
    }

    /// Refill the chunk buffer from the source and serve the first
    /// refilled access, or `None` once the stream is exhausted.
    #[inline(never)]
    fn refill(&mut self) -> Option<MemAccess> {
        self.buf.clear();
        match &mut self.src {
            StreamSrc::Generated { gen, remaining } => {
                let n = CHUNK.min(usize::try_from(*remaining).unwrap_or(usize::MAX));
                gen.fill(n, &mut self.buf);
                *remaining -= self.buf.len() as u64;
            }
            StreamSrc::Memoized { accs, taken } => {
                let end = (*taken + CHUNK).min(accs.len());
                self.buf.extend_from_slice(&accs[*taken..end]);
                *taken = end;
            }
            StreamSrc::Replayed(r) => r.fill(CHUNK, &mut self.buf),
        }
        let a = self.buf.first().copied();
        self.pos = usize::from(a.is_some());
        a
    }
}

impl Iterator for TraceStream {
    type Item = MemAccess;

    #[inline]
    // asd-lint: hot
    fn next(&mut self) -> Option<MemAccess> {
        if let Some(&a) = self.buf.get(self.pos) {
            self.pos += 1;
            return Some(a);
        }
        self.refill()
    }
}

/// Replays one hardware thread's records out of a verified ASDT file.
pub struct ReplayStream {
    reader: TraceReader<BufReader<File>>,
    thread: u8,
    /// Scratch holding raw (all-thread) decoded records between the
    /// reader's chunked decode and the per-thread filter.
    raw: Vec<MemAccess>,
}

impl ReplayStream {
    /// Decode and append up to `n` of this thread's records to `out`.
    fn fill(&mut self, n: usize, out: &mut Vec<MemAccess>) {
        while out.len() < n {
            self.raw.clear();
            match self.reader.fill(n, &mut self.raw) {
                // The file was fully verified when the source resolved;
                // an error here means it changed on disk mid-run. The
                // reader fuses after an error, so ending the stream is
                // the only non-panicking option left (D005).
                Ok(0) | Err(_) => return,
                Ok(_) => out.extend(self.raw.iter().filter(|a| a.thread == self.thread)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("asd-sim-source-{}-{tag}.asdt", std::process::id()))
    }

    fn opts(accesses: u64) -> RunOpts {
        RunOpts { accesses, ..RunOpts::default() }
    }

    #[test]
    fn generate_resolves_to_generator_stream() {
        let r = TraceSource::generate("milc", 42).resolve(&opts(100)).unwrap();
        assert_eq!(r.benchmark, "milc");
        assert_eq!(r.streams.len(), 1);
        let n = r.streams.into_iter().flatten().count();
        assert_eq!(n, 100);
    }

    #[test]
    fn unknown_profile_is_typed() {
        let e = TraceSource::generate("nosuch", 1).resolve(&opts(10)).unwrap_err();
        assert!(matches!(e, SimError::UnknownProfile { .. }));
    }

    #[test]
    fn capture_then_replay_matches_generate() {
        let path = temp_path("roundtrip");
        let o = opts(400);
        let gen: Vec<Vec<MemAccess>> = TraceSource::generate("lbm", 9)
            .resolve(&o)
            .unwrap()
            .streams
            .into_iter()
            .map(Iterator::collect)
            .collect();
        let cap: Vec<Vec<MemAccess>> = TraceSource::capture("lbm", 9, &path)
            .resolve(&o)
            .unwrap()
            .streams
            .into_iter()
            .map(Iterator::collect)
            .collect();
        let rep: Vec<Vec<MemAccess>> = TraceSource::replay(&path)
            .resolve(&o)
            .unwrap()
            .streams
            .into_iter()
            .map(Iterator::collect)
            .collect();
        assert_eq!(gen, cap);
        assert_eq!(gen, rep);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn smt_replay_splits_threads() {
        let path = temp_path("smt");
        let o = RunOpts { accesses: 150, smt: true, ..RunOpts::default() };
        let r = TraceSource::capture("milc", 3, &path).resolve(&o).unwrap();
        assert_eq!(r.streams.len(), 2);
        for (t, s) in r.streams.into_iter().enumerate() {
            let accs: Vec<MemAccess> = s.collect();
            assert_eq!(accs.len(), 150);
            assert!(accs.iter().all(|a| usize::from(a.thread) == t));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_rejects_mismatched_run_shape() {
        let path = temp_path("shape");
        TraceSource::capture("milc", 3, &path).resolve(&opts(100)).unwrap();
        // Wrong access count.
        let e = TraceSource::replay(&path).resolve(&opts(200)).unwrap_err();
        assert!(matches!(e, SimError::TraceIo { .. }), "{e}");
        // Wrong thread count.
        let smt = RunOpts { accesses: 100, smt: true, ..RunOpts::default() };
        let e = TraceSource::replay(&path).resolve(&smt).unwrap_err();
        assert!(matches!(e, SimError::TraceIo { .. }), "{e}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_of_missing_file_is_typed() {
        let e = TraceSource::replay("/nonexistent/trace.asdt").resolve(&opts(10)).unwrap_err();
        assert!(matches!(e, SimError::TraceIo { .. }));
    }
}

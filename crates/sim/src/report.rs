//! Plain-text table rendering for the figure harness.

/// A simple left-aligned text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append one row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width matches header");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                line.push_str(&" ".repeat(widths[i].saturating_sub(c.len())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Format a ratio with three decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["bench", "gain"]);
        t.row(["bwaves", "45.0%"]);
        t.row(["milc", "20.2%"]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(12.34), "12.3%");
        assert_eq!(ratio(0.5), "0.500");
    }
}

//! System-level configuration: the paper's NP / PS / MS / PMS design
//! points plus run options.

use crate::error::SimError;
use crate::source::TraceSource;
use asd_core::AsdConfig;
use asd_cpu::{CoreConfig, PsKind};
use asd_dram::DramConfig;
use asd_mc::{EngineKind, McConfig};
use asd_telemetry::TelemetryConfig;

/// The four prefetching configurations compared throughout §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchKind {
    /// No prefetching: a stripped-down Power5+.
    Np,
    /// Processor-side prefetching only (the shipping Power5+).
    Ps,
    /// Memory-side ASD prefetching only.
    Ms,
    /// Both (the paper's headline configuration).
    Pms,
}

impl PrefetchKind {
    /// All four, in the paper's presentation order.
    pub const ALL: [PrefetchKind; 4] =
        [PrefetchKind::Np, PrefetchKind::Ps, PrefetchKind::Ms, PrefetchKind::Pms];

    /// The label used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PrefetchKind::Np => "NP",
            PrefetchKind::Ps => "PS",
            PrefetchKind::Ms => "MS",
            PrefetchKind::Pms => "PMS",
        }
    }

    /// Whether the processor-side prefetcher is on.
    pub fn processor_side(self) -> bool {
        matches!(self, PrefetchKind::Ps | PrefetchKind::Pms)
    }

    /// Whether the memory-side ASD prefetcher is on.
    pub fn memory_side(self) -> bool {
        matches!(self, PrefetchKind::Ms | PrefetchKind::Pms)
    }
}

/// Options for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOpts {
    /// Trace accesses per thread (the experiment length).
    pub accesses: u64,
    /// Workload seed (profiles mix their name in, so one seed works across
    /// benchmarks).
    pub seed: u64,
    /// Run with two SMT thread contexts (§5.2 SMT experiments). Per-thread
    /// Stream Filters and LHT tables are replicated automatically.
    pub smt: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts { accesses: 100_000, seed: 0x5eed, smt: false }
    }
}

impl RunOpts {
    /// Shorter runs for quick tests and timing benches.
    pub fn quick() -> Self {
        RunOpts { accesses: 20_000, ..RunOpts::default() }
    }

    /// Builder-style access count override.
    pub fn with_accesses(mut self, n: u64) -> Self {
        self.accesses = n;
        self
    }
}

/// Fully resolved hardware configuration for one run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Core (and cache hierarchy) parameters.
    pub core: CoreConfig,
    /// Memory-controller parameters.
    pub mc: McConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Where the access stream comes from. `None` (the default) generates
    /// it in memory from the profile handed to
    /// [`System::new`](crate::System::new); `Some` overrides that profile
    /// with a [`TraceSource`] (generate by name, replay a file, or
    /// capture then replay).
    pub trace: Option<TraceSource>,
    /// Observability. Off by default; when any part is enabled the run's
    /// [`RunResult`](crate::RunResult) carries a merged telemetry
    /// snapshot. Simulation results are bit-identical either way.
    pub telemetry: TelemetryConfig,
}

impl SystemConfig {
    /// The paper's hardware for a given prefetch configuration.
    pub fn for_kind(kind: PrefetchKind, threads: usize) -> Self {
        let ps = if kind.processor_side() { PsKind::Power5 } else { PsKind::None };
        let core = CoreConfig { ps, ..CoreConfig::default() };
        let engine = if kind.memory_side() {
            EngineKind::Asd(AsdConfig::default())
        } else {
            EngineKind::None
        };
        let mc = McConfig { engine, threads, ..McConfig::default() };
        SystemConfig {
            core,
            mc,
            dram: DramConfig::default(),
            trace: None,
            telemetry: TelemetryConfig::off(),
        }
    }

    /// Override the telemetry configuration.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Override the memory-controller configuration (keeping the engine's
    /// thread count consistent).
    pub fn with_mc(mut self, mc: McConfig) -> Self {
        self.mc = mc;
        self
    }

    /// Override the trace source (file replay, capture, or generate by
    /// name).
    pub fn with_trace(mut self, source: TraceSource) -> Self {
        self.trace = Some(source);
        self
    }

    /// Select the memory-side engine by its stable registry name (see
    /// [`engine_by_name`]), keeping everything else as configured.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownEngine`] when `name` matches neither a built-in
    /// engine nor a zoo engine.
    pub fn with_engine_named(mut self, name: &str) -> Result<Self, SimError> {
        self.mc.engine = engine_by_name(name)?;
        Ok(self)
    }
}

/// Resolve a memory-side engine by stable string name: the built-ins
/// (`none`, `asd`, `next-line`, `p5-style`) at their paper-default
/// tunings, then the prefetcher zoo (`asd_engines`) registry.
///
/// # Errors
///
/// [`SimError::UnknownEngine`] (listing every known name) when `name`
/// does not resolve — the typed replacement for the old panic/ignore
/// paths in CLI drivers.
pub fn engine_by_name(name: &str) -> Result<EngineKind, SimError> {
    match name {
        "none" => Ok(EngineKind::None),
        "asd" => Ok(EngineKind::Asd(AsdConfig::default())),
        "next-line" => Ok(EngineKind::NextLine),
        "p5-style" => Ok(EngineKind::P5Style),
        other => asd_engines::by_name(other).ok_or_else(|| SimError::UnknownEngine {
            name: other.to_string(),
            known: engine_names(),
        }),
    }
}

/// Every name [`engine_by_name`] accepts: built-ins first, then the zoo
/// catalog in its display order.
pub fn engine_names() -> Vec<String> {
    let mut names: Vec<String> =
        ["none", "asd", "next-line", "p5-style"].iter().map(|s| s.to_string()).collect();
    names.extend(asd_engines::names().iter().map(|s| s.to_string()));
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_prefetchers() {
        assert!(!PrefetchKind::Np.processor_side() && !PrefetchKind::Np.memory_side());
        assert!(PrefetchKind::Ps.processor_side() && !PrefetchKind::Ps.memory_side());
        assert!(!PrefetchKind::Ms.processor_side() && PrefetchKind::Ms.memory_side());
        assert!(PrefetchKind::Pms.processor_side() && PrefetchKind::Pms.memory_side());
    }

    #[test]
    fn system_config_engine_matches_kind() {
        let np = SystemConfig::for_kind(PrefetchKind::Np, 1);
        assert_eq!(np.mc.engine, EngineKind::None);
        assert_eq!(np.core.ps, PsKind::None);
        let pms = SystemConfig::for_kind(PrefetchKind::Pms, 2);
        assert!(matches!(pms.mc.engine, EngineKind::Asd(_)));
        assert_eq!(pms.core.ps, PsKind::Power5);
        assert_eq!(pms.mc.threads, 2);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = PrefetchKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["NP", "PS", "MS", "PMS"]);
    }

    #[test]
    fn engines_resolve_by_name() {
        assert_eq!(engine_by_name("none").unwrap(), EngineKind::None);
        assert_eq!(engine_by_name("next-line").unwrap(), EngineKind::NextLine);
        assert!(matches!(engine_by_name("asd").unwrap(), EngineKind::Asd(_)));
        for zoo in asd_engines::names() {
            assert!(matches!(engine_by_name(zoo).unwrap(), EngineKind::Custom(_)), "{zoo}");
        }
        // Every advertised name resolves.
        for name in engine_names() {
            assert!(engine_by_name(&name).is_ok(), "{name}");
        }
    }

    #[test]
    fn unknown_engine_is_a_typed_error() {
        let err = engine_by_name("warp-drive").unwrap_err();
        let SimError::UnknownEngine { name, known } = &err else {
            panic!("expected UnknownEngine, got {err:?}");
        };
        assert_eq!(name, "warp-drive");
        assert_eq!(*known, engine_names());
        let cfg = SystemConfig::for_kind(PrefetchKind::Np, 1).with_engine_named("bogus");
        assert!(matches!(cfg, Err(SimError::UnknownEngine { .. })));
    }

    #[test]
    fn with_engine_named_swaps_only_the_engine() {
        let base = SystemConfig::for_kind(PrefetchKind::Np, 1);
        let cfg = base.clone().with_engine_named("stride").unwrap();
        assert!(matches!(cfg.mc.engine, EngineKind::Custom(_)));
        assert_eq!(cfg.mc.threads, base.mc.threads);
        assert_eq!(cfg.core.ps, base.core.ps);
    }
}

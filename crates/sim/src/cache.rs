//! Cross-figure memoized run cache.
//!
//! Every simulation is a pure function of its [`WorkloadProfile`],
//! [`RunOpts`], and [`SystemConfig`] (minus the reporting label), so
//! figures that sweep overlapping grids — fig13's PMS column repeats
//! fig6's, the PB/LPQ size sweeps of fig14/fig15 include the default
//! point, fig11's first configuration is the stock PMS machine — can
//! share one simulation per distinct point. [`Sweep`](crate::sweep::Sweep)
//! consults this process-wide cache before running a job and re-stamps
//! the cached [`RunResult`] with the job's label.
//!
//! **Soundness.** The key is the full `Debug` rendering of every input
//! (no hashing, so no collisions); entries are stored with the label
//! cleared. Two categories of runs are never cached: jobs with a
//! [`TraceSource`](crate::TraceSource) (file contents can change between
//! runs) and jobs whose engine is an *anonymous* [`EngineKind::Custom`]
//! (a factory without [`asd_mc::EngineFactory::stable_id`] is opaque — its
//! `Debug` form cannot distinguish two different factories). Custom
//! factories that do declare a stable id (the prefetcher zoo) are keyed
//! by that id alongside the `Debug` render, which is sound under the
//! `stable_id` contract documented in `asd-mc`.
//! Concurrent workers may race to compute the same key; both compute the
//! same deterministic result, so the duplicate insert is benign.
//!
//! Set `ASD_RUN_CACHE=0` to disable (every lookup misses and nothing is
//! stored); [`stats`] reports hits/misses for telemetry exposition.
//!
//! **Disk tier.** On top of the process-wide memory store sits an
//! optional persistent tier: a directory of content-addressed record
//! files ([`set_disk_dir`], or the `ASD_DISK_CACHE` environment
//! variable), one per cache key, named by the key's FNV-1a hash with the
//! full key stored inside the record as a collision guard. Records carry
//! a CRC-32 over their contents in a header mirroring the ASDT chunk
//! framing ([`asd_traceio::format`]); a corrupt, truncated, or
//! version-skewed record is **evicted and recomputed** — never served and
//! never a panic. Results survive process restarts and dedupe across
//! clients of the `asd-serve` daemon; only telemetry-free results are
//! persisted (see [`crate::wire`]). Concurrent writers may race on one
//! key, but both write byte-identical records via an atomic
//! temp-file-then-rename, so whichever rename lands last is invisible.

use crate::config::{RunOpts, SystemConfig};
use crate::system::RunResult;
use asd_mc::EngineKind;
use asd_trace::{thread_seed, MemAccess, TraceGenerator, WorkloadProfile};
use asd_traceio::format::crc32;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static FLIGHT_LEADS: AtomicU64 = AtomicU64::new(0);
static FLIGHT_JOINS: AtomicU64 = AtomicU64::new(0);
static TRACE_HITS: AtomicU64 = AtomicU64::new(0);
static TRACE_MISSES: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_MISSES: AtomicU64 = AtomicU64::new(0);
static DISK_WRITES: AtomicU64 = AtomicU64::new(0);
static DISK_EVICTIONS: AtomicU64 = AtomicU64::new(0);

fn store() -> &'static Mutex<BTreeMap<String, RunResult>> {
    static STORE: OnceLock<Mutex<BTreeMap<String, RunResult>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn trace_store() -> &'static Mutex<BTreeMap<String, Arc<Vec<MemAccess>>>> {
    static STORE: OnceLock<Mutex<BTreeMap<String, Arc<Vec<MemAccess>>>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Whether the cache is enabled (`ASD_RUN_CACHE` unset or not `"0"`).
/// Checked once per process.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("ASD_RUN_CACHE").map_or(true, |v| v != "0"))
}

/// Hit/miss counters since process start (misses are only counted for
/// cacheable jobs; uncacheable jobs bypass the cache entirely).
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Hit/miss counters of the per-thread trace memo.
pub fn trace_stats() -> (u64, u64) {
    (TRACE_HITS.load(Ordering::Relaxed), TRACE_MISSES.load(Ordering::Relaxed))
}

/// Disk-tier counters since process start:
/// `(hits, misses, writes, evictions)`. Misses are only counted while a
/// disk directory is configured; evictions count corrupt or unreadable
/// records that were deleted and recomputed.
pub fn disk_stats() -> (u64, u64, u64, u64) {
    (
        DISK_HITS.load(Ordering::Relaxed),
        DISK_MISSES.load(Ordering::Relaxed),
        DISK_WRITES.load(Ordering::Relaxed),
        DISK_EVICTIONS.load(Ordering::Relaxed),
    )
}

fn disk_dir_slot() -> &'static Mutex<Option<PathBuf>> {
    static SLOT: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    SLOT.get_or_init(|| {
        let from_env = std::env::var("ASD_DISK_CACHE")
            .ok()
            .filter(|v| !v.is_empty() && v != "0")
            .map(PathBuf::from);
        Mutex::new(from_env)
    })
}

/// Configure the persistent disk tier at runtime: `Some(dir)` enables it
/// (the directory is created on first write), `None` disables it. The
/// initial value comes from the `ASD_DISK_CACHE` environment variable
/// (unset, empty, or `"0"` means off). The in-memory tier is unaffected.
pub fn set_disk_dir(dir: Option<PathBuf>) {
    // asd-lint: allow(D005) -- configuration slot; poisoning means a sibling thread panicked mid-run and propagating is correct
    *disk_dir_slot().lock().expect("disk dir slot poisoned") = dir;
}

/// The directory the disk tier currently persists to, if enabled.
pub fn disk_dir() -> Option<PathBuf> {
    // asd-lint: allow(D005) -- configuration slot; poisoning means a sibling thread panicked mid-run and propagating is correct
    disk_dir_slot().lock().expect("disk dir slot poisoned").clone()
}

/// FNV-1a 64-bit hash of `key` — the content address a disk record files
/// under. Collisions are tolerated (the record stores the full key and a
/// mismatch reads as a miss), so the hash only needs to spread names.
pub fn fnv64(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Magic bytes opening every disk-cache record (`ASDC` = ASD Cache).
pub const DISK_MAGIC: [u8; 4] = *b"ASDC";

/// Disk record version; bump on any layout change so stale records read
/// as corrupt (and are evicted) instead of misdecoding.
pub const DISK_VERSION: u16 = 1;

/// The file a `key` persists to under `dir`.
pub fn disk_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{:016x}.run", fnv64(key)))
}

/// Serialize one disk record: magic, version, key length, payload
/// length, CRC-32 over key + payload, then key and payload — the same
/// length-plus-checksum framing an ASDT chunk uses.
fn encode_disk_record(key: &str, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(18 + key.len() + payload.len());
    buf.extend_from_slice(&DISK_MAGIC);
    buf.extend_from_slice(&DISK_VERSION.to_le_bytes());
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc_input = Vec::with_capacity(key.len() + payload.len());
    crc_input.extend_from_slice(key.as_bytes());
    crc_input.extend_from_slice(payload);
    buf.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    buf.extend_from_slice(key.as_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Parse and verify a disk record, returning `(key, payload)`. `None` on
/// any structural or checksum problem.
fn decode_disk_record(bytes: &[u8]) -> Option<(String, Vec<u8>)> {
    fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
        let end = pos.checked_add(n)?;
        let s = bytes.get(*pos..end)?;
        *pos = end;
        Some(s)
    }
    let mut pos = 0usize;
    if take(bytes, &mut pos, 4)? != DISK_MAGIC {
        return None;
    }
    if u16::from_le_bytes(take(bytes, &mut pos, 2)?.try_into().ok()?) != DISK_VERSION {
        return None;
    }
    let key_len =
        usize::try_from(u32::from_le_bytes(take(bytes, &mut pos, 4)?.try_into().ok()?)).ok()?;
    let payload_len =
        usize::try_from(u32::from_le_bytes(take(bytes, &mut pos, 4)?.try_into().ok()?)).ok()?;
    let crc = u32::from_le_bytes(take(bytes, &mut pos, 4)?.try_into().ok()?);
    let body = bytes.get(pos..)?;
    if body.len() != key_len.checked_add(payload_len)? || crc32(body) != crc {
        return None;
    }
    let key = std::str::from_utf8(body.get(..key_len)?).ok()?.to_string();
    Some((key, body.get(key_len..)?.to_vec()))
}

/// Look `key` up in the disk tier. Corrupt records are evicted. The
/// returned result carries an empty label, exactly like the memory
/// store's entries.
fn disk_load(key: &str) -> Option<RunResult> {
    let dir = disk_dir()?;
    let path = disk_path(&dir, key);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(_) => {
            DISK_MISSES.fetch_add(1, Ordering::Relaxed);
            return None;
        }
    };
    let decoded = decode_disk_record(&bytes)
        .filter(|(k, _)| k == key)
        .and_then(|(_, payload)| crate::wire::decode_result(&payload));
    match decoded {
        Some(result) => {
            DISK_HITS.fetch_add(1, Ordering::Relaxed);
            Some(result)
        }
        None => {
            // Corrupt, truncated, version-skewed, or an FNV collision:
            // drop the record so the slot is recomputed cleanly.
            let _ = std::fs::remove_file(&path);
            DISK_EVICTIONS.fetch_add(1, Ordering::Relaxed);
            DISK_MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Persist a (label-cleared) result under `key`. Failures are silent —
/// the disk tier is an optimization, never a correctness dependency.
fn disk_store(key: &str, stored: &RunResult) {
    let Some(dir) = disk_dir() else { return };
    let Some(payload) = crate::wire::encode_result(stored) else { return };
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let record = encode_disk_record(key, &payload);
    let final_path = disk_path(&dir, key);
    let tmp = dir.join(format!("{:016x}.tmp-{}", fnv64(key), std::process::id()));
    let write = std::fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(&record).and_then(|()| f.sync_all()));
    if write.is_ok() && std::fs::rename(&tmp, &final_path).is_ok() {
        DISK_WRITES.fetch_add(1, Ordering::Relaxed);
    } else {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Write a human-readable index of the disk tier (`index.txt` in the
/// cache directory): one `hash<TAB>benchmark<TAB>key` line per valid
/// record, sorted by hash. The daemon persists this on graceful shutdown
/// so operators can see what a cache directory holds without a decoder.
///
/// # Errors
///
/// Any I/O error reading the directory or writing the index.
pub fn persist_disk_index() -> std::io::Result<usize> {
    let Some(dir) = disk_dir() else { return Ok(0) };
    // An idle daemon may shut down before its first disk write; an empty
    // index is still a valid index.
    std::fs::create_dir_all(&dir)?;
    let mut lines: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("run") {
            continue;
        }
        let Ok(bytes) = std::fs::read(&path) else { continue };
        if let Some((key, payload)) = decode_disk_record(&bytes) {
            let bench = crate::wire::decode_result(&payload)
                .map_or_else(|| "?".to_string(), |r| r.benchmark);
            lines.push(format!("{:016x}\t{bench}\t{key}", fnv64(&key)));
        }
    }
    lines.sort();
    let count = lines.len();
    let mut body = lines.join("\n");
    body.push('\n');
    std::fs::write(dir.join("index.txt"), body)?;
    Ok(count)
}

/// Number of valid-looking record files currently in the disk tier (a
/// cheap directory scan; contents are not verified).
pub fn disk_entry_count() -> usize {
    let Some(dir) = disk_dir() else { return 0 };
    let Ok(entries) = std::fs::read_dir(&dir) else { return 0 };
    entries
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("run"))
        .count()
}

/// A memoized per-thread access stream: runs that differ only in system
/// configuration (the four-way comparisons, the MC/PB/filter sweeps)
/// consume byte-for-byte the same trace, so it is generated once per
/// `(profile, seed, thread, accesses)` and shared. Returns `None` when
/// the cache is disabled — the caller then streams from the generator
/// exactly as before.
///
/// The materialized vector is what `generator.take(accesses)` yields, so
/// replaying it is bit-identical to generating by construction.
pub(crate) fn trace(
    profile: &WorkloadProfile,
    seed: u64,
    thread: u8,
    accesses: u64,
) -> Option<Arc<Vec<MemAccess>>> {
    if !enabled() {
        return None;
    }
    let key = format!("{profile:?}|{seed}|{thread}|{accesses}");
    {
        // asd-lint: allow(D005) -- cache poisoning means a sibling worker panicked mid-run; propagating is correct
        let store = trace_store().lock().expect("trace cache poisoned");
        if let Some(v) = store.get(&key) {
            TRACE_HITS.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(v));
        }
    }
    TRACE_MISSES.fetch_add(1, Ordering::Relaxed);
    // Generate outside the lock: concurrent workers may duplicate the
    // work, but both produce the identical vector (deterministic seed),
    // so whichever insert lands last is indistinguishable.
    let gen = TraceGenerator::new(profile.clone(), thread_seed(seed, thread)).with_thread(thread);
    let v: Arc<Vec<MemAccess>> = Arc::new(gen.take(accesses as usize).collect());
    // asd-lint: allow(D005) -- cache poisoning means a sibling worker panicked mid-run; propagating is correct
    trace_store().lock().expect("trace cache poisoned").insert(key, Arc::clone(&v));
    Some(v)
}

/// The canonical cache key for a job, or `None` when the job must not be
/// cached (cache disabled, file-backed trace source, or anonymous custom
/// engine).
pub(crate) fn key(cfg: &SystemConfig, profile: &WorkloadProfile, opts: &RunOpts) -> Option<String> {
    if !enabled() || cfg.trace.is_some() {
        return None;
    }
    let engine_id = match &cfg.mc.engine {
        // Custom engines are admitted only with an explicit memoization
        // identity; the id joins the key so two factories with the same
        // Debug render but different ids never collide.
        EngineKind::Custom(factory) => factory.stable_id()?,
        _ => "",
    };
    Some(format!(
        "{profile:?}|{opts:?}|{core:?}|{mc:?}|{dram:?}|{tel:?}|{engine_id}",
        core = cfg.core,
        mc = cfg.mc,
        dram = cfg.dram,
        tel = cfg.telemetry,
    ))
}

/// Tier lookup without touching the hit/miss counters: memory tier
/// first, then the disk tier (a disk hit is promoted into memory so
/// later lookups stay lock-cheap). The result is re-stamped with
/// `label`. [`get`] and [`claim`] layer their own accounting on top so
/// a single-flight joiner's retry loop does not inflate the miss count.
fn lookup(key: &str, label: &str) -> Option<RunResult> {
    // asd-lint: allow(D005) -- cache poisoning means a sibling worker panicked mid-run; propagating is correct
    let hit = store().lock().expect("run cache poisoned").get(key).cloned();
    let hit = match hit {
        Some(r) => Some(r),
        None => {
            let from_disk = disk_load(key);
            if let Some(r) = &from_disk {
                // asd-lint: allow(D005) -- cache poisoning means a sibling worker panicked mid-run; propagating is correct
                store().lock().expect("run cache poisoned").insert(key.to_string(), r.clone());
            }
            from_disk
        }
    };
    hit.map(|mut r| {
        r.config = label.to_string();
        r
    })
}

/// Look up a cached result, re-stamped with `label`. Counts as one
/// run-cache hit whichever tier served it — both avoid a simulation.
/// Production code goes through [`claim`]; the tests exercise the tiers
/// directly through this.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn get(key: &str, label: &str) -> Option<RunResult> {
    match lookup(key, label) {
        Some(r) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            Some(r)
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Store a result under `key` with the reporting label cleared, in both
/// tiers (the disk write is skipped when no directory is configured or
/// the result carries a telemetry snapshot).
pub(crate) fn put(key: String, result: &RunResult) {
    let mut stored = result.clone();
    stored.config = String::new();
    disk_store(&key, &stored);
    // asd-lint: allow(D005) -- cache poisoning means a sibling worker panicked mid-run; propagating is correct
    store().lock().expect("run cache poisoned").insert(key, stored);
}

/// The set of cache keys currently being computed somewhere in this
/// process, plus the condvar joiners park on. See [`claim`].
struct FlightTable {
    keys: Mutex<BTreeSet<String>>,
    landed: Condvar,
}

fn flights() -> &'static FlightTable {
    static TABLE: OnceLock<FlightTable> = OnceLock::new();
    TABLE.get_or_init(|| FlightTable { keys: Mutex::new(BTreeSet::new()), landed: Condvar::new() })
}

/// Single-flight counters since process start: `(leads, joins)`. A lead
/// is a claim that went on to simulate; a join is a claim that parked on
/// someone else's in-flight run instead of recomputing it.
pub fn flight_stats() -> (u64, u64) {
    (FLIGHT_LEADS.load(Ordering::Relaxed), FLIGHT_JOINS.load(Ordering::Relaxed))
}

/// Outcome of [`claim`]: either the cache already holds (or an in-flight
/// leader just produced) the result, or the caller is now the leader and
/// must simulate, then [`FlightLease::complete`] the lease.
pub(crate) enum Claim {
    /// A cached result, re-stamped with the claimant's label (boxed:
    /// [`RunResult`] is an order of magnitude larger than the lease).
    Hit(Box<RunResult>),
    /// The claimant leads this key; every concurrent claimant for the
    /// same key parks until the lease completes or drops.
    Lead(FlightLease),
}

/// Exclusive right to compute one cache key. Obtained from [`claim`];
/// the holder runs the simulation and calls [`FlightLease::complete`].
/// Dropping the lease without completing (the simulation failed) wakes
/// parked joiners so one of them re-claims and recomputes — an error is
/// never published as a result.
pub(crate) struct FlightLease {
    key: String,
    completed: bool,
}

impl FlightLease {
    /// Publish `result` to both cache tiers and release every joiner
    /// parked on this key.
    pub(crate) fn complete(mut self, result: &RunResult) {
        put(self.key.clone(), result);
        self.completed = true;
        release(&self.key);
    }
}

impl Drop for FlightLease {
    fn drop(&mut self) {
        if !self.completed {
            release(&self.key);
        }
    }
}

fn release(key: &str) {
    let table = flights();
    // asd-lint: allow(D005) -- flight table poisoning means a sibling worker panicked mid-run; propagating is correct
    table.keys.lock().expect("flight table poisoned").remove(key);
    table.landed.notify_all();
}

/// Claim `key`, the single-flight entry point: a cached result returns
/// as [`Claim::Hit`]; an unclaimed key makes the caller the leader
/// ([`Claim::Lead`]); a key already in flight parks the caller until the
/// leader lands, then retries (normally a hit — a re-claim only happens
/// when the leader failed). Exactly one simulation runs per key no
/// matter how many figures or connections request it concurrently.
///
/// Lock order is flight table → store (via [`lookup`]); [`put`] and
/// [`release`] each take one lock at a time, so the order is acyclic.
pub(crate) fn claim(key: &str, label: &str) -> Claim {
    loop {
        if let Some(hit) = lookup(key, label) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Claim::Hit(Box::new(hit));
        }
        let table = flights();
        // asd-lint: allow(D005) -- flight table poisoning means a sibling worker panicked mid-run; propagating is correct
        let mut keys = table.keys.lock().expect("flight table poisoned");
        if !keys.contains(key) {
            // Re-check the store under the flight lock: a leader may have
            // completed between our miss above and acquiring the lock.
            if let Some(hit) = lookup(key, label) {
                HITS.fetch_add(1, Ordering::Relaxed);
                return Claim::Hit(Box::new(hit));
            }
            keys.insert(key.to_string());
            MISSES.fetch_add(1, Ordering::Relaxed);
            FLIGHT_LEADS.fetch_add(1, Ordering::Relaxed);
            return Claim::Lead(FlightLease { key: key.to_string(), completed: false });
        }
        FLIGHT_JOINS.fetch_add(1, Ordering::Relaxed);
        while keys.contains(key) {
            // asd-lint: allow(D005) -- flight table poisoning means a sibling worker panicked mid-run; propagating is correct
            keys = table.landed.wait(keys).expect("flight table poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchKind;
    use crate::source::TraceSource;

    fn milc() -> WorkloadProfile {
        asd_trace::suites::by_name("milc").expect("suite profile")
    }

    #[test]
    fn key_covers_all_inputs() {
        let opts = RunOpts::quick();
        let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1);
        let base = key(&cfg, &milc(), &opts).expect("cacheable");

        // Same inputs, same key.
        assert_eq!(key(&cfg, &milc(), &opts), Some(base.clone()));

        // Any input change must change the key.
        let other_opts = RunOpts { seed: 1, ..RunOpts::quick() };
        assert_ne!(key(&cfg, &milc(), &other_opts), Some(base.clone()));
        let other_cfg = SystemConfig::for_kind(PrefetchKind::Np, 1);
        assert_ne!(key(&other_cfg, &milc(), &opts), Some(base.clone()));
        let other_profile = asd_trace::suites::by_name("lbm").expect("suite profile");
        assert_ne!(key(&cfg, &other_profile, &opts), Some(base));
    }

    #[test]
    fn trace_sourced_jobs_are_not_cached() {
        let opts = RunOpts::quick();
        let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1)
            .with_trace(TraceSource::generate("milc", 0x5eed));
        assert_eq!(key(&cfg, &milc(), &opts), None);
    }

    /// Disk-tier tests mutate the process-global directory slot, so they
    /// serialize on this lock and restore `None` before releasing it.
    fn disk_test_lock() -> &'static Mutex<u32> {
        static LOCK: OnceLock<Mutex<u32>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(0))
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("asd-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn sample_result() -> RunResult {
        let opts = RunOpts::quick();
        let cfg = SystemConfig::for_kind(PrefetchKind::Ms, 1);
        crate::system::System::new(cfg, &milc(), &opts)
            .expect("valid config")
            .with_label("MS")
            .run()
    }

    #[test]
    fn disk_record_framing_roundtrips_and_rejects_corruption() {
        let payload = b"payload bytes".to_vec();
        let record = encode_disk_record("some|key", &payload);
        assert_eq!(decode_disk_record(&record), Some(("some|key".to_string(), payload.clone())));
        // Every truncation is rejected, not panicked on.
        for cut in 0..record.len() {
            assert_eq!(decode_disk_record(&record[..cut]), None, "cut at {cut}");
        }
        // Any single bit flip breaks either the header or the CRC.
        for byte in 0..record.len() {
            let mut bad = record.clone();
            bad[byte] ^= 0x10;
            assert_eq!(decode_disk_record(&bad), None, "flip at {byte}");
        }
    }

    #[test]
    fn disk_tier_stores_loads_and_evicts_corrupt_records() {
        let _guard = disk_test_lock().lock().expect("test lock");
        let dir = scratch_dir("roundtrip");
        set_disk_dir(Some(dir.clone()));
        let result = sample_result();
        let mut stored = result.clone();
        stored.config = String::new();

        let key = "disk-tier-test|roundtrip";
        disk_store(key, &stored);
        let path = disk_path(&dir, key);
        assert!(path.exists(), "record file written");
        let loaded = disk_load(key).expect("disk hit");
        assert_eq!(format!("{loaded:?}"), format!("{stored:?}"));

        // A key that hashes elsewhere misses without touching the record.
        let (_, _, _, ev0) = disk_stats();
        assert!(disk_load("disk-tier-test|other").is_none());
        assert!(path.exists());

        // Corrupt the payload: the load fails, the record is evicted,
        // and the slot reads as a miss from then on.
        let mut bytes = std::fs::read(&path).expect("read record");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write corrupt record");
        assert!(disk_load(key).is_none(), "corrupt record must not decode");
        assert!(!path.exists(), "corrupt record evicted");
        let (_, _, _, ev1) = disk_stats();
        assert!(ev1 > ev0, "eviction counted");

        set_disk_dir(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_tier_serves_get_after_memory_miss() {
        let _guard = disk_test_lock().lock().expect("test lock");
        let dir = scratch_dir("get");
        set_disk_dir(Some(dir.clone()));
        let mut stored = sample_result();
        stored.config = String::new();

        // A synthetic key no simulation path produces: the memory store
        // cannot contain it, so `get` must fall through to disk.
        let key = "disk-tier-test|get-path";
        disk_store(key, &stored);
        let (h0, _) = stats();
        let hit = get(key, "RELABELED").expect("disk-backed get");
        assert_eq!(hit.config, "RELABELED");
        assert_eq!(hit.cycles, stored.cycles);
        let (h1, _) = stats();
        assert_eq!(h1, h0 + 1, "disk hit counts as a run-cache hit");
        // Promotion: the second get is served from memory even with the
        // disk tier off.
        set_disk_dir(None);
        assert!(get(key, "AGAIN").is_some());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_index_lists_valid_records() {
        let _guard = disk_test_lock().lock().expect("test lock");
        let dir = scratch_dir("index");
        set_disk_dir(Some(dir.clone()));
        let mut stored = sample_result();
        stored.config = String::new();
        disk_store("disk-tier-test|index-a", &stored);
        disk_store("disk-tier-test|index-b", &stored);
        std::fs::write(dir.join("feedbeefdeadc0de.run"), b"garbage").expect("write junk");
        assert_eq!(disk_entry_count(), 3);
        let indexed = persist_disk_index().expect("index written");
        assert_eq!(indexed, 2, "only valid records indexed");
        let body = std::fs::read_to_string(dir.join("index.txt")).expect("index file");
        assert!(body.contains("disk-tier-test|index-a"));
        assert!(body.contains("\tmilc\t"));

        set_disk_dir(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64("foobar"), 0x85944171f73967e8);
    }
}

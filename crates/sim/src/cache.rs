//! Cross-figure memoized run cache.
//!
//! Every simulation is a pure function of its [`WorkloadProfile`],
//! [`RunOpts`], and [`SystemConfig`] (minus the reporting label), so
//! figures that sweep overlapping grids — fig13's PMS column repeats
//! fig6's, the PB/LPQ size sweeps of fig14/fig15 include the default
//! point, fig11's first configuration is the stock PMS machine — can
//! share one simulation per distinct point. [`Sweep`](crate::sweep::Sweep)
//! consults this process-wide cache before running a job and re-stamps
//! the cached [`RunResult`] with the job's label.
//!
//! **Soundness.** The key is the full `Debug` rendering of every input
//! (no hashing, so no collisions); entries are stored with the label
//! cleared. Two categories of runs are never cached: jobs with a
//! [`TraceSource`](crate::TraceSource) (file contents can change between
//! runs) and jobs whose engine is an *anonymous* [`EngineKind::Custom`]
//! (a factory without [`asd_mc::EngineFactory::stable_id`] is opaque — its
//! `Debug` form cannot distinguish two different factories). Custom
//! factories that do declare a stable id (the prefetcher zoo) are keyed
//! by that id alongside the `Debug` render, which is sound under the
//! `stable_id` contract documented in `asd-mc`.
//! Concurrent workers may race to compute the same key; both compute the
//! same deterministic result, so the duplicate insert is benign.
//!
//! Set `ASD_RUN_CACHE=0` to disable (every lookup misses and nothing is
//! stored); [`stats`] reports hits/misses for telemetry exposition.

use crate::config::{RunOpts, SystemConfig};
use crate::system::RunResult;
use asd_mc::EngineKind;
use asd_trace::{thread_seed, MemAccess, TraceGenerator, WorkloadProfile};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static TRACE_HITS: AtomicU64 = AtomicU64::new(0);
static TRACE_MISSES: AtomicU64 = AtomicU64::new(0);

fn store() -> &'static Mutex<BTreeMap<String, RunResult>> {
    static STORE: OnceLock<Mutex<BTreeMap<String, RunResult>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn trace_store() -> &'static Mutex<BTreeMap<String, Arc<Vec<MemAccess>>>> {
    static STORE: OnceLock<Mutex<BTreeMap<String, Arc<Vec<MemAccess>>>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Whether the cache is enabled (`ASD_RUN_CACHE` unset or not `"0"`).
/// Checked once per process.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("ASD_RUN_CACHE").map_or(true, |v| v != "0"))
}

/// Hit/miss counters since process start (misses are only counted for
/// cacheable jobs; uncacheable jobs bypass the cache entirely).
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Hit/miss counters of the per-thread trace memo.
pub fn trace_stats() -> (u64, u64) {
    (TRACE_HITS.load(Ordering::Relaxed), TRACE_MISSES.load(Ordering::Relaxed))
}

/// A memoized per-thread access stream: runs that differ only in system
/// configuration (the four-way comparisons, the MC/PB/filter sweeps)
/// consume byte-for-byte the same trace, so it is generated once per
/// `(profile, seed, thread, accesses)` and shared. Returns `None` when
/// the cache is disabled — the caller then streams from the generator
/// exactly as before.
///
/// The materialized vector is what `generator.take(accesses)` yields, so
/// replaying it is bit-identical to generating by construction.
pub(crate) fn trace(
    profile: &WorkloadProfile,
    seed: u64,
    thread: u8,
    accesses: u64,
) -> Option<Arc<Vec<MemAccess>>> {
    if !enabled() {
        return None;
    }
    let key = format!("{profile:?}|{seed}|{thread}|{accesses}");
    {
        // asd-lint: allow(D005) -- cache poisoning means a sibling worker panicked mid-run; propagating is correct
        let store = trace_store().lock().expect("trace cache poisoned");
        if let Some(v) = store.get(&key) {
            TRACE_HITS.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(v));
        }
    }
    TRACE_MISSES.fetch_add(1, Ordering::Relaxed);
    // Generate outside the lock: concurrent workers may duplicate the
    // work, but both produce the identical vector (deterministic seed),
    // so whichever insert lands last is indistinguishable.
    let gen = TraceGenerator::new(profile.clone(), thread_seed(seed, thread)).with_thread(thread);
    let v: Arc<Vec<MemAccess>> = Arc::new(gen.take(accesses as usize).collect());
    // asd-lint: allow(D005) -- cache poisoning means a sibling worker panicked mid-run; propagating is correct
    trace_store().lock().expect("trace cache poisoned").insert(key, Arc::clone(&v));
    Some(v)
}

/// The canonical cache key for a job, or `None` when the job must not be
/// cached (cache disabled, file-backed trace source, or anonymous custom
/// engine).
pub(crate) fn key(cfg: &SystemConfig, profile: &WorkloadProfile, opts: &RunOpts) -> Option<String> {
    if !enabled() || cfg.trace.is_some() {
        return None;
    }
    let engine_id = match &cfg.mc.engine {
        // Custom engines are admitted only with an explicit memoization
        // identity; the id joins the key so two factories with the same
        // Debug render but different ids never collide.
        EngineKind::Custom(factory) => factory.stable_id()?,
        _ => "",
    };
    Some(format!(
        "{profile:?}|{opts:?}|{core:?}|{mc:?}|{dram:?}|{tel:?}|{engine_id}",
        core = cfg.core,
        mc = cfg.mc,
        dram = cfg.dram,
        tel = cfg.telemetry,
    ))
}

/// Look up a cached result, re-stamped with `label`.
pub(crate) fn get(key: &str, label: &str) -> Option<RunResult> {
    // asd-lint: allow(D005) -- cache poisoning means a sibling worker panicked mid-run; propagating is correct
    let hit = store().lock().expect("run cache poisoned").get(key).cloned();
    match hit {
        Some(mut r) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            r.config = label.to_string();
            Some(r)
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Store a result under `key` with the reporting label cleared.
pub(crate) fn put(key: String, result: &RunResult) {
    let mut stored = result.clone();
    stored.config = String::new();
    // asd-lint: allow(D005) -- cache poisoning means a sibling worker panicked mid-run; propagating is correct
    store().lock().expect("run cache poisoned").insert(key, stored);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchKind;
    use crate::source::TraceSource;

    fn milc() -> WorkloadProfile {
        asd_trace::suites::by_name("milc").expect("suite profile")
    }

    #[test]
    fn key_covers_all_inputs() {
        let opts = RunOpts::quick();
        let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1);
        let base = key(&cfg, &milc(), &opts).expect("cacheable");

        // Same inputs, same key.
        assert_eq!(key(&cfg, &milc(), &opts), Some(base.clone()));

        // Any input change must change the key.
        let other_opts = RunOpts { seed: 1, ..RunOpts::quick() };
        assert_ne!(key(&cfg, &milc(), &other_opts), Some(base.clone()));
        let other_cfg = SystemConfig::for_kind(PrefetchKind::Np, 1);
        assert_ne!(key(&other_cfg, &milc(), &opts), Some(base.clone()));
        let other_profile = asd_trace::suites::by_name("lbm").expect("suite profile");
        assert_ne!(key(&cfg, &other_profile, &opts), Some(base));
    }

    #[test]
    fn trace_sourced_jobs_are_not_cached() {
        let opts = RunOpts::quick();
        let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1)
            .with_trace(TraceSource::generate("milc", 0x5eed));
        assert_eq!(key(&cfg, &milc(), &opts), None);
    }
}

//! Experiment drivers: run benchmarks under configurations and compare.

use crate::config::{PrefetchKind, RunOpts, SystemConfig};
use crate::error::SimError;
use crate::sweep::Sweep;
use crate::system::{RunResult, System};
use asd_trace::WorkloadProfile;

/// Run one benchmark under one of the four paper configurations.
///
/// # Errors
///
/// [`SimError`] from resolving `cfg.trace` when a file-backed
/// [`TraceSource`](crate::TraceSource) is configured (never for the
/// default generated path).
pub fn run_benchmark(
    profile: &WorkloadProfile,
    kind: PrefetchKind,
    opts: &RunOpts,
) -> Result<RunResult, SimError> {
    let threads = if opts.smt { 2 } else { 1 };
    let cfg = SystemConfig::for_kind(kind, threads);
    run_custom(profile, cfg, kind.name(), opts)
}

/// Run one benchmark under a fully custom system configuration. This is
/// the single cached-run entry point: every sweep job, pipeline node,
/// and ad-hoc driver call lands here, so cacheable runs share both the
/// cross-figure [`crate::cache`] store *and* its single-flight registry —
/// two concurrent callers with the same key produce exactly one
/// simulation, with the second joining the first's in-flight run.
///
/// # Errors
///
/// As [`run_benchmark`].
pub fn run_custom(
    profile: &WorkloadProfile,
    cfg: SystemConfig,
    label: &str,
    opts: &RunOpts,
) -> Result<RunResult, SimError> {
    let Some(key) = crate::cache::key(&cfg, profile, opts) else {
        return Ok(System::new(cfg, profile, opts)?.with_label(label).run());
    };
    match crate::cache::claim(&key, label) {
        crate::cache::Claim::Hit(hit) => Ok(*hit),
        crate::cache::Claim::Lead(lease) => {
            // A `?` here drops the lease un-completed, releasing joiners
            // to re-claim and surface the same error themselves.
            let result = System::new(cfg, profile, opts)?.with_label(label).run();
            lease.complete(&result);
            Ok(result)
        }
    }
}

/// The four-configuration comparison the paper's Figures 5–7 are built
/// from.
#[derive(Debug, Clone)]
pub struct FourWay {
    /// Benchmark name.
    pub benchmark: String,
    /// No prefetching.
    pub np: RunResult,
    /// Processor-side only.
    pub ps: RunResult,
    /// Memory-side only.
    pub ms: RunResult,
    /// Both.
    pub pms: RunResult,
}

impl FourWay {
    /// Run all four configurations of one benchmark (in parallel — same
    /// results as four [`run_benchmark`] calls).
    ///
    /// # Errors
    ///
    /// As [`run_benchmark`].
    pub fn run(profile: &WorkloadProfile, opts: &RunOpts) -> Result<Self, SimError> {
        let mut suite = four_way_suite(std::slice::from_ref(profile), opts)?;
        suite.pop().ok_or_else(|| SimError::UnknownProfile { name: profile.name.clone() })
    }

    /// `PMS vs NP` gain, percent (first bar group of Figures 5–7).
    pub fn pms_vs_np(&self) -> f64 {
        self.pms.gain_over(&self.np)
    }

    /// `MS vs NP` gain, percent.
    pub fn ms_vs_np(&self) -> f64 {
        self.ms.gain_over(&self.np)
    }

    /// `PMS vs PS` gain, percent.
    pub fn pms_vs_ps(&self) -> f64 {
        self.pms.gain_over(&self.ps)
    }

    /// DRAM power increase of PMS over PS, percent (Figures 8–10).
    pub fn power_increase(&self) -> f64 {
        self.pms.power_increase_over(&self.ps)
    }

    /// DRAM energy reduction of PMS over PS, percent.
    pub fn energy_reduction(&self) -> f64 {
        self.pms.energy_reduction_over(&self.ps)
    }
}

/// The four-configuration job list for a set of profiles, in the order
/// [`four_way_assemble`] consumes: profiles outer, [`PrefetchKind::ALL`]
/// inner.
pub(crate) fn four_way_jobs(
    profiles: &[WorkloadProfile],
    opts: &RunOpts,
) -> Vec<crate::pipeline::Job> {
    let threads = if opts.smt { 2 } else { 1 };
    let mut jobs = Vec::with_capacity(profiles.len() * PrefetchKind::ALL.len());
    for profile in profiles {
        for kind in PrefetchKind::ALL {
            jobs.push(crate::pipeline::Job::new(
                profile,
                SystemConfig::for_kind(kind, threads),
                kind.name(),
            ));
        }
    }
    jobs
}

/// Group [`four_way_jobs`] results (job order) back into one [`FourWay`]
/// per profile.
pub(crate) fn four_way_assemble(
    profiles: &[WorkloadProfile],
    results: &[RunResult],
) -> Vec<FourWay> {
    let mut runs = results.iter().cloned();
    profiles
        .iter()
        .map(|profile| {
            // asd-lint: allow(D005) -- one result per job; four_way_jobs queued 4 per profile
            let mut take = || runs.next().expect("4 runs per profile");
            FourWay {
                benchmark: profile.name.clone(),
                np: take(),
                ps: take(),
                ms: take(),
                pms: take(),
            }
        })
        .collect()
}

/// Run the four-configuration comparison for every profile, fanning all
/// `4 x profiles.len()` simulations across threads via [`Sweep`]. Results
/// are bit-identical to calling [`FourWay::run`] per profile.
///
/// # Errors
///
/// As [`run_benchmark`].
pub fn four_way_suite(
    profiles: &[WorkloadProfile],
    opts: &RunOpts,
) -> Result<Vec<FourWay>, SimError> {
    let mut sweep = Sweep::new(opts);
    for job in four_way_jobs(profiles, opts) {
        sweep.push(&job.profile, job.cfg, &job.label);
    }
    Ok(four_way_assemble(profiles, &sweep.run()?))
}

/// Arithmetic mean of a slice (the paper reports unweighted averages).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        // asd-lint: allow(D011) -- slice iteration: summation order is fixed by the caller's Vec
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asd_trace::suites;

    #[test]
    fn four_way_orders_sanely() {
        let profile = suites::by_name("milc").unwrap();
        let opts = RunOpts { accesses: 10_000, ..RunOpts::default() };
        let f = FourWay::run(&profile, &opts).unwrap();
        // Prefetching must never be catastrophically slower than NP, and
        // PMS should improve on NP for a short-stream workload.
        assert!(f.pms_vs_np() > -5.0);
        assert!(f.ms_vs_np() > -5.0);
        assert!(f.pms.cycles < f.np.cycles, "PMS faster than NP on milc");
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}

//! The simulator-level error taxonomy.
//!
//! Library paths in this crate return [`SimError`] instead of panicking
//! (lint D005): figure drivers surface bad benchmark names, invalid ASD
//! configurations, and degenerate run lengths to their caller, so the
//! bench binary and examples can report them instead of aborting.

use asd_core::ConfigError;
use std::fmt;
use std::path::PathBuf;

/// Error produced by the figure drivers and SLH studies.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A benchmark name did not match any workload profile.
    UnknownProfile {
        /// The name that failed to resolve (case-sensitive, as printed in
        /// the paper's figures).
        name: String,
    },
    /// An engine name matched neither a built-in engine nor a registered
    /// zoo engine.
    UnknownEngine {
        /// The name that failed to resolve.
        name: String,
        /// Every name the registry does know, for the error message.
        known: Vec<String>,
    },
    /// An [`AsdConfig`](asd_core::AsdConfig) failed validation.
    InvalidConfig(ConfigError),
    /// A run was too short to complete even one ASD epoch, so there is no
    /// histogram to report.
    NoEpochs {
        /// Benchmark being replayed.
        benchmark: String,
        /// The access budget that proved insufficient.
        accesses: u64,
    },
    /// A figure name matched no entry in the regeneration catalog
    /// ([`crate::figures::figure_text`]).
    UnknownFigure {
        /// The name that failed to resolve (`fig2`..`fig16`, `cost`,
        /// `sched`, `smt`, `ablations`).
        name: String,
    },
    /// A trace file could not be recorded or replayed: an I/O failure, a
    /// corrupt or truncated ASDT container, or a recording whose shape
    /// (threads, accesses, line size) does not match the run.
    ///
    /// Carries the rendered [`asd_traceio::TraceIoError`] (or mismatch
    /// description) as a string so `SimError` keeps `Clone`/`Eq`.
    TraceIo {
        /// The trace file involved.
        path: PathBuf,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownProfile { name } => {
                write!(f, "unknown benchmark profile `{name}` (see asd_trace::suites)")
            }
            SimError::UnknownEngine { name, known } => {
                write!(f, "unknown prefetch engine `{name}` (known: {})", known.join(", "))
            }
            SimError::InvalidConfig(e) => write!(f, "invalid ASD configuration: {e}"),
            SimError::UnknownFigure { name } => {
                write!(f, "unknown figure `{name}` (see asd_sim::figures::figure_text)")
            }
            SimError::NoEpochs { benchmark, accesses } => {
                write!(
                    f,
                    "{accesses} accesses of `{benchmark}` completed no ASD epoch; \
                     increase the access budget"
                )
            }
            SimError::TraceIo { path, message } => {
                write!(f, "trace file {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidConfig(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::InvalidConfig(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_engine() {
        let e = SimError::UnknownEngine {
            name: "warp-drive".into(),
            known: vec!["asd".into(), "stride".into()],
        };
        assert!(e.to_string().contains("warp-drive"));
        assert!(e.to_string().contains("asd, stride"));
    }

    #[test]
    fn display_unknown_profile() {
        let e = SimError::UnknownProfile { name: "GemsFTDT".into() };
        assert!(e.to_string().contains("GemsFTDT"));
    }

    #[test]
    fn config_error_converts_and_chains() {
        let e: SimError = ConfigError::Zero { field: "epoch_reads" }.into();
        assert!(matches!(e, SimError::InvalidConfig(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_trace_io() {
        let e = SimError::TraceIo { path: PathBuf::from("/tmp/t.asdt"), message: "boom".into() };
        assert!(e.to_string().contains("t.asdt"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn display_no_epochs() {
        let e = SimError::NoEpochs { benchmark: "milc".into(), accesses: 100 };
        assert!(e.to_string().contains("milc"));
        assert!(e.to_string().contains("100"));
    }
}

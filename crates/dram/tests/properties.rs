//! Property-based tests for the DRAM timing and power model, driven by
//! deterministic seeded case generation (no external frameworks; the
//! workspace builds offline).

use asd_core::rng::Xoshiro256PlusPlus as Rng;
use asd_dram::{Dram, DramCmdKind, DramConfig};

const CASES: u64 = 128;

fn case_rng(test: u64, case: u64) -> Rng {
    Rng::seed_from_u64(0xD4A7_0000 + test * 0x1_0000 + case)
}

/// Mirror of the old `commands()` strategy: 1..200 commands of
/// (line, is_write, inter-arrival gap).
fn commands(rng: &mut Rng) -> Vec<(u64, bool, u64)> {
    let n = rng.gen_range_usize(1, 200);
    (0..n)
        .map(|_| (rng.gen_range_u64(0, 10_000), rng.next_u64() & 1 == 1, rng.gen_range_u64(0, 500)))
        .collect()
}

/// Data bursts never overlap on the shared bus: completions are strictly
/// ordered and separated by at least one burst time.
#[test]
fn bus_serializes_bursts() {
    for case in 0..CASES {
        let cmds = commands(&mut case_rng(1, case));
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg);
        let mut now = 0u64;
        let mut completions: Vec<u64> = Vec::new();
        for (line, is_write, gap) in cmds {
            now += gap;
            let kind = if is_write { DramCmdKind::Write } else { DramCmdKind::Read };
            let c = dram.issue(line, kind, now);
            completions.push(c.data_at);
        }
        for w in completions.windows(2) {
            assert!(w[1] >= w[0] + cfg.burst_cpu(), "bursts overlap: {} then {}", w[0], w[1]);
        }
    }
}

/// Completion times are causal: data is never ready before the issue
/// request plus the minimum CAS + burst pipeline.
#[test]
fn completions_are_causal() {
    for case in 0..CASES {
        let cmds = commands(&mut case_rng(2, case));
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg);
        let mut now = 0u64;
        for (line, _, gap) in cmds {
            now += gap;
            let c = dram.issue(line, DramCmdKind::Read, now);
            assert!(c.data_at >= now + cfg.cl_cpu() + cfg.burst_cpu());
        }
    }
}

/// `earliest_issue` is consistent with `can_issue`, and issuing at the
/// reported earliest time is always legal (no later shift).
#[test]
fn earliest_issue_is_tight() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let cmds = commands(&mut rng);
        let probe = rng.gen_range_u64(0, 10_000);
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg);
        let mut now = 0u64;
        for (line, _, gap) in cmds {
            now += gap;
            dram.issue(line, DramCmdKind::Read, now);
        }
        let e = dram.earliest_issue(probe, now);
        assert!(e >= now);
        assert_eq!(
            dram.can_issue(probe, e),
            e <= now || {
                // At the earliest cycle the command must be issuable.
                dram.earliest_issue(probe, e) == e
            }
        );
    }
}

/// Row hits plus activations account for every command, and row hits are
/// never slower than conflicts would be.
#[test]
fn stats_partition_commands() {
    for case in 0..CASES {
        let cmds = commands(&mut case_rng(4, case));
        let mut dram = Dram::new(DramConfig::default());
        let mut now = 0u64;
        let mut n = 0u64;
        for (line, is_write, gap) in cmds {
            now += gap;
            let kind = if is_write { DramCmdKind::Write } else { DramCmdKind::Read };
            dram.issue(line, kind, now);
            n += 1;
        }
        let s = dram.stats();
        assert_eq!(s.row_hits + s.activations, n);
        assert_eq!(s.reads + s.writes, n);
    }
}

/// Energy components are non-negative and sum to the total; average power
/// is positive once time has passed.
#[test]
fn power_report_consistent() {
    for case in 0..CASES {
        let cmds = commands(&mut case_rng(5, case));
        let mut dram = Dram::new(DramConfig::default());
        let mut now = 0u64;
        for (line, is_write, gap) in cmds {
            now += gap;
            let kind = if is_write { DramCmdKind::Write } else { DramCmdKind::Read };
            let c = dram.issue(line, kind, now);
            now = now.max(c.data_at.saturating_sub(200));
        }
        let r = dram.power_report(now + 1000);
        assert!(r.background_j >= 0.0);
        assert!(r.activate_j >= 0.0);
        assert!(r.read_j >= 0.0 && r.write_j >= 0.0);
        let sum = r.background_j + r.activate_j + r.read_j + r.write_j;
        assert!((sum - r.energy_j).abs() < 1e-12);
        assert!(r.average_power_w > 0.0);
    }
}

/// Determinism: the same command sequence yields identical timings.
#[test]
fn timing_is_deterministic() {
    for case in 0..CASES {
        let cmds = commands(&mut case_rng(6, case));
        let run = |cmds: &[(u64, bool, u64)]| {
            let mut dram = Dram::new(DramConfig::default());
            let mut now = 0u64;
            let mut out = Vec::new();
            for &(line, is_write, gap) in cmds {
                now += gap;
                let kind = if is_write { DramCmdKind::Write } else { DramCmdKind::Read };
                out.push(dram.issue(line, kind, now).data_at);
            }
            out
        };
        assert_eq!(run(&cmds), run(&cmds));
    }
}

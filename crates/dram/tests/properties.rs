//! Property-based tests for the DRAM timing and power model.

use asd_dram::{Dram, DramCmdKind, DramConfig};
use proptest::prelude::*;

fn commands() -> impl Strategy<Value = Vec<(u64, bool, u64)>> {
    // (line, is_write, inter-arrival gap)
    prop::collection::vec((0u64..10_000, any::<bool>(), 0u64..500), 1..200)
}

proptest! {
    /// Data bursts never overlap on the shared bus: completions are
    /// strictly ordered and separated by at least one burst time.
    #[test]
    fn bus_serializes_bursts(cmds in commands()) {
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg);
        let mut now = 0u64;
        let mut completions: Vec<u64> = Vec::new();
        for (line, is_write, gap) in cmds {
            now += gap;
            let kind = if is_write { DramCmdKind::Write } else { DramCmdKind::Read };
            let c = dram.issue(line, kind, now);
            completions.push(c.data_at);
        }
        for w in completions.windows(2) {
            prop_assert!(w[1] >= w[0] + cfg.burst_cpu(),
                "bursts overlap: {} then {}", w[0], w[1]);
        }
    }

    /// Completion times are causal: data is never ready before the issue
    /// request plus the minimum CAS + burst pipeline.
    #[test]
    fn completions_are_causal(cmds in commands()) {
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg);
        let mut now = 0u64;
        for (line, _, gap) in cmds {
            now += gap;
            let c = dram.issue(line, DramCmdKind::Read, now);
            prop_assert!(c.data_at >= now + cfg.cl_cpu() + cfg.burst_cpu());
        }
    }

    /// `earliest_issue` is consistent with `can_issue`, and issuing at the
    /// reported earliest time is always legal (no later shift).
    #[test]
    fn earliest_issue_is_tight(cmds in commands(), probe in 0u64..10_000) {
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg);
        let mut now = 0u64;
        for (line, _, gap) in cmds {
            now += gap;
            dram.issue(line, DramCmdKind::Read, now);
        }
        let e = dram.earliest_issue(probe, now);
        prop_assert!(e >= now);
        prop_assert_eq!(dram.can_issue(probe, e), e <= now || {
            // At the earliest cycle the command must be issuable.
            dram.earliest_issue(probe, e) == e
        });
    }

    /// Row hits plus activations account for every command, and row hits
    /// are never slower than conflicts would be.
    #[test]
    fn stats_partition_commands(cmds in commands()) {
        let mut dram = Dram::new(DramConfig::default());
        let mut now = 0u64;
        let mut n = 0u64;
        for (line, is_write, gap) in cmds {
            now += gap;
            let kind = if is_write { DramCmdKind::Write } else { DramCmdKind::Read };
            dram.issue(line, kind, now);
            n += 1;
        }
        let s = dram.stats();
        prop_assert_eq!(s.row_hits + s.activations, n);
        prop_assert_eq!(s.reads + s.writes, n);
    }

    /// Energy components are non-negative and sum to the total; average
    /// power is positive once time has passed.
    #[test]
    fn power_report_consistent(cmds in commands()) {
        let mut dram = Dram::new(DramConfig::default());
        let mut now = 0u64;
        for (line, is_write, gap) in cmds {
            now += gap;
            let kind = if is_write { DramCmdKind::Write } else { DramCmdKind::Read };
            let c = dram.issue(line, kind, now);
            now = now.max(c.data_at.saturating_sub(200));
        }
        let r = dram.power_report(now + 1000);
        prop_assert!(r.background_j >= 0.0);
        prop_assert!(r.activate_j >= 0.0);
        prop_assert!(r.read_j >= 0.0 && r.write_j >= 0.0);
        let sum = r.background_j + r.activate_j + r.read_j + r.write_j;
        prop_assert!((sum - r.energy_j).abs() < 1e-12);
        prop_assert!(r.average_power_w > 0.0);
    }

    /// Determinism: the same command sequence yields identical timings.
    #[test]
    fn timing_is_deterministic(cmds in commands()) {
        let run = |cmds: &[(u64, bool, u64)]| {
            let mut dram = Dram::new(DramConfig::default());
            let mut now = 0u64;
            let mut out = Vec::new();
            for &(line, is_write, gap) in cmds {
                now += gap;
                let kind = if is_write { DramCmdKind::Write } else { DramCmdKind::Read };
                out.push(dram.issue(line, kind, now).data_at);
            }
            out
        };
        prop_assert_eq!(run(&cmds), run(&cmds));
    }
}

//! The DRAM channel model: banks, row buffers, shared data bus.

use crate::config::DramConfig;
use crate::power::{PowerAccount, PowerReport};
use crate::DramCmdKind;
use asd_core::{Clocked, NextEvent};
use asd_telemetry::{CounterId, Registry, Snapshot, TelemetryConfig, Unit};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BankState {
    /// All rows closed.
    Idle,
    /// `row` open; the bank can serve row hits immediately.
    Open { row: u64, opened_at: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    state: BankState,
    /// Bank busy with an in-flight command until this cycle.
    busy_until: u64,
}

/// Outcome of issuing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Cycle the data burst finishes (read data available / write done).
    pub data_at: u64,
    /// Whether the access hit the open row.
    pub row_hit: bool,
}

/// Aggregate counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramStats {
    /// Read commands serviced.
    pub reads: u64,
    /// Write commands serviced.
    pub writes: u64,
    /// Row activations (row misses and cold rows).
    pub activations: u64,
    /// Accesses that hit an already-open row.
    pub row_hits: u64,
}

/// Bank-timing decision table: every latency the hot path consults,
/// precomputed in CPU cycles at construction. [`DramConfig`] keeps the
/// human-readable DRAM-clock parameters; the multiplications by
/// `cpu_per_memclk` happen exactly once instead of on every
/// `can_issue`/`next_issue_at` probe.
#[derive(Debug, Clone, Copy)]
struct Timing {
    /// CAS latency (the row-hit access latency).
    cl: u64,
    /// Cold-bank access latency: RCD + CL.
    rcd_cl: u64,
    /// Row-conflict access latency past the tRAS wait: RP + RCD + CL.
    rp_rcd_cl: u64,
    /// Minimum row-active time.
    ras: u64,
    /// Data-burst bus occupancy.
    burst: u64,
}

impl Timing {
    fn new(cfg: &DramConfig) -> Self {
        Timing {
            cl: cfg.cl_cpu(),
            rcd_cl: cfg.rcd_cpu() + cfg.cl_cpu(),
            rp_rcd_cl: cfg.rp_cpu() + cfg.rcd_cpu() + cfg.cl_cpu(),
            ras: cfg.ras_cpu(),
            burst: cfg.burst_cpu(),
        }
    }
}

/// Precomputed line-to-(bank, row) mapping. Power-of-two geometries (the
/// default and every swept configuration) decompose into a mask and a
/// shift; anything else falls back to the division form of
/// [`DramConfig::map`].
#[derive(Debug, Clone, Copy)]
struct LineMap {
    banks: u64,
    /// `banks * row_lines` — one combined divisor for the row index.
    row_div: u64,
    pow2: bool,
    bank_mask: u64,
    row_shift: u32,
}

impl LineMap {
    fn new(cfg: &DramConfig) -> Self {
        let banks = cfg.banks as u64;
        let row_div = banks * cfg.row_lines;
        let pow2 = banks.is_power_of_two() && cfg.row_lines.is_power_of_two();
        LineMap { banks, row_div, pow2, bank_mask: banks - 1, row_shift: row_div.trailing_zeros() }
    }

    #[inline]
    fn map(&self, line: u64) -> (usize, u64) {
        if self.pow2 {
            ((line & self.bank_mask) as usize, line >> self.row_shift)
        } else {
            ((line % self.banks) as usize, line / self.row_div)
        }
    }
}

/// A single-channel, open-page DDR2 DRAM device.
///
/// The controller issues line-granularity read/write commands; the model
/// resolves them against per-bank row-buffer state and the shared data bus,
/// returning completion times and accumulating energy.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    t: Timing,
    lmap: LineMap,
    banks: Vec<Bank>,
    /// The shared data bus is busy until this cycle.
    bus_free_at: u64,
    stats: DramStats,
    power: PowerAccount,
    /// Telemetry section (`dram.` prefix); inert unless
    /// [`Dram::attach_telemetry`] enables it.
    tel: Registry,
    /// Per-bank row-conflict counters, indexed by bank.
    bank_conflicts: Vec<CounterId>,
}

impl Dram {
    /// Create a DRAM channel.
    pub fn new(cfg: DramConfig) -> Self {
        cfg.assert_valid();
        let banks = vec![Bank { state: BankState::Idle, busy_until: 0 }; cfg.banks];
        Dram {
            t: Timing::new(&cfg),
            lmap: LineMap::new(&cfg),
            cfg,
            banks,
            bus_free_at: 0,
            stats: DramStats::default(),
            power: PowerAccount::default(),
            tel: Registry::disabled(),
            bank_conflicts: Vec::new(),
        }
    }

    /// Enable telemetry per `cfg`, registering one row-conflict counter
    /// per bank (`dram.bank[i].conflicts`). Replaces the inert registry
    /// created by [`Dram::new`].
    pub fn attach_telemetry(&mut self, cfg: &TelemetryConfig) {
        let mut tel = Registry::section("dram.", cfg);
        self.bank_conflicts = (0..self.cfg.banks)
            .map(|i| {
                tel.counter(
                    &format!("bank[{i}].conflicts"),
                    Unit::Events,
                    "row-buffer conflicts: accesses that closed this bank's open row",
                )
            })
            .collect();
        self.tel = tel;
    }

    /// Freeze this channel's live-updated instruments.
    // asd-lint: cold -- exposition freeze: runs at snapshot time, not per cycle
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.tel.snapshot()
    }

    /// The configuration in force.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Map a cache line to `(bank, row)` using the precomputed mapper
    /// (identical to [`DramConfig::map`]). Callers that hold commands in
    /// queues cache the result and use the `*_mapped` probes below.
    #[inline]
    pub fn map_line(&self, line: u64) -> (usize, u64) {
        self.lmap.map(line)
    }

    /// Earliest cycle `>= now` at which a command for `line` could begin
    /// issue, considering its bank's business and the shared bus.
    pub fn earliest_issue(&self, line: u64, now: u64) -> u64 {
        let (bank_idx, row) = self.lmap.map(line);
        self.earliest_issue_mapped(bank_idx, row, now)
    }

    /// [`Dram::earliest_issue`] for a pre-mapped `(bank, row)`.
    pub fn earliest_issue_mapped(&self, bank_idx: usize, row: u64, now: u64) -> u64 {
        let bank = &self.banks[bank_idx];
        let start = now.max(bank.busy_until);
        // The data phase must also win the bus; compute when the burst
        // would start and push `start` so the burst lands on a free bus.
        let access = self.access_latency(bank, row, start);
        let burst_start = start + access;
        if burst_start < self.bus_free_at {
            start + (self.bus_free_at - burst_start)
        } else {
            start
        }
    }

    /// Whether a command for `line` could begin issue at exactly `now`.
    pub fn can_issue(&self, line: u64, now: u64) -> bool {
        self.earliest_issue(line, now) <= now
    }

    /// [`Dram::can_issue`] for a pre-mapped `(bank, row)`.
    #[inline]
    pub fn can_issue_mapped(&self, bank_idx: usize, row: u64, now: u64) -> bool {
        // Equivalent to `earliest_issue_mapped(..) <= now`, but the busy
        // bank — the overwhelmingly common reason for "no" on the
        // schedulers' per-cycle scans — answers with a single compare.
        let bank = &self.banks[bank_idx];
        bank.busy_until <= now && now + self.access_latency(bank, row, now) >= self.bus_free_at
    }

    /// Both scheduler probes at once for a pre-mapped `(bank, row)`:
    /// `(bank_free, can_issue)`. One bank load serves the AHB scorer's two
    /// score terms.
    #[inline]
    pub fn issue_readiness_mapped(&self, bank_idx: usize, row: u64, now: u64) -> (bool, bool) {
        let bank = &self.banks[bank_idx];
        if bank.busy_until > now {
            return (false, false);
        }
        (true, now + self.access_latency(bank, row, now) >= self.bus_free_at)
    }

    /// The exact first cycle `>= now` at which [`Dram::can_issue`] holds
    /// for `line`.
    ///
    /// Unlike [`Dram::earliest_issue`] — which answers "if I commit at
    /// `now`, when does issue begin" and over-estimates when the tRAS wait
    /// shrinks as the issue point moves later — this accounts for the
    /// access latency being a function of the issue time, so event-driven
    /// callers can jump straight to the returned cycle without skipping a
    /// legal issue slot.
    pub fn next_issue_at(&self, line: u64, now: u64) -> u64 {
        let (bank_idx, row) = self.lmap.map(line);
        self.next_issue_at_mapped(bank_idx, row, now)
    }

    /// [`Dram::next_issue_at`] for a pre-mapped `(bank, row)`.
    pub fn next_issue_at_mapped(&self, bank_idx: usize, row: u64, now: u64) -> u64 {
        let bank = &self.banks[bank_idx];
        let base = now.max(bank.busy_until);
        // Burst start as a function of issue time s is
        // `max(s, ras_ready) + tail` (row conflicts; flat until tRAS is
        // satisfied, then linear) or `s + tail` (hits and cold banks).
        let tail = match bank.state {
            BankState::Open { row: open, .. } if open == row => self.t.cl,
            BankState::Open { .. } => self.t.rp_rcd_cl,
            BankState::Idle => self.t.rcd_cl,
        };
        let burst_start = base + self.access_latency(bank, row, base);
        if burst_start < self.bus_free_at {
            // Shift so the burst lands exactly when the bus frees. In the
            // conflict case this lands after tRAS expiry (the flat region
            // is strictly below `bus_free_at` here), so `tail` is the true
            // access latency at the returned cycle.
            self.bus_free_at - tail
        } else {
            base
        }
    }

    /// Whether `row` is the currently open row of bank `bank_idx`.
    ///
    /// [`Dram::next_issue_at_mapped`] depends on the requested row *only*
    /// through this predicate (open-row hit vs conflict/cold), so callers
    /// probing many queued `(bank, row)` pairs can classify entries with
    /// this one compare and evaluate the full timing function once per
    /// bank per class.
    #[inline]
    pub fn row_hit_idx(&self, bank_idx: usize, row: u64) -> bool {
        matches!(self.banks[bank_idx].state, BankState::Open { row: open, .. } if open == row)
    }

    /// Whether `line`'s bank is currently occupied by an in-flight command
    /// (the conflict signal Adaptive Scheduling monitors).
    pub fn bank_busy(&self, line: u64, now: u64) -> bool {
        let (bank_idx, _) = self.lmap.map(line);
        self.banks[bank_idx].busy_until > now
    }

    /// [`Dram::bank_busy`] for a pre-mapped bank index.
    #[inline]
    pub fn bank_busy_idx(&self, bank_idx: usize, now: u64) -> bool {
        self.banks[bank_idx].busy_until > now
    }

    /// Pre-burst latency for an access to `row` of `bank` starting at
    /// `start`: row hit pays CL; cold bank pays RCD+CL; row conflict pays
    /// RP+RCD+CL and must also respect tRAS of the currently open row.
    fn access_latency(&self, bank: &Bank, row: u64, start: u64) -> u64 {
        match bank.state {
            BankState::Open { row: open, .. } if open == row => self.t.cl,
            BankState::Open { opened_at, .. } => {
                // Must satisfy tRAS before precharging the old row.
                let ras_ready = opened_at + self.t.ras;
                let wait = ras_ready.saturating_sub(start);
                wait + self.t.rp_rcd_cl
            }
            BankState::Idle => self.t.rcd_cl,
        }
    }

    /// Issue a command at cycle `now`. The caller must have checked
    /// [`can_issue`](Dram::can_issue); issuing early silently waits until
    /// the earliest legal cycle.
    pub fn issue(&mut self, line: u64, kind: DramCmdKind, now: u64) -> Completion {
        let start = self.earliest_issue(line, now).max(now);
        let (bank_idx, row) = self.lmap.map(line);

        // Integrate background power up to the issue point.
        let any_open = self.banks.iter().any(|b| matches!(b.state, BankState::Open { .. }));
        self.power.advance(start, any_open, &self.cfg);

        let bank = self.banks[bank_idx];
        let access = self.access_latency(&bank, row, start);
        let row_hit = matches!(bank.state, BankState::Open { row: open, .. } if open == row);
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.activations += 1;
            self.power.add_activate(&self.cfg);
            // A row conflict (not a cold activation) closed an open row.
            if matches!(bank.state, BankState::Open { .. }) {
                if let Some(&id) = self.bank_conflicts.get(bank_idx) {
                    self.tel.add(id, 1);
                }
            }
        }

        // The burst must wait for the shared bus. (`earliest_issue` aligns
        // the common case, but tRAS-dependent access latencies are not
        // linear in the issue time, so enforce serialization here too.)
        let burst_start = (start + access).max(self.bus_free_at);
        let data_at = burst_start + self.t.burst;

        let opened_at = if row_hit {
            match bank.state {
                BankState::Open { opened_at, .. } => opened_at,
                BankState::Idle => start,
            }
        } else {
            burst_start.saturating_sub(self.t.cl)
        };
        self.banks[bank_idx] =
            Bank { state: BankState::Open { row, opened_at }, busy_until: data_at };
        self.bus_free_at = data_at;

        match kind {
            DramCmdKind::Read => {
                self.stats.reads += 1;
                self.power.add_read(&self.cfg);
            }
            DramCmdKind::Write => {
                self.stats.writes += 1;
                self.power.add_write(&self.cfg);
            }
        }
        Completion { data_at, row_hit }
    }

    /// Counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// The next cycle at which timing state (a bank busy window or the
    /// shared bus) expires, if any is still pending at `now`.
    pub fn next_timing_event(&self, now: u64) -> NextEvent {
        let mut next = NextEvent::Idle;
        for b in &self.banks {
            if b.busy_until > now {
                next = next.min(NextEvent::At(b.busy_until));
            }
        }
        if self.bus_free_at > now {
            next = next.min(NextEvent::At(self.bus_free_at));
        }
        next
    }

    /// Finalize power accounting at cycle `end` and produce the report.
    pub fn power_report(&mut self, end: u64) -> PowerReport {
        let any_open = self.banks.iter().any(|b| matches!(b.state, BankState::Open { .. }));
        self.power.advance(end, any_open, &self.cfg);
        let elapsed_s = end as f64 * self.cfg.cycle_seconds();
        let energy = self.power.total_j();
        PowerReport {
            energy_j: energy,
            background_j: self.power.background_j,
            activate_j: self.power.activate_j,
            read_j: self.power.read_j,
            write_j: self.power.write_j,
            elapsed_s,
            average_power_w: if elapsed_s > 0.0 { energy / elapsed_s } else { 0.0 },
        }
    }
}

impl Clocked for Dram {
    /// The DRAM device is passive — timing state advances lazily inside
    /// [`Dram::issue`] — so stepping only reports when the busy windows
    /// expire.
    fn step(&mut self, now: u64) -> NextEvent {
        self.next_timing_event(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn cold_read_pays_rcd_cl_burst() {
        let mut d = dram();
        let c = d.issue(0, DramCmdKind::Read, 0);
        let cfg = DramConfig::default();
        assert_eq!(c.data_at, cfg.rcd_cpu() + cfg.cl_cpu() + cfg.burst_cpu());
        assert!(!c.row_hit);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut d = dram();
        let first = d.issue(0, DramCmdKind::Read, 0);
        // Same bank, same row (line 0 and line 8 share bank 0? No: line 8
        // maps to bank 0 and same row because 8 % 8 == 0 and 8/8/64 == 0).
        let second = d.issue(8, DramCmdKind::Read, first.data_at);
        assert!(second.row_hit);
        let cfg = DramConfig::default();
        assert_eq!(second.data_at - first.data_at, cfg.cl_cpu() + cfg.burst_cpu());
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = dram();
        let cfg = DramConfig::default();
        let first = d.issue(0, DramCmdKind::Read, 0);
        // Same bank (multiple of 8), different row: 8 * 64 = line 512.
        let conflict_line = 8 * 64;
        assert_eq!(cfg.map(conflict_line).0, 0);
        assert_ne!(cfg.map(conflict_line).1, cfg.map(0).1);
        // Issue late enough that tRAS is already satisfied.
        let start = first.data_at + cfg.ras_cpu();
        let second = d.issue(conflict_line, DramCmdKind::Read, start);
        assert!(!second.row_hit);
        assert_eq!(
            second.data_at - start,
            cfg.rp_cpu() + cfg.rcd_cpu() + cfg.cl_cpu() + cfg.burst_cpu()
        );
    }

    #[test]
    fn bank_parallelism_overlaps_but_bus_serializes() {
        let mut d = dram();
        let cfg = DramConfig::default();
        let a = d.issue(0, DramCmdKind::Read, 0); // bank 0
        let b = d.issue(1, DramCmdKind::Read, 0); // bank 1, overlapped
                                                  // The second access overlaps its activate with the first's, but its
                                                  // burst must wait for the shared bus.
        assert_eq!(b.data_at, a.data_at + cfg.burst_cpu());
    }

    #[test]
    fn busy_bank_delays_issue() {
        let mut d = dram();
        let a = d.issue(0, DramCmdKind::Read, 0);
        assert!(d.bank_busy(0, a.data_at - 1));
        assert!(!d.bank_busy(0, a.data_at));
        assert!(!d.bank_busy(1, 0), "other banks unaffected");
        let e = d.earliest_issue(8 * 64, 0); // bank 0, other row
        assert!(e >= a.data_at, "bank 0 busy until first completes");
    }

    #[test]
    fn earliest_issue_respects_bus() {
        let mut d = dram();
        let cfg = DramConfig::default();
        let a = d.issue(0, DramCmdKind::Read, 0);
        // Bank 1 is idle, but the bus is booked until a.data_at.
        let e = d.earliest_issue(1, 0);
        let burst_would_start = e + cfg.rcd_cpu() + cfg.cl_cpu();
        assert!(burst_would_start >= a.data_at);
    }

    #[test]
    fn next_issue_at_is_exact() {
        // Exhaustively cross-check against the polling definition: the
        // returned cycle is the first with can_issue == true.
        let mut d = dram();
        let lines = [0u64, 1, 8, 8 * 64, 3, 9 * 64 + 1];
        for (i, &line) in lines.iter().enumerate() {
            d.issue(line, DramCmdKind::Read, i as u64 * 37);
        }
        let now = 50;
        for probe in [0u64, 1, 2, 8, 8 * 64, 16 * 64, 5, 700] {
            let t = d.next_issue_at(probe, now);
            assert!(t >= now);
            assert!(d.can_issue(probe, t), "line {probe}: not issuable at reported {t}");
            for s in now..t {
                assert!(!d.can_issue(probe, s), "line {probe}: issuable at {s} before {t}");
            }
        }
    }

    #[test]
    fn next_issue_at_handles_ras_flat_region() {
        // Construct the corner `earliest_issue` over-estimates: a row
        // conflict whose tRAS wait shrinks while the bus is booked.
        let mut d = dram();
        d.issue(0, DramCmdKind::Read, 0); // opens row 0 of bank 0, books bus
        let conflict_line = 8 * 64; // bank 0, different row
        let now = 1;
        let t = d.next_issue_at(conflict_line, now);
        assert!(d.can_issue(conflict_line, t));
        for s in now..t {
            assert!(!d.can_issue(conflict_line, s));
        }
    }

    #[test]
    fn clocked_step_reports_busy_windows() {
        let mut d = dram();
        assert_eq!(d.next_timing_event(0), NextEvent::Idle);
        let c = d.issue(0, DramCmdKind::Read, 0);
        assert_eq!(Clocked::step(&mut d, 0), NextEvent::At(c.data_at));
        assert_eq!(Clocked::step(&mut d, c.data_at), NextEvent::Idle);
    }

    #[test]
    fn stats_count_commands() {
        let mut d = dram();
        d.issue(0, DramCmdKind::Read, 0);
        d.issue(8, DramCmdKind::Write, 1000);
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.activations, 1);
        assert_eq!(s.row_hits, 1);
    }

    #[test]
    fn mapped_probes_match_line_probes() {
        // The precomputed mapper and the `*_mapped` fast paths must agree
        // exactly with the line-addressed probes, for power-of-two and
        // non-power-of-two geometries alike.
        let cfgs = [
            DramConfig::default(),
            DramConfig { banks: 6, row_lines: 48, ..DramConfig::default() },
        ];
        for cfg in cfgs {
            let mut d = Dram::new(cfg);
            for (i, line) in [0u64, 3, 17, 513, 9 * 64 + 1, 12_345].into_iter().enumerate() {
                d.issue(line, DramCmdKind::Read, i as u64 * 53);
            }
            for probe in [0u64, 1, 2, 5, 8, 100, 512, 8 * 64, 99_999] {
                assert_eq!(d.map_line(probe), cfg.map(probe));
                let (bank, row) = d.map_line(probe);
                for now in [0u64, 40, 200, 1_000] {
                    assert_eq!(
                        d.earliest_issue(probe, now),
                        d.earliest_issue_mapped(bank, row, now)
                    );
                    assert_eq!(d.can_issue(probe, now), d.can_issue_mapped(bank, row, now));
                    assert_eq!(d.next_issue_at(probe, now), d.next_issue_at_mapped(bank, row, now));
                    assert_eq!(d.bank_busy(probe, now), d.bank_busy_idx(bank, now));
                }
            }
        }
    }

    #[test]
    fn power_report_accumulates() {
        let mut d = dram();
        for i in 0..100 {
            d.issue(i * 17, DramCmdKind::Read, i * 500);
        }
        let r = d.power_report(100 * 500 + 10_000);
        assert!(r.energy_j > 0.0);
        assert!(r.background_j > 0.0);
        assert!(r.activate_j > 0.0);
        assert!(r.read_j > 0.0);
        assert_eq!(r.write_j, 0.0);
        assert!(r.average_power_w > 0.0);
        let sum = r.background_j + r.activate_j + r.read_j + r.write_j;
        assert!((sum - r.energy_j).abs() < 1e-15);
    }

    #[test]
    fn more_traffic_more_power_less_idle_energy_share() {
        let mut busy = dram();
        for i in 0..1000u64 {
            busy.issue(i * 31, DramCmdKind::Read, i * 200);
        }
        let busy_report = busy.power_report(200_000);
        let mut idle = dram();
        idle.issue(0, DramCmdKind::Read, 0);
        let idle_report = idle.power_report(200_000);
        assert!(busy_report.average_power_w > idle_report.average_power_w);
    }
}

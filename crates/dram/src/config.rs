//! DRAM geometry, timing, and power parameters.

/// Electrical parameters for the current-based power model, in the style of
/// the Micron DDR2 power calculator (the same approach Memsim takes).
/// Defaults approximate a 1 Gb DDR2-533 x8 device population forming one
/// rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Background power with all banks precharged, watts per rank (all
    /// devices of the rank together).
    pub standby_precharged_w: f64,
    /// Background power with at least one bank active, watts per rank.
    pub standby_active_w: f64,
    /// Ranks in the populated memory system burning background power. Only
    /// one rank is simulated for timing, but a server-class Power5+ carries
    /// several GB of DRAM whose standby power all counts toward the DRAM
    /// power the paper reports (keeping the dynamic share realistic).
    pub background_ranks: f64,
    /// Energy per row activation (activate + implied precharge), joules.
    pub activate_j: f64,
    /// Energy per read burst (one cache line), joules.
    pub read_burst_j: f64,
    /// Energy per write burst, joules.
    pub write_burst_j: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        // Derived from Micron 1Gb DDR2-533 datasheet currents at VDD=1.8V,
        // times the 8 x8 devices forming one rank:
        //   precharged standby: IDD2N=35mA -> 63mW/device -> 504mW/rank
        //   active standby: IDD3N=45mA -> 81mW/device -> 648mW/rank
        //   activate: (IDD0-IDD3N)=40mA over tRC=60ns -> ~34nJ/rank
        //   read burst: (IDD4R-IDD3N)=90mA over 30ns -> ~39nJ/rank
        //   write burst: (IDD4W-IDD3N)=100mA over 30ns -> ~43nJ/rank
        PowerParams {
            standby_precharged_w: 0.504,
            standby_active_w: 0.648,
            background_ranks: 16.0,
            activate_j: 34e-9,
            read_burst_j: 39e-9,
            write_burst_j: 43e-9,
        }
    }
}

/// Geometry and timing of the simulated DRAM channel. All `t*` fields are
/// in DRAM clocks; [`DramConfig::cpu_per_memclk`] converts to CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Independent banks on the channel (ranks x banks-per-rank).
    pub banks: usize,
    /// Cache lines per DRAM row (an 8 KB row holds 64 lines of 128 B).
    pub row_lines: u64,
    /// CAS latency, DRAM clocks.
    pub t_cl: u64,
    /// RAS-to-CAS delay, DRAM clocks.
    pub t_rcd: u64,
    /// Row precharge time, DRAM clocks.
    pub t_rp: u64,
    /// Minimum row-active time, DRAM clocks.
    pub t_ras: u64,
    /// Data-burst occupancy of the shared bus for one line, DRAM clocks.
    /// A 128 B line over an 8 B DDR interface is 8 clocks; the default of 5
    /// reflects the Power5+'s partially-overlapped dual-DIMM interface —
    /// wasted prefetches stay genuinely expensive while two SMT threads
    /// retain some bandwidth headroom.
    pub t_burst: u64,
    /// CPU cycles per DRAM clock (2.132 GHz / 266 MHz = 8).
    pub cpu_per_memclk: u64,
    /// CPU clock frequency in Hz, for converting cycles to seconds in the
    /// power report.
    pub cpu_hz: f64,
    /// Electrical parameters.
    pub power: PowerParams,
}

impl Default for DramConfig {
    fn default() -> Self {
        // DDR2-533: 266 MHz clock, CL4-4-4-12.
        DramConfig {
            banks: 8,
            row_lines: 64,
            t_cl: 4,
            t_rcd: 4,
            t_rp: 4,
            t_ras: 12,
            t_burst: 5,
            cpu_per_memclk: 8,
            cpu_hz: 2.132e9,
            power: PowerParams::default(),
        }
    }
}

impl DramConfig {
    /// CAS latency in CPU cycles.
    pub fn cl_cpu(&self) -> u64 {
        self.t_cl * self.cpu_per_memclk
    }

    /// RCD in CPU cycles.
    pub fn rcd_cpu(&self) -> u64 {
        self.t_rcd * self.cpu_per_memclk
    }

    /// RP in CPU cycles.
    pub fn rp_cpu(&self) -> u64 {
        self.t_rp * self.cpu_per_memclk
    }

    /// RAS in CPU cycles.
    pub fn ras_cpu(&self) -> u64 {
        self.t_ras * self.cpu_per_memclk
    }

    /// Burst occupancy in CPU cycles.
    pub fn burst_cpu(&self) -> u64 {
        self.t_burst * self.cpu_per_memclk
    }

    /// Seconds per CPU cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.cpu_hz
    }

    /// Map a cache-line address to `(bank, row)`. Consecutive lines rotate
    /// across banks (line interleaving), which lets streams exploit bank
    /// parallelism — the layout the Power5+ memory subsystem uses for
    /// streaming bandwidth.
    pub fn map(&self, line: u64) -> (usize, u64) {
        let bank = (line % self.banks as u64) as usize;
        let row = line / self.banks as u64 / self.row_lines;
        (bank, row)
    }

    /// Validate invariants; panics on nonsense geometry (static
    /// configuration bug, not a runtime condition).
    pub fn assert_valid(&self) {
        assert!(self.banks > 0, "at least one bank");
        assert!(self.row_lines > 0, "nonzero row size");
        assert!(self.cpu_per_memclk > 0, "nonzero clock ratio");
        assert!(self.t_burst > 0, "nonzero burst");
        assert!(self.cpu_hz > 0.0, "positive clock");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ddr2_533() {
        let c = DramConfig::default();
        c.assert_valid();
        assert_eq!(c.cl_cpu(), 32);
        assert_eq!(c.burst_cpu(), 40);
    }

    #[test]
    fn line_interleaving_rotates_banks() {
        let c = DramConfig::default();
        let (b0, r0) = c.map(0);
        let (b1, r1) = c.map(1);
        assert_ne!(b0, b1, "adjacent lines in different banks");
        assert_eq!(r0, r1);
        let (b8, _) = c.map(8);
        assert_eq!(b0, b8, "wraps around after #banks lines");
    }

    #[test]
    fn rows_advance_after_row_lines_per_bank() {
        let c = DramConfig::default();
        let lines_per_row_span = c.banks as u64 * c.row_lines;
        let (_, r0) = c.map(0);
        let (_, r1) = c.map(lines_per_row_span);
        assert_eq!(r0 + 1, r1);
    }

    #[test]
    fn power_defaults_sane() {
        let p = PowerParams::default();
        assert!(p.standby_active_w > p.standby_precharged_w);
        assert!(p.write_burst_j > p.read_burst_j);
    }
}

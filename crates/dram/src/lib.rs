//! # DDR2 SDRAM timing and power model
//!
//! Substitute for the Memsim DRAM simulator the paper couples to its
//! Power5+ simulator (§4.3): a single-channel DDR2-533 model with per-bank
//! row-buffer state, bank/bus timing constraints, and a Micron-style
//! current-based power model that jointly tracks performance and energy.
//!
//! All times are in **CPU cycles** of the simulated 2.132 GHz Power5+; the
//! configuration converts DRAM-clock parameters (tCL, tRCD, tRP, ...) using
//! the CPU-cycles-per-memory-clock ratio.
//!
//! The interface is deliberately small: the memory controller asks when a
//! command *could* issue ([`Dram::earliest_issue`]), issues it
//! ([`Dram::issue`]), and receives the cycle its data transfer completes.
//! Power accrues inside the model: background power per rank (higher while
//! any row is open), activation energy per row activation, and burst energy
//! per read/write.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod dram;
mod power;

pub use config::{DramConfig, PowerParams};
pub use dram::{Completion, Dram, DramStats};
pub use power::PowerReport;

/// Kind of DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCmdKind {
    /// A read burst (one cache line).
    Read,
    /// A write burst (one cache line).
    Write,
}

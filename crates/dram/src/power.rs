//! Current-based DRAM power accounting.

use crate::config::DramConfig;

/// Accumulates DRAM energy as commands execute. Background energy is
/// integrated lazily: every event calls [`PowerAccount::advance`] with the
/// current cycle and the number of open banks over the elapsed interval.
#[derive(Debug, Clone, Default)]
pub(crate) struct PowerAccount {
    pub background_j: f64,
    pub activate_j: f64,
    pub read_j: f64,
    pub write_j: f64,
    last_cycle: u64,
}

impl PowerAccount {
    /// Integrate background power from the last accounted cycle to `now`.
    /// `any_open` selects active vs precharged standby for the interval
    /// (approximating the interval with its end-state, which is accurate at
    /// the command granularity the model operates at).
    pub fn advance(&mut self, now: u64, any_open: bool, cfg: &DramConfig) {
        if now <= self.last_cycle {
            return;
        }
        let dt = (now - self.last_cycle) as f64 * cfg.cycle_seconds();
        // The simulated (active) rank pays active/precharged standby; the
        // remaining populated ranks idle in precharged standby.
        let w = if any_open { cfg.power.standby_active_w } else { cfg.power.standby_precharged_w }
            + cfg.power.standby_precharged_w * (cfg.power.background_ranks - 1.0).max(0.0);
        self.background_j += w * dt;
        self.last_cycle = now;
    }

    pub fn add_activate(&mut self, cfg: &DramConfig) {
        self.activate_j += cfg.power.activate_j;
    }

    pub fn add_read(&mut self, cfg: &DramConfig) {
        self.read_j += cfg.power.read_burst_j;
    }

    pub fn add_write(&mut self, cfg: &DramConfig) {
        self.write_j += cfg.power.write_burst_j;
    }

    pub fn total_j(&self) -> f64 {
        self.background_j + self.activate_j + self.read_j + self.write_j
    }
}

/// Energy and average-power summary of a simulation, as reported by
/// [`Dram::power_report`](crate::Dram::power_report). This is the data
/// behind the paper's Figures 8–10 (DRAM power increase and energy
/// reduction of PMS relative to PS).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Total DRAM energy, joules.
    pub energy_j: f64,
    /// Background (standby) component, joules.
    pub background_j: f64,
    /// Row-activation component, joules.
    pub activate_j: f64,
    /// Read-burst component, joules.
    pub read_j: f64,
    /// Write-burst component, joules.
    pub write_j: f64,
    /// Wall-clock duration of the simulation, seconds.
    pub elapsed_s: f64,
    /// Average DRAM power over the run, watts.
    pub average_power_w: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_integrates_over_time() {
        let cfg = DramConfig::default();
        let mut acc = PowerAccount::default();
        acc.advance(2_132_000_000, false, &cfg); // one second precharged
        let expected = cfg.power.standby_precharged_w * cfg.power.background_ranks;
        assert!((acc.background_j - expected).abs() < 1e-6);
    }

    #[test]
    fn active_standby_costs_more() {
        let cfg = DramConfig::default();
        let mut a = PowerAccount::default();
        let mut b = PowerAccount::default();
        a.advance(1_000_000, false, &cfg);
        b.advance(1_000_000, true, &cfg);
        assert!(b.background_j > a.background_j);
    }

    #[test]
    fn advance_is_monotonic() {
        let cfg = DramConfig::default();
        let mut acc = PowerAccount::default();
        acc.advance(1000, true, &cfg);
        let e = acc.background_j;
        acc.advance(500, true, &cfg); // stale timestamp: no-op
        assert_eq!(acc.background_j, e);
    }

    #[test]
    fn event_energy_accumulates() {
        let cfg = DramConfig::default();
        let mut acc = PowerAccount::default();
        acc.add_activate(&cfg);
        acc.add_read(&cfg);
        acc.add_write(&cfg);
        let expected = cfg.power.activate_j + cfg.power.read_burst_j + cfg.power.write_burst_j;
        assert!((acc.total_j() - expected).abs() < 1e-18);
    }
}

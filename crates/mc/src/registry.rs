//! Engine registry: turn an [`EngineKind`] into a live
//! [`PrefetchEngine`] trait object.
//!
//! The controller never names a concrete engine type; it calls
//! [`build_engine`] once at construction. Built-in kinds map onto the
//! engines in [`crate::engine`]; [`EngineKind::Custom`] carries a
//! user-supplied [`EngineFactory`], so external crates (including tests)
//! add engines without touching `asd-mc`.

use crate::config::EngineKind;
use crate::engine::{AsdEngine, NextLineEngine, NoPrefetch, P5StyleEngine, PrefetchEngine};
use std::sync::Arc;

/// Builds instances of a custom prefetch engine.
///
/// Factories are shared (`Arc`) and must be reusable: a sweep clones one
/// [`EngineKind::Custom`] configuration into many systems, each of which
/// calls [`EngineFactory::build`] once.
pub trait EngineFactory: Send + Sync + std::fmt::Debug {
    /// Construct a fresh engine for `threads` hardware threads.
    fn build(&self, threads: usize) -> Box<dyn PrefetchEngine>;

    /// Label identifying the engine family (shown by `Debug` / reports).
    fn label(&self) -> &str;

    /// Stable identity for result memoization, or `None` (the default) if
    /// this factory has no such identity.
    ///
    /// Contract: two factories returning equal `stable_id` strings AND
    /// rendering identically under `Debug` must build engines whose
    /// observable behaviour is bit-identical for the same input stream.
    /// Factories honouring this contract participate in the cross-figure
    /// run cache (`asd-sim`); anonymous factories (`None`) are simulated
    /// fresh on every run, which is always sound.
    fn stable_id(&self) -> Option<&str> {
        None
    }
}

/// Instantiate the engine selected by `kind` for `threads` hardware
/// threads.
///
/// # Panics
///
/// Panics if an embedded [`asd_core::AsdConfig`] is invalid (validated
/// static configuration).
pub fn build_engine(kind: &EngineKind, threads: usize) -> Box<dyn PrefetchEngine> {
    match kind {
        EngineKind::None => Box::new(NoPrefetch),
        EngineKind::Asd(cfg) => Box::new(AsdEngine::new(cfg, threads)),
        EngineKind::NextLine => Box::new(NextLineEngine),
        EngineKind::P5Style => Box::new(P5StyleEngine::new()),
        EngineKind::Custom(factory) => factory.build(threads),
    }
}

/// Convenience: wrap a factory into an [`EngineKind`] for configs.
pub fn custom_engine(factory: Arc<dyn EngineFactory>) -> EngineKind {
    EngineKind::Custom(factory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asd_core::AsdConfig;

    #[derive(Debug)]
    struct PlusTwoFactory;

    #[derive(Debug)]
    struct PlusTwo;

    impl PrefetchEngine for PlusTwo {
        fn name(&self) -> &str {
            "plus-two"
        }

        fn on_read(&mut self, line: u64, _thread: u8, _now: u64, out: &mut Vec<u64>) {
            out.push(line + 2);
        }
    }

    impl EngineFactory for PlusTwoFactory {
        fn build(&self, _threads: usize) -> Box<dyn PrefetchEngine> {
            Box::new(PlusTwo)
        }

        fn label(&self) -> &str {
            "plus-two"
        }
    }

    #[test]
    fn builds_every_builtin_kind() {
        for (kind, name) in [
            (EngineKind::None, "none"),
            (EngineKind::Asd(AsdConfig::default()), "asd"),
            (EngineKind::NextLine, "next-line"),
            (EngineKind::P5Style, "p5-style"),
        ] {
            assert_eq!(build_engine(&kind, 2).name(), name);
        }
    }

    #[test]
    fn builds_custom_engines() {
        let kind = custom_engine(Arc::new(PlusTwoFactory));
        let mut e = build_engine(&kind, 1);
        let mut out = Vec::new();
        e.on_read(10, 0, 0, &mut out);
        assert_eq!(out, vec![12]);
        // Factories are reusable: a second build is independent.
        let mut e2 = build_engine(&kind, 1);
        e2.on_read(100, 0, 0, &mut out);
        assert_eq!(out, vec![12, 102]);
    }

    #[test]
    fn custom_kind_equality_is_by_factory_identity() {
        let f: Arc<dyn EngineFactory> = Arc::new(PlusTwoFactory);
        let a = EngineKind::Custom(Arc::clone(&f));
        let b = EngineKind::Custom(f);
        let c = custom_engine(Arc::new(PlusTwoFactory));
        assert_eq!(a, b, "same factory instance");
        assert_ne!(a, c, "distinct factory instances");
        assert_ne!(a, EngineKind::None);
    }
}

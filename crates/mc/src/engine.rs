//! Memory-side prefetch engines: ASD (the paper's contribution) plus the
//! next-line and Power5-style baselines of Figure 11.
//!
//! Engines are pluggable: the controller talks to a [`PrefetchEngine`]
//! trait object built by [`crate::build_engine`], so new engines (stride,
//! DSPatch-style, ...) slot in without touching the controller. Register
//! one-off engines through [`crate::EngineFactory`] and
//! [`crate::EngineKind::Custom`].

use asd_core::{AsdConfig, AsdDetector, AsdStats, PrefetchCandidate, Slh};
use std::collections::VecDeque;

/// A memory-side prefetch engine: observes the Read stream entering the
/// controller and proposes lines to prefetch.
///
/// Object-safe; the controller owns a `Box<dyn PrefetchEngine>`. All
/// methods except [`PrefetchEngine::on_read`] have no-op defaults, so
/// simple engines implement a single method.
pub trait PrefetchEngine: std::fmt::Debug + Send {
    /// Short engine name for reports and diagnostics.
    fn name(&self) -> &str;

    /// Observe a Read of `line` from `thread` at cycle `now`; append
    /// recommended prefetch lines to `out`.
    fn on_read(&mut self, line: u64, thread: u8, now: u64, out: &mut Vec<u64>);

    /// Number of epoch boundaries newly crossed since the last call
    /// (engines without epochs return 0). The controller forwards each
    /// boundary to the adaptive scheduler so both adapt on the same
    /// period, as §3.5 specifies.
    fn take_epoch_boundaries(&mut self) -> u64 {
        0
    }

    /// The most recently completed epoch's Stream Length Histogram for
    /// `thread`, if this engine keeps one.
    fn last_epoch_slh(&self, _thread: u8) -> Option<&Slh> {
        None
    }

    /// Detector statistics aggregated across all hardware threads, if this
    /// engine keeps them.
    fn stats(&self) -> Option<AsdStats> {
        None
    }

    /// Access the underlying ASD detectors (diagnostics, Figure 16).
    fn asd_detectors(&self) -> Option<&[AsdDetector]> {
        None
    }
}

/// Delegating impl so a boxed engine satisfies `E: PrefetchEngine` — the
/// generic [`crate::MemoryController`] instantiated with
/// `Box<dyn PrefetchEngine>` is the dynamic-dispatch fallback used for
/// [`crate::EngineKind::Custom`] factories (and by
/// [`crate::MemoryController::new`], which picks the engine from the
/// config at run time).
impl PrefetchEngine for Box<dyn PrefetchEngine> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn on_read(&mut self, line: u64, thread: u8, now: u64, out: &mut Vec<u64>) {
        (**self).on_read(line, thread, now, out);
    }

    fn take_epoch_boundaries(&mut self) -> u64 {
        (**self).take_epoch_boundaries()
    }

    fn last_epoch_slh(&self, thread: u8) -> Option<&Slh> {
        (**self).last_epoch_slh(thread)
    }

    fn stats(&self) -> Option<AsdStats> {
        (**self).stats()
    }

    fn asd_detectors(&self) -> Option<&[AsdDetector]> {
        (**self).asd_detectors()
    }
}

/// No memory-side prefetching (the NP and PS configurations).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetch;

impl PrefetchEngine for NoPrefetch {
    fn name(&self) -> &str {
        "none"
    }

    fn on_read(&mut self, _line: u64, _thread: u8, _now: u64, _out: &mut Vec<u64>) {}
}

/// Adaptive Stream Detection, one detector per hardware thread (§5.2: the
/// locality-identification hardware must be replicated per thread).
#[derive(Debug)]
pub struct AsdEngine {
    /// Per-thread detectors.
    detectors: Vec<AsdDetector>,
    /// Completed epochs already reported to the adaptive scheduler.
    epochs_seen: u64,
    /// Scratch buffer for candidates.
    scratch: Vec<PrefetchCandidate>,
}

impl AsdEngine {
    /// Build one detector per hardware thread.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or the [`AsdConfig`] is invalid
    /// (validated static configuration).
    pub fn new(cfg: &AsdConfig, threads: usize) -> Self {
        assert!(threads > 0, "at least one thread");
        AsdEngine {
            detectors: (0..threads)
                // asd-lint: allow(D005) -- documented panic (see `# Panics`): static configs are validated at build time
                .map(|_| AsdDetector::new(cfg.clone()).expect("valid ASD config"))
                .collect(),
            epochs_seen: 0,
            scratch: Vec::with_capacity(8),
        }
    }

    /// The paper's default engine for one thread (convenience).
    pub fn default_single_thread() -> Self {
        AsdEngine::new(&AsdConfig::default(), 1)
    }

    /// Map a hardware-thread id onto a detector index. Threads beyond the
    /// configured count share detectors round-robin; every accessor uses
    /// this same mapping.
    fn detector_index(&self, thread: u8) -> usize {
        usize::from(thread) % self.detectors.len()
    }
}

impl PrefetchEngine for AsdEngine {
    fn name(&self) -> &str {
        "asd"
    }

    fn on_read(&mut self, line: u64, thread: u8, now: u64, out: &mut Vec<u64>) {
        let idx = self.detector_index(thread);
        self.scratch.clear();
        self.detectors[idx].on_read(line, now, &mut self.scratch);
        out.extend(self.scratch.iter().map(|c| c.line));
    }

    fn take_epoch_boundaries(&mut self) -> u64 {
        let now: u64 = self.detectors.iter().map(|d| d.stats().epochs).max().unwrap_or(0);
        let new = now.saturating_sub(self.epochs_seen);
        self.epochs_seen = now;
        new
    }

    fn last_epoch_slh(&self, thread: u8) -> Option<&Slh> {
        let idx = self.detector_index(thread);
        self.detectors.get(idx).map(|d| d.last_epoch_slh())
    }

    fn stats(&self) -> Option<AsdStats> {
        // Counters sum across the per-thread detectors; epochs are counted
        // per detector on the same read-count period, so report the
        // furthest-advanced detector rather than a double-counting sum.
        let mut agg = AsdStats::default();
        for d in &self.detectors {
            let s = d.stats();
            agg.reads += s.reads;
            agg.prefetches += s.prefetches;
            agg.streams_observed += s.streams_observed;
            agg.untracked_reads += s.untracked_reads;
            agg.epochs = agg.epochs.max(s.epochs);
        }
        Some(agg)
    }

    fn asd_detectors(&self) -> Option<&[AsdDetector]> {
        Some(&self.detectors)
    }
}

/// Prefetch line+1 on every read (Figure 11 baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NextLineEngine;

impl PrefetchEngine for NextLineEngine {
    fn name(&self) -> &str {
        "next-line"
    }

    fn on_read(&mut self, line: u64, _thread: u8, _now: u64, out: &mut Vec<u64>) {
        if let Some(next) = line.checked_add(1) {
            out.push(next);
        }
    }
}

/// Power5-style sequential streams at the memory side: allocate on a read
/// of X (expecting X+1), confirm on X+1, then keep prefetching one line
/// ahead while the stream keeps hitting.
#[derive(Debug, Default)]
pub struct P5StyleEngine {
    /// `(expected_next_line, confirmed)` per detection slot (12 on the
    /// Power5), oldest at the front.
    slots: VecDeque<(u64, bool)>,
}

impl P5StyleEngine {
    /// Number of detection slots on the Power5.
    const SLOTS: usize = 12;

    /// An engine with all detection slots free.
    pub fn new() -> Self {
        P5StyleEngine { slots: VecDeque::with_capacity(Self::SLOTS) }
    }
}

impl PrefetchEngine for P5StyleEngine {
    fn name(&self) -> &str {
        "p5-style"
    }

    fn on_read(&mut self, line: u64, _thread: u8, _now: u64, out: &mut Vec<u64>) {
        if let Some(slot) = self.slots.iter_mut().find(|(expect, _)| *expect == line) {
            // Stream advanced: from the second consecutive line on,
            // prefetch one ahead.
            slot.0 = line + 1;
            slot.1 = true;
            out.push(line + 1);
        } else {
            // Allocate a detection entry expecting the next line, evicting
            // the oldest slot (FIFO) when full.
            if self.slots.len() >= Self::SLOTS {
                self.slots.pop_front();
            }
            self.slots.push_back((line + 1, false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;
    use crate::registry::build_engine;

    #[test]
    fn none_never_prefetches() {
        let mut e = build_engine(&EngineKind::None, 1);
        let mut out = Vec::new();
        e.on_read(100, 0, 0, &mut out);
        assert!(out.is_empty());
        assert_eq!(e.take_epoch_boundaries(), 0);
        assert_eq!(e.name(), "none");
    }

    #[test]
    fn next_line_always_prefetches() {
        let mut e = build_engine(&EngineKind::NextLine, 1);
        let mut out = Vec::new();
        e.on_read(100, 0, 0, &mut out);
        e.on_read(500, 0, 1, &mut out);
        assert_eq!(out, vec![101, 501]);
    }

    #[test]
    fn p5_style_needs_confirmation() {
        let mut e = build_engine(&EngineKind::P5Style, 1);
        let mut out = Vec::new();
        e.on_read(100, 0, 0, &mut out);
        assert!(out.is_empty(), "first touch only allocates");
        e.on_read(101, 0, 1, &mut out);
        assert_eq!(out, vec![102], "second consecutive read confirms");
        out.clear();
        e.on_read(102, 0, 2, &mut out);
        assert_eq!(out, vec![103], "steady state stays one ahead");
    }

    #[test]
    fn p5_style_slot_bound() {
        let mut e = P5StyleEngine::new();
        let mut out = Vec::new();
        for i in 0..50 {
            e.on_read(i * 1000, 0, i, &mut out);
        }
        assert!(e.slots.len() <= P5StyleEngine::SLOTS);
        assert!(out.is_empty());
    }

    #[test]
    fn p5_style_evicts_oldest_slot() {
        let mut e = P5StyleEngine::new();
        let mut out = Vec::new();
        // Fill all 12 slots, then allocate one more: slot 0 (expecting
        // line 1) must be the one evicted.
        for i in 0..13u64 {
            e.on_read(i * 1000, 0, i, &mut out);
        }
        assert!(!e.slots.iter().any(|(expect, _)| *expect == 1));
        assert!(e.slots.iter().any(|(expect, _)| *expect == 12_001));
    }

    #[test]
    fn asd_replicates_per_thread() {
        let e = build_engine(&EngineKind::Asd(AsdConfig::default()), 2);
        assert_eq!(e.asd_detectors().unwrap().len(), 2);
        assert_eq!(e.name(), "asd");
    }

    #[test]
    fn asd_epoch_boundaries_forwarded_once() {
        let cfg = AsdConfig { epoch_reads: 10, ..AsdConfig::default() };
        let mut e = build_engine(&EngineKind::Asd(cfg), 1);
        let mut out = Vec::new();
        for i in 0..25u64 {
            e.on_read(i * 100, 0, i * 500, &mut out);
        }
        assert_eq!(e.take_epoch_boundaries(), 2);
        assert_eq!(e.take_epoch_boundaries(), 0, "consumed");
    }

    #[test]
    fn asd_thread_mapping_is_modulo_everywhere() {
        // One detector, reads tagged thread 1: on_read and last_epoch_slh
        // must agree on the modulo mapping (thread 1 -> detector 0).
        let cfg = AsdConfig { epoch_reads: 8, ..AsdConfig::default() };
        let mut e = AsdEngine::new(&cfg, 1);
        let mut out = Vec::new();
        for i in 0..20u64 {
            e.on_read(i * 100, 1, i * 500, &mut out);
        }
        assert!(e.stats().unwrap().reads >= 20);
        let slh = e.last_epoch_slh(1).expect("thread 1 maps onto detector 0");
        assert!(slh.total_reads() > 0, "completed epoch is visible through thread 1");
        assert_eq!(
            e.last_epoch_slh(1).map(|s| s.total_reads()),
            e.last_epoch_slh(0).map(|s| s.total_reads()),
        );
    }

    #[test]
    fn asd_stats_aggregate_across_threads() {
        let cfg = AsdConfig { epoch_reads: 8, ..AsdConfig::default() };
        let mut e = AsdEngine::new(&cfg, 2);
        let mut out = Vec::new();
        // 10 reads on thread 0, 6 on thread 1.
        for i in 0..10u64 {
            e.on_read(1000 + i, 0, i * 500, &mut out);
        }
        for i in 0..6u64 {
            e.on_read(900_000 + i, 1, i * 500, &mut out);
        }
        let s = e.stats().unwrap();
        assert_eq!(s.reads, 16, "reads sum across detectors");
    }
}

//! Memory-side prefetch engines: ASD (the paper's contribution) plus the
//! next-line and Power5-style baselines of Figure 11.

use crate::config::EngineKind;
use asd_core::{AsdConfig, AsdDetector, PrefetchCandidate, Slh};

/// A memory-side prefetch engine: observes the Read stream entering the
/// controller and proposes lines to prefetch.
#[derive(Debug)]
pub enum PrefetchEngine {
    /// No prefetching.
    None,
    /// Adaptive Stream Detection, one detector per hardware thread (§5.2:
    /// the locality-identification hardware must be replicated per thread).
    Asd {
        /// Per-thread detectors.
        detectors: Vec<AsdDetector>,
        /// Completed epochs already reported to the adaptive scheduler.
        epochs_seen: u64,
        /// Scratch buffer for candidates.
        scratch: Vec<PrefetchCandidate>,
    },
    /// Prefetch line+1 on every read.
    NextLine,
    /// Power5-style sequential streams at the memory side: allocate on a
    /// read of X (expecting X+1), confirm on X+1, then keep prefetching one
    /// line ahead while the stream keeps hitting.
    P5Style {
        /// `(expected_next_line, confirmed)` per detection slot (12 on the
        /// Power5).
        slots: Vec<(u64, bool)>,
    },
}

impl PrefetchEngine {
    /// Instantiate from a configuration for `threads` hardware threads.
    ///
    /// # Panics
    ///
    /// Panics if the embedded [`AsdConfig`] is invalid (validated static
    /// configuration).
    pub fn new(kind: &EngineKind, threads: usize) -> Self {
        match kind {
            EngineKind::None => PrefetchEngine::None,
            EngineKind::Asd(cfg) => PrefetchEngine::Asd {
                detectors: (0..threads)
                    .map(|_| AsdDetector::new(cfg.clone()).expect("valid ASD config"))
                    .collect(),
                epochs_seen: 0,
                scratch: Vec::with_capacity(8),
            },
            EngineKind::NextLine => PrefetchEngine::NextLine,
            EngineKind::P5Style => PrefetchEngine::P5Style { slots: Vec::with_capacity(12) },
        }
    }

    /// Observe a Read of `line` from `thread` at cycle `now`; append
    /// recommended prefetch lines to `out`.
    pub fn on_read(&mut self, line: u64, thread: u8, now: u64, out: &mut Vec<u64>) {
        match self {
            PrefetchEngine::None => {}
            PrefetchEngine::Asd { detectors, scratch, .. } => {
                let idx = usize::from(thread) % detectors.len();
                scratch.clear();
                detectors[idx].on_read(line, now, scratch);
                out.extend(scratch.iter().map(|c| c.line));
            }
            PrefetchEngine::NextLine => {
                if let Some(next) = line.checked_add(1) {
                    out.push(next);
                }
            }
            PrefetchEngine::P5Style { slots } => {
                const SLOTS: usize = 12;
                if let Some(slot) = slots.iter_mut().find(|(expect, _)| *expect == line) {
                    // Stream advanced: from the second consecutive line on,
                    // prefetch one ahead.
                    slot.0 = line + 1;
                    slot.1 = true;
                    out.push(line + 1);
                } else {
                    // Allocate a detection entry expecting the next line.
                    if slots.len() >= SLOTS {
                        slots.remove(0);
                    }
                    slots.push((line + 1, false));
                }
            }
        }
    }

    /// Number of epoch boundaries newly crossed since the last call (ASD
    /// only; other engines have no epochs). The controller forwards each
    /// boundary to the adaptive scheduler so both adapt on the same period,
    /// as §3.5 specifies.
    pub fn take_epoch_boundaries(&mut self) -> u64 {
        match self {
            PrefetchEngine::Asd { detectors, epochs_seen, .. } => {
                let now: u64 = detectors.iter().map(|d| d.stats().epochs).max().unwrap_or(0);
                let new = now.saturating_sub(*epochs_seen);
                *epochs_seen = now;
                new
            }
            _ => 0,
        }
    }

    /// The most recently completed epoch's Stream Length Histogram of the
    /// ASD detector for `thread`, if this engine is ASD.
    pub fn last_epoch_slh(&self, thread: u8) -> Option<&Slh> {
        match self {
            PrefetchEngine::Asd { detectors, .. } => {
                detectors.get(usize::from(thread)).map(|d| d.last_epoch_slh())
            }
            _ => None,
        }
    }

    /// Access the underlying ASD detectors (diagnostics, Figure 16).
    pub fn asd_detectors(&self) -> Option<&[AsdDetector]> {
        match self {
            PrefetchEngine::Asd { detectors, .. } => Some(detectors),
            _ => None,
        }
    }

    /// Build the paper's default ASD engine for one thread (convenience).
    pub fn default_asd() -> Self {
        PrefetchEngine::new(&EngineKind::Asd(AsdConfig::default()), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_prefetches() {
        let mut e = PrefetchEngine::new(&EngineKind::None, 1);
        let mut out = Vec::new();
        e.on_read(100, 0, 0, &mut out);
        assert!(out.is_empty());
        assert_eq!(e.take_epoch_boundaries(), 0);
    }

    #[test]
    fn next_line_always_prefetches() {
        let mut e = PrefetchEngine::new(&EngineKind::NextLine, 1);
        let mut out = Vec::new();
        e.on_read(100, 0, 0, &mut out);
        e.on_read(500, 0, 1, &mut out);
        assert_eq!(out, vec![101, 501]);
    }

    #[test]
    fn p5_style_needs_confirmation() {
        let mut e = PrefetchEngine::new(&EngineKind::P5Style, 1);
        let mut out = Vec::new();
        e.on_read(100, 0, 0, &mut out);
        assert!(out.is_empty(), "first touch only allocates");
        e.on_read(101, 0, 1, &mut out);
        assert_eq!(out, vec![102], "second consecutive read confirms");
        out.clear();
        e.on_read(102, 0, 2, &mut out);
        assert_eq!(out, vec![103], "steady state stays one ahead");
    }

    #[test]
    fn p5_style_slot_bound() {
        let mut e = PrefetchEngine::new(&EngineKind::P5Style, 1);
        let mut out = Vec::new();
        for i in 0..50 {
            e.on_read(i * 1000, 0, i, &mut out);
        }
        if let PrefetchEngine::P5Style { slots } = &e {
            assert!(slots.len() <= 12);
        } else {
            unreachable!();
        }
        assert!(out.is_empty());
    }

    #[test]
    fn asd_replicates_per_thread() {
        let e = PrefetchEngine::new(&EngineKind::Asd(AsdConfig::default()), 2);
        assert_eq!(e.asd_detectors().unwrap().len(), 2);
    }

    #[test]
    fn asd_epoch_boundaries_forwarded_once() {
        let cfg = AsdConfig { epoch_reads: 10, ..AsdConfig::default() };
        let mut e = PrefetchEngine::new(&EngineKind::Asd(cfg), 1);
        let mut out = Vec::new();
        for i in 0..25u64 {
            e.on_read(i * 100, 0, i * 500, &mut out);
        }
        assert_eq!(e.take_epoch_boundaries(), 2);
        assert_eq!(e.take_epoch_boundaries(), 0, "consumed");
    }
}

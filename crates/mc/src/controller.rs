//! The memory controller of the paper's Figure 4.

use crate::config::{LpqMode, McConfig, SchedulerKind};
use crate::engine::PrefetchEngine;
use crate::prefetch_buffer::PrefetchBuffer;
use crate::queues::{BoundedFifo, QueuedCommand, ReorderQueue};
use crate::registry::build_engine;
use crate::sched::{CommandPicker, PickedFrom};
use crate::stats::McStats;
use asd_core::{AdaptiveScheduler, Clocked, LpqPolicy, NextEvent, QueueView};
use asd_dram::{Dram, DramCmdKind};
use asd_telemetry::{
    Buckets, EventKind, HistogramId, Registry, SeriesId, Snapshot, TelemetryConfig, Unit,
};

/// Immediate answer to [`MemoryController::enqueue_read`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadResponse {
    /// Data available at the given cycle without a DRAM round trip of its
    /// own (Prefetch Buffer hit, or merged with an in-flight prefetch).
    Done {
        /// Cycle the data reaches the requester.
        at: u64,
    },
    /// Accepted; a completion will be reported from
    /// [`MemoryController::step`] once the command is scheduled.
    Queued,
    /// The read reorder queue is full; retry next cycle.
    Rejected,
}

/// A read completion produced by [`MemoryController::step`]. `at` may be in
/// the future (the data-burst completion time); the caller delivers it to
/// the core at that cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadCompletion {
    /// The filled cache line.
    pub line: u64,
    /// Requesting hardware thread.
    pub thread: u8,
    /// Cycle the data is available.
    pub at: u64,
}

#[derive(Debug, Clone, Copy)]
struct InflightPrefetch {
    line: u64,
    data_at: u64,
}

enum LpqArbiter {
    Adaptive(AdaptiveScheduler),
    Fixed(LpqPolicy),
}

/// Hot-path instrument handles, registered once (at construction or
/// [`MemoryController::attach_telemetry`]) so updates are plain indexed
/// operations with no name lookups.
#[derive(Debug, Clone, Copy)]
struct McInstruments {
    caq_occupancy: HistogramId,
    lpq_occupancy: HistogramId,
    reorder_occupancy: HistogramId,
    epoch_prefetches: SeriesId,
    epoch_conflicts: SeriesId,
}

/// The full memory controller: reorder queues + scheduler + CAQ, extended
/// with the ASD prefetcher (Stream Filter / LHTs inside
/// [`PrefetchEngine`]), LPQ, Prefetch Buffer, and Final Scheduler.
///
/// Generic over the engine type so the per-read `on_read` and per-step
/// `take_epoch_boundaries` calls devirtualize (and inline) when a concrete
/// engine is named — the simulator instantiates one controller per paper
/// engine. The default parameter keeps the dynamic-dispatch form
/// (`MemoryController::new`, used by `EngineKind::Custom` and existing
/// callers) spelled exactly as before.
pub struct MemoryController<E: PrefetchEngine = Box<dyn PrefetchEngine>> {
    cfg: McConfig,
    dram: Dram,
    reads: ReorderQueue,
    writes: ReorderQueue,
    caq: BoundedFifo,
    lpq: BoundedFifo,
    pb: PrefetchBuffer,
    engine: E,
    picker: CommandPicker,
    arbiter: LpqArbiter,
    inflight: Vec<InflightPrefetch>,
    /// Per-bank: busy with a memory-side prefetch until this cycle.
    bank_prefetch_until: Vec<u64>,
    /// Max over `bank_prefetch_until`: when `<= now`, no bank is occupied
    /// by a prefetch and the per-command conflict scan is a no-op — the
    /// single compare that makes conflict accounting free for
    /// configurations that never prefetch (NP/PS).
    prefetch_horizon: u64,
    stats: McStats,
    cand_scratch: Vec<u64>,
    /// Read completions produced since the last drain.
    outbox: Vec<ReadCompletion>,
    /// Telemetry section (`mc.` prefix); inert unless
    /// [`MemoryController::attach_telemetry`] enables it. Observational
    /// only — no simulation decision reads it.
    tel: Registry,
    inst: McInstruments,
    /// Epoch boundaries seen so far (event numbering only).
    epoch_count: u64,
}

impl MemoryController {
    /// Build a controller around a DRAM channel, constructing the engine
    /// named by the configuration behind dynamic dispatch. Callers that
    /// know the engine statically use
    /// [`MemoryController::with_engine`] instead.
    pub fn new(cfg: McConfig, dram: Dram) -> Self {
        let engine = build_engine(&cfg.engine, cfg.threads);
        Self::with_engine(cfg, dram, engine)
    }
}

impl<E: PrefetchEngine> MemoryController<E> {
    /// Queue-occupancy histograms are sampled on cycles where
    /// `now & MASK == 0` (every 64th cycle), not every cycle: the
    /// sampled distribution has the same shape at 1/64th the hot-path
    /// cost, which is what keeps enabled-telemetry overhead ≤2%.
    const OCCUPANCY_SAMPLE_MASK: u64 = 63;

    /// Build a controller around a DRAM channel with a concrete engine
    /// (monomorphized dispatch; `cfg.engine` is kept for reporting but the
    /// passed engine is the one consulted).
    pub fn with_engine(cfg: McConfig, dram: Dram, engine: E) -> Self {
        cfg.assert_valid();
        let banks = dram.config().banks;
        let arbiter = match cfg.lpq_mode {
            LpqMode::Adaptive => LpqArbiter::Adaptive(AdaptiveScheduler::new()),
            LpqMode::Fixed(p) => LpqArbiter::Fixed(p),
        };
        let mut tel = Registry::disabled();
        let inst = Self::instruments(&mut tel, &cfg);
        MemoryController {
            reads: ReorderQueue::new(cfg.read_queue_cap),
            writes: ReorderQueue::new(cfg.write_queue_cap),
            caq: BoundedFifo::new(cfg.caq_cap),
            lpq: BoundedFifo::new(cfg.lpq_cap),
            pb: PrefetchBuffer::new(cfg.pb_lines.max(1), cfg.pb_assoc.max(1)),
            engine,
            picker: CommandPicker::new(cfg.scheduler),
            arbiter,
            inflight: Vec::with_capacity(8),
            bank_prefetch_until: vec![0; banks],
            prefetch_horizon: 0,
            stats: McStats::default(),
            cand_scratch: Vec::with_capacity(8),
            outbox: Vec::with_capacity(8),
            tel,
            inst,
            epoch_count: 0,
            cfg,
            dram,
        }
    }

    /// Register the controller's hot-path instruments on `tel`. Bucket
    /// bounds come from the configured queue capacities, so every
    /// occupancy value has an exact bucket.
    fn instruments(tel: &mut Registry, cfg: &McConfig) -> McInstruments {
        McInstruments {
            caq_occupancy: tel.histogram(
                "caq.occupancy",
                Unit::Commands,
                "CAQ depth sampled every controller cycle",
                Buckets::zero_to(cfg.caq_cap as u64),
            ),
            lpq_occupancy: tel.histogram(
                "lpq.occupancy",
                Unit::Commands,
                "LPQ depth sampled every controller cycle",
                Buckets::zero_to(cfg.lpq_cap as u64),
            ),
            reorder_occupancy: tel.histogram(
                "reorder.occupancy",
                Unit::Commands,
                "combined read+write reorder queue depth sampled every controller cycle",
                Buckets::zero_to((cfg.read_queue_cap + cfg.write_queue_cap) as u64),
            ),
            epoch_prefetches: tel.series(
                "epoch.prefetches",
                Unit::Commands,
                "cumulative prefetches issued, sampled at each SLH epoch boundary",
            ),
            epoch_conflicts: tel.series(
                "epoch.conflicts",
                Unit::Events,
                "cumulative delayed regular commands, sampled at each SLH epoch boundary",
            ),
        }
    }

    /// Enable telemetry per `cfg`, replacing the inert registry created
    /// by [`MemoryController::new`]. Call before running; this covers the
    /// controller's own instruments and its DRAM channel's.
    pub fn attach_telemetry(&mut self, cfg: &TelemetryConfig) {
        let mut tel = Registry::section("mc.", cfg);
        self.inst = Self::instruments(&mut tel, &self.cfg);
        self.tel = tel;
        self.dram.attach_telemetry(cfg);
    }

    /// Freeze the live-updated instruments (occupancy histograms, epoch
    /// series, events) of this controller and its DRAM channel. Scalar
    /// counters are not duplicated here — [`MemoryController::stats`]
    /// stays authoritative and the run-level assembler mirrors it.
    // asd-lint: cold -- exposition freeze: runs at snapshot time, not per cycle
    pub fn telemetry_snapshot(&self) -> Snapshot {
        let mut snap = self.tel.snapshot();
        snap.merge(self.dram.telemetry_snapshot());
        snap
    }

    /// The configuration in force.
    pub fn config(&self) -> &McConfig {
        &self.cfg
    }

    /// Submit a Read command at cycle `now`.
    ///
    /// The Stream Filter observes every incoming Read (Figure 4 taps the
    /// input), then the Prefetch Buffer is checked (first check), then
    /// in-flight prefetches are consulted for a merge; only then does the
    /// command enter the read reorder queue.
    // asd-lint: hot
    pub fn enqueue_read(&mut self, line: u64, thread: u8, now: u64) -> ReadResponse {
        self.stats.reads += 1;

        // Train the memory-side engine and harvest prefetch candidates.
        self.cand_scratch.clear();
        let mut cands = std::mem::take(&mut self.cand_scratch);
        self.engine.on_read(line, thread, now, &mut cands);
        for cand in cands.drain(..) {
            self.consider_prefetch(cand, now);
        }
        self.cand_scratch = cands;

        // First Prefetch Buffer check.
        if self.pb.take_for_read(line) {
            self.stats.pb_hits_on_arrival += 1;
            self.tel.event(now, EventKind::PbHit, line, 0);
            return ReadResponse::Done { at: now + self.cfg.pb_hit_latency };
        }

        // A still-queued prefetch for this line is pointless now — the
        // demand read will fetch the data itself. Squash it.
        if self.lpq.remove_line(line).is_some() {
            self.stats.lpq_squashed += 1;
            self.tel.event(now, EventKind::PrefetchSquashed, line, self.lpq.len() as u64);
        }

        // Merge with an in-flight memory-side prefetch of the same line.
        if let Some(pos) = self.inflight.iter().position(|p| p.line == line) {
            let p = self.inflight.swap_remove(pos);
            self.stats.merged_with_prefetch += 1;
            return ReadResponse::Done { at: p.data_at.max(now) + self.cfg.pb_hit_latency };
        }

        if self.reads.is_full() {
            self.stats.read_rejects += 1;
            return ReadResponse::Rejected;
        }
        let (bank, row) = self.dram.map_line(line);
        let accepted = self.reads.push(QueuedCommand {
            line,
            bank: bank as u32,
            row,
            kind: DramCmdKind::Read,
            thread,
            arrival: now,
            conflict_counted: false,
        });
        debug_assert!(accepted);
        ReadResponse::Queued
    }

    /// Submit a Write command (writeback or store traffic). Returns `false`
    /// when the write queue is full (caller retries). Writes invalidate any
    /// matching Prefetch Buffer entry (§3.3).
    pub fn enqueue_write(&mut self, line: u64, now: u64) -> bool {
        self.stats.writes += 1;
        self.pb.invalidate_for_write(line);
        if self.writes.is_full() {
            self.stats.write_rejects += 1;
            return false;
        }
        let (bank, row) = self.dram.map_line(line);
        self.writes.push(QueuedCommand {
            line,
            bank: bank as u32,
            row,
            kind: DramCmdKind::Write,
            thread: 0,
            arrival: now,
            conflict_counted: false,
        })
    }

    fn consider_prefetch(&mut self, line: u64, now: u64) {
        // Redundant if already buffered, queued anywhere, or in flight.
        if self.pb.contains(line)
            || self.lpq.contains_line(line)
            || self.reads.contains_line(line)
            || self.caq.contains_line(line)
            || self.inflight.iter().any(|p| p.line == line)
        {
            self.stats.prefetch_redundant += 1;
            return;
        }
        let (bank, row) = self.dram.map_line(line);
        let cmd = QueuedCommand {
            line,
            bank: bank as u32,
            row,
            kind: DramCmdKind::Read,
            thread: 0,
            arrival: now,
            conflict_counted: false,
        };
        if !self.lpq.push(cmd) {
            self.stats.lpq_dropped += 1;
            self.tel.event(now, EventKind::PrefetchDropped, line, self.lpq.len() as u64);
        }
    }

    // asd-lint: hot
    fn queue_view(&self, now: u64) -> QueueView {
        // `reorder_issuable` is only read by LPQ policy 2, whose condition
        // starts with `caq_len == 0` — with commands in the CAQ the count
        // is unobservable, so skip the probe-per-command scan.
        let issuable = if self.caq.is_empty() {
            count_issuable(&self.reads, &self.dram, now)
                + count_issuable(&self.writes, &self.dram, now)
        } else {
            0
        };
        QueueView {
            caq_len: self.caq.len(),
            lpq_len: self.lpq.len(),
            lpq_capacity: self.lpq.capacity(),
            reorder_len: self.reads.len() + self.writes.len(),
            reorder_issuable: issuable,
            lpq_head_ts: self.lpq.head_arrival(),
            caq_head_ts: self.caq.head_arrival(),
        }
    }

    /// Count (once per command) regular commands that cannot proceed
    /// because the memory system is busy with a previously issued prefetch
    /// — the feedback signal of Adaptive Scheduling (§3.5) and the
    /// "delayed regular commands" measure of Figure 13.
    // asd-lint: hot
    fn count_prefetch_blocks(&mut self, now: u64) {
        // No bank is occupied by a prefetch: nothing can be blocked. This
        // single compare is the whole cost for NP/PS configurations and
        // for every prefetching cycle with no prefetch in the DRAM.
        if self.prefetch_horizon <= now {
            return;
        }
        let banks = &self.bank_prefetch_until;
        let tel = &mut self.tel;
        let mut conflicts = self.reads.mark_new_conflicts(banks, now, |bank| {
            tel.event(now, EventKind::BankConflict, u64::from(bank), 1);
        });
        conflicts += self.writes.mark_new_conflicts(banks, now, |bank| {
            tel.event(now, EventKind::BankConflict, u64::from(bank), 1);
        });
        if let Some((bank, counted)) = self.caq.head_conflict_probe() {
            if !counted && banks[bank as usize] > now {
                self.caq.mark_head_conflict();
                conflicts += 1;
                self.tel.event(now, EventKind::BankConflict, u64::from(bank), 1);
            }
        }
        if conflicts > 0 {
            self.stats.delayed_regular += conflicts;
            if let LpqArbiter::Adaptive(sched) = &mut self.arbiter {
                for _ in 0..conflicts {
                    sched.record_conflict();
                }
            }
        }
    }

    /// Advance the controller one cycle, appending any read completions
    /// (possibly with future timestamps) to `out`.
    ///
    /// Compatibility wrapper over [`MemoryController::advance`] +
    /// [`MemoryController::drain_completions`]; event-driven callers use
    /// the [`Clocked`] implementation instead.
    pub fn step(&mut self, now: u64, out: &mut Vec<ReadCompletion>) {
        self.advance(now);
        self.drain_completions(out);
    }

    /// Move completions produced so far (by [`MemoryController::advance`]
    /// or [`MemoryController::enqueue_read`] fast paths routed through
    /// `step`) into `out`. Timestamps may be in the future — the caller
    /// delivers each at its `at` cycle.
    pub fn drain_completions(&mut self, out: &mut Vec<ReadCompletion>) {
        out.append(&mut self.outbox);
    }

    /// Perform every state transition due at cycle `now`. Returns `true`
    /// when the very next cycle must also be stepped — cases a jump to
    /// [`MemoryController::next_event_hint`] would get wrong:
    ///
    /// * a CAQ pop exposed a new head that has not been checked against
    ///   the Prefetch Buffer or the DRAM timing yet;
    /// * the reorder queues are non-empty, the CAQ has room, and the
    ///   scheduler promotes without waiting for bank readiness (InOrder,
    ///   AHB) — it will act next cycle no matter what the DRAM says;
    /// * a prefetch just issued while demand commands were queued — the
    ///   following cycle is where they observe the newly occupied bank
    ///   (the conflict-marking cycle Adaptive Scheduling adapts on, which
    ///   the cycle-accurate reference also hits). With every demand queue
    ///   empty nothing can be marked and no step is forced.
    ///
    /// Everything else (promotion of ready commands under Memoryless,
    /// issue of the current heads, prefetch landings) is exactly captured
    /// by the hint's enablement times.
    // asd-lint: hot
    fn advance(&mut self, now: u64) -> bool {
        let mut popped_caq = false;

        // 0. Occupancy histograms (the queues Adaptive Scheduling watches,
        // §3.5). Inert single branch when telemetry is off; sampled every
        // 64th cycle when on — the occupancy *distribution* is the signal,
        // and sampling keeps the enabled path within the ≤2% overhead
        // budget instead of paying three bucket updates per cycle.
        if now & Self::OCCUPANCY_SAMPLE_MASK == 0 && self.tel.metrics_on() {
            self.tel.observe(self.inst.caq_occupancy, self.caq.len() as u64);
            self.tel.observe(self.inst.lpq_occupancy, self.lpq.len() as u64);
            let reorder = (self.reads.len() + self.writes.len()) as u64;
            self.tel.observe(self.inst.reorder_occupancy, reorder);
        }

        // 1. Land completed prefetches in the Prefetch Buffer. (The CAQ
        // head is checked against the refreshed buffer in stage 5 of this
        // same cycle, so landing alone never requires stepping the next
        // cycle.)
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].data_at <= now {
                let p = self.inflight.swap_remove(i);
                self.pb.insert(p.line);
            } else {
                i += 1;
            }
        }

        // 2. Epoch boundaries: the adaptive scheduler adapts on the same
        // epoch the Stream Length Histograms use.
        let boundaries = self.engine.take_epoch_boundaries();
        if boundaries > 0 {
            let before = self.current_lpq_policy();
            if let LpqArbiter::Adaptive(sched) = &mut self.arbiter {
                for _ in 0..boundaries {
                    sched.on_epoch_end();
                }
            }
            self.epoch_count += boundaries;
            if self.tel.events_on() {
                let after = self.current_lpq_policy();
                self.tel.event(
                    now,
                    EventKind::EpochRollover,
                    self.epoch_count,
                    self.stats.delayed_regular,
                );
                if after != before {
                    self.tel.event(
                        now,
                        EventKind::PolicySwitch,
                        before.number() as u64,
                        after.number() as u64,
                    );
                }
            }
            self.tel.sample(self.inst.epoch_prefetches, now, self.stats.prefetches_issued as f64);
            self.tel.sample(self.inst.epoch_conflicts, now, self.stats.delayed_regular as f64);
        }

        // 3. Conflict accounting.
        self.count_prefetch_blocks(now);

        // 4. Promote one command from the reorder queues to the CAQ. (The
        // promotion itself never forces a next-cycle step: whether another
        // can follow is the queue-room condition computed at the end, and
        // the promoted command's issue time is in the hint via the CAQ
        // head.)
        if !self.caq.is_full() {
            if let Some(pick) = self.picker.pick(&self.reads, &self.writes, &self.dram, now) {
                let cmd = match pick {
                    PickedFrom::Read(i) => self.reads.remove(i),
                    PickedFrom::Write(i) => self.writes.remove(i),
                };
                let accepted = self.caq.push(cmd);
                debug_assert!(accepted, "checked capacity above");
            }
        }

        // 5. Final Scheduler: one DRAM issue per cycle, LPQ vs CAQ. The
        // LPQ arbitration (and the issuable scan feeding its QueueView) is
        // only consulted when a prefetch is actually waiting — the
        // policies are pure functions of the view, so an empty LPQ makes
        // the whole block unobservable.
        if !self.lpq.is_empty() {
            let view = self.queue_view(now);
            let lpq_allowed = match &self.arbiter {
                LpqArbiter::Adaptive(s) => s.allows(view),
                LpqArbiter::Fixed(p) => p.allows(view),
            };
            if lpq_allowed {
                if let Some((bank, row)) = self.lpq.head_bank_row() {
                    if self.dram.can_issue_mapped(bank as usize, row, now) {
                        // asd-lint: allow(D005) -- `head_bank_row()` returned Some two lines up and nothing popped since
                        let cmd = self.lpq.pop().expect("head exists");
                        let completion = self.dram.issue(cmd.line, DramCmdKind::Read, now);
                        self.picker.note_issued(DramCmdKind::Read);
                        let bank = cmd.bank as usize;
                        self.bank_prefetch_until[bank] = completion.data_at;
                        self.prefetch_horizon = self.prefetch_horizon.max(completion.data_at);
                        self.inflight.push(InflightPrefetch {
                            line: cmd.line,
                            data_at: completion.data_at + self.cfg.transit_latency,
                        });
                        self.stats.prefetches_issued += 1;
                        self.tel.event(now, EventKind::PrefetchIssued, cmd.line, bank as u64);
                        // The next cycle is the conflict-marking cycle —
                        // but only commands already waiting can be marked
                        // (later arrivals are examined on arrival), so
                        // with every demand queue empty there is nothing
                        // to observe the newly occupied bank and the
                        // forced step would be a no-op. The hint covers
                        // everything else: the next LPQ issue through the
                        // head probe, the landing through the in-flight
                        // probe.
                        if !self.reads.is_empty() || !self.writes.is_empty() || !self.caq.is_empty()
                        {
                            return true;
                        }
                        return false;
                    }
                }
            }
        }
        if let Some(head) = self.caq.head() {
            // Second Prefetch Buffer check: the data may have arrived while
            // the Read waited in the CAQ.
            if head.kind == DramCmdKind::Read && self.pb.take_for_read(head.line) {
                self.caq.pop();
                self.stats.pb_hits_at_caq += 1;
                self.tel.event(now, EventKind::PbHit, head.line, 1);
                self.outbox.push(ReadCompletion {
                    line: head.line,
                    thread: head.thread,
                    at: now + self.cfg.pb_hit_latency,
                });
                popped_caq = true;
            } else if self.dram.can_issue_mapped(head.bank as usize, head.row, now) {
                self.caq.pop();
                let completion = self.dram.issue(head.line, head.kind, now);
                self.picker.note_issued(head.kind);
                if head.kind == DramCmdKind::Read {
                    self.outbox.push(ReadCompletion {
                        line: head.line,
                        thread: head.thread,
                        at: completion.data_at + self.cfg.transit_latency,
                    });
                }
                popped_caq = true;
            }
        }

        let promotes_unready = self.picker.kind() != SchedulerKind::Memoryless;
        (popped_caq && !self.caq.is_empty())
            || (promotes_unready
                && !self.caq.is_full()
                && (!self.reads.is_empty() || !self.writes.is_empty()))
    }

    /// The earliest future cycle at which a stalled controller could make
    /// progress: a queued command becoming issuable, an in-flight prefetch
    /// landing. Conservative (never later than the true enablement time);
    /// [`NextEvent::Idle`] when nothing is pending.
    // asd-lint: hot
    fn next_event_hint(&self, now: u64) -> NextEvent {
        let mut next = NextEvent::Idle;
        for p in &self.inflight {
            next = next.min(NextEvent::At(p.data_at.max(now + 1)));
        }
        // Issuability of reorder-queue commands gates promotion to the
        // CAQ, which cannot happen while the CAQ is full — and the cycles
        // at which the CAQ drains (its head issuing, or a buffered line
        // landing for the second PB check) are covered by the CAQ-head and
        // in-flight probes. Conflict accounting needs no wake-ups of its
        // own: commands are examined on arrival and on the step after
        // every prefetch issue. So the reorder queues only contribute
        // wake-ups while the CAQ has room.
        if !self.caq.is_full() {
            // `next_issue_at_mapped(bank, row, ..)` depends on `row` only
            // through "is it the bank's open row", so the minimum over all
            // queued commands is the minimum over (bank, row-class) pairs
            // present: classify every entry with one compare, then run the
            // timing function at most twice per bank instead of once per
            // entry. (With more banks than mask bits — never the paper's
            // machine — fall back to the per-entry walk.)
            if self.bank_prefetch_until.len() <= 64 {
                let mut hit_mask = 0u64;
                let mut miss_mask = 0u64;
                for q in [&self.reads, &self.writes] {
                    let banks = q.banks();
                    let rows = q.rows();
                    for i in 0..banks.len() {
                        let b = banks[i] as usize;
                        let bit = 1u64 << b;
                        let mask = if self.dram.row_hit_idx(b, rows[i]) {
                            &mut hit_mask
                        } else {
                            &mut miss_mask
                        };
                        if *mask & bit == 0 {
                            *mask |= bit;
                            let at = self.dram.next_issue_at_mapped(b, rows[i], now);
                            next = next.min(NextEvent::At(at.max(now + 1)));
                        }
                    }
                }
            } else {
                for q in [&self.reads, &self.writes] {
                    let banks = q.banks();
                    let rows = q.rows();
                    for i in 0..banks.len() {
                        let at = self.dram.next_issue_at_mapped(banks[i] as usize, rows[i], now);
                        next = next.min(NextEvent::At(at.max(now + 1)));
                    }
                }
            }
        }
        if let Some((bank, row)) = self.caq.head_bank_row() {
            let at = self.dram.next_issue_at_mapped(bank as usize, row, now);
            next = next.min(NextEvent::At(at.max(now + 1)));
        }
        if let Some((bank, row)) = self.lpq.head_bank_row() {
            // The LPQ head can only issue on a cycle where the arbiter
            // allows it, and between controller steps `allows` can only
            // flip from allowed to disallowed as time passes: every term
            // of every policy is frozen between steps (queue lengths,
            // head timestamps) except the issuable count, which only
            // grows as banks free and appears solely as `issuable == 0`.
            // So a head disallowed now stays disallowed until some other
            // event steps the controller and recomputes this hint —
            // probing its DRAM enablement time would wake the loop every
            // cycle for nothing. (A disallowed LPQ never idles the
            // controller: policy 1's "everything empty" condition is
            // cumulative into all five policies, so disallowed implies
            // another queue is non-empty and contributes its own probe.)
            let view = self.queue_view(now);
            let allowed = match &self.arbiter {
                LpqArbiter::Adaptive(s) => s.allows(view),
                LpqArbiter::Fixed(p) => p.allows(view),
            };
            if allowed {
                let at = self.dram.next_issue_at_mapped(bank as usize, row, now);
                next = next.min(NextEvent::At(at.max(now + 1)));
            }
        }
        next
    }

    /// Whether the controller still holds or expects work.
    pub fn busy(&self) -> bool {
        !self.reads.is_empty()
            || !self.writes.is_empty()
            || !self.caq.is_empty()
            || !self.lpq.is_empty()
            || !self.inflight.is_empty()
    }

    /// Counters, assembled fresh from every subcomponent.
    pub fn stats(&self) -> McStats {
        let mut s = self.stats;
        s.pb = self.pb.stats();
        if let LpqArbiter::Adaptive(sched) = &self.arbiter {
            s.sched = sched.stats();
        }
        s
    }

    /// The DRAM channel (power/energy reporting at end of run).
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    /// The DRAM channel, read-only.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// The prefetch engine (Figure 16 inspects the ASD detectors).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The LPQ prioritization policy currently in force.
    pub fn current_lpq_policy(&self) -> LpqPolicy {
        match &self.arbiter {
            LpqArbiter::Adaptive(s) => s.policy(),
            LpqArbiter::Fixed(p) => *p,
        }
    }
}

impl<E: PrefetchEngine> Clocked for MemoryController<E> {
    /// Event-driven stepping: performs the cycle's transitions, then
    /// reports when to step again. `now + 1` only when the next cycle is
    /// genuinely interesting (see [`MemoryController::advance`] for the
    /// three cases); otherwise it jumps straight to the next enablement
    /// time; idle controllers return [`NextEvent::Idle`]. Completions
    /// accumulate internally — collect them with
    /// [`MemoryController::drain_completions`].
    fn step(&mut self, now: u64) -> NextEvent {
        if self.advance(now) {
            NextEvent::At(now + 1)
        } else if self.busy() {
            self.next_event_hint(now)
        } else {
            NextEvent::Idle
        }
    }
}

/// The DRAM-probing half of [`QueueView`]: how many queued commands could
/// issue right now. Walks the queue's dense `(bank, row)` arrays.
// asd-lint: hot
fn count_issuable(q: &ReorderQueue, dram: &Dram, now: u64) -> usize {
    let banks = q.banks();
    let rows = q.rows();
    (0..banks.len()).filter(|&i| dram.can_issue_mapped(banks[i] as usize, rows[i], now)).count()
}

impl<E: PrefetchEngine> std::fmt::Debug for MemoryController<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("reads", &self.reads.len())
            .field("writes", &self.writes.len())
            .field("caq", &self.caq.len())
            .field("lpq", &self.lpq.len())
            .field("inflight", &self.inflight.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;
    use asd_core::AsdConfig;
    use asd_dram::DramConfig;

    fn controller(engine: EngineKind) -> MemoryController {
        let cfg = McConfig { engine, ..McConfig::default() };
        MemoryController::new(cfg, Dram::new(DramConfig::default()))
    }

    /// Run the controller until idle, collecting completions.
    fn drain(mc: &mut MemoryController, mut now: u64) -> (Vec<ReadCompletion>, u64) {
        let mut out = Vec::new();
        let mut guard = 0;
        while mc.busy() {
            mc.step(now, &mut out);
            now += 1;
            guard += 1;
            assert!(guard < 1_000_000, "controller wedged");
        }
        (out, now)
    }

    #[test]
    fn read_round_trip() {
        let mut mc = controller(EngineKind::None);
        assert_eq!(mc.enqueue_read(42, 0, 0), ReadResponse::Queued);
        let (done, _) = drain(&mut mc, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].line, 42);
        assert!(done[0].at > 0);
    }

    #[test]
    fn writes_complete_silently() {
        let mut mc = controller(EngineKind::None);
        assert!(mc.enqueue_write(7, 0));
        let (done, _) = drain(&mut mc, 0);
        assert!(done.is_empty());
        assert_eq!(mc.dram().stats().writes, 1);
    }

    #[test]
    fn backpressure_on_full_read_queue() {
        let mut mc = controller(EngineKind::None);
        let cap = mc.config().read_queue_cap;
        let mut rejected = 0;
        // CAQ (3) also absorbs commands as steps run; enqueue without
        // stepping so the reorder queue alone takes them.
        for i in 0..cap + 3 {
            if mc.enqueue_read(1000 + i as u64 * 64, 0, 0) == ReadResponse::Rejected {
                rejected += 1;
            }
        }
        assert!(rejected >= 3);
        assert_eq!(mc.stats().read_rejects, rejected as u64);
    }

    #[test]
    fn next_line_engine_populates_prefetch_buffer() {
        let mut mc = controller(EngineKind::NextLine);
        mc.enqueue_read(100, 0, 0);
        let (_, now) = drain(&mut mc, 0);
        assert_eq!(mc.stats().prefetches_issued, 1);
        // The prefetched line (101) now satisfies a read instantly.
        match mc.enqueue_read(101, 0, now) {
            ReadResponse::Done { at } => assert_eq!(at, now + mc.config().pb_hit_latency),
            other => panic!("expected PB hit, got {other:?}"),
        }
        assert_eq!(mc.stats().pb_hits_on_arrival, 1);
    }

    #[test]
    fn merge_with_inflight_prefetch() {
        let mut mc = controller(EngineKind::NextLine);
        mc.enqueue_read(200, 0, 0);
        // Step a little: enough for the prefetch of 201 to issue but not
        // complete.
        let mut out = Vec::new();
        for now in 0..40 {
            mc.step(now, &mut out);
        }
        if mc.stats().prefetches_issued == 1 && mc.stats().pb.inserts == 0 {
            match mc.enqueue_read(201, 0, 40) {
                ReadResponse::Done { at } => assert!(at >= 40),
                other => panic!("expected merge, got {other:?}"),
            }
            assert_eq!(mc.stats().merged_with_prefetch, 1);
        }
    }

    #[test]
    fn asd_learns_and_covers_pair_workload() {
        let cfg = AsdConfig { epoch_reads: 200, ..AsdConfig::default() };
        let mut mc = controller(EngineKind::Asd(cfg));
        let mut now = 0u64;
        let mut out = Vec::new();
        let mut covered = 0u64;
        // 400 back-to-back pair streams; after the first epoch ASD should
        // prefetch the second line of each pair.
        for s in 0..400u64 {
            let base = 1_000_000 + s * 64;
            for off in 0..2u64 {
                match mc.enqueue_read(base + off, 0, now) {
                    ReadResponse::Done { .. } => covered += 1,
                    ReadResponse::Queued => {}
                    ReadResponse::Rejected => {}
                }
                // Let the controller work between reads (~600 cycles).
                for _ in 0..600 {
                    mc.step(now, &mut out);
                    now += 1;
                }
            }
        }
        assert!(mc.stats().prefetches_issued > 100, "issued {}", mc.stats().prefetches_issued);
        assert!(covered > 100, "covered {covered}");
        let useful = mc.stats().useful_prefetch_fraction();
        assert!(useful > 0.8, "useful fraction {useful}");
    }

    #[test]
    fn write_invalidates_prefetch_buffer() {
        let mut mc = controller(EngineKind::NextLine);
        mc.enqueue_read(300, 0, 0);
        let (_, now) = drain(&mut mc, 0);
        assert_eq!(mc.stats().pb.inserts, 1);
        mc.enqueue_write(301, now);
        match mc.enqueue_read(301, 0, now + 1) {
            ReadResponse::Queued => {}
            other => panic!("PB entry should be gone, got {other:?}"),
        }
        assert_eq!(mc.stats().pb.write_invalidations, 1);
    }

    #[test]
    fn redundant_candidates_filtered() {
        let mut mc = controller(EngineKind::NextLine);
        mc.enqueue_read(400, 0, 0);
        let (_, now) = drain(&mut mc, 0);
        // 401 is now in the PB; reading 400 again proposes 401 again.
        mc.enqueue_read(400, 0, now);
        assert_eq!(mc.stats().prefetch_redundant, 1);
    }

    #[test]
    fn np_controller_never_prefetches() {
        let mut mc = controller(EngineKind::None);
        for i in 0..50u64 {
            mc.enqueue_read(i, 0, i * 100);
        }
        let (_, _) = drain(&mut mc, 5000);
        assert_eq!(mc.stats().prefetches_issued, 0);
        assert_eq!(mc.stats().coverage(), 0.0);
    }

    #[test]
    fn fixed_policy_mode_reported() {
        let cfg = McConfig {
            engine: EngineKind::NextLine,
            lpq_mode: LpqMode::Fixed(LpqPolicy::LpqOlder),
            ..McConfig::default()
        };
        let mc = MemoryController::new(cfg, Dram::new(DramConfig::default()));
        assert_eq!(mc.current_lpq_policy(), LpqPolicy::LpqOlder);
    }
}

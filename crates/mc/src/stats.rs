//! Memory-controller statistics: the raw counters behind Figures 11–13.

use crate::prefetch_buffer::PrefetchBufferStats;
use asd_core::SchedulerStats;
use asd_telemetry::{PrefetchCounts, PrefetchMetrics};

/// Aggregate counters of one controller over a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct McStats {
    /// Read commands that entered the controller (demand + processor-side
    /// prefetch; the two are indistinguishable here, as in the paper).
    pub reads: u64,
    /// Write commands that entered the controller.
    pub writes: u64,
    /// Reads satisfied by the Prefetch Buffer on arrival (first check).
    pub pb_hits_on_arrival: u64,
    /// Reads satisfied by the Prefetch Buffer at the CAQ head (second
    /// check — the data arrived while the command waited).
    pub pb_hits_at_caq: u64,
    /// Reads that merged with an in-flight memory-side prefetch of the
    /// same line.
    pub merged_with_prefetch: u64,
    /// Memory-side prefetch commands issued to DRAM.
    pub prefetches_issued: u64,
    /// Prefetch candidates dropped because the LPQ was full.
    pub lpq_dropped: u64,
    /// Prefetch candidates skipped as redundant (already buffered, queued,
    /// or in flight).
    pub prefetch_redundant: u64,
    /// Pending LPQ prefetches squashed because the demand read for the
    /// same line arrived first (the demand fetch makes them pointless).
    pub lpq_squashed: u64,
    /// Regular commands delayed because the memory system was busy with a
    /// memory-side prefetch (each command counted at most once) — the
    /// "delayed regular commands" series of Figure 13.
    pub delayed_regular: u64,
    /// Reads rejected for a full read reorder queue (backpressure).
    pub read_rejects: u64,
    /// Writes rejected for a full write reorder queue.
    pub write_rejects: u64,
    /// Prefetch Buffer counters.
    pub pb: PrefetchBufferStats,
    /// Adaptive-scheduler counters.
    pub sched: SchedulerStats,
}

impl McStats {
    /// Reads whose data came from the memory-side prefetcher rather than a
    /// DRAM round trip of their own.
    pub fn covered_reads(&self) -> u64 {
        self.pb_hits_on_arrival + self.pb_hits_at_caq + self.merged_with_prefetch
    }

    /// The raw counters the Figure 13 ratios derive from, in the shape
    /// [`asd_telemetry::metrics`] computes with.
    pub fn prefetch_counts(&self) -> PrefetchCounts {
        PrefetchCounts {
            reads: self.reads,
            writes: self.writes,
            pb_hits_on_arrival: self.pb_hits_on_arrival,
            pb_hits_at_caq: self.pb_hits_at_caq,
            merged_with_prefetch: self.merged_with_prefetch,
            pb_read_hits: self.pb.read_hits,
            pb_unused_evictions: self.pb.unused_evictions,
            pb_write_invalidations: self.pb.write_invalidations,
            delayed_regular: self.delayed_regular,
        }
    }

    /// The three Figure 13 ratios, computed by the one shared
    /// implementation in [`asd_telemetry::metrics`].
    pub fn prefetch_metrics(&self) -> PrefetchMetrics {
        PrefetchMetrics::from_counts(&self.prefetch_counts())
    }

    /// The paper's *coverage*: fraction of Read commands that got data from
    /// the Prefetch Buffer (19–34% in Figure 13).
    pub fn coverage(&self) -> f64 {
        self.prefetch_metrics().coverage
    }

    /// The paper's *useful prefetches*: fraction of completed memory-side
    /// prefetches whose data was consumed (82–91% in Figure 13).
    pub fn useful_prefetch_fraction(&self) -> f64 {
        self.prefetch_metrics().useful
    }

    /// Fraction of regular commands delayed by memory-side prefetches
    /// (1–3% in Figure 13).
    pub fn delayed_fraction(&self) -> f64 {
        self.prefetch_metrics().delayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        let s = McStats::default();
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.useful_prefetch_fraction(), 0.0);
        assert_eq!(s.delayed_fraction(), 0.0);
    }

    #[test]
    fn coverage_counts_all_three_paths() {
        let s = McStats {
            reads: 100,
            pb_hits_on_arrival: 10,
            pb_hits_at_caq: 5,
            merged_with_prefetch: 5,
            ..McStats::default()
        };
        assert!((s.coverage() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn usefulness_counts_consumed_over_completed() {
        let s = McStats {
            merged_with_prefetch: 10,
            pb: PrefetchBufferStats {
                inserts: 100,
                read_hits: 80,
                write_invalidations: 4,
                unused_evictions: 6,
            },
            ..McStats::default()
        };
        assert!((s.useful_prefetch_fraction() - 0.9).abs() < 1e-12);
    }
}

//! Reorder-queue schedulers: which queued command moves to the CAQ.

use crate::config::SchedulerKind;
use crate::queues::{QueuedCommand, ReorderQueue};
use asd_dram::{Dram, DramCmdKind};

/// Picks the next command to promote from the reorder queues to the CAQ.
///
/// * `InOrder` — strict arrival order across both queues, regardless of
///   whether the command can issue (head-of-line blocking included); the
///   paper's weakest baseline scheduler (§5.3).
/// * `Memoryless` — oldest command whose bank/bus are ready (Hur & Lin's
///   "memoryless" scheduler).
/// * `Ahb` — Adaptive History-Based: among ready commands, prefer those
///   that hit an open row and that keep a balanced read/write mix, using a
///   short history of issued commands.
#[derive(Debug, Clone)]
pub struct CommandPicker {
    kind: SchedulerKind,
    /// Recent command kinds, most recent last (AHB history; length 2).
    history: [Option<DramCmdKind>; 2],
}

/// Identifies which reorder queue a pick came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickedFrom {
    /// The read reorder queue.
    Read(usize),
    /// The write reorder queue.
    Write(usize),
}

impl CommandPicker {
    /// Create a picker of the given kind.
    pub fn new(kind: SchedulerKind) -> Self {
        CommandPicker { kind, history: [None, None] }
    }

    /// The scheduler kind in force.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Record an issued command in the AHB history.
    pub fn note_issued(&mut self, kind: DramCmdKind) {
        self.history[0] = self.history[1];
        self.history[1] = Some(kind);
    }

    /// Choose an entry to promote to the CAQ at cycle `now`, or `None` when
    /// nothing should move. Does not remove the entry.
    pub fn pick(
        &self,
        reads: &ReorderQueue,
        writes: &ReorderQueue,
        dram: &Dram,
        now: u64,
    ) -> Option<PickedFrom> {
        match self.kind {
            SchedulerKind::InOrder => {
                // Oldest command overall, even if its bank is busy.
                let r = reads.items().first();
                let w = writes.items().first();
                match (r, w) {
                    (Some(rc), Some(wc)) => {
                        if rc.arrival <= wc.arrival {
                            Some(PickedFrom::Read(0))
                        } else {
                            Some(PickedFrom::Write(0))
                        }
                    }
                    (Some(_), None) => Some(PickedFrom::Read(0)),
                    (None, Some(_)) => Some(PickedFrom::Write(0)),
                    (None, None) => None,
                }
            }
            SchedulerKind::Memoryless => {
                // Oldest *ready* command; reads win ties (latency critical).
                let best_read = ready_candidates(reads, dram, now).min_by_key(|&(i, a)| (a, i));
                let best_write = ready_candidates(writes, dram, now).min_by_key(|&(i, a)| (a, i));
                match (best_read, best_write) {
                    (Some((ri, ra)), Some((_, wa))) if ra <= wa => Some(PickedFrom::Read(ri)),
                    (Some((ri, _)), None) => Some(PickedFrom::Read(ri)),
                    (_, Some((wi, _))) => Some(PickedFrom::Write(wi)),
                    (None, None) => None,
                }
            }
            SchedulerKind::Ahb => {
                // Score ready candidates: open-row hits and same-kind
                // grouping (avoids bus turnaround) score higher; reads get
                // a base bonus; oldest breaks ties.
                let last_kind = self.history[1];
                let score = |c: &QueuedCommand, kind: DramCmdKind| {
                    let mut s: i64 = 0;
                    let (bank_free, issuable) =
                        dram.issue_readiness_mapped(c.bank as usize, c.row, now);
                    if bank_free {
                        s += 4;
                    }
                    if issuable {
                        s += 4;
                    }
                    if Some(kind) == last_kind {
                        s += 2;
                    }
                    if kind == DramCmdKind::Read {
                        s += 1;
                    }
                    (s, std::cmp::Reverse(c.arrival))
                };
                let best_read = reads
                    .items()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (score(c, DramCmdKind::Read), i))
                    .max();
                let best_write = writes
                    .items()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (score(c, DramCmdKind::Write), i))
                    .max();
                match (best_read, best_write) {
                    (Some((rs, ri)), Some((ws, _))) if rs >= ws => Some(PickedFrom::Read(ri)),
                    (Some((ri_s, ri)), None) => {
                        let _ = ri_s;
                        Some(PickedFrom::Read(ri))
                    }
                    (_, Some((_, wi))) => Some(PickedFrom::Write(wi)),
                    (None, None) => None,
                }
            }
        }
    }
}

fn ready_candidates<'a>(
    q: &'a ReorderQueue,
    dram: &'a Dram,
    now: u64,
) -> impl Iterator<Item = (usize, u64)> + 'a {
    q.items()
        .iter()
        .enumerate()
        .filter(move |(_, c)| dram.can_issue_mapped(c.bank as usize, c.row, now))
        .map(|(i, c)| (i, c.arrival))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asd_dram::DramConfig;

    fn cmd(line: u64, arrival: u64) -> QueuedCommand {
        let (bank, row) = DramConfig::default().map(line);
        QueuedCommand {
            line,
            bank: bank as u32,
            row,
            kind: DramCmdKind::Read,
            thread: 0,
            arrival,
            conflict_counted: false,
        }
    }

    fn setup() -> (ReorderQueue, ReorderQueue, Dram) {
        (ReorderQueue::new(8), ReorderQueue::new(8), Dram::new(DramConfig::default()))
    }

    #[test]
    fn inorder_takes_oldest_across_queues() {
        let (mut r, mut w, dram) = setup();
        r.push(cmd(1, 10));
        w.push(QueuedCommand { kind: DramCmdKind::Write, ..cmd(2, 5) });
        let p = CommandPicker::new(SchedulerKind::InOrder);
        assert_eq!(p.pick(&r, &w, &dram, 0), Some(PickedFrom::Write(0)));
    }

    #[test]
    fn inorder_blocks_on_head() {
        let (mut r, w, mut dram) = setup();
        // Make bank 0 busy.
        dram.issue(0, DramCmdKind::Read, 0);
        r.push(cmd(0, 1)); // same bank: not ready, but InOrder picks it anyway
        r.push(cmd(1, 2));
        let p = CommandPicker::new(SchedulerKind::InOrder);
        assert_eq!(p.pick(&r, &w, &dram, 5), Some(PickedFrom::Read(0)));
    }

    #[test]
    fn memoryless_skips_busy_banks() {
        let (mut r, w, mut dram) = setup();
        dram.issue(0, DramCmdKind::Read, 0); // bank 0 + bus busy for a while
        let done = dram.earliest_issue(0, 0);
        r.push(cmd(8, 1)); // bank 0: blocked
        r.push(cmd(1, 2)); // bank 1: ready once the bus frees
        let p = CommandPicker::new(SchedulerKind::Memoryless);
        // At a time when the bus is free but bank 0 still precharging,
        // memoryless must pick the bank-1 command.
        let t = done;
        if dram.can_issue(1, t) && !dram.can_issue(8, t) {
            assert_eq!(p.pick(&r, &w, &dram, t), Some(PickedFrom::Read(1)));
        }
        // With nothing ready, nothing moves.
        assert_eq!(p.pick(&r, &w, &dram, 0), None);
    }

    #[test]
    fn ahb_prefers_ready_over_old() {
        let (mut r, w, mut dram) = setup();
        dram.issue(0, DramCmdKind::Read, 0);
        r.push(cmd(8, 1)); // older, bank 0 busy
        r.push(cmd(3, 2)); // younger, bank 3 free
        let p = CommandPicker::new(SchedulerKind::Ahb);
        // While bank 0 is busy the ready command wins despite age.
        assert_eq!(p.pick(&r, &w, &dram, 1), Some(PickedFrom::Read(1)));
    }

    #[test]
    fn ahb_groups_same_kind() {
        let (mut r, mut w, dram) = setup();
        r.push(cmd(1, 5));
        w.push(QueuedCommand { kind: DramCmdKind::Write, ..cmd(2, 5) });
        let mut p = CommandPicker::new(SchedulerKind::Ahb);
        p.note_issued(DramCmdKind::Write);
        // Write gets +2 same-kind, read gets +1 read bonus: write wins.
        assert_eq!(p.pick(&r, &w, &dram, 0), Some(PickedFrom::Write(0)));
    }

    #[test]
    fn empty_queues_pick_nothing() {
        let (r, w, dram) = setup();
        for kind in [SchedulerKind::InOrder, SchedulerKind::Memoryless, SchedulerKind::Ahb] {
            assert_eq!(CommandPicker::new(kind).pick(&r, &w, &dram, 0), None);
        }
    }
}

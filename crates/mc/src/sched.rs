//! Reorder-queue schedulers: which queued command moves to the CAQ.

use crate::config::SchedulerKind;
use crate::queues::ReorderQueue;
use asd_dram::{Dram, DramCmdKind};
use std::cmp::Reverse;

/// Picks the next command to promote from the reorder queues to the CAQ.
///
/// * `InOrder` — strict arrival order across both queues, regardless of
///   whether the command can issue (head-of-line blocking included); the
///   paper's weakest baseline scheduler (§5.3).
/// * `Memoryless` — oldest command whose bank/bus are ready (Hur & Lin's
///   "memoryless" scheduler).
/// * `Ahb` — Adaptive History-Based: among ready commands, prefer those
///   that hit an open row and that keep a balanced read/write mix, using a
///   short history of issued commands.
///
/// All three scans walk the reorder queues' dense field arrays
/// ([`ReorderQueue::banks`]/[`ReorderQueue::rows`]/
/// [`ReorderQueue::arrivals`]) — no per-entry struct is assembled while
/// scoring.
#[derive(Debug, Clone)]
pub struct CommandPicker {
    kind: SchedulerKind,
    /// Recent command kinds, most recent last (AHB history; length 2).
    history: [Option<DramCmdKind>; 2],
}

/// Identifies which reorder queue a pick came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickedFrom {
    /// The read reorder queue.
    Read(usize),
    /// The write reorder queue.
    Write(usize),
}

impl CommandPicker {
    /// Create a picker of the given kind.
    pub fn new(kind: SchedulerKind) -> Self {
        CommandPicker { kind, history: [None, None] }
    }

    /// The scheduler kind in force.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Record an issued command in the AHB history.
    pub fn note_issued(&mut self, kind: DramCmdKind) {
        self.history[0] = self.history[1];
        self.history[1] = Some(kind);
    }

    /// Choose an entry to promote to the CAQ at cycle `now`, or `None` when
    /// nothing should move. Does not remove the entry.
    pub fn pick(
        &self,
        reads: &ReorderQueue,
        writes: &ReorderQueue,
        dram: &Dram,
        now: u64,
    ) -> Option<PickedFrom> {
        match self.kind {
            SchedulerKind::InOrder => {
                // Oldest command overall, even if its bank is busy.
                let r = reads.arrivals().first();
                let w = writes.arrivals().first();
                match (r, w) {
                    (Some(ra), Some(wa)) => {
                        if ra <= wa {
                            Some(PickedFrom::Read(0))
                        } else {
                            Some(PickedFrom::Write(0))
                        }
                    }
                    (Some(_), None) => Some(PickedFrom::Read(0)),
                    (None, Some(_)) => Some(PickedFrom::Write(0)),
                    (None, None) => None,
                }
            }
            SchedulerKind::Memoryless => {
                // Oldest *ready* command; reads win ties (latency critical).
                let best_read = oldest_ready(reads, dram, now);
                let best_write = oldest_ready(writes, dram, now);
                match (best_read, best_write) {
                    (Some((ri, ra)), Some((_, wa))) if ra <= wa => Some(PickedFrom::Read(ri)),
                    (Some((ri, _)), None) => Some(PickedFrom::Read(ri)),
                    (_, Some((wi, _))) => Some(PickedFrom::Write(wi)),
                    (None, None) => None,
                }
            }
            SchedulerKind::Ahb => {
                // Score ready candidates: open-row hits and same-kind
                // grouping (avoids bus turnaround) score higher; reads get
                // a base bonus; oldest breaks ties.
                let last_kind = self.history[1];
                let best_read = best_scored(reads, dram, now, DramCmdKind::Read, last_kind);
                let best_write = best_scored(writes, dram, now, DramCmdKind::Write, last_kind);
                match (best_read, best_write) {
                    (Some((rs, ri)), Some((ws, _))) if rs >= ws => Some(PickedFrom::Read(ri)),
                    (Some((_, ri)), None) => Some(PickedFrom::Read(ri)),
                    (_, Some((_, wi))) => Some(PickedFrom::Write(wi)),
                    (None, None) => None,
                }
            }
        }
    }
}

/// The first (lowest-index) entry with the minimal arrival among those the
/// DRAM can issue right now: ties on arrival keep the earlier index, the
/// `min_by_key` over `(arrival, index)` the scan replaces.
// asd-lint: hot
fn oldest_ready(q: &ReorderQueue, dram: &Dram, now: u64) -> Option<(usize, u64)> {
    let banks = q.banks();
    let rows = q.rows();
    let arrivals = q.arrivals();
    let mut best: Option<(usize, u64)> = None;
    for i in 0..banks.len() {
        if dram.can_issue_mapped(banks[i] as usize, rows[i], now)
            && best.map_or(true, |(_, a)| arrivals[i] < a)
        {
            best = Some((i, arrivals[i]));
        }
    }
    best
}

/// The AHB-best entry of one queue: the *last* entry attaining the maximal
/// `(score, Reverse(arrival))` key — exactly what `.max()` over
/// `(key, index)` tuples selected in the struct-scan formulation, since
/// the index rose monotonically and broke every key tie upward.
// asd-lint: hot
fn best_scored(
    q: &ReorderQueue,
    dram: &Dram,
    now: u64,
    kind: DramCmdKind,
    last_kind: Option<DramCmdKind>,
) -> Option<((i64, Reverse<u64>), usize)> {
    let banks = q.banks();
    let rows = q.rows();
    let arrivals = q.arrivals();
    let base: i64 = i64::from(Some(kind) == last_kind) * 2 + i64::from(kind == DramCmdKind::Read);
    let mut best: Option<((i64, Reverse<u64>), usize)> = None;
    for i in 0..banks.len() {
        let (bank_free, issuable) = dram.issue_readiness_mapped(banks[i] as usize, rows[i], now);
        let s = base + i64::from(bank_free) * 4 + i64::from(issuable) * 4;
        let key = (s, Reverse(arrivals[i]));
        if best.map_or(true, |(k, _)| key >= k) {
            best = Some((key, i));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::QueuedCommand;
    use asd_dram::DramConfig;

    fn cmd(line: u64, arrival: u64) -> QueuedCommand {
        let (bank, row) = DramConfig::default().map(line);
        QueuedCommand {
            line,
            bank: bank as u32,
            row,
            kind: DramCmdKind::Read,
            thread: 0,
            arrival,
            conflict_counted: false,
        }
    }

    fn setup() -> (ReorderQueue, ReorderQueue, Dram) {
        (ReorderQueue::new(8), ReorderQueue::new(8), Dram::new(DramConfig::default()))
    }

    #[test]
    fn inorder_takes_oldest_across_queues() {
        let (mut r, mut w, dram) = setup();
        r.push(cmd(1, 10));
        w.push(QueuedCommand { kind: DramCmdKind::Write, ..cmd(2, 5) });
        let p = CommandPicker::new(SchedulerKind::InOrder);
        assert_eq!(p.pick(&r, &w, &dram, 0), Some(PickedFrom::Write(0)));
    }

    #[test]
    fn inorder_blocks_on_head() {
        let (mut r, w, mut dram) = setup();
        // Make bank 0 busy.
        dram.issue(0, DramCmdKind::Read, 0);
        r.push(cmd(0, 1)); // same bank: not ready, but InOrder picks it anyway
        r.push(cmd(1, 2));
        let p = CommandPicker::new(SchedulerKind::InOrder);
        assert_eq!(p.pick(&r, &w, &dram, 5), Some(PickedFrom::Read(0)));
    }

    #[test]
    fn memoryless_skips_busy_banks() {
        let (mut r, w, mut dram) = setup();
        dram.issue(0, DramCmdKind::Read, 0); // bank 0 + bus busy for a while
        let done = dram.earliest_issue(0, 0);
        r.push(cmd(8, 1)); // bank 0: blocked
        r.push(cmd(1, 2)); // bank 1: ready once the bus frees
        let p = CommandPicker::new(SchedulerKind::Memoryless);
        // At a time when the bus is free but bank 0 still precharging,
        // memoryless must pick the bank-1 command.
        let t = done;
        if dram.can_issue(1, t) && !dram.can_issue(8, t) {
            assert_eq!(p.pick(&r, &w, &dram, t), Some(PickedFrom::Read(1)));
        }
        // With nothing ready, nothing moves.
        assert_eq!(p.pick(&r, &w, &dram, 0), None);
    }

    #[test]
    fn memoryless_ties_keep_the_earlier_entry() {
        let (mut r, w, dram) = setup();
        r.push(cmd(1, 5));
        r.push(cmd(2, 5)); // same arrival, later index
        let p = CommandPicker::new(SchedulerKind::Memoryless);
        assert_eq!(p.pick(&r, &w, &dram, 0), Some(PickedFrom::Read(0)));
    }

    #[test]
    fn ahb_prefers_ready_over_old() {
        let (mut r, w, mut dram) = setup();
        dram.issue(0, DramCmdKind::Read, 0);
        r.push(cmd(8, 1)); // older, bank 0 busy
        r.push(cmd(3, 2)); // younger, bank 3 free
        let p = CommandPicker::new(SchedulerKind::Ahb);
        // While bank 0 is busy the ready command wins despite age.
        assert_eq!(p.pick(&r, &w, &dram, 1), Some(PickedFrom::Read(1)));
    }

    #[test]
    fn ahb_groups_same_kind() {
        let (mut r, mut w, dram) = setup();
        r.push(cmd(1, 5));
        w.push(QueuedCommand { kind: DramCmdKind::Write, ..cmd(2, 5) });
        let mut p = CommandPicker::new(SchedulerKind::Ahb);
        p.note_issued(DramCmdKind::Write);
        // Write gets +2 same-kind, read gets +1 read bonus: write wins.
        assert_eq!(p.pick(&r, &w, &dram, 0), Some(PickedFrom::Write(0)));
    }

    #[test]
    fn ahb_ties_keep_the_later_entry() {
        // Identical (score, arrival) keys: the dense scan must preserve
        // the `.max()`-over-(key, index) semantics, where the higher
        // index wins the tie.
        let (mut r, w, dram) = setup();
        r.push(cmd(1, 5)); // bank 1
        r.push(cmd(2, 5)); // bank 2: same score, same arrival
        let p = CommandPicker::new(SchedulerKind::Ahb);
        assert_eq!(p.pick(&r, &w, &dram, 0), Some(PickedFrom::Read(1)));
    }

    #[test]
    fn empty_queues_pick_nothing() {
        let (r, w, dram) = setup();
        for kind in [SchedulerKind::InOrder, SchedulerKind::Memoryless, SchedulerKind::Ahb] {
            assert_eq!(CommandPicker::new(kind).pick(&r, &w, &dram, 0), None);
        }
    }
}

//! Reorder queues, CAQ, and LPQ.

use asd_dram::DramCmdKind;
use std::collections::VecDeque;

/// Who produced a command (statistics and conflict attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmdOrigin {
    /// Demand read or write from a core (includes processor-side
    /// prefetches, which "appear in the memory controller indistinguishable
    /// from any other command").
    Regular,
    /// Memory-side prefetch from the LPQ.
    MsPrefetch,
}

/// A command resident in one of the controller's queues.
///
/// The DRAM coordinates of the target line are computed once on entry
/// (`bank`/`row`) so the per-cycle scheduler and conflict scans probe bank
/// state directly instead of re-dividing the line address each time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedCommand {
    /// Target cache line.
    pub line: u64,
    /// DRAM bank the line maps to (cached from `Dram::map_line`).
    pub bank: u32,
    /// DRAM row the line maps to (cached from `Dram::map_line`).
    pub row: u64,
    /// Read or write.
    pub kind: DramCmdKind,
    /// Issuing hardware thread (reads only; writes carry 0).
    pub thread: u8,
    /// Cycle the command entered the controller.
    pub arrival: u64,
    /// Whether a blocked-by-prefetch conflict has already been counted for
    /// this command (each command contributes at most one conflict event).
    pub conflict_counted: bool,
}

/// A bounded FIFO used for the CAQ and LPQ.
#[derive(Debug, Clone)]
pub struct BoundedFifo {
    items: VecDeque<QueuedCommand>,
    cap: usize,
}

impl BoundedFifo {
    /// An empty FIFO with the given capacity.
    pub fn new(cap: usize) -> Self {
        BoundedFifo { items: VecDeque::with_capacity(cap), cap }
    }

    /// Push to the back; returns `false` (rejecting the item) when full.
    pub fn push(&mut self, cmd: QueuedCommand) -> bool {
        if self.items.len() >= self.cap {
            return false;
        }
        self.items.push_back(cmd);
        true
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&QueuedCommand> {
        self.items.front()
    }

    /// Mutable access to the oldest entry.
    pub fn head_mut(&mut self) -> Option<&mut QueuedCommand> {
        self.items.front_mut()
    }

    /// Remove and return the oldest entry.
    pub fn pop(&mut self) -> Option<QueuedCommand> {
        self.items.pop_front()
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.cap
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whether any entry targets `line`.
    pub fn contains_line(&self, line: u64) -> bool {
        self.items.iter().any(|c| c.line == line)
    }

    /// Remove the first entry targeting `line`, if any.
    pub fn remove_line(&mut self, line: u64) -> Option<QueuedCommand> {
        let pos = self.items.iter().position(|c| c.line == line)?;
        self.items.remove(pos)
    }

    /// Iterate entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedCommand> {
        self.items.iter()
    }
}

/// An unbounded-order (but bounded-size) reorder queue: the scheduler may
/// pick any entry, not just the head.
#[derive(Debug, Clone)]
pub struct ReorderQueue {
    items: Vec<QueuedCommand>,
    cap: usize,
}

impl ReorderQueue {
    /// An empty queue with the given capacity.
    pub fn new(cap: usize) -> Self {
        ReorderQueue { items: Vec::with_capacity(cap), cap }
    }

    /// Insert; returns `false` when full.
    pub fn push(&mut self, cmd: QueuedCommand) -> bool {
        if self.items.len() >= self.cap {
            return false;
        }
        self.items.push(cmd);
        true
    }

    /// Remove and return the entry at `idx`.
    pub fn remove(&mut self, idx: usize) -> QueuedCommand {
        self.items.remove(idx)
    }

    /// Entries in arrival order (the insertion order is preserved).
    pub fn items(&self) -> &[QueuedCommand] {
        &self.items
    }

    /// Mutable entries.
    pub fn items_mut(&mut self) -> &mut [QueuedCommand] {
        &mut self.items
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.cap
    }

    /// Whether any entry targets `line`.
    pub fn contains_line(&self, line: u64) -> bool {
        self.items.iter().any(|c| c.line == line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(line: u64, arrival: u64) -> QueuedCommand {
        QueuedCommand {
            line,
            bank: 0,
            row: 0,
            kind: DramCmdKind::Read,
            thread: 0,
            arrival,
            conflict_counted: false,
        }
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut f = BoundedFifo::new(2);
        assert!(f.push(cmd(1, 0)));
        assert!(f.push(cmd(2, 1)));
        assert!(!f.push(cmd(3, 2)), "full");
        assert!(f.is_full());
        assert_eq!(f.pop().unwrap().line, 1);
        assert_eq!(f.head().unwrap().line, 2);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn fifo_contains_line() {
        let mut f = BoundedFifo::new(3);
        f.push(cmd(9, 0));
        assert!(f.contains_line(9));
        assert!(!f.contains_line(8));
    }

    #[test]
    fn reorder_queue_removal_by_index() {
        let mut q = ReorderQueue::new(4);
        q.push(cmd(1, 0));
        q.push(cmd(2, 1));
        q.push(cmd(3, 2));
        let removed = q.remove(1);
        assert_eq!(removed.line, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.items()[0].line, 1);
        assert_eq!(q.items()[1].line, 3);
    }

    #[test]
    fn reorder_queue_rejects_when_full() {
        let mut q = ReorderQueue::new(1);
        assert!(q.push(cmd(1, 0)));
        assert!(!q.push(cmd(2, 1)));
        assert!(q.is_full());
    }
}

//! Reorder queues, CAQ, and LPQ.
//!
//! Both queue types store commands in **struct-of-arrays** layout: one
//! dense array per field (line, bank, row, ...) instead of an array of
//! [`QueuedCommand`] structs. The per-cycle scans — the AHB scorer walking
//! `(bank, row, arrival)`, the `next_event_hint` walk over `(bank, row)`,
//! the conflict scan over `(bank, conflict_counted)` — each touch only the
//! one or two arrays they need, so a full scan of an 8-entry queue reads a
//! cache line or two rather than eight 48-byte structs. [`QueuedCommand`]
//! remains the transfer type at the API boundary (push/pop/head assemble
//! and scatter it), which keeps observable behavior identical to the
//! array-of-structs layout.

use asd_dram::DramCmdKind;

/// Who produced a command (statistics and conflict attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmdOrigin {
    /// Demand read or write from a core (includes processor-side
    /// prefetches, which "appear in the memory controller indistinguishable
    /// from any other command").
    Regular,
    /// Memory-side prefetch from the LPQ.
    MsPrefetch,
}

/// A command resident in one of the controller's queues.
///
/// The DRAM coordinates of the target line are computed once on entry
/// (`bank`/`row`) so the per-cycle scheduler and conflict scans probe bank
/// state directly instead of re-dividing the line address each time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedCommand {
    /// Target cache line.
    pub line: u64,
    /// DRAM bank the line maps to (cached from `Dram::map_line`).
    pub bank: u32,
    /// DRAM row the line maps to (cached from `Dram::map_line`).
    pub row: u64,
    /// Read or write.
    pub kind: DramCmdKind,
    /// Issuing hardware thread (reads only; writes carry 0).
    pub thread: u8,
    /// Cycle the command entered the controller.
    pub arrival: u64,
    /// Whether a blocked-by-prefetch conflict has already been counted for
    /// this command (each command contributes at most one conflict event).
    pub conflict_counted: bool,
}

/// A bounded FIFO used for the CAQ and LPQ: a fixed-capacity ring buffer
/// over power-of-two storage.
///
/// Indices advance with a single mask (`(head + k) & mask`), storage is
/// allocated once at construction and never reallocated, and FIFO order is
/// the logical order `head, head+1, ..., head+len-1` (mod storage). The
/// only order-disturbing operation, [`BoundedFifo::remove_line`], closes
/// the gap by shifting younger entries back one slot, preserving the
/// arrival order of everything that stays.
#[derive(Debug, Clone)]
pub struct BoundedFifo {
    lines: Box<[u64]>,
    banks: Box<[u32]>,
    rows: Box<[u64]>,
    kinds: Box<[DramCmdKind]>,
    threads: Box<[u8]>,
    arrivals: Box<[u64]>,
    conflict_counted: Box<[bool]>,
    /// Physical index of the oldest entry.
    head: usize,
    /// Logical occupancy (`<= cap`).
    len: usize,
    /// Logical capacity (the configured queue depth, not the storage size).
    cap: usize,
    /// Storage size minus one; storage is `cap.next_power_of_two()`.
    mask: usize,
}

impl BoundedFifo {
    /// An empty FIFO with the given capacity. Storage is rounded up to the
    /// next power of two so every index computation is one AND.
    pub fn new(cap: usize) -> Self {
        let storage = cap.max(1).next_power_of_two();
        BoundedFifo {
            lines: vec![0; storage].into_boxed_slice(),
            banks: vec![0; storage].into_boxed_slice(),
            rows: vec![0; storage].into_boxed_slice(),
            kinds: vec![DramCmdKind::Read; storage].into_boxed_slice(),
            threads: vec![0; storage].into_boxed_slice(),
            arrivals: vec![0; storage].into_boxed_slice(),
            conflict_counted: vec![false; storage].into_boxed_slice(),
            head: 0,
            len: 0,
            cap,
            mask: storage - 1,
        }
    }

    /// Physical slot of logical position `k` (0 = oldest).
    #[inline]
    fn slot(&self, k: usize) -> usize {
        (self.head + k) & self.mask
    }

    /// Assemble the command at physical slot `i`.
    #[inline]
    fn get(&self, i: usize) -> QueuedCommand {
        QueuedCommand {
            line: self.lines[i],
            bank: self.banks[i],
            row: self.rows[i],
            kind: self.kinds[i],
            thread: self.threads[i],
            arrival: self.arrivals[i],
            conflict_counted: self.conflict_counted[i],
        }
    }

    /// Scatter `cmd` into physical slot `i`.
    #[inline]
    fn set(&mut self, i: usize, cmd: QueuedCommand) {
        self.lines[i] = cmd.line;
        self.banks[i] = cmd.bank;
        self.rows[i] = cmd.row;
        self.kinds[i] = cmd.kind;
        self.threads[i] = cmd.thread;
        self.arrivals[i] = cmd.arrival;
        self.conflict_counted[i] = cmd.conflict_counted;
    }

    /// Push to the back; returns `false` (rejecting the item) when full.
    pub fn push(&mut self, cmd: QueuedCommand) -> bool {
        if self.len >= self.cap {
            return false;
        }
        let i = self.slot(self.len);
        self.set(i, cmd);
        self.len += 1;
        true
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<QueuedCommand> {
        if self.len == 0 {
            None
        } else {
            Some(self.get(self.head))
        }
    }

    /// Remove and return the oldest entry.
    pub fn pop(&mut self) -> Option<QueuedCommand> {
        if self.len == 0 {
            return None;
        }
        let cmd = self.get(self.head);
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        Some(cmd)
    }

    /// The oldest entry's `(bank, row)` — what the issue probes need,
    /// without assembling the whole command from every stripe.
    #[inline]
    pub fn head_bank_row(&self) -> Option<(u32, u64)> {
        if self.len == 0 {
            None
        } else {
            Some((self.banks[self.head], self.rows[self.head]))
        }
    }

    /// The oldest entry's arrival cycle.
    #[inline]
    pub fn head_arrival(&self) -> Option<u64> {
        if self.len == 0 {
            None
        } else {
            Some(self.arrivals[self.head])
        }
    }

    /// The oldest entry's bank together with its conflict flag (the
    /// conflict scan probes exactly these two fields).
    pub fn head_conflict_probe(&self) -> Option<(u32, bool)> {
        if self.len == 0 {
            None
        } else {
            Some((self.banks[self.head], self.conflict_counted[self.head]))
        }
    }

    /// Mark the oldest entry's blocked-by-prefetch conflict as counted.
    pub fn mark_head_conflict(&mut self) {
        debug_assert!(self.len > 0);
        self.conflict_counted[self.head] = true;
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.len >= self.cap
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whether any entry targets `line`.
    pub fn contains_line(&self, line: u64) -> bool {
        (0..self.len).any(|k| self.lines[self.slot(k)] == line)
    }

    /// Remove the first (oldest) entry targeting `line`, if any. Younger
    /// entries shift back one slot, so FIFO order is preserved.
    pub fn remove_line(&mut self, line: u64) -> Option<QueuedCommand> {
        let pos = (0..self.len).find(|&k| self.lines[self.slot(k)] == line)?;
        let removed = self.get(self.slot(pos));
        for k in pos..self.len - 1 {
            let from = self.slot(k + 1);
            let cmd = self.get(from);
            let to = self.slot(k);
            self.set(to, cmd);
        }
        self.len -= 1;
        Some(removed)
    }

    /// Iterate entries oldest-first (assembled by value).
    pub fn iter(&self) -> impl Iterator<Item = QueuedCommand> + '_ {
        (0..self.len).map(|k| self.get(self.slot(k)))
    }
}

/// An unbounded-order (but bounded-size) reorder queue: the scheduler may
/// pick any entry, not just the head.
///
/// Struct-of-arrays: field `f` of entry `i` lives at `self.f[i]`, entries
/// are stored in arrival order, and removal is order-preserving
/// (`Vec::remove` on every array). The scheduler and hint scans read the
/// dense field slices directly ([`ReorderQueue::banks`] and friends).
#[derive(Debug, Clone)]
pub struct ReorderQueue {
    lines: Vec<u64>,
    banks: Vec<u32>,
    rows: Vec<u64>,
    kinds: Vec<DramCmdKind>,
    threads: Vec<u8>,
    arrivals: Vec<u64>,
    conflict_counted: Vec<bool>,
    cap: usize,
}

impl ReorderQueue {
    /// An empty queue with the given capacity.
    pub fn new(cap: usize) -> Self {
        ReorderQueue {
            lines: Vec::with_capacity(cap),
            banks: Vec::with_capacity(cap),
            rows: Vec::with_capacity(cap),
            kinds: Vec::with_capacity(cap),
            threads: Vec::with_capacity(cap),
            arrivals: Vec::with_capacity(cap),
            conflict_counted: Vec::with_capacity(cap),
            cap,
        }
    }

    /// Insert; returns `false` when full.
    pub fn push(&mut self, cmd: QueuedCommand) -> bool {
        if self.lines.len() >= self.cap {
            return false;
        }
        self.lines.push(cmd.line);
        self.banks.push(cmd.bank);
        self.rows.push(cmd.row);
        self.kinds.push(cmd.kind);
        self.threads.push(cmd.thread);
        self.arrivals.push(cmd.arrival);
        self.conflict_counted.push(cmd.conflict_counted);
        true
    }

    /// Remove and return the entry at `idx` (order-preserving).
    pub fn remove(&mut self, idx: usize) -> QueuedCommand {
        QueuedCommand {
            line: self.lines.remove(idx),
            bank: self.banks.remove(idx),
            row: self.rows.remove(idx),
            kind: self.kinds.remove(idx),
            thread: self.threads.remove(idx),
            arrival: self.arrivals.remove(idx),
            conflict_counted: self.conflict_counted.remove(idx),
        }
    }

    /// Assemble the entry at `idx`.
    pub fn get(&self, idx: usize) -> QueuedCommand {
        QueuedCommand {
            line: self.lines[idx],
            bank: self.banks[idx],
            row: self.rows[idx],
            kind: self.kinds[idx],
            thread: self.threads[idx],
            arrival: self.arrivals[idx],
            conflict_counted: self.conflict_counted[idx],
        }
    }

    /// Banks, in arrival order (dense scan for the scheduler and hints).
    pub fn banks(&self) -> &[u32] {
        &self.banks
    }

    /// Rows, in arrival order.
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// Arrival cycles, in arrival order.
    pub fn arrivals(&self) -> &[u64] {
        &self.arrivals
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.lines.len() >= self.cap
    }

    /// Whether any entry targets `line`.
    pub fn contains_line(&self, line: u64) -> bool {
        self.lines.contains(&line)
    }

    /// Mark (at most once per entry) commands whose bank is occupied by a
    /// previously issued prefetch, calling `on_conflict(bank)` for each
    /// newly marked entry. Returns the number of new conflicts. Touches
    /// only the `banks` and `conflict_counted` arrays.
    pub fn mark_new_conflicts(
        &mut self,
        bank_prefetch_until: &[u64],
        now: u64,
        mut on_conflict: impl FnMut(u32),
    ) -> u64 {
        let mut conflicts = 0u64;
        for (i, &bank) in self.banks.iter().enumerate() {
            if !self.conflict_counted[i] && bank_prefetch_until[bank as usize] > now {
                self.conflict_counted[i] = true;
                conflicts += 1;
                on_conflict(bank);
            }
        }
        conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(line: u64, arrival: u64) -> QueuedCommand {
        QueuedCommand {
            line,
            bank: 0,
            row: 0,
            kind: DramCmdKind::Read,
            thread: 0,
            arrival,
            conflict_counted: false,
        }
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut f = BoundedFifo::new(2);
        assert!(f.push(cmd(1, 0)));
        assert!(f.push(cmd(2, 1)));
        assert!(!f.push(cmd(3, 2)), "full");
        assert!(f.is_full());
        assert_eq!(f.pop().unwrap().line, 1);
        assert_eq!(f.head().unwrap().line, 2);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn fifo_contains_line() {
        let mut f = BoundedFifo::new(3);
        f.push(cmd(9, 0));
        assert!(f.contains_line(9));
        assert!(!f.contains_line(8));
    }

    #[test]
    fn fifo_wraps_around_storage() {
        // Capacity 3 rides on power-of-two storage (4); cycling pushes and
        // pops far past the storage size must keep strict FIFO order.
        let mut f = BoundedFifo::new(3);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for _ in 0..50 {
            while f.push(cmd(next_in, next_in)) {
                next_in += 1;
            }
            assert_eq!(f.len(), 3);
            assert_eq!(f.pop().unwrap().line, next_out);
            assert_eq!(f.pop().unwrap().line, next_out + 1);
            next_out += 2;
            assert_eq!(f.head().unwrap().line, next_out);
        }
    }

    #[test]
    fn fifo_remove_line_preserves_order() {
        let mut f = BoundedFifo::new(4);
        for i in 0..4 {
            f.push(cmd(i, i));
        }
        // Remove from the middle; survivors keep their relative order.
        assert_eq!(f.remove_line(1).unwrap().arrival, 1);
        assert_eq!(f.remove_line(7), None);
        let left: Vec<u64> = f.iter().map(|c| c.line).collect();
        assert_eq!(left, vec![0, 2, 3]);
        // Removal frees a slot immediately.
        assert!(f.push(cmd(9, 9)));
        assert_eq!(f.iter().map(|c| c.line).collect::<Vec<_>>(), vec![0, 2, 3, 9]);
    }

    #[test]
    fn fifo_round_trips_all_fields() {
        let mut f = BoundedFifo::new(2);
        let c = QueuedCommand {
            line: 0xabcd,
            bank: 7,
            row: 0x123,
            kind: DramCmdKind::Write,
            thread: 3,
            arrival: 99,
            conflict_counted: true,
        };
        f.push(c);
        assert_eq!(f.head(), Some(c));
        assert_eq!(f.pop(), Some(c));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn reorder_queue_removal_by_index() {
        let mut q = ReorderQueue::new(4);
        q.push(cmd(1, 0));
        q.push(cmd(2, 1));
        q.push(cmd(3, 2));
        let removed = q.remove(1);
        assert_eq!(removed.line, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.get(0).line, 1);
        assert_eq!(q.get(1).line, 3);
    }

    #[test]
    fn reorder_queue_rejects_when_full() {
        let mut q = ReorderQueue::new(1);
        assert!(q.push(cmd(1, 0)));
        assert!(!q.push(cmd(2, 1)));
        assert!(q.is_full());
    }

    #[test]
    fn reorder_queue_round_trips_all_fields() {
        let mut q = ReorderQueue::new(2);
        let c = QueuedCommand {
            line: 42,
            bank: 5,
            row: 77,
            kind: DramCmdKind::Write,
            thread: 1,
            arrival: 1234,
            conflict_counted: false,
        };
        q.push(c);
        assert_eq!(q.get(0), c);
        assert_eq!(q.remove(0), c);
        assert!(q.is_empty());
    }

    #[test]
    fn reorder_queue_marks_conflicts_once() {
        let mut q = ReorderQueue::new(4);
        q.push(QueuedCommand { bank: 0, ..cmd(1, 0) });
        q.push(QueuedCommand { bank: 1, ..cmd(2, 1) });
        let until = vec![10u64, 0]; // bank 0 busy until cycle 10
        let mut seen = Vec::new();
        let n = q.mark_new_conflicts(&until, 5, |b| seen.push(b));
        assert_eq!(n, 1);
        assert_eq!(seen, vec![0]);
        // Already counted: scanning again finds nothing new.
        assert_eq!(q.mark_new_conflicts(&until, 5, |b| seen.push(b)), 0);
        assert_eq!(seen, vec![0]);
    }
}

//! The Prefetch Buffer: a small set-associative cache for memory-side
//! prefetched lines (16 lines / 2 KB in the paper's configuration).

/// Prefetch Buffer statistics, including the usefulness accounting behind
/// the paper's Figure 13 (82–91% useful prefetches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefetchBufferStats {
    /// Lines inserted.
    pub inserts: u64,
    /// Lines consumed by a demand read (useful prefetches).
    pub read_hits: u64,
    /// Lines invalidated by a write before use.
    pub write_invalidations: u64,
    /// Lines evicted (LRU) without ever being used — useless prefetches.
    pub unused_evictions: u64,
}

const EMPTY: u64 = 0;

/// Set-associative LRU buffer. Entries are **invalidated on read hit**
/// (the data moves into the caches, so keeping it is pointless, §3.3) and
/// on any write to the same line.
///
/// Storage is struct-of-arrays: slot `i`'s line lives in `lines[i]` and
/// its LRU stamp in `lrus[i]`, with set `s` owning indices
/// `s * assoc .. (s + 1) * assoc` of both arrays. `lru == 0` marks an
/// empty slot (the clock increments before every insert, so live entries
/// always carry `lru >= 1`). Lookups — by far the most frequent operation,
/// one per demand read plus one per CAQ-head recheck — scan only the
/// `lines` stripe; the `lrus` stripe is touched when residency or victim
/// choice actually needs it. LRU decisions depend only on the resident
/// `(line, lru)` pairs — `lru` values are unique — so this layout is
/// observationally identical to the array-of-structs one.
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    lines: Vec<u64>,
    lrus: Vec<u64>,
    sets: usize,
    assoc: usize,
    clock: u64,
    stats: PrefetchBufferStats,
}

impl PrefetchBuffer {
    /// A buffer of `lines` total entries with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `lines` is a positive multiple of `assoc`.
    pub fn new(lines: usize, assoc: usize) -> Self {
        assert!(lines > 0 && assoc > 0 && lines % assoc == 0, "bad PB geometry");
        PrefetchBuffer {
            lines: vec![0; lines],
            lrus: vec![EMPTY; lines],
            sets: lines / assoc,
            assoc,
            clock: 0,
            stats: PrefetchBufferStats::default(),
        }
    }

    /// The slot range of `line`'s set.
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line % self.sets as u64) as usize * self.assoc;
        set..set + self.assoc
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> usize {
        self.lines.len()
    }

    /// Lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.lrus.iter().filter(|&&l| l != EMPTY).count()
    }

    /// Whether `line` is resident (no statistics side effects).
    pub fn contains(&self, line: u64) -> bool {
        let range = self.set_range(line);
        self.lines[range.clone()]
            .iter()
            .zip(&self.lrus[range])
            .any(|(&l, &lru)| lru != EMPTY && l == line)
    }

    /// Insert a prefetched line, evicting the set's LRU entry if needed.
    /// Re-inserting a resident line refreshes its LRU position.
    pub fn insert(&mut self, line: u64) {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(line);
        let base = range.start;
        let mut victim = 0usize;
        let mut victim_lru = u64::MAX;
        for i in range {
            let lru = self.lrus[i];
            if lru == EMPTY {
                // Any empty slot beats evicting a live line.
                if victim_lru != EMPTY {
                    victim = i;
                    victim_lru = EMPTY;
                }
            } else if self.lines[i] == line {
                self.lrus[i] = clock;
                return;
            } else if lru < victim_lru {
                victim = i;
                victim_lru = lru;
            }
        }
        debug_assert!(victim >= base);
        self.stats.inserts += 1;
        if victim_lru != EMPTY {
            self.stats.unused_evictions += 1;
        }
        self.lines[victim] = line;
        self.lrus[victim] = clock;
    }

    /// Demand-read lookup: on hit, the entry is removed (invalidate on
    /// match) and counted as a useful prefetch.
    pub fn take_for_read(&mut self, line: u64) -> bool {
        for i in self.set_range(line) {
            if self.lines[i] == line && self.lrus[i] != EMPTY {
                self.lrus[i] = EMPTY;
                self.stats.read_hits += 1;
                return true;
            }
        }
        false
    }

    /// Write invalidation: drop the entry if resident.
    pub fn invalidate_for_write(&mut self, line: u64) -> bool {
        for i in self.set_range(line) {
            if self.lines[i] == line && self.lrus[i] != EMPTY {
                self.lrus[i] = EMPTY;
                self.stats.write_invalidations += 1;
                return true;
            }
        }
        false
    }

    /// Counters.
    pub fn stats(&self) -> PrefetchBufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_read_hit_removes() {
        let mut pb = PrefetchBuffer::new(16, 4);
        pb.insert(100);
        assert!(pb.contains(100));
        assert!(pb.take_for_read(100));
        assert!(!pb.contains(100), "read hit invalidates");
        assert!(!pb.take_for_read(100));
        assert_eq!(pb.stats().read_hits, 1);
    }

    #[test]
    fn write_invalidates() {
        let mut pb = PrefetchBuffer::new(16, 4);
        pb.insert(5);
        assert!(pb.invalidate_for_write(5));
        assert!(!pb.contains(5));
        assert!(!pb.invalidate_for_write(5));
        assert_eq!(pb.stats().write_invalidations, 1);
    }

    #[test]
    fn lru_eviction_counts_unused() {
        let mut pb = PrefetchBuffer::new(4, 4); // one set
        for line in 0..4 {
            pb.insert(line);
        }
        assert_eq!(pb.occupancy(), 4);
        pb.take_for_read(0); // use and free a slot
        pb.insert(10);
        assert_eq!(pb.stats().unused_evictions, 0);
        pb.insert(11); // evicts LRU (line 1) unused
        assert_eq!(pb.stats().unused_evictions, 1);
        assert!(!pb.contains(1));
    }

    #[test]
    fn reinsert_refreshes_lru() {
        let mut pb = PrefetchBuffer::new(4, 4);
        for line in 0..4 {
            pb.insert(line);
        }
        pb.insert(0); // refresh 0; LRU is now 1
        pb.insert(9);
        assert!(pb.contains(0));
        assert!(!pb.contains(1));
        assert_eq!(pb.stats().inserts, 5, "refresh is not an insert");
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut pb = PrefetchBuffer::new(8, 4);
        for line in 0..100 {
            pb.insert(line);
            assert!(pb.occupancy() <= 8);
        }
    }

    #[test]
    fn stale_line_value_in_emptied_slot_never_matches() {
        // take_for_read leaves the line value behind with lru == EMPTY;
        // a later lookup of that line must not see a phantom hit.
        let mut pb = PrefetchBuffer::new(4, 4);
        pb.insert(3);
        assert!(pb.take_for_read(3));
        assert!(!pb.contains(3));
        assert!(!pb.take_for_read(3));
        assert!(!pb.invalidate_for_write(3));
    }

    #[test]
    #[should_panic(expected = "bad PB geometry")]
    fn bad_geometry_panics() {
        let _ = PrefetchBuffer::new(10, 4);
    }
}

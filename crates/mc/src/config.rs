//! Memory-controller configuration.

use crate::registry::EngineFactory;
use asd_core::{AsdConfig, LpqPolicy};
use std::sync::Arc;

/// Which reorder-queue scheduler feeds the CAQ (§5.3 studies all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Strict arrival order.
    InOrder,
    /// Pick the oldest *issuable* command (no history).
    Memoryless,
    /// Adaptive History-Based (Hur & Lin, MICRO'04): prefer commands whose
    /// bank is ready and that keep the recent command mix efficient.
    Ahb,
}

/// How the Final Scheduler prioritizes the LPQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpqMode {
    /// The paper's Adaptive Scheduling: move along the five policies with
    /// the observed conflict trend.
    Adaptive,
    /// Pin one of the five policies (the fixed bars of Figure 11).
    Fixed(LpqPolicy),
}

/// Which memory-side prefetch engine generates LPQ commands.
#[derive(Debug, Clone)]
pub enum EngineKind {
    /// No memory-side prefetching (the NP and PS configurations).
    None,
    /// Adaptive Stream Detection (the paper's contribution).
    Asd(AsdConfig),
    /// Always prefetch the next line (Figure 11 baseline).
    NextLine,
    /// Power5-style sequential detection implemented at the memory side
    /// (Figure 11 baseline): allocate on a read, confirm on the next
    /// consecutive read, then stay one line ahead.
    P5Style,
    /// An engine supplied from outside `asd-mc` through an
    /// [`EngineFactory`] (see [`crate::build_engine`]).
    Custom(Arc<dyn EngineFactory>),
}

impl PartialEq for EngineKind {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (EngineKind::None, EngineKind::None)
            | (EngineKind::NextLine, EngineKind::NextLine)
            | (EngineKind::P5Style, EngineKind::P5Style) => true,
            (EngineKind::Asd(a), EngineKind::Asd(b)) => a == b,
            // Factories are opaque; two Custom kinds are equal only when
            // they share the same factory instance.
            (EngineKind::Custom(a), EngineKind::Custom(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Full memory-controller configuration. Defaults follow the paper's
/// evaluated design point (§5.1): CAQ and LPQ of 3 entries each, a 16-line
/// Prefetch Buffer, AHB scheduling, adaptive LPQ prioritization.
#[derive(Debug, Clone, PartialEq)]
pub struct McConfig {
    /// Read reorder-queue capacity.
    pub read_queue_cap: usize,
    /// Write reorder-queue capacity.
    pub write_queue_cap: usize,
    /// Centralized Arbiter Queue capacity (3 on the Power5+).
    pub caq_cap: usize,
    /// Low Priority Queue capacity (3, "the same number of entries as the
    /// CAQ").
    pub lpq_cap: usize,
    /// Prefetch Buffer capacity in lines (16 = 2 KB).
    pub pb_lines: usize,
    /// Prefetch Buffer associativity (set-associative with LRU).
    pub pb_assoc: usize,
    /// Latency of satisfying a Read from the Prefetch Buffer, cycles
    /// (controller overhead only; no DRAM round trip).
    pub pb_hit_latency: u64,
    /// Round-trip transit latency added to every DRAM data return, cycles:
    /// the Power5+'s memory path crosses off-chip interface buffers in both
    /// directions, putting loaded memory latency around 250 CPU cycles.
    /// Prefetch Buffer hits skip this entirely — the core of the
    /// memory-side prefetcher's latency advantage.
    pub transit_latency: u64,
    /// Reorder-queue scheduler.
    pub scheduler: SchedulerKind,
    /// LPQ prioritization mode.
    pub lpq_mode: LpqMode,
    /// Memory-side prefetch engine.
    pub engine: EngineKind,
    /// Hardware threads (per-thread Stream Filters and LHTs, per §5.2).
    pub threads: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            read_queue_cap: 8,
            write_queue_cap: 8,
            caq_cap: 3,
            lpq_cap: 3,
            pb_lines: 16,
            pb_assoc: 4,
            pb_hit_latency: 12,
            transit_latency: 120,
            scheduler: SchedulerKind::Ahb,
            lpq_mode: LpqMode::Adaptive,
            engine: EngineKind::Asd(AsdConfig::default()),
            threads: 1,
        }
    }
}

impl McConfig {
    /// The paper's NP/PS memory controller: no memory-side engine.
    pub fn without_prefetching() -> Self {
        McConfig { engine: EngineKind::None, ..McConfig::default() }
    }

    /// Validate the configuration; panics on nonsense (static data).
    pub fn assert_valid(&self) {
        assert!(self.caq_cap > 0, "CAQ needs capacity");
        assert!(self.read_queue_cap > 0 && self.write_queue_cap > 0, "queues need capacity");
        assert!(self.threads > 0, "at least one thread");
        if !matches!(self.engine, EngineKind::None) {
            assert!(self.lpq_cap > 0, "LPQ needs capacity when prefetching");
            assert!(self.pb_lines > 0 && self.pb_assoc > 0, "prefetch buffer geometry");
            assert!(self.pb_lines % self.pb_assoc == 0, "PB lines divisible by assoc");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = McConfig::default();
        c.assert_valid();
        assert_eq!(c.caq_cap, 3);
        assert_eq!(c.lpq_cap, 3);
        assert_eq!(c.pb_lines, 16);
        assert!(matches!(c.engine, EngineKind::Asd(_)));
        assert!(matches!(c.lpq_mode, LpqMode::Adaptive));
    }

    #[test]
    fn np_config_has_no_engine() {
        let c = McConfig::without_prefetching();
        c.assert_valid();
        assert_eq!(c.engine, EngineKind::None);
    }

    #[test]
    #[should_panic(expected = "CAQ")]
    fn zero_caq_rejected() {
        McConfig { caq_cap: 0, ..McConfig::default() }.assert_valid();
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn pb_geometry_checked() {
        McConfig { pb_lines: 10, pb_assoc: 4, ..McConfig::default() }.assert_valid();
    }
}

//! # Power5+-style memory controller with ASD memory-side prefetching
//!
//! Models the controller of the paper's Figure 4: Read/Write reorder
//! queues feeding a Centralized Arbiter Queue (CAQ) through a configurable
//! scheduler (in-order, memoryless, or Adaptive History-Based), extended
//! with the paper's additions —
//!
//! * a **Stream Filter + Likelihood Tables** (the [`asd_core`] detector)
//!   observing every incoming Read,
//! * a **Prefetch Generator** that places ASD-recommended prefetches in a
//!   **Low Priority Queue (LPQ)**,
//! * a **Final Scheduler** that arbitrates CAQ vs. LPQ under one of five
//!   prioritization policies, fixed or adaptively selected
//!   ([`asd_core::AdaptiveScheduler`]), and
//! * a small **Prefetch Buffer** holding prefetched lines, checked both
//!   when a Read arrives and again when it reaches the CAQ head.
//!
//! Alternative memory-side engines (next-line, Power5-style sequential)
//! are provided for the paper's Figure 11 head-to-head comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod controller;
mod engine;
mod prefetch_buffer;
mod queues;
mod registry;
mod sched;
mod stats;

pub use config::{EngineKind, LpqMode, McConfig, SchedulerKind};
pub use controller::{MemoryController, ReadCompletion, ReadResponse};
pub use engine::{AsdEngine, NextLineEngine, NoPrefetch, P5StyleEngine, PrefetchEngine};
pub use prefetch_buffer::{PrefetchBuffer, PrefetchBufferStats};
pub use queues::{BoundedFifo, CmdOrigin, QueuedCommand, ReorderQueue};
pub use registry::{build_engine, custom_engine, EngineFactory};
pub use sched::{CommandPicker, PickedFrom};
pub use stats::McStats;

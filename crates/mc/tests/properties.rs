//! Property-based tests for the memory controller: liveness, conservation
//! of reads, and Prefetch Buffer hygiene under arbitrary traffic. Cases
//! are generated from a deterministic seeded RNG (no external frameworks;
//! the workspace builds offline).

use asd_core::rng::Xoshiro256PlusPlus as Rng;
use asd_core::AsdConfig;
use asd_dram::{Dram, DramConfig};
use asd_mc::{EngineKind, McConfig, MemoryController, ReadCompletion, ReadResponse};

const CASES: u64 = 48;

fn case_rng(test: u64, case: u64) -> Rng {
    Rng::seed_from_u64(0x0A4C_0000 + test * 0x1_0000 + case)
}

#[derive(Debug, Clone)]
struct Traffic {
    /// (line, is_write, inter-arrival gap in cycles)
    ops: Vec<(u64, bool, u64)>,
}

fn traffic(rng: &mut Rng) -> Traffic {
    let n = rng.gen_range_usize(1, 150);
    let ops = (0..n)
        .map(|_| (rng.gen_range_u64(0, 4000), rng.next_u64() & 1 == 1, rng.gen_range_u64(1, 400)))
        .collect();
    Traffic { ops }
}

fn engine(rng: &mut Rng) -> EngineKind {
    match rng.gen_range_usize(0, 4) {
        0 => EngineKind::None,
        1 => EngineKind::NextLine,
        2 => EngineKind::P5Style,
        _ => EngineKind::Asd(AsdConfig { epoch_reads: 64, ..AsdConfig::default() }),
    }
}

/// Drive the controller with the given traffic, stepping between arrivals
/// and draining at the end. Returns (completions, responses_done, reads
/// accepted).
fn run(engine: EngineKind, t: &Traffic) -> (Vec<ReadCompletion>, u64, u64) {
    let cfg = McConfig { engine, ..McConfig::default() };
    let mut mc = MemoryController::new(cfg, Dram::new(DramConfig::default()));
    let mut out = Vec::new();
    let mut now = 0u64;
    let mut done = 0u64;
    let mut accepted = 0u64;
    for &(line, is_write, gap) in &t.ops {
        for _ in 0..gap {
            mc.step(now, &mut out);
            now += 1;
        }
        if is_write {
            // Writes may be rejected under backpressure; retry a few
            // cycles, then drop (cores hold writebacks anyway).
            for _ in 0..64 {
                if mc.enqueue_write(line, now) {
                    break;
                }
                mc.step(now, &mut out);
                now += 1;
            }
        } else {
            loop {
                match mc.enqueue_read(line, 0, now) {
                    ReadResponse::Done { at } => {
                        assert!(at >= now, "data from the past");
                        done += 1;
                        accepted += 1;
                        break;
                    }
                    ReadResponse::Queued => {
                        accepted += 1;
                        break;
                    }
                    ReadResponse::Rejected => {
                        mc.step(now, &mut out);
                        now += 1;
                    }
                }
            }
        }
    }
    let mut guard = 0u64;
    while mc.busy() {
        mc.step(now, &mut out);
        now += 1;
        guard += 1;
        assert!(guard < 3_000_000, "controller wedged");
    }
    (out, done, accepted)
}

/// Liveness + conservation: every accepted demand read is answered exactly
/// once (immediate Done or a later completion), regardless of the prefetch
/// engine.
#[test]
fn every_read_answered_once() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let e = engine(&mut rng);
        let t = traffic(&mut rng);
        let (completions, done, accepted) = run(e, &t);
        assert_eq!(done + completions.len() as u64, accepted);
    }
}

/// Completion timestamps never precede the cycle the command was accepted
/// at, and the controller always drains (no deadlock) — the drain loop in
/// `run` asserts the latter.
#[test]
fn completions_monotone_per_line() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let e = engine(&mut rng);
        let t = traffic(&mut rng);
        let (completions, _, _) = run(e, &t);
        for c in &completions {
            assert!(c.at > 0);
        }
    }
}

/// The controller's own accounting is coherent: covered reads never exceed
/// total reads; useful fraction and coverage stay within [0,1]; issued
/// prefetches equal PB inserts plus merged in-flight plus those still
/// pending at drain (none, since we drained).
#[test]
fn stats_are_coherent() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let e = engine(&mut rng);
        let t = traffic(&mut rng);
        let cfg = McConfig { engine: e, ..McConfig::default() };
        let mut mc = MemoryController::new(cfg, Dram::new(DramConfig::default()));
        let mut out = Vec::new();
        let mut now = 0u64;
        for &(line, is_write, gap) in &t.ops {
            now += gap;
            if is_write {
                let _ = mc.enqueue_write(line, now);
            } else {
                let _ = mc.enqueue_read(line, 0, now);
            }
            mc.step(now, &mut out);
        }
        let mut guard = 0;
        while mc.busy() {
            mc.step(now, &mut out);
            now += 1;
            guard += 1;
            assert!(guard < 3_000_000);
        }
        let s = mc.stats();
        assert!(s.covered_reads() <= s.reads);
        assert!((0.0..=1.0).contains(&s.coverage()));
        assert!((0.0..=1.0).contains(&s.useful_prefetch_fraction()));
        assert!((0.0..=1.0).contains(&s.delayed_fraction()));
        // Every issued prefetch either landed in the PB or merged with a
        // demand read.
        assert_eq!(
            s.prefetches_issued,
            s.pb.inserts + s.merged_with_prefetch,
            "issued = inserted + merged after drain"
        );
    }
}

/// Determinism: identical traffic yields identical completions.
#[test]
fn controller_is_deterministic() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let e = engine(&mut rng);
        let t = traffic(&mut rng);
        let a = run(e.clone(), &t);
        let b = run(e, &t);
        assert_eq!(a.0, b.0);
    }
}

//! Property-based tests for the memory controller: liveness, conservation
//! of reads, and Prefetch Buffer hygiene under arbitrary traffic.

use asd_core::AsdConfig;
use asd_dram::{Dram, DramConfig};
use asd_mc::{EngineKind, McConfig, MemoryController, ReadCompletion, ReadResponse};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Traffic {
    /// (line, is_write, inter-arrival gap in cycles)
    ops: Vec<(u64, bool, u64)>,
}

fn traffic() -> impl Strategy<Value = Traffic> {
    prop::collection::vec((0u64..4000, any::<bool>(), 1u64..400), 1..150)
        .prop_map(|ops| Traffic { ops })
}

fn engines() -> impl Strategy<Value = EngineKind> {
    prop_oneof![
        Just(EngineKind::None),
        Just(EngineKind::NextLine),
        Just(EngineKind::P5Style),
        Just(EngineKind::Asd(AsdConfig { epoch_reads: 64, ..AsdConfig::default() })),
    ]
}

/// Drive the controller with the given traffic, stepping between arrivals
/// and draining at the end. Returns (completions, responses_done, reads
/// accepted).
fn run(engine: EngineKind, t: &Traffic) -> (Vec<ReadCompletion>, u64, u64) {
    let cfg = McConfig { engine, ..McConfig::default() };
    let mut mc = MemoryController::new(cfg, Dram::new(DramConfig::default()));
    let mut out = Vec::new();
    let mut now = 0u64;
    let mut done = 0u64;
    let mut accepted = 0u64;
    for &(line, is_write, gap) in &t.ops {
        for _ in 0..gap {
            mc.step(now, &mut out);
            now += 1;
        }
        if is_write {
            // Writes may be rejected under backpressure; retry a few
            // cycles, then drop (cores hold writebacks anyway).
            for _ in 0..64 {
                if mc.enqueue_write(line, now) {
                    break;
                }
                mc.step(now, &mut out);
                now += 1;
            }
        } else {
            loop {
                match mc.enqueue_read(line, 0, now) {
                    ReadResponse::Done { at } => {
                        assert!(at >= now, "data from the past");
                        done += 1;
                        accepted += 1;
                        break;
                    }
                    ReadResponse::Queued => {
                        accepted += 1;
                        break;
                    }
                    ReadResponse::Rejected => {
                        mc.step(now, &mut out);
                        now += 1;
                    }
                }
            }
        }
    }
    let mut guard = 0u64;
    while mc.busy() {
        mc.step(now, &mut out);
        now += 1;
        guard += 1;
        assert!(guard < 3_000_000, "controller wedged");
    }
    (out, done, accepted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Liveness + conservation: every accepted demand read is answered
    /// exactly once (immediate Done or a later completion), regardless of
    /// the prefetch engine.
    #[test]
    fn every_read_answered_once(engine in engines(), t in traffic()) {
        let (completions, done, accepted) = run(engine, &t);
        prop_assert_eq!(done + completions.len() as u64, accepted);
    }

    /// Completion timestamps never precede the cycle the command was
    /// accepted at, and the controller always drains (no deadlock) — the
    /// drain loop in `run` asserts the latter.
    #[test]
    fn completions_monotone_per_line(engine in engines(), t in traffic()) {
        let (completions, _, _) = run(engine, &t);
        for c in &completions {
            prop_assert!(c.at > 0);
        }
    }

    /// The controller's own accounting is coherent: covered reads never
    /// exceed total reads; useful fraction and coverage stay within [0,1];
    /// issued prefetches equal PB inserts plus merged in-flight plus those
    /// still pending at drain (none, since we drained).
    #[test]
    fn stats_are_coherent(engine in engines(), t in traffic()) {
        let cfg = McConfig { engine, ..McConfig::default() };
        let mut mc = MemoryController::new(cfg, Dram::new(DramConfig::default()));
        let mut out = Vec::new();
        let mut now = 0u64;
        for &(line, is_write, gap) in &t.ops {
            now += gap;
            if is_write {
                let _ = mc.enqueue_write(line, now);
            } else {
                let _ = mc.enqueue_read(line, 0, now);
            }
            mc.step(now, &mut out);
        }
        let mut guard = 0;
        while mc.busy() {
            mc.step(now, &mut out);
            now += 1;
            guard += 1;
            prop_assert!(guard < 3_000_000);
        }
        let s = mc.stats();
        prop_assert!(s.covered_reads() <= s.reads);
        prop_assert!((0.0..=1.0).contains(&s.coverage()));
        prop_assert!((0.0..=1.0).contains(&s.useful_prefetch_fraction()));
        prop_assert!((0.0..=1.0).contains(&s.delayed_fraction()));
        // Every issued prefetch either landed in the PB or merged with a
        // demand read.
        prop_assert_eq!(s.prefetches_issued, s.pb.inserts + s.merged_with_prefetch,
            "issued = inserted + merged after drain");
    }

    /// Determinism: identical traffic yields identical completions.
    #[test]
    fn controller_is_deterministic(engine in engines(), t in traffic()) {
        let a = run(engine.clone(), &t);
        let b = run(engine, &t);
        prop_assert_eq!(a.0, b.0);
    }
}

use crate::error::ConfigError;
use crate::stream_filter::StreamFilterConfig;
use crate::MAX_STREAM_LEN;

/// Configuration for an [`AsdDetector`](crate::AsdDetector).
///
/// Defaults match the hardware configuration evaluated in the paper (§5.1):
/// an 8-slot Stream Filter per thread, 16-entry likelihood tables per
/// direction, and an epoch of 2000 reads (the epoch length used for the
/// paper's Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsdConfig {
    /// Number of reads that make up one epoch (`e` in the paper, §3.1).
    /// A fresh Stream Length Histogram is produced at every epoch boundary.
    pub epoch_reads: u64,
    /// Stream Filter geometry and lifetime parameters.
    pub filter: StreamFilterConfig,
    /// Maximum number of consecutive lines a single read may trigger
    /// (`d` in the paper's generalized inequality (6)). The paper evaluates
    /// `1`; larger values enable the multi-line extension discussed in §3.1.
    pub max_degree: usize,
    /// Whether decreasing-address streams are tracked (the paper tracks both
    /// directions, each with its own histogram).
    pub track_negative: bool,
}

impl Default for AsdConfig {
    fn default() -> Self {
        AsdConfig {
            epoch_reads: 2000,
            filter: StreamFilterConfig::default(),
            max_degree: 1,
            track_negative: true,
        }
    }
}

impl AsdConfig {
    /// Validate the configuration, returning it unchanged if acceptable.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `epoch_reads` or `max_degree` is zero, if
    /// `max_degree` exceeds [`MAX_STREAM_LEN`], or if the embedded
    /// [`StreamFilterConfig`] is invalid.
    pub fn validate(self) -> Result<Self, ConfigError> {
        if self.epoch_reads == 0 {
            return Err(ConfigError::Zero { field: "epoch_reads" });
        }
        if self.max_degree == 0 {
            return Err(ConfigError::Zero { field: "max_degree" });
        }
        if self.max_degree > MAX_STREAM_LEN {
            return Err(ConfigError::TooLarge {
                field: "max_degree",
                value: self.max_degree as u64,
                max: MAX_STREAM_LEN as u64,
            });
        }
        self.filter.clone().validate()?;
        Ok(self)
    }

    /// Convenience: the paper's single-line-prefetch configuration with a
    /// custom stream-filter slot count (used for the Figure 15 sensitivity
    /// sweep over 4/8/16/64 entries).
    pub fn with_filter_slots(mut self, slots: usize) -> Self {
        self.filter.slots = slots;
        self
    }

    /// Convenience: override the epoch length.
    pub fn with_epoch_reads(mut self, reads: u64) -> Self {
        self.epoch_reads = reads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = AsdConfig::default();
        assert_eq!(c.epoch_reads, 2000);
        assert_eq!(c.filter.slots, 8);
        assert_eq!(c.max_degree, 1);
        assert!(c.track_negative);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn zero_epoch_rejected() {
        let c = AsdConfig { epoch_reads: 0, ..AsdConfig::default() };
        assert_eq!(c.validate(), Err(ConfigError::Zero { field: "epoch_reads" }));
    }

    #[test]
    fn zero_degree_rejected() {
        let c = AsdConfig { max_degree: 0, ..AsdConfig::default() };
        assert_eq!(c.validate(), Err(ConfigError::Zero { field: "max_degree" }));
    }

    #[test]
    fn oversized_degree_rejected() {
        let c = AsdConfig { max_degree: MAX_STREAM_LEN + 1, ..AsdConfig::default() };
        assert!(matches!(c.validate(), Err(ConfigError::TooLarge { field: "max_degree", .. })));
    }

    #[test]
    fn builder_helpers() {
        let c = AsdConfig::default().with_filter_slots(64).with_epoch_reads(500);
        assert_eq!(c.filter.slots, 64);
        assert_eq!(c.epoch_reads, 500);
    }
}

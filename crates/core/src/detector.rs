//! The full Adaptive Stream Detection engine (§3.3/§3.4): Stream Filter +
//! per-direction likelihood-table pairs + epoch machinery.

use crate::config::AsdConfig;
use crate::epoch::EpochTracker;
use crate::error::ConfigError;
use crate::lht::LhtPair;
use crate::slh::Slh;
use crate::stream_filter::{EvictedStream, StreamFilter};
use crate::Direction;

/// A line the detector recommends prefetching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchCandidate {
    /// Cache-line address to prefetch.
    pub line: u64,
    /// Direction of the triggering stream.
    pub direction: Direction,
    /// Detected length of the triggering stream (the `k` of inequality (5)).
    pub trigger_len: u32,
}

/// Counters exposed by the detector for evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AsdStats {
    /// Reads observed.
    pub reads: u64,
    /// Prefetch candidates produced.
    pub prefetches: u64,
    /// Streams reported to the histograms (evictions + untracked singles).
    pub streams_observed: u64,
    /// Reads that could not be tracked because the filter was full.
    pub untracked_reads: u64,
    /// Completed epochs.
    pub epochs: u64,
}

/// The Adaptive Stream Detection prefetch engine.
///
/// Feed it every DRAM Read command (as a cache-line address) via
/// [`on_read`](AsdDetector::on_read); it appends zero or more
/// [`PrefetchCandidate`]s to the supplied buffer. The engine maintains one
/// [`StreamFilter`] and one [`LhtPair`] per direction, rolls epochs after
/// every `epoch_reads` reads, and keeps the Stream Length Histogram of the
/// most recently completed epoch available via
/// [`last_epoch_slh`](AsdDetector::last_epoch_slh).
#[derive(Debug, Clone)]
pub struct AsdDetector {
    cfg: AsdConfig,
    filter: StreamFilter,
    lht: [LhtPair; 2],
    epoch: EpochTracker,
    stats: AsdStats,
    last_epoch_slh: Slh,
    scratch_evicted: Vec<EvictedStream>,
}

impl AsdDetector {
    /// Create a detector from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(cfg: AsdConfig) -> Result<Self, ConfigError> {
        let cfg = cfg.validate()?;
        let filter = StreamFilter::new(cfg.filter.clone())?;
        let epoch = EpochTracker::new(cfg.epoch_reads);
        Ok(AsdDetector {
            cfg,
            filter,
            lht: [LhtPair::new(), LhtPair::new()],
            epoch,
            stats: AsdStats::default(),
            last_epoch_slh: Slh::new(),
            scratch_evicted: Vec::with_capacity(16),
        })
    }

    /// The configuration this detector was built with.
    pub fn config(&self) -> &AsdConfig {
        &self.cfg
    }

    /// Observe a DRAM Read of cache line `line` at cycle `now`, appending
    /// any prefetch recommendations to `out`.
    ///
    /// This performs, in order: lifetime-based evictions, the Stream Filter
    /// update, the inequality-(5)/(6) prefetch decision against `LHTcurr`
    /// of the stream's direction, and epoch rollover.
    pub fn on_read(&mut self, line: u64, now: u64, out: &mut Vec<PrefetchCandidate>) {
        self.stats.reads += 1;
        self.expire(now);

        let obs = self.filter.observe_read(line, now);
        if !obs.tracked {
            // Filter full: no prefetch, but the SLH records a length-1 stream.
            self.stats.untracked_reads += 1;
            self.stats.streams_observed += 1;
            self.lht[obs.direction.index()].observe_stream(1);
        } else if !self.cfg.track_negative && obs.direction == Direction::Negative {
            // Negative tracking disabled: stream exists in the filter but
            // never produces prefetches or histogram entries.
        } else {
            let k = obs.stream_len as usize;
            let table = self.lht[obs.direction.index()].current();
            let degree = table.prefetch_degree(k, self.cfg.max_degree);
            let mut next = line;
            for _ in 0..degree {
                match obs.direction.step(next) {
                    Some(n) => {
                        next = n;
                        out.push(PrefetchCandidate {
                            line: n,
                            direction: obs.direction,
                            trigger_len: obs.stream_len,
                        });
                        self.stats.prefetches += 1;
                    }
                    None => break, // address space edge
                }
            }
        }

        if self.epoch.on_read() {
            self.roll_epoch();
        }
    }

    /// Evict lifetime-expired streams as of cycle `now`, reporting them to
    /// the histograms. Called automatically by [`AsdDetector::on_read`],
    /// but exposed so a host can tick the detector during long read-free
    /// gaps.
    pub fn expire(&mut self, now: u64) {
        self.scratch_evicted.clear();
        self.filter.collect_expired(now, &mut self.scratch_evicted);
        for i in 0..self.scratch_evicted.len() {
            let ev = self.scratch_evicted[i];
            self.report_stream(ev);
        }
    }

    fn report_stream(&mut self, ev: EvictedStream) {
        self.stats.streams_observed += 1;
        self.lht[ev.direction.index()].observe_stream(ev.len);
    }

    fn roll_epoch(&mut self) {
        // Flush the filter: remaining streams count toward the epoch that
        // just ended (§3.4).
        self.scratch_evicted.clear();
        self.filter.flush(&mut self.scratch_evicted);
        for i in 0..self.scratch_evicted.len() {
            let ev = self.scratch_evicted[i];
            self.report_stream(ev);
        }
        let mut slh = self.lht[0].rotate();
        slh += &self.lht[1].rotate();
        self.last_epoch_slh = slh;
        self.stats.epochs += 1;
    }

    /// The combined (both directions) Stream Length Histogram of the most
    /// recently *completed* epoch; empty before the first epoch boundary.
    pub fn last_epoch_slh(&self) -> &Slh {
        &self.last_epoch_slh
    }

    /// Histogram accumulated so far in the *current* epoch (both
    /// directions). This is the filter's finite-size approximation that
    /// Figure 16 compares against an oracle.
    pub fn pending_slh(&self) -> Slh {
        let mut slh = self.lht[0].pending().slh();
        slh += &self.lht[1].pending().slh();
        slh
    }

    /// Live stream count in the filter (diagnostics).
    pub fn live_streams(&self) -> usize {
        self.filter.live_streams()
    }

    /// Evaluation counters.
    pub fn stats(&self) -> AsdStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(epoch: u64) -> AsdDetector {
        AsdDetector::new(AsdConfig { epoch_reads: epoch, ..AsdConfig::default() }).unwrap()
    }

    /// Drive `n` back-to-back streams of length `len` starting well apart,
    /// with DRAM reads arriving every ~600 cycles so that completed streams
    /// age out of the 8-slot filter instead of squatting on slots.
    fn feed_streams(det: &mut AsdDetector, n: u64, len: u64, out: &mut Vec<PrefetchCandidate>) {
        for s in 0..n {
            let base = 1_000_000 + s * 1000;
            for i in 0..len {
                det.on_read(base + i, (s * len + i) * 600, out);
            }
        }
    }

    #[test]
    fn no_prefetches_in_first_epoch() {
        let mut det = detector(10_000);
        let mut out = Vec::new();
        feed_streams(&mut det, 100, 4, &mut out);
        assert!(out.is_empty(), "LHTcurr is empty during epoch 0");
    }

    #[test]
    fn learns_length_two_workload() {
        let mut det = detector(200);
        let mut out = Vec::new();
        // Epoch 0: observe length-2 streams.
        feed_streams(&mut det, 100, 2, &mut out);
        assert_eq!(det.stats().epochs, 1);
        out.clear();
        // Epoch 1: every first element should trigger exactly one prefetch;
        // second elements should not.
        for s in 0..50u64 {
            let base = 5_000_000 + s * 1000;
            let now = 1_000_000 + s * 1500;
            det.on_read(base, now, &mut out);
            let after_first = out.len();
            det.on_read(base + 1, now + 600, &mut out);
            assert_eq!(out.len(), after_first, "no prefetch after second element (k=2)");
        }
        assert_eq!(out.len(), 50, "one prefetch per stream start");
        assert!(out.iter().all(|p| p.trigger_len == 1));
    }

    #[test]
    fn singles_workload_never_prefetches() {
        let mut det = detector(100);
        let mut out = Vec::new();
        // Isolated reads only.
        for i in 0..500u64 {
            det.on_read(i * 777 + 10_000_000, i, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn negative_streams_prefetch_downward() {
        let mut det = detector(150);
        let mut out = Vec::new();
        // Train on descending triples. Direction is only known from a
        // stream's second element onward, so the shortest stream that can
        // produce a negative-direction prefetch (at k = 2) has length 3.
        for s in 0..100u64 {
            let base = 1_000_000 + s * 1000;
            det.on_read(base, s * 1800, &mut out);
            det.on_read(base - 1, s * 1800 + 600, &mut out);
            det.on_read(base - 2, s * 1800 + 1200, &mut out);
        }
        out.clear();
        let base = 99_000_000u64;
        det.on_read(base, 900_000, &mut out);
        det.on_read(base - 1, 900_600, &mut out);
        let down: Vec<_> = out.iter().filter(|p| p.direction == Direction::Negative).collect();
        assert!(!down.is_empty(), "learned descending locality");
        assert!(down.iter().all(|p| p.line < base));
    }

    #[test]
    fn epoch_slh_reflects_workload() {
        let mut det = detector(200);
        let mut out = Vec::new();
        feed_streams(&mut det, 100, 2, &mut out);
        let slh = det.last_epoch_slh();
        assert!(slh.fraction_at(2) > 0.9, "length-2 dominates: {slh}");
    }

    #[test]
    fn untracked_reads_counted_as_singles() {
        let cfg = AsdConfig::default().with_filter_slots(1).with_epoch_reads(64);
        let mut det = AsdDetector::new(cfg).unwrap();
        let mut out = Vec::new();
        for i in 0..64u64 {
            det.on_read(i * 999 + 5_000_000, 0, &mut out);
        }
        assert!(det.stats().untracked_reads > 0);
        let slh = det.last_epoch_slh();
        assert!(slh.fraction_at(1) > 0.99);
    }

    #[test]
    fn multi_line_degree_for_long_stream_workload() {
        let cfg = AsdConfig { max_degree: 4, epoch_reads: 400, ..AsdConfig::default() };
        let mut det = AsdDetector::new(cfg).unwrap();
        let mut out = Vec::new();
        feed_streams(&mut det, 100, 4, &mut out);
        out.clear();
        det.on_read(77_000_000, 10_000_000, &mut out);
        // All reads were in length-4 streams: from k=1, inequality (6)
        // allows prefetching 3 lines ahead.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].line, 77_000_001);
        assert_eq!(out[2].line, 77_000_003);
    }

    #[test]
    fn stats_accumulate() {
        let mut det = detector(50);
        let mut out = Vec::new();
        feed_streams(&mut det, 50, 2, &mut out);
        let st = det.stats();
        assert_eq!(st.reads, 100);
        assert_eq!(st.epochs, 2);
        assert!(st.streams_observed >= 50);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(AsdDetector::new(AsdConfig { epoch_reads: 0, ..AsdConfig::default() }).is_err());
    }
}

//! Adaptive Scheduling (§3.5): feedback-directed selection among five
//! prioritization policies for prefetch commands.

/// The five prioritization policies of §3.5, ordered from most to least
/// conservative. Each policy answers: *may a command from the Low Priority
/// Queue (LPQ) issue right now?*
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LpqPolicy {
    /// (1) Only if the CAQ is empty **and** the reorder queues are empty.
    /// Roughly the Scheduled Region Prefetching prioritizer of Lin et al.
    CaqEmptyReorderEmpty,
    /// (2) Only if the CAQ is empty and the reorder queues hold no issuable
    /// command.
    CaqEmptyNoIssuable,
    /// (3) Only if the CAQ is empty.
    CaqEmpty,
    /// (4) If the CAQ has at most one entry and the LPQ is full.
    CaqAlmostEmptyLpqFull,
    /// (5) If the oldest LPQ entry is older than the oldest CAQ entry.
    LpqOlder,
}

impl LpqPolicy {
    /// All policies, most conservative first.
    pub const ALL: [LpqPolicy; 5] = [
        LpqPolicy::CaqEmptyReorderEmpty,
        LpqPolicy::CaqEmptyNoIssuable,
        LpqPolicy::CaqEmpty,
        LpqPolicy::CaqAlmostEmptyLpqFull,
        LpqPolicy::LpqOlder,
    ];

    /// Policy number as in the paper (1 = most conservative).
    pub fn number(self) -> usize {
        match self {
            LpqPolicy::CaqEmptyReorderEmpty => 1,
            LpqPolicy::CaqEmptyNoIssuable => 2,
            LpqPolicy::CaqEmpty => 3,
            LpqPolicy::CaqAlmostEmptyLpqFull => 4,
            LpqPolicy::LpqOlder => 5,
        }
    }

    /// Decide whether an LPQ command may issue under this policy given the
    /// current queue state.
    ///
    /// The five policies are listed in the paper in order of *decreasing
    /// conservativeness*, so each policy is a cumulative relaxation: policy
    /// `k` permits issue whenever the raw condition of *any* policy
    /// `1..=k` holds. (Conditions 1–3 are already nested — an empty reorder
    /// queue has no issuable commands, which in turn only matters with an
    /// empty CAQ — so cumulativity only adds opportunities at 4 and 5.)
    pub fn allows(self, view: QueueView) -> bool {
        if view.lpq_len == 0 {
            return false;
        }
        let n = self.number();
        Self::ALL[..n].iter().any(|p| p.raw_condition(view))
    }

    /// The raw (non-cumulative) condition of this policy.
    fn raw_condition(self, view: QueueView) -> bool {
        match self {
            LpqPolicy::CaqEmptyReorderEmpty => view.caq_len == 0 && view.reorder_len == 0,
            LpqPolicy::CaqEmptyNoIssuable => view.caq_len == 0 && view.reorder_issuable == 0,
            LpqPolicy::CaqEmpty => view.caq_len == 0,
            LpqPolicy::CaqAlmostEmptyLpqFull => {
                view.caq_len <= 1 && view.lpq_len >= view.lpq_capacity
            }
            LpqPolicy::LpqOlder => match (view.lpq_head_ts, view.caq_head_ts) {
                (Some(l), Some(c)) => l < c,
                (Some(_), None) => true,
                _ => false,
            },
        }
    }
}

/// Snapshot of memory-controller queue state used for LPQ issue decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueView {
    /// Commands currently in the Centralized Arbiter Queue.
    pub caq_len: usize,
    /// Commands currently in the Low Priority Queue.
    pub lpq_len: usize,
    /// LPQ capacity.
    pub lpq_capacity: usize,
    /// Commands in the read/write reorder queues.
    pub reorder_len: usize,
    /// Reorder-queue commands that could issue to the CAQ this cycle.
    pub reorder_issuable: usize,
    /// Arrival timestamp of the oldest LPQ entry, if any.
    pub lpq_head_ts: Option<u64>,
    /// Arrival timestamp of the oldest CAQ entry, if any.
    pub caq_head_ts: Option<u64>,
}

impl QueueView {
    /// A view of completely empty queues.
    pub fn empty(lpq_capacity: usize) -> Self {
        QueueView {
            caq_len: 0,
            lpq_len: 0,
            lpq_capacity,
            reorder_len: 0,
            reorder_issuable: 0,
            lpq_head_ts: None,
            caq_head_ts: None,
        }
    }
}

/// Counters for the adaptive scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerStats {
    /// Total prefetch-induced conflicts observed.
    pub conflicts: u64,
    /// Number of times the policy moved toward conservative.
    pub tightened: u64,
    /// Number of times the policy moved toward aggressive.
    pub loosened: u64,
}

/// Adaptive Scheduling: tracks how often a regular command was blocked by a
/// previously issued prefetch command and, at every epoch boundary, moves
/// one step along the conservativeness scale — more conservative when
/// conflicts grew since the previous epoch, less conservative when they
/// shrank (§3.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveScheduler {
    /// Index into [`LpqPolicy::ALL`].
    level: usize,
    conflicts_this_epoch: u64,
    conflicts_last_epoch: u64,
    stats: SchedulerStats,
}

impl Default for AdaptiveScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptiveScheduler {
    /// Start at the middle policy (3), with room to adapt both ways.
    pub fn new() -> Self {
        AdaptiveScheduler {
            level: 2,
            conflicts_this_epoch: 0,
            conflicts_last_epoch: 0,
            stats: SchedulerStats::default(),
        }
    }

    /// Start pinned at a specific policy (used for the fixed-policy bars of
    /// Figure 11, and for tests).
    pub fn starting_at(policy: LpqPolicy) -> Self {
        AdaptiveScheduler {
            level: policy.number() - 1,
            conflicts_this_epoch: 0,
            conflicts_last_epoch: 0,
            stats: SchedulerStats::default(),
        }
    }

    /// The policy currently in force.
    pub fn policy(&self) -> LpqPolicy {
        LpqPolicy::ALL[self.level]
    }

    /// May an LPQ command issue right now?
    pub fn allows(&self, view: QueueView) -> bool {
        self.policy().allows(view)
    }

    /// Record that a regular command could not proceed to the CAQ because it
    /// conflicted in the memory system with an in-flight prefetch command.
    pub fn record_conflict(&mut self) {
        self.conflicts_this_epoch += 1;
        self.stats.conflicts += 1;
    }

    /// Epoch boundary: adapt the policy one step based on the conflict
    /// trend, then reset the per-epoch counter.
    pub fn on_epoch_end(&mut self) {
        use std::cmp::Ordering;
        match self.conflicts_this_epoch.cmp(&self.conflicts_last_epoch) {
            Ordering::Greater => {
                if self.level > 0 {
                    self.level -= 1;
                    self.stats.tightened += 1;
                }
            }
            Ordering::Less => {
                if self.level + 1 < LpqPolicy::ALL.len() {
                    self.level += 1;
                    self.stats.loosened += 1;
                }
            }
            Ordering::Equal => {
                // Zero conflicts two epochs running: safe to loosen.
                if self.conflicts_this_epoch == 0 && self.level + 1 < LpqPolicy::ALL.len() {
                    self.level += 1;
                    self.stats.loosened += 1;
                }
            }
        }
        self.conflicts_last_epoch = self.conflicts_this_epoch;
        self.conflicts_this_epoch = 0;
    }

    /// Counters.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Conflicts recorded so far in the current epoch.
    pub fn conflicts_this_epoch(&self) -> u64 {
        self.conflicts_this_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> QueueView {
        QueueView::empty(3)
    }

    #[test]
    fn numbers_follow_all_order() {
        for (i, p) in LpqPolicy::ALL.iter().enumerate() {
            assert_eq!(p.number(), i + 1);
        }
    }

    #[test]
    fn empty_lpq_never_issues() {
        for p in LpqPolicy::ALL {
            assert!(!p.allows(view()), "{p:?}");
        }
    }

    #[test]
    fn policy_numbers_match_paper() {
        assert_eq!(LpqPolicy::CaqEmptyReorderEmpty.number(), 1);
        assert_eq!(LpqPolicy::LpqOlder.number(), 5);
    }

    #[test]
    fn policy1_requires_totally_idle() {
        let mut v = view();
        v.lpq_len = 1;
        v.lpq_head_ts = Some(5);
        assert!(LpqPolicy::CaqEmptyReorderEmpty.allows(v));
        v.reorder_len = 1;
        assert!(!LpqPolicy::CaqEmptyReorderEmpty.allows(v));
        // Policy 2 tolerates non-issuable reorder entries.
        assert!(LpqPolicy::CaqEmptyNoIssuable.allows(v));
        v.reorder_issuable = 1;
        assert!(!LpqPolicy::CaqEmptyNoIssuable.allows(v));
        // Policy 3 only looks at the CAQ.
        assert!(LpqPolicy::CaqEmpty.allows(v));
        v.caq_len = 1;
        assert!(!LpqPolicy::CaqEmpty.allows(v));
    }

    #[test]
    fn policy4_needs_full_lpq() {
        let mut v = view();
        v.caq_len = 1;
        v.lpq_len = 2;
        assert!(!LpqPolicy::CaqAlmostEmptyLpqFull.allows(v));
        v.lpq_len = 3; // capacity 3
        assert!(LpqPolicy::CaqAlmostEmptyLpqFull.allows(v));
        v.caq_len = 2;
        assert!(!LpqPolicy::CaqAlmostEmptyLpqFull.allows(v));
    }

    #[test]
    fn policy5_compares_timestamps() {
        let mut v = view();
        v.lpq_len = 1;
        v.caq_len = 1;
        v.lpq_head_ts = Some(10);
        v.caq_head_ts = Some(20);
        assert!(LpqPolicy::LpqOlder.allows(v));
        v.caq_head_ts = Some(5);
        assert!(!LpqPolicy::LpqOlder.allows(v));
        v.caq_head_ts = None;
        assert!(LpqPolicy::LpqOlder.allows(v), "empty CAQ: LPQ entry is oldest");
    }

    #[test]
    fn conservativeness_is_ordered() {
        // Any state allowed by a more conservative policy is allowed by
        // every less conservative one (the policies are cumulative
        // relaxations).
        let mut v = view();
        v.lpq_len = 1;
        v.lpq_head_ts = Some(1);
        for p in LpqPolicy::ALL {
            assert!(p.allows(v), "{p:?} allows the fully idle state");
        }
        // A state only policy 3 raw-allows is allowed by 4 and 5 too.
        let mut v = view();
        v.lpq_len = 1;
        v.lpq_head_ts = Some(100);
        v.reorder_len = 2;
        v.reorder_issuable = 1;
        assert!(!LpqPolicy::CaqEmptyNoIssuable.allows(v));
        assert!(LpqPolicy::CaqEmpty.allows(v));
        assert!(LpqPolicy::CaqAlmostEmptyLpqFull.allows(v));
        assert!(LpqPolicy::LpqOlder.allows(v));
    }

    #[test]
    fn adapts_toward_conservative_on_growing_conflicts() {
        let mut s = AdaptiveScheduler::new();
        assert_eq!(s.policy(), LpqPolicy::CaqEmpty);
        s.record_conflict();
        s.record_conflict();
        s.on_epoch_end();
        assert_eq!(s.policy(), LpqPolicy::CaqEmptyNoIssuable);
        for _ in 0..5 {
            s.record_conflict();
        }
        s.on_epoch_end();
        assert_eq!(s.policy(), LpqPolicy::CaqEmptyReorderEmpty);
        // Already at most conservative; more conflicts keep it pinned.
        for _ in 0..9 {
            s.record_conflict();
        }
        s.on_epoch_end();
        assert_eq!(s.policy(), LpqPolicy::CaqEmptyReorderEmpty);
    }

    #[test]
    fn adapts_toward_aggressive_on_shrinking_conflicts() {
        let mut s = AdaptiveScheduler::new();
        for _ in 0..10 {
            s.record_conflict();
        }
        s.on_epoch_end(); // 10 > 0: tighten to policy 2
        s.on_epoch_end(); // 0 < 10: loosen back to 3
        assert_eq!(s.policy(), LpqPolicy::CaqEmpty);
        s.on_epoch_end(); // 0 == 0 and zero: loosen to 4
        s.on_epoch_end(); // loosen to 5
        s.on_epoch_end(); // pinned at 5
        assert_eq!(s.policy(), LpqPolicy::LpqOlder);
    }

    #[test]
    fn stats_track_movements() {
        let mut s = AdaptiveScheduler::new();
        s.record_conflict();
        s.on_epoch_end();
        s.on_epoch_end();
        let st = s.stats();
        assert_eq!(st.conflicts, 1);
        assert_eq!(st.tightened, 1);
        assert_eq!(st.loosened, 1);
    }

    #[test]
    fn starting_at_pins_initial_policy() {
        let s = AdaptiveScheduler::starting_at(LpqPolicy::LpqOlder);
        assert_eq!(s.policy(), LpqPolicy::LpqOlder);
    }
}

//! Likelihood tables: the `lht()` function of the paper (§3.2, §3.4).

use crate::slh::Slh;
use crate::MAX_STREAM_LEN;

/// The paper's `lht()` function, materialized as a table of `Lm` counters.
///
/// `lht(i)` is the number of Read commands that were part of streams of
/// length `i` **or longer**, for `1 <= i <= Lm`; `lht(i) = 0` for `i > Lm`.
/// A stream of length `L` contains `L` reads, each of which belongs to a
/// stream of length `>= i` for every `i <= L`, so observing that stream adds
/// `L` to `lht(i)` for all `i <= min(L, Lm)`.
///
/// The Stream Length Histogram bar at position `i` equals
/// `lht(i) - lht(i+1)` (the number of reads in streams of *exactly* length
/// `i`), with the final bar `lht(Lm)` collecting everything of length `Lm`
/// or more.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LikelihoodTable {
    counts: [u64; MAX_STREAM_LEN],
}

impl LikelihoodTable {
    /// An empty table (all counters zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// `lht(i)`: reads in streams of length `i` or longer. Returns the total
    /// number of observed reads for `i == 0` or `i == 1`, and `0` for
    /// `i > Lm`, matching the paper's definition.
    #[inline]
    pub fn lht(&self, i: usize) -> u64 {
        match i {
            0 => self.counts[0],
            i if i <= MAX_STREAM_LEN => self.counts[i - 1],
            _ => 0,
        }
    }

    /// Total number of reads recorded (`lht(1)`).
    #[inline]
    pub fn total_reads(&self) -> u64 {
        self.counts[0]
    }

    /// Record a completed stream of `len` reads (a stream evicted from the
    /// Stream Filter). Adds `len` to `lht(i)` for every `i <= min(len, Lm)`.
    ///
    /// Streams of length zero are ignored.
    pub fn record_stream(&mut self, len: u32) {
        let contribution = u64::from(len);
        let upto = (len as usize).min(MAX_STREAM_LEN);
        for c in &mut self.counts[..upto] {
            *c += contribution;
        }
    }

    /// Remove a stream of `len` reads, saturating at zero.
    ///
    /// The paper's `LHTcurr` starts each epoch holding the previous epoch's
    /// observations and is *drained* as the current epoch's streams are
    /// observed (§3.4), so that prefetch decisions reflect what is still
    /// expected to occur in the remainder of the epoch.
    pub fn drain_stream(&mut self, len: u32) {
        let contribution = u64::from(len);
        let upto = (len as usize).min(MAX_STREAM_LEN);
        for c in &mut self.counts[..upto] {
            *c = c.saturating_sub(contribution);
        }
    }

    /// The paper's inequality (5): should a read that is the `k`-th element
    /// of a stream trigger a prefetch of the next line?
    ///
    /// Prefetch iff `lht(k+1) > lht(k) - lht(k+1)`, i.e. the read is more
    /// likely to be part of a stream *longer* than `k` than to be the last
    /// element of a stream of exactly length `k`. In hardware this is a
    /// single compare of `lht(k)` against `lht(k+1)` left-shifted by one.
    #[inline]
    pub fn should_prefetch(&self, k: usize) -> bool {
        if k == 0 {
            return false;
        }
        // 2 * lht(k+1) > lht(k)
        self.lht(k + 1).saturating_mul(2) > self.lht(k)
    }

    /// The paper's generalized inequality (6): the largest number of
    /// consecutive lines `d <= max_degree` worth prefetching after the `k`-th
    /// element of a stream, i.e. the largest `d` with
    /// `2 * lht(k+d) > lht(k)`.
    ///
    /// Because `lht` is non-increasing in its argument, the condition for
    /// degree `d` implies it for every smaller degree, so the result is the
    /// count of prefetchable lines starting at the next line. Returns `0`
    /// when no prefetch is warranted.
    pub fn prefetch_degree(&self, k: usize, max_degree: usize) -> usize {
        if k == 0 {
            return 0;
        }
        let base = self.lht(k);
        let mut degree = 0;
        for d in 1..=max_degree {
            if self.lht(k + d).saturating_mul(2) > base {
                degree = d;
            } else {
                break;
            }
        }
        degree
    }

    /// Probability mass `P(i, j)` from the paper's equation (1): the
    /// fraction of reads belonging to streams of length between `i` and `j`
    /// inclusive. Returns `0.0` when no reads have been observed.
    pub fn probability(&self, i: usize, j: usize) -> f64 {
        let total = self.total_reads();
        if total == 0 || j < i {
            return 0.0;
        }
        let mass = self.lht(i).saturating_sub(self.lht(j + 1));
        mass as f64 / total as f64
    }

    /// Derive the Stream Length Histogram this table encodes.
    pub fn slh(&self) -> Slh {
        let mut bars = [0u64; MAX_STREAM_LEN];
        for (idx, bar) in bars.iter_mut().enumerate() {
            let i = idx + 1;
            *bar = self.lht(i).saturating_sub(self.lht(i + 1));
        }
        Slh::from_read_counts(bars)
    }

    /// Reset every counter to zero (the `LHTnext` re-initialization at an
    /// epoch boundary).
    pub fn clear(&mut self) {
        self.counts = [0; MAX_STREAM_LEN];
    }

    /// True if no reads have been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts[0] == 0
    }

    /// Check the structural invariant: `lht` must be non-increasing.
    /// Exposed for tests and debug assertions.
    pub fn is_monotone(&self) -> bool {
        self.counts.windows(2).all(|w| w[0] >= w[1])
    }
}

/// The epoch double-buffering scheme of §3.4: `LHTcurr` drives prefetch
/// decisions for the current epoch while `LHTnext` accumulates observations
/// for the next.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LhtPair {
    curr: LikelihoodTable,
    next: LikelihoodTable,
}

impl LhtPair {
    /// A pair of empty tables. During the very first epoch `LHTcurr` is all
    /// zeros, so (faithfully to the hardware) no prefetches are issued until
    /// one epoch of history exists.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a stream eviction: `LHTnext` gains the stream, `LHTcurr` is
    /// drained by it (§3.4).
    pub fn observe_stream(&mut self, len: u32) {
        self.next.record_stream(len);
        self.curr.drain_stream(len);
    }

    /// Roll the epoch: `LHTnext` becomes `LHTcurr`; `LHTnext` is cleared.
    /// Returns the Stream Length Histogram of the epoch that just ended.
    pub fn rotate(&mut self) -> Slh {
        let slh = self.next.slh();
        self.curr = std::mem::take(&mut self.next);
        slh
    }

    /// The table used for prefetch decisions in the current epoch.
    pub fn current(&self) -> &LikelihoodTable {
        &self.curr
    }

    /// The table accumulating observations for the next epoch.
    pub fn pending(&self) -> &LikelihoodTable {
        &self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_never_prefetches() {
        let t = LikelihoodTable::new();
        for k in 0..=MAX_STREAM_LEN + 2 {
            assert!(!t.should_prefetch(k));
            assert_eq!(t.prefetch_degree(k, 4), 0);
        }
    }

    #[test]
    fn record_stream_adds_len_to_each_prefix() {
        let mut t = LikelihoodTable::new();
        t.record_stream(3);
        assert_eq!(t.lht(1), 3);
        assert_eq!(t.lht(2), 3);
        assert_eq!(t.lht(3), 3);
        assert_eq!(t.lht(4), 0);
    }

    #[test]
    fn long_streams_saturate_at_lm() {
        let mut t = LikelihoodTable::new();
        t.record_stream(100);
        assert_eq!(t.lht(MAX_STREAM_LEN), 100);
        assert_eq!(t.lht(MAX_STREAM_LEN + 1), 0);
    }

    #[test]
    fn zero_length_stream_is_ignored() {
        let mut t = LikelihoodTable::new();
        t.record_stream(0);
        assert!(t.is_empty());
    }

    #[test]
    fn paper_fig2_example_decisions() {
        // Reproduce the GemsFDTD example from §3.1: 21.8% of reads in
        // streams of length 1, 43.7% length 2; prefetch after the first
        // element (78.2% > 21.8%) but not after the second (43.7% > 34.5%).
        let mut t = LikelihoodTable::new();
        // Scale to 1000 reads: 218 length-1 streams (218 reads),
        // 437 reads in length-2 streams, rest in longer streams.
        // lht(1)=1000, lht(2)=782, lht(3)=345 (i.e. 34.5% longer than 2).
        // Build with raw bars via record_stream of synthetic streams:
        for _ in 0..218 {
            t.record_stream(1);
        }
        // 437 reads in length-2 streams -> 218 streams of length 2 ~ 436.
        for _ in 0..218 {
            t.record_stream(2);
        }
        // Remaining 346 reads in streams of length 3.
        for _ in 0..115 {
            t.record_stream(3);
        }
        // First element: P(longer than 1) ~ 78% > 22% -> prefetch.
        assert!(t.should_prefetch(1));
        // Second element: P(exactly 2) ~ 43.7% > P(longer) ~ 34.6% -> stop.
        assert!(!t.should_prefetch(2));
        // Third element: everything still at length 3 continues to... end.
        // lht(3)=345, lht(4)=0 -> no prefetch.
        assert!(!t.should_prefetch(3));
    }

    #[test]
    fn should_prefetch_matches_inequality_5() {
        let mut t = LikelihoodTable::new();
        t.record_stream(2);
        t.record_stream(2);
        t.record_stream(1);
        for k in 1..MAX_STREAM_LEN {
            let lhs = t.lht(k + 1);
            let rhs = t.lht(k) - t.lht(k + 1);
            assert_eq!(t.should_prefetch(k), lhs > rhs, "k={k}");
        }
    }

    #[test]
    fn drain_saturates() {
        let mut t = LikelihoodTable::new();
        t.record_stream(2);
        t.drain_stream(5);
        assert_eq!(t.lht(1), 0);
        assert_eq!(t.lht(2), 0);
        assert!(t.is_monotone());
    }

    #[test]
    fn prefetch_degree_monotone_prefix() {
        let mut t = LikelihoodTable::new();
        // All reads in streams of length 4 -> from k=1, worth prefetching
        // up to 3 more lines.
        for _ in 0..10 {
            t.record_stream(4);
        }
        assert_eq!(t.prefetch_degree(1, 8), 3);
        assert_eq!(t.prefetch_degree(1, 2), 2);
        assert_eq!(t.prefetch_degree(4, 8), 0);
    }

    #[test]
    fn probability_sums_to_one() {
        let mut t = LikelihoodTable::new();
        t.record_stream(1);
        t.record_stream(3);
        t.record_stream(7);
        let p = t.probability(1, MAX_STREAM_LEN);
        assert!((p - 1.0).abs() < 1e-12);
        assert_eq!(t.probability(3, 2), 0.0);
    }

    #[test]
    fn slh_bars_partition_reads() {
        let mut t = LikelihoodTable::new();
        t.record_stream(1);
        t.record_stream(2);
        t.record_stream(2);
        t.record_stream(20);
        let slh = t.slh();
        assert_eq!(slh.total_reads(), 1 + 2 + 2 + 20);
        assert_eq!(slh.reads_at(1), 1);
        assert_eq!(slh.reads_at(2), 4);
        assert_eq!(slh.reads_at(MAX_STREAM_LEN), 20);
    }

    #[test]
    fn pair_rotation_moves_next_to_curr() {
        let mut p = LhtPair::new();
        p.observe_stream(2);
        assert_eq!(p.current().total_reads(), 0, "first epoch has no history");
        let slh = p.rotate();
        assert_eq!(slh.total_reads(), 2);
        assert_eq!(p.current().total_reads(), 2);
        assert!(p.pending().is_empty());
    }

    #[test]
    fn pair_drains_current_during_epoch() {
        let mut p = LhtPair::new();
        p.observe_stream(2);
        p.observe_stream(2);
        p.rotate();
        assert_eq!(p.current().lht(2), 4);
        p.observe_stream(2);
        assert_eq!(p.current().lht(2), 2, "curr drained by observed stream");
        assert_eq!(p.pending().lht(2), 2, "next accumulates it");
    }
}

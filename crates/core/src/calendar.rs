//! A bucketed calendar (timing-wheel) queue for simulation completions.
//!
//! The simulation kernel's completion queues hold a handful of events whose
//! timestamps all lie within a bounded horizon of the current cycle (a DRAM
//! round trip plus transit). A classic binary heap pays `O(log n)` plus
//! pointer-chasing per operation; this wheel exploits the bounded horizon:
//! events hash into `at & mask` buckets, the exact minimum timestamp is
//! maintained eagerly (so `peek` is a field read), and draining due events
//! walks forward from the floor — amortized over a run, the walk advances
//! exactly as far as simulated time does.
//!
//! Ordering contract: [`CalendarQueue::drain_due`] yields events in
//! ascending `(at, key, tag)` order — bit-identical to popping a
//! `BinaryHeap<Reverse<(u64, u64, u8)>>` of the same entries, which is the
//! order the event loops were built on. `tests/` and the sim crate's
//! equivalence suite pin this.
//!
//! Capacity: the wheel needs every live timestamp within one rotation
//! (`window < buckets`) so a bucket never mixes two timestamps. Pushes
//! that would violate the window grow the wheel (rare: the horizon is
//! picked from the system configuration up front).

/// One queued event: `(at, key, tag)`; `key`/`tag` are payload (cache line
/// and hardware thread in the kernel's queues) and tie-break the order of
/// events due on the same cycle.
type Event = (u64, u64, u8);

/// A bucketed calendar queue over `(at, key, tag)` events.
#[derive(Debug, Clone)]
pub struct CalendarQueue {
    buckets: Vec<Vec<Event>>,
    /// One bit per bucket (bit `b` of word `b / 64`): bucket non-empty.
    /// Lets the drain jump straight to the next live timestamp with a
    /// find-first-set instead of probing empty buckets one by one.
    live: Vec<u64>,
    mask: u64,
    len: usize,
    /// Exact minimum `at` over live events whenever `len > 0`.
    floor: u64,
    /// Maximum `at` ever pushed since the queue was last empty; together
    /// with `floor` this bounds the live window for the rotation check.
    ceil: u64,
}

impl CalendarQueue {
    /// A queue sized for events no farther than `horizon` cycles apart.
    /// The bucket count is a power of two comfortably above the horizon;
    /// pushes beyond it grow the wheel instead of corrupting it.
    pub fn with_horizon(horizon: u64) -> Self {
        let n = (horizon.max(32) * 2).next_power_of_two();
        CalendarQueue {
            buckets: Self::alloc(n),
            live: vec![0; Self::words(n)],
            mask: n - 1,
            len: 0,
            floor: 0,
            ceil: 0,
        }
    }

    fn alloc(n: u64) -> Vec<Vec<Event>> {
        (0..n).map(|_| Vec::new()).collect()
    }

    /// Bitmap words covering `n` buckets (`n` is always a power of two
    /// `>= 64`, but round up defensively).
    fn words(n: u64) -> usize {
        (n as usize).div_ceil(64).max(1)
    }

    /// Buckets from the one at circular index `start` (inclusive) to the
    /// first live bucket. Requires `len > 0`.
    #[inline]
    fn live_dist(&self, start: usize) -> usize {
        let w = start >> 6;
        let first = self.live[w] >> (start & 63);
        if first != 0 {
            return first.trailing_zeros() as usize;
        }
        let mut dist = 64 - (start & 63);
        let mut i = w + 1;
        loop {
            if i == self.live.len() {
                i = 0;
            }
            let word = self.live[i];
            if word != 0 {
                return dist + word.trailing_zeros() as usize;
            }
            dist += 64;
            i += 1;
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The earliest queued timestamp. O(1): the floor is exact.
    pub fn peek(&self) -> Option<u64> {
        if self.len == 0 {
            None
        } else {
            Some(self.floor)
        }
    }

    /// Queue an event.
    // asd-lint: hot
    pub fn push(&mut self, at: u64, key: u64, tag: u8) {
        if self.len == 0 {
            self.floor = at;
            self.ceil = at;
        } else {
            let lo = self.floor.min(at);
            let hi = self.ceil.max(at);
            if hi - lo > self.mask {
                self.grow(hi - lo);
            }
            self.floor = lo;
            self.ceil = hi;
        }
        self.len += 1;
        let b = (at & self.mask) as usize;
        self.live[b >> 6] |= 1u64 << (b & 63);
        self.buckets[b].push((at, key, tag));
    }

    /// Rebuild with enough buckets for a live window of `window` cycles.
    // asd-lint: cold -- amortized: capacity doubles, so growth is O(log window) per run
    fn grow(&mut self, window: u64) {
        let n = (window + 1).next_power_of_two() * 2;
        let mut buckets = Self::alloc(n);
        let mut live = vec![0u64; Self::words(n)];
        for b in &mut self.buckets {
            for ev in b.drain(..) {
                let i = (ev.0 & (n - 1)) as usize;
                live[i >> 6] |= 1u64 << (i & 63);
                buckets[i].push(ev);
            }
        }
        self.buckets = buckets;
        self.live = live;
        self.mask = n - 1;
    }

    /// Remove every event with `at <= now`, appending them to `out` in
    /// ascending `(at, key, tag)` order, then re-establish the exact floor.
    ///
    /// The walk jumps between live buckets via the bitmap. Within one
    /// rotation a non-empty bucket holds exactly one timestamp (the
    /// window invariant), so visiting live buckets in circular index
    /// order from the floor visits live timestamps in ascending order —
    /// the same sequence the bucket-by-bucket probe produced.
    // asd-lint: hot
    pub fn drain_due(&mut self, now: u64, out: &mut Vec<Event>) {
        if self.len == 0 || self.floor > now {
            return;
        }
        // The floor is exact, so its bucket is live.
        let mut t = self.floor;
        loop {
            let b = (t & self.mask) as usize;
            let bucket = &mut self.buckets[b];
            debug_assert!(!bucket.is_empty(), "floor/jump landed on an empty bucket");
            debug_assert!(bucket.iter().all(|e| e.0 == t), "bucket mixes timestamps");
            self.len -= bucket.len();
            bucket.sort_unstable();
            out.append(bucket);
            self.live[b >> 6] &= !(1u64 << (b & 63));
            if self.len == 0 {
                return;
            }
            // Jump to the next live timestamp; past `now` it is the new
            // (exact) floor.
            t = t + 1 + self.live_dist(((t + 1) & self.mask) as usize) as u64;
            if t > now {
                self.floor = t;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Deterministic pseudo-random stream (no external crates, fixed seed).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q = CalendarQueue::with_horizon(256);
        assert!(q.is_empty());
        assert_eq!(q.peek(), None);
        let mut out = Vec::new();
        q.drain_due(1_000, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_event_round_trip() {
        let mut q = CalendarQueue::with_horizon(256);
        q.push(42, 7, 1);
        assert_eq!(q.peek(), Some(42));
        let mut out = Vec::new();
        q.drain_due(41, &mut out);
        assert!(out.is_empty(), "not due yet");
        q.drain_due(42, &mut out);
        assert_eq!(out, vec![(42, 7, 1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_cycle_ties_break_by_key_then_tag() {
        let mut q = CalendarQueue::with_horizon(64);
        q.push(5, 30, 1);
        q.push(5, 10, 2);
        q.push(5, 10, 0);
        q.push(5, 20, 0);
        let mut out = Vec::new();
        q.drain_due(5, &mut out);
        assert_eq!(out, vec![(5, 10, 0), (5, 10, 2), (5, 20, 0), (5, 30, 1)]);
    }

    #[test]
    fn matches_binary_heap_order_on_random_workload() {
        // Property check: interleaved pushes and drains produce exactly
        // the pop order of BinaryHeap<Reverse<(at, key, tag)>>.
        let mut rng = Lcg(0x5eed_cafe);
        let mut wheel = CalendarQueue::with_horizon(300);
        let mut heap: BinaryHeap<Reverse<(u64, u64, u8)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut wheel_out = Vec::new();
        for _ in 0..5_000 {
            for _ in 0..(rng.next() % 4) {
                let at = now + rng.next() % 290;
                let key = rng.next() % 8; // force same-cycle collisions
                let tag = (rng.next() % 3) as u8;
                wheel.push(at, key, tag);
                heap.push(Reverse((at, key, tag)));
            }
            now += rng.next() % 40;
            wheel_out.clear();
            wheel.drain_due(now, &mut wheel_out);
            let mut heap_out = Vec::new();
            while let Some(&Reverse(ev)) = heap.peek() {
                if ev.0 > now {
                    break;
                }
                heap.pop();
                heap_out.push(ev);
            }
            assert_eq!(wheel_out, heap_out, "divergence at cycle {now}");
            assert_eq!(wheel.len(), heap.len());
            assert_eq!(wheel.peek(), heap.peek().map(|&Reverse((at, _, _))| at));
        }
    }

    #[test]
    fn grows_past_configured_horizon() {
        let mut q = CalendarQueue::with_horizon(32);
        q.push(10, 1, 0);
        q.push(10_000, 2, 0); // far beyond the horizon: forces a grow
        q.push(500, 3, 0);
        assert_eq!(q.peek(), Some(10));
        let mut out = Vec::new();
        q.drain_due(20_000, &mut out);
        assert_eq!(out, vec![(10, 1, 0), (500, 3, 0), (10_000, 2, 0)]);
    }

    #[test]
    fn floor_tracks_across_refills() {
        let mut q = CalendarQueue::with_horizon(128);
        q.push(100, 1, 0);
        let mut out = Vec::new();
        q.drain_due(100, &mut out);
        assert!(q.is_empty());
        q.push(90, 2, 0); // earlier than the drained event: must still work
        assert_eq!(q.peek(), Some(90));
        out.clear();
        q.drain_due(95, &mut out);
        assert_eq!(out, vec![(90, 2, 0)]);
    }
}

//! Epoch bookkeeping: a new Stream Length Histogram is computed after every
//! `e` Read commands (§3.1).

/// Counts reads and signals epoch boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochTracker {
    epoch_reads: u64,
    reads_in_epoch: u64,
    epochs_completed: u64,
}

impl EpochTracker {
    /// Create a tracker with the given epoch length in reads.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_reads` is zero (validated configurations never pass
    /// zero; this is a programming error, not a runtime condition).
    pub fn new(epoch_reads: u64) -> Self {
        assert!(epoch_reads > 0, "epoch length must be nonzero");
        EpochTracker { epoch_reads, reads_in_epoch: 0, epochs_completed: 0 }
    }

    /// Account one read. Returns `true` exactly when this read completes an
    /// epoch (the caller should then flush the stream filter and rotate the
    /// likelihood tables).
    pub fn on_read(&mut self) -> bool {
        self.reads_in_epoch += 1;
        if self.reads_in_epoch >= self.epoch_reads {
            self.reads_in_epoch = 0;
            self.epochs_completed += 1;
            true
        } else {
            false
        }
    }

    /// Number of completed epochs.
    pub fn epochs_completed(&self) -> u64 {
        self.epochs_completed
    }

    /// Reads observed so far in the current (incomplete) epoch.
    pub fn reads_in_current_epoch(&self) -> u64 {
        self.reads_in_epoch
    }

    /// Configured epoch length.
    pub fn epoch_reads(&self) -> u64 {
        self.epoch_reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signals_exactly_on_boundary() {
        let mut t = EpochTracker::new(3);
        assert!(!t.on_read());
        assert!(!t.on_read());
        assert!(t.on_read());
        assert_eq!(t.epochs_completed(), 1);
        assert_eq!(t.reads_in_current_epoch(), 0);
    }

    #[test]
    fn repeated_epochs() {
        let mut t = EpochTracker::new(2);
        let boundaries: Vec<bool> = (0..6).map(|_| t.on_read()).collect();
        assert_eq!(boundaries, vec![false, true, false, true, false, true]);
        assert_eq!(t.epochs_completed(), 3);
    }

    #[test]
    fn epoch_of_one_fires_every_read() {
        let mut t = EpochTracker::new(1);
        assert!(t.on_read());
        assert!(t.on_read());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_epoch_panics() {
        let _ = EpochTracker::new(0);
    }
}

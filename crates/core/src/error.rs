use std::fmt;

/// Error returned when an [`AsdConfig`](crate::AsdConfig) or
/// [`StreamFilterConfig`](crate::StreamFilterConfig) is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A field that must be nonzero was zero.
    Zero {
        /// Name of the offending field.
        field: &'static str,
    },
    /// A field exceeded its allowed maximum.
    TooLarge {
        /// Name of the offending field.
        field: &'static str,
        /// The value supplied.
        value: u64,
        /// The maximum allowed.
        max: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero { field } => {
                write!(f, "configuration field `{field}` must be nonzero")
            }
            ConfigError::TooLarge { field, value, max } => {
                write!(
                    f,
                    "configuration field `{field}` is {value}, which exceeds the maximum {max}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_zero() {
        let e = ConfigError::Zero { field: "epoch_reads" };
        assert_eq!(e.to_string(), "configuration field `epoch_reads` must be nonzero");
    }

    #[test]
    fn display_too_large() {
        let e = ConfigError::TooLarge { field: "max_degree", value: 99, max: 16 };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("16"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ConfigError>();
    }
}

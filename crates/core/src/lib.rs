//! # Adaptive Stream Detection (ASD)
//!
//! A faithful, simulator-independent implementation of the prefetching
//! technique from *"Memory Prefetching Using Adaptive Stream Detection"*,
//! Ibrahim Hur and Calvin Lin, MICRO 2006.
//!
//! The paper's key idea: a stream prefetcher can exploit even *very short*
//! streams (down to two consecutive cache lines) if it knows, probabilistically,
//! when a stream is likely to continue. ASD captures the workload's spatial
//! locality in a **Stream Length Histogram** ([`Slh`]) computed once per
//! *epoch* (a fixed number of Read commands), and consults it on every read
//! to decide whether the next line(s) should be prefetched.
//!
//! ## Components
//!
//! * [`StreamFilter`] — a small table (8 slots in the paper) that tracks live
//!   read streams: last address, length, direction, and lifetime.
//! * [`LikelihoodTable`] — the `lht()` function of the paper: `lht(i)` is the
//!   number of reads belonging to streams of length `i` *or longer*. Two
//!   tables ([`LhtPair`]) implement the epoch double-buffering scheme
//!   (`LHTcurr` / `LHTnext`).
//! * [`Slh`] — the Stream Length Histogram derived from a likelihood table;
//!   bar `i` is the number of reads in streams of *exactly* length `i`.
//! * [`AsdDetector`] — ties the above together per the paper's §3.3/§3.4
//!   organization and answers, for every observed read, *which lines to
//!   prefetch* (possibly none) using inequalities (5) and (6).
//! * [`AdaptiveScheduler`] — the paper's §3.5 Adaptive Scheduling: selects
//!   among five prioritization policies for the Low Priority Queue based on
//!   the measured frequency of prefetch-induced conflicts.
//! * [`cost`] — analytic hardware cost model (bit counts) backing the paper's
//!   §5.1 hardware cost discussion.
//!
//! ## Quick example
//!
//! ```
//! use asd_core::{AsdConfig, AsdDetector};
//!
//! let mut det = AsdDetector::new(AsdConfig::default()).unwrap();
//! // Feed the detector cache-line addresses of DRAM read commands,
//! // each stamped with the (monotonic) cycle it was observed at.
//! let mut issued = Vec::new();
//! let mut now = 0u64;
//! for epoch in 0..2u64 {
//!     for base in 0..1000u64 {
//!         // Workload made of back-to-back streams of length 2.
//!         let line = 1_000_000 + epoch * 500_000 + base * 64;
//!         det.on_read(line, now, &mut issued);
//!         det.on_read(line + 1, now + 600, &mut issued);
//!         now += 1200;
//!     }
//! }
//! // After the first epoch the detector has learned that streams have
//! // length 2, so it prefetches the second line of each stream.
//! assert!(!issued.is_empty());
//! ```
//!
//! All state is explicit and deterministic; no global state, no interior
//! mutability, no allocation on the hot path beyond the caller-supplied
//! output buffer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calendar;
pub mod clock;
mod config;
pub mod cost;
mod detector;
mod epoch;
mod error;
mod lht;
pub mod rng;
mod scheduler;
mod slh;
mod stream_filter;

pub use calendar::CalendarQueue;
pub use clock::{Clocked, NextEvent};
pub use config::AsdConfig;
pub use detector::{AsdDetector, AsdStats, PrefetchCandidate};
pub use epoch::EpochTracker;
pub use error::ConfigError;
pub use lht::{LhtPair, LikelihoodTable};
pub use scheduler::{AdaptiveScheduler, LpqPolicy, QueueView, SchedulerStats};
pub use slh::Slh;
pub use stream_filter::{EvictedStream, StreamFilter, StreamFilterConfig, StreamObservation};

/// Maximum stream length tracked by the histogram machinery (`Lm` in the
/// paper). Reads belonging to streams of length 16 or more are attributed to
/// the final bin, exactly as in the paper's Figure 2.
pub const MAX_STREAM_LEN: usize = 16;

/// Direction of a detected read stream.
///
/// The paper tracks increasing (`Positive`) and decreasing (`Negative`)
/// streams separately, with one Stream Length Histogram per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Stream of consecutively *increasing* cache-line addresses.
    #[default]
    Positive,
    /// Stream of consecutively *decreasing* cache-line addresses.
    Negative,
}

impl Direction {
    /// Stable index (0 or 1) for direction-indexed tables.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Direction::Positive => 0,
            Direction::Negative => 1,
        }
    }

    /// The line address adjacent to `line` in this direction, if it exists.
    #[inline]
    pub fn step(self, line: u64) -> Option<u64> {
        match self {
            Direction::Positive => line.checked_add(1),
            Direction::Negative => line.checked_sub(1),
        }
    }

    /// The opposite direction.
    #[inline]
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::Positive => Direction::Negative,
            Direction::Negative => Direction::Positive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_index_is_stable() {
        assert_eq!(Direction::Positive.index(), 0);
        assert_eq!(Direction::Negative.index(), 1);
    }

    #[test]
    fn direction_step() {
        assert_eq!(Direction::Positive.step(10), Some(11));
        assert_eq!(Direction::Negative.step(10), Some(9));
        assert_eq!(Direction::Negative.step(0), None);
        assert_eq!(Direction::Positive.step(u64::MAX), None);
    }

    #[test]
    fn direction_opposite() {
        assert_eq!(Direction::Positive.opposite(), Direction::Negative);
        assert_eq!(Direction::Negative.opposite(), Direction::Positive);
    }

    #[test]
    fn default_direction_is_positive() {
        assert_eq!(Direction::default(), Direction::Positive);
    }
}

//! A small, dependency-free pseudo-random number generator.
//!
//! This is xoshiro256++ seeded through SplitMix64 — the exact algorithm
//! (and therefore the exact output stream) of `rand 0.8`'s `SmallRng` on
//! 64-bit targets, including the bounded-range rejection sampling and the
//! 53-bit float construction. The workspace builds offline with no
//! external crates, and the trace generator's output is part of the
//! experimental baseline (tests assert tuned speedup thresholds), so the
//! generator must keep producing byte-identical traces for a given seed.
//! Do not "improve" the sampling algorithms: any change shifts every
//! downstream figure.

/// xoshiro256++ PRNG (Blackman & Vigna), bit-compatible with `rand 0.8`'s
/// `SmallRng` on 64-bit platforms.
///
/// Deterministic, `Clone`, and explicit-state; suitable for reproducible
/// simulation inputs, not for cryptography.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seed the full 256-bit state from a single `u64` via SplitMix64.
    #[must_use]
    pub fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *word = z ^ (z >> 31);
        }
        Xoshiro256PlusPlus { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);

        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);

        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision
    /// (multiply-based construction).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        let scale = 1.0 / ((1u64 << 53) as f64);
        scale * ((self.next_u64() >> 11) as f64)
    }

    /// A uniform `u64` in `[lo, hi)` via widening-multiply rejection
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range_u64: lo >= hi");
        let range = hi.wrapping_sub(lo); // == (hi-1) - lo + 1, never 0 here
        if range == 0 {
            // lo..hi covers the full u64 domain only when hi wraps; with
            // lo < hi this cannot happen, but keep the uniform fallback to
            // mirror the reference algorithm exactly.
            return self.next_u64();
        }
        // Conservative zone approximation; `- 1` keeps the acceptance
        // comparison unbiased.
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let wide = u128::from(v) * u128::from(range);
            let hi_part = (wide >> 64) as u64;
            let lo_part = wide as u64;
            if lo_part <= zone {
                return lo.wrapping_add(hi_part);
            }
        }
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform `bool` with probability `p` of being `true` (consumes one
    /// `f64` draw; convenience for tests).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vectors() {
        // First ten outputs of the reference xoshiro256++ implementation
        // (Blackman & Vigna) for state [1, 2, 3, 4] — the same vectors the
        // `rand_xoshiro` crate checks against.
        let mut r = Xoshiro256PlusPlus { s: [1, 2, 3, 4] };
        let expected: [u64; 10] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
            14_011_001_112_246_962_877,
            12_406_186_145_184_390_807,
            15_849_039_046_786_891_736,
            10_450_023_813_501_588_000,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(r.next_u64(), e, "output {i}");
        }
    }

    #[test]
    fn splitmix_seeding_reference_vectors() {
        // SplitMix64 from seed 0 (the published reference sequence) is how
        // `rand 0.8`'s SmallRng expands a u64 seed into xoshiro state.
        let r = Xoshiro256PlusPlus::seed_from_u64(0);
        assert_eq!(
            r.s,
            [
                0xe220_a839_7b1d_cdaf,
                0x6e78_9e6a_a1b9_65f4,
                0x06c4_5d18_8009_454f,
                0xf88b_b8a8_724c_81ec,
            ]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256PlusPlus::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_mean_near_half() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
        for _ in 0..1000 {
            assert_eq!(r.gen_range_usize(3, 4), 3);
        }
    }

    #[test]
    fn range_roughly_uniform() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.gen_range_usize(0, 8)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let frac = f64::from(*c) / f64::from(n);
            assert!((frac - 0.125).abs() < 0.01, "bin {i}: {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "lo >= hi")]
    fn empty_range_panics() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(0);
        let _ = r.gen_range_u64(5, 5);
    }
}

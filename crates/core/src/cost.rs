//! Analytic hardware-cost model for the structures ASD adds to the memory
//! controller, backing the paper's §5.1 cost discussion (the full
//! configuration adds ~6.08% to the Power5+ memory controller and ~0.098%
//! to total chip area).

use crate::config::AsdConfig;
use crate::MAX_STREAM_LEN;

/// Bit-level inventory of the ASD hardware additions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareCost {
    /// Bits in the Stream Filter (per thread).
    pub stream_filter_bits: u64,
    /// Bits in the likelihood tables (per thread, both directions, both
    /// `LHTcurr` and `LHTnext`).
    pub lht_bits: u64,
    /// Bits of prefetch-buffer data storage (shared across threads).
    pub prefetch_buffer_data_bits: u64,
    /// Bits of prefetch-buffer tag/state storage.
    pub prefetch_buffer_tag_bits: u64,
    /// Bits in the Low Priority Queue entries.
    pub lpq_bits: u64,
    /// Number of hardware threads the per-thread structures are replicated
    /// for.
    pub threads: u64,
}

/// Parameters beyond [`AsdConfig`] needed to size the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostParams {
    /// Physical address bits.
    pub addr_bits: u32,
    /// Cache-line size in bytes (128 on the Power5+).
    pub line_bytes: u32,
    /// Prefetch Buffer capacity in lines (16 in the paper).
    pub prefetch_buffer_lines: u32,
    /// LPQ entries (3, same as the CAQ).
    pub lpq_entries: u32,
    /// Hardware threads sharing the memory controller (4 on the Power5+:
    /// 2 cores x 2 SMT threads).
    pub threads: u32,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            addr_bits: 48,
            line_bytes: 128,
            prefetch_buffer_lines: 16,
            lpq_entries: 3,
            threads: 4,
        }
    }
}

fn ceil_log2(x: u64) -> u32 {
    debug_assert!(x > 0);
    64 - (x - 1).leading_zeros()
}

/// Compute the bit inventory for a given ASD configuration.
pub fn hardware_cost(cfg: &AsdConfig, p: CostParams) -> HardwareCost {
    let line_offset_bits = ceil_log2(u64::from(p.line_bytes));
    let line_addr_bits = u64::from(p.addr_bits) - u64::from(line_offset_bits);

    // Stream Filter slot: last line address + length + direction + lifetime.
    let len_bits = u64::from(ceil_log2(MAX_STREAM_LEN as u64 * 16)); // counts past Lm before saturating
    let lifetime_bits = u64::from(ceil_log2(cfg.filter.initial_lifetime.max(2) * 16));
    let slot_bits = line_addr_bits + len_bits + 1 + lifetime_bits;
    let stream_filter_bits = slot_bits * cfg.filter.slots as u64;

    // LHT entry: the paper sizes each entry as a log2(E)-bit counter for a
    // maximum epoch length E; entries accumulate read counts, bounded by
    // the epoch length in reads.
    let entry_bits = u64::from(ceil_log2(cfg.epoch_reads.max(2)));
    let directions = if cfg.track_negative { 2 } else { 1 };
    let lht_bits = entry_bits * MAX_STREAM_LEN as u64 * 2 /* curr+next */ * directions;

    // Prefetch buffer: data + tag/valid/LRU per line.
    let pb_lines = u64::from(p.prefetch_buffer_lines);
    let prefetch_buffer_data_bits = pb_lines * u64::from(p.line_bytes) * 8;
    let prefetch_buffer_tag_bits =
        pb_lines * (line_addr_bits + 1 /* valid */ + 2/* LRU for 4-way */);

    // LPQ entry: line address + timestamp.
    let lpq_bits = u64::from(p.lpq_entries) * (line_addr_bits + 32);

    HardwareCost {
        stream_filter_bits,
        lht_bits,
        prefetch_buffer_data_bits,
        prefetch_buffer_tag_bits,
        lpq_bits,
        threads: u64::from(p.threads),
    }
}

impl HardwareCost {
    /// Total bits, counting per-thread replication of the Stream Filter and
    /// likelihood tables (§5.2: "we find it critical to replicate the
    /// locality identification hardware for each thread").
    pub fn total_bits(&self) -> u64 {
        (self.stream_filter_bits + self.lht_bits) * self.threads
            + self.prefetch_buffer_data_bits
            + self.prefetch_buffer_tag_bits
            + self.lpq_bits
    }

    /// Total cost in bytes (rounded up).
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }

    /// Ratio of this cost to the 64 KB-per-thread locality tables of the
    /// Spatial-Locality-Detection-style approaches the paper compares
    /// against (§5.2.1).
    pub fn fraction_of_64kb_tables(&self) -> f64 {
        let competitor_bits = 64.0 * 1024.0 * 8.0 * self.threads as f64;
        self.total_bits() as f64 / competitor_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AsdConfig;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(2000), 11);
        assert_eq!(ceil_log2(2048), 11);
        assert_eq!(ceil_log2(2049), 12);
    }

    #[test]
    fn paper_config_is_small() {
        let cost = hardware_cost(&AsdConfig::default(), CostParams::default());
        // The dominant term must be the 2KB prefetch buffer data array.
        assert!(cost.prefetch_buffer_data_bits == 16 * 128 * 8);
        // Total should be on the order of a few KB - far below one 64KB table.
        let bytes = cost.total_bytes();
        assert!(bytes < 8 * 1024, "total {bytes} bytes");
        assert!(cost.fraction_of_64kb_tables() < 0.05, "under 5% of competitor tables");
    }

    #[test]
    fn single_direction_halves_lht() {
        let both = hardware_cost(&AsdConfig::default(), CostParams::default());
        let one = hardware_cost(
            &AsdConfig { track_negative: false, ..AsdConfig::default() },
            CostParams::default(),
        );
        assert_eq!(one.lht_bits * 2, both.lht_bits);
    }

    #[test]
    fn bigger_filter_costs_more() {
        let small =
            hardware_cost(&AsdConfig::default().with_filter_slots(4), CostParams::default());
        let big = hardware_cost(&AsdConfig::default().with_filter_slots(64), CostParams::default());
        assert!(big.stream_filter_bits > small.stream_filter_bits * 10);
    }

    #[test]
    fn total_counts_thread_replication() {
        let p1 = CostParams { threads: 1, ..CostParams::default() };
        let p4 = CostParams { threads: 4, ..CostParams::default() };
        let c1 = hardware_cost(&AsdConfig::default(), p1);
        let c4 = hardware_cost(&AsdConfig::default(), p4);
        let per_thread = c1.stream_filter_bits + c1.lht_bits;
        assert_eq!(c4.total_bits() - c1.total_bits(), per_thread * 3);
    }
}

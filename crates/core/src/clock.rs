//! The simulation-kernel clocking contract.
//!
//! Every cycle-level component (core, memory controller, DRAM) implements
//! [`Clocked`]: the kernel calls [`Clocked::step`] at a cycle `now`, and
//! the component reports the next cycle at which stepping it again could
//! change state. The kernel advances time to the minimum such cycle across
//! all components — uniform idle-skip with no component-specific wiring in
//! the event loop.

/// When a clocked component next needs to be stepped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextEvent {
    /// Stepping before cycle `.0` is guaranteed to be a no-op; stepping at
    /// `.0` may change state. Implementations must return `At(t)` with
    /// `t > now` to guarantee forward progress.
    At(u64),
    /// The component has no pending work; it only needs stepping again
    /// after external input (e.g. a new command) arrives.
    Idle,
}

impl NextEvent {
    /// The earlier of two events (`Idle` is later than everything).
    #[must_use]
    pub fn min(self, other: NextEvent) -> NextEvent {
        match (self, other) {
            (NextEvent::Idle, e) | (e, NextEvent::Idle) => e,
            (NextEvent::At(a), NextEvent::At(b)) => NextEvent::At(a.min(b)),
        }
    }

    /// The event time, if any.
    #[must_use]
    pub fn at(self) -> Option<u64> {
        match self {
            NextEvent::At(t) => Some(t),
            NextEvent::Idle => None,
        }
    }

    /// Convert an optional wake-up time into an event.
    #[must_use]
    pub fn from_option(t: Option<u64>) -> NextEvent {
        t.map_or(NextEvent::Idle, NextEvent::At)
    }
}

impl From<Option<u64>> for NextEvent {
    fn from(t: Option<u64>) -> NextEvent {
        NextEvent::from_option(t)
    }
}

/// A component driven by the simulation clock.
///
/// The contract: `step(now)` performs all state transitions due at cycle
/// `now` and returns when the component next needs stepping. Returning
/// `At(t)` promises that stepping at any cycle in `(now, t)` would not
/// change observable state; returning a conservative (earlier) `t` is
/// always safe, returning a too-late `t` is a simulation bug.
pub trait Clocked {
    /// Advance the component at cycle `now`.
    fn step(&mut self, now: u64) -> NextEvent;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_prefers_earlier() {
        assert_eq!(NextEvent::At(5).min(NextEvent::At(3)), NextEvent::At(3));
        assert_eq!(NextEvent::At(5).min(NextEvent::Idle), NextEvent::At(5));
        assert_eq!(NextEvent::Idle.min(NextEvent::At(9)), NextEvent::At(9));
        assert_eq!(NextEvent::Idle.min(NextEvent::Idle), NextEvent::Idle);
    }

    #[test]
    fn conversions() {
        assert_eq!(NextEvent::from_option(Some(4)), NextEvent::At(4));
        assert_eq!(NextEvent::from_option(None), NextEvent::Idle);
        assert_eq!(NextEvent::At(4).at(), Some(4));
        assert_eq!(NextEvent::Idle.at(), None);
        assert_eq!(NextEvent::from(Some(2)), NextEvent::At(2));
    }

    struct Counter {
        n: u64,
    }

    impl Clocked for Counter {
        fn step(&mut self, now: u64) -> NextEvent {
            self.n += 1;
            if self.n >= 3 {
                NextEvent::Idle
            } else {
                NextEvent::At(now + 10)
            }
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut c = Counter { n: 0 };
        let obj: &mut dyn Clocked = &mut c;
        assert_eq!(obj.step(0), NextEvent::At(10));
        assert_eq!(obj.step(10), NextEvent::At(20));
        assert_eq!(obj.step(20), NextEvent::Idle);
    }
}

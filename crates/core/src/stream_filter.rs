//! The Stream Filter (§3.3): a small table tracking live read streams.

use crate::error::ConfigError;
use crate::Direction;

/// Geometry and lifetime parameters of a [`StreamFilter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamFilterConfig {
    /// Number of stream slots (8 per thread in the paper's evaluated
    /// configuration; Figure 15 sweeps 4/8/16/64).
    pub slots: usize,
    /// Initial lifetime, in cycles, granted to a newly allocated stream.
    pub initial_lifetime: u64,
    /// Lifetime, in cycles, a stream's expiry is *refreshed to* each time
    /// it advances (the paper's per-cycle-decremented counter, reset on
    /// every extension).
    pub extension_lifetime: u64,
}

impl Default for StreamFilterConfig {
    fn default() -> Self {
        StreamFilterConfig {
            slots: 8,
            // The paper says "a predetermined value" without giving numbers.
            // These defaults keep streams alive across realistic same-stream
            // DRAM-read inter-arrival gaps (a few hundred CPU cycles when
            // several streams interleave) while letting completed streams
            // vacate their slot quickly — an 8-slot filter fills with
            // zombies otherwise and every subsequent read goes untracked.
            initial_lifetime: 1500,
            extension_lifetime: 1500,
        }
    }
}

impl StreamFilterConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Zero`] if any field is zero.
    pub fn validate(self) -> Result<Self, ConfigError> {
        if self.slots == 0 {
            return Err(ConfigError::Zero { field: "filter.slots" });
        }
        if self.initial_lifetime == 0 {
            return Err(ConfigError::Zero { field: "filter.initial_lifetime" });
        }
        if self.extension_lifetime == 0 {
            return Err(ConfigError::Zero { field: "filter.extension_lifetime" });
        }
        Ok(self)
    }
}

/// One tracked stream: the paper's four per-slot fields. Lifetime is stored
/// as an absolute expiry cycle, which is arithmetically identical to the
/// paper's per-cycle decremented counter but O(1) to maintain in software.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    last_line: u64,
    len: u32,
    dir: Direction,
    expires_at: u64,
}

/// What the filter concluded about one observed read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamObservation {
    /// Detected stream length *including* this read (`k` in the paper's
    /// prefetch inequality). 1 for a read that starts a stream.
    pub stream_len: u32,
    /// Direction of the stream this read belongs to.
    pub direction: Direction,
    /// False when the read could not be tracked because every slot was
    /// occupied; the paper then updates the SLH as if a stream of length 1
    /// had been detected, and generates no prefetch.
    pub tracked: bool,
}

/// A stream evicted from the filter, to be reported to the likelihood
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedStream {
    /// Final observed length of the stream.
    pub len: u32,
    /// Direction the stream was moving in.
    pub direction: Direction,
}

/// The Stream Filter of §3.3: one slot per live stream, with last address,
/// length, direction, and lifetime. Streams advance on adjacent-line reads,
/// expire when their lifetime runs out, and are flushed wholesale at epoch
/// boundaries.
#[derive(Debug, Clone)]
pub struct StreamFilter {
    slots: Vec<Option<Slot>>,
    /// Per-slot next line that would *extend* the stream
    /// (`dir.step(last_line)`), [`NO_MATCH`] for vacant slots and streams
    /// at the address-space edge. A dense stripe so the per-read match
    /// scan is a plain equality sweep instead of an `Option` + direction
    /// branch per slot; `slots` stays authoritative and every match is
    /// re-verified against it.
    expects: Vec<u64>,
    /// Per-slot line that would *flip* a length-1 positive stream negative
    /// (`last_line - 1`); [`NO_MATCH`] whenever the slot is not eligible.
    flips: Vec<u64>,
    cfg: StreamFilterConfig,
    /// Lower bound on the earliest `expires_at` of any live slot
    /// (`u64::MAX` when none): lets [`StreamFilter::collect_expired`] — run
    /// before every read — skip its slot scan while nothing can possibly
    /// have expired. Extensions can leave it stale-low (the slot's expiry
    /// moved up), which only costs a scan that finds nothing and
    /// re-tightens the bound.
    min_expiry: u64,
}

/// Stripe sentinel for "this slot cannot match any read". A real read of
/// this line is re-verified against `slots`, so a collision costs one
/// branch, never a wrong answer.
const NO_MATCH: u64 = u64::MAX;

impl StreamFilter {
    /// Create a filter with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(cfg: StreamFilterConfig) -> Result<Self, ConfigError> {
        let cfg = cfg.validate()?;
        Ok(StreamFilter {
            slots: vec![None; cfg.slots],
            expects: vec![NO_MATCH; cfg.slots],
            flips: vec![NO_MATCH; cfg.slots],
            cfg,
            min_expiry: u64::MAX,
        })
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.cfg.slots
    }

    /// Number of currently tracked streams.
    pub fn live_streams(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Evict every stream whose lifetime has expired as of cycle `now`,
    /// appending them to `evicted`. The caller reports each eviction to the
    /// likelihood tables.
    // asd-lint: hot
    pub fn collect_expired(&mut self, now: u64, evicted: &mut Vec<EvictedStream>) {
        if now < self.min_expiry {
            return;
        }
        let mut min = u64::MAX;
        for i in 0..self.slots.len() {
            if let Some(s) = self.slots[i] {
                if s.expires_at <= now {
                    evicted.push(EvictedStream { len: s.len, direction: s.dir });
                    self.slots[i] = None;
                    self.expects[i] = NO_MATCH;
                    self.flips[i] = NO_MATCH;
                } else {
                    min = min.min(s.expires_at);
                }
            }
        }
        self.min_expiry = min;
    }

    /// Observe a read of cache line `line` at cycle `now`.
    ///
    /// Follows the slot rules of §3.3:
    /// * a read extending a tracked stream advances that slot (length +1,
    ///   last address updated, lifetime extended);
    /// * a read adjacent *below* a length-1 stream flips that stream's
    ///   direction to negative and extends it;
    /// * an unmatched read allocates a vacant slot (length 1, positive); if
    ///   no slot is vacant the read goes untracked (`tracked == false`) and
    ///   the caller must account a length-1 stream directly.
    // asd-lint: hot
    pub fn observe_read(&mut self, line: u64, now: u64) -> StreamObservation {
        // 1. Try to extend an existing stream. The scan walks the two
        // dense stripes (two compares per slot); slot order — extend
        // checked before flip at each index — matches the original
        // per-slot walk exactly. Matches re-verify against the
        // authoritative slot, so a stray [`NO_MATCH`]-valued read cannot
        // corrupt anything.
        for i in 0..self.slots.len() {
            if self.expects[i] == line {
                if let Some(slot) = self.slots[i].as_mut() {
                    slot.len += 1;
                    slot.last_line = line;
                    slot.expires_at = now + self.cfg.extension_lifetime;
                    self.min_expiry = self.min_expiry.min(slot.expires_at);
                    let (stream_len, direction) = (slot.len, slot.dir);
                    self.expects[i] = direction.step(line).unwrap_or(NO_MATCH);
                    self.flips[i] = NO_MATCH;
                    return StreamObservation { stream_len, direction, tracked: true };
                }
            }
            // Direction flip: a length-1 "stream" followed by the line just
            // below it becomes a negative stream.
            if self.flips[i] == line {
                if let Some(slot) = self.slots[i].as_mut() {
                    if slot.len == 1 && slot.dir == Direction::Positive {
                        slot.len = 2;
                        slot.last_line = line;
                        slot.dir = Direction::Negative;
                        slot.expires_at = now + self.cfg.extension_lifetime;
                        self.min_expiry = self.min_expiry.min(slot.expires_at);
                        self.expects[i] = Direction::Negative.step(line).unwrap_or(NO_MATCH);
                        self.flips[i] = NO_MATCH;
                        return StreamObservation {
                            stream_len: 2,
                            direction: Direction::Negative,
                            tracked: true,
                        };
                    }
                }
            }
        }
        // 2. Allocate a vacant slot.
        if let Some(i) = self.slots.iter().position(|s| s.is_none()) {
            let expires_at = now + self.cfg.initial_lifetime;
            self.slots[i] =
                Some(Slot { last_line: line, len: 1, dir: Direction::Positive, expires_at });
            self.expects[i] = Direction::Positive.step(line).unwrap_or(NO_MATCH);
            self.flips[i] = Direction::Negative.step(line).unwrap_or(NO_MATCH);
            self.min_expiry = self.min_expiry.min(expires_at);
            return StreamObservation {
                stream_len: 1,
                direction: Direction::Positive,
                tracked: true,
            };
        }
        // 3. Filter full: untracked; SLH treats it as a length-1 stream.
        StreamObservation { stream_len: 1, direction: Direction::Positive, tracked: false }
    }

    /// Evict *all* streams (the epoch-boundary flush), appending them to
    /// `evicted`.
    pub fn flush(&mut self, evicted: &mut Vec<EvictedStream>) {
        for i in 0..self.slots.len() {
            if let Some(s) = self.slots[i].take() {
                evicted.push(EvictedStream { len: s.len, direction: s.dir });
            }
            self.expects[i] = NO_MATCH;
            self.flips[i] = NO_MATCH;
        }
        self.min_expiry = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(slots: usize) -> StreamFilter {
        StreamFilter::new(StreamFilterConfig { slots, ..StreamFilterConfig::default() }).unwrap()
    }

    #[test]
    fn zero_slots_rejected() {
        let cfg = StreamFilterConfig { slots: 0, ..StreamFilterConfig::default() };
        assert!(StreamFilter::new(cfg).is_err());
    }

    #[test]
    fn new_read_allocates_length_one_stream() {
        let mut f = filter(2);
        let obs = f.observe_read(100, 0);
        assert_eq!(
            obs,
            StreamObservation { stream_len: 1, direction: Direction::Positive, tracked: true }
        );
        assert_eq!(f.live_streams(), 1);
    }

    #[test]
    fn ascending_reads_extend_stream() {
        let mut f = filter(2);
        f.observe_read(100, 0);
        let obs = f.observe_read(101, 1);
        assert_eq!(obs.stream_len, 2);
        assert_eq!(obs.direction, Direction::Positive);
        assert_eq!(f.live_streams(), 1, "extension must not allocate a new slot");
        let obs = f.observe_read(102, 2);
        assert_eq!(obs.stream_len, 3);
    }

    #[test]
    fn descending_read_flips_new_stream_negative() {
        let mut f = filter(2);
        f.observe_read(100, 0);
        let obs = f.observe_read(99, 1);
        assert_eq!(obs.stream_len, 2);
        assert_eq!(obs.direction, Direction::Negative);
        let obs = f.observe_read(98, 2);
        assert_eq!(obs.stream_len, 3);
        assert_eq!(obs.direction, Direction::Negative);
    }

    #[test]
    fn established_positive_stream_does_not_flip() {
        let mut f = filter(2);
        f.observe_read(100, 0);
        f.observe_read(101, 1);
        // 99 is not adjacent to 101 in either direction of that stream.
        let obs = f.observe_read(99, 2);
        assert_eq!(obs.stream_len, 1, "unrelated read starts a new stream");
        assert_eq!(f.live_streams(), 2);
    }

    #[test]
    fn full_filter_reports_untracked() {
        let mut f = filter(1);
        f.observe_read(100, 0);
        let obs = f.observe_read(500, 0);
        assert!(!obs.tracked);
        assert_eq!(obs.stream_len, 1);
        assert_eq!(f.live_streams(), 1);
    }

    #[test]
    fn interleaved_streams_tracked_independently() {
        let mut f = filter(4);
        f.observe_read(100, 0);
        f.observe_read(2000, 0);
        let a = f.observe_read(101, 1);
        let b = f.observe_read(2001, 1);
        assert_eq!(a.stream_len, 2);
        assert_eq!(b.stream_len, 2);
        assert_eq!(f.live_streams(), 2);
    }

    #[test]
    fn lifetime_expiry_evicts_with_final_length() {
        let mut f = StreamFilter::new(StreamFilterConfig {
            slots: 2,
            initial_lifetime: 10,
            extension_lifetime: 10,
        })
        .unwrap();
        f.observe_read(100, 0);
        f.observe_read(101, 1); // expiry refreshed to 1+10 = 11
        let mut ev = Vec::new();
        f.collect_expired(10, &mut ev);
        assert!(ev.is_empty());
        f.collect_expired(11, &mut ev);
        assert_eq!(ev, vec![EvictedStream { len: 2, direction: Direction::Positive }]);
        assert_eq!(f.live_streams(), 0);
    }

    #[test]
    fn flush_evicts_everything() {
        let mut f = filter(4);
        f.observe_read(1, 0);
        f.observe_read(100, 0);
        f.observe_read(101, 0);
        let mut ev = Vec::new();
        f.flush(&mut ev);
        assert_eq!(f.live_streams(), 0);
        let mut lens: Vec<u32> = ev.iter().map(|e| e.len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![1, 2]);
    }

    #[test]
    fn expired_slot_is_reusable() {
        let mut f = StreamFilter::new(StreamFilterConfig {
            slots: 1,
            initial_lifetime: 5,
            extension_lifetime: 5,
        })
        .unwrap();
        f.observe_read(100, 0);
        let mut ev = Vec::new();
        f.collect_expired(100, &mut ev);
        assert_eq!(ev.len(), 1);
        let obs = f.observe_read(700, 100);
        assert!(obs.tracked);
    }

    #[test]
    fn line_zero_negative_edge() {
        let mut f = filter(2);
        f.observe_read(0, 0);
        // There is no line below 0; the read of line 1 extends positively.
        let obs = f.observe_read(1, 1);
        assert_eq!(obs.direction, Direction::Positive);
        assert_eq!(obs.stream_len, 2);
    }
}

//! Stream Length Histograms (§3.1 of the paper).

use crate::MAX_STREAM_LEN;
use std::fmt;
use std::ops::AddAssign;

/// A Stream Length Histogram: bar `i` holds the number of Read commands that
/// were part of a stream of exactly length `i`, with the final bar
/// (`i = Lm = 16`) collecting reads from streams of length 16 or more —
/// exactly the histogram of the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Slh {
    bars: [u64; MAX_STREAM_LEN],
}

impl Slh {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a histogram directly from per-length read counts
    /// (`bars[i-1]` = reads in streams of exactly length `i`).
    pub fn from_read_counts(bars: [u64; MAX_STREAM_LEN]) -> Self {
        Slh { bars }
    }

    /// Build a histogram from a list of observed stream lengths. Each stream
    /// of length `L` contributes `L` reads to bar `min(L, 16)`.
    pub fn from_stream_lengths<I: IntoIterator<Item = u32>>(lengths: I) -> Self {
        let mut slh = Slh::new();
        for len in lengths {
            slh.record_stream(len);
        }
        slh
    }

    /// Account for one completed stream of length `len` (ignored if zero).
    pub fn record_stream(&mut self, len: u32) {
        if len == 0 {
            return;
        }
        let bin = (len as usize).min(MAX_STREAM_LEN);
        self.bars[bin - 1] += u64::from(len);
    }

    /// Reads attributed to streams of exactly length `i`
    /// (length `>= 16` for `i == 16`). Returns 0 for `i` outside `1..=16`.
    #[inline]
    pub fn reads_at(&self, i: usize) -> u64 {
        if (1..=MAX_STREAM_LEN).contains(&i) {
            self.bars[i - 1]
        } else {
            0
        }
    }

    /// Total reads across all bars.
    pub fn total_reads(&self) -> u64 {
        self.bars.iter().sum()
    }

    /// Bar height as a fraction of all reads (the paper's percentages).
    /// Returns 0.0 if the histogram is empty.
    pub fn fraction_at(&self, i: usize) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            0.0
        } else {
            self.reads_at(i) as f64 / total as f64
        }
    }

    /// Fraction of reads in streams with length in `lo..=hi`.
    pub fn fraction_between(&self, lo: usize, hi: usize) -> f64 {
        let total = self.total_reads();
        if total == 0 || hi < lo {
            return 0.0;
        }
        let mass: u64 = (lo.max(1)..=hi.min(MAX_STREAM_LEN)).map(|i| self.reads_at(i)).sum();
        mass as f64 / total as f64
    }

    /// All bars as fractions, index 0 = length 1.
    pub fn fractions(&self) -> [f64; MAX_STREAM_LEN] {
        let mut out = [0.0; MAX_STREAM_LEN];
        for (idx, o) in out.iter_mut().enumerate() {
            *o = self.fraction_at(idx + 1);
        }
        out
    }

    /// Raw bars, index 0 = length 1.
    pub fn bars(&self) -> &[u64; MAX_STREAM_LEN] {
        &self.bars
    }

    /// True if no reads have been recorded.
    pub fn is_empty(&self) -> bool {
        self.bars.iter().all(|&b| b == 0)
    }

    /// Sum of absolute differences between the two histograms' bar
    /// *fractions*, in `[0, 2]`. Used to quantify how closely the Stream
    /// Filter's finite-size approximation tracks the true histogram
    /// (paper Figure 16).
    pub fn l1_distance(&self, other: &Slh) -> f64 {
        let a = self.fractions();
        let b = other.fractions();
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
    }

    /// Render an ASCII bar chart of the histogram, scaled to `width` columns
    /// for the tallest bar. Useful for examples and reports.
    pub fn ascii_chart(&self, width: usize) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let max = self.bars.iter().copied().max().unwrap_or(0).max(1);
        for i in 1..=MAX_STREAM_LEN {
            let n = self.reads_at(i);
            let cols = ((n as u128 * width as u128) / max as u128) as usize;
            let label = if i == MAX_STREAM_LEN { format!("{i}+") } else { i.to_string() };
            let _ = writeln!(
                out,
                "{label:>3} | {:<width$} {:5.1}%",
                "#".repeat(cols),
                self.fraction_at(i) * 100.0
            );
        }
        out
    }
}

impl AddAssign<&Slh> for Slh {
    /// Merge another histogram into this one (e.g. combining the positive-
    /// and negative-direction histograms, or accumulating across epochs).
    fn add_assign(&mut self, rhs: &Slh) {
        for (a, b) in self.bars.iter_mut().zip(rhs.bars.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for Slh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SLH[")?;
        for i in 1..=MAX_STREAM_LEN {
            if i > 1 {
                write!(f, " ")?;
            }
            write!(f, "{:.1}", self.fraction_at(i) * 100.0)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let s = Slh::new();
        assert!(s.is_empty());
        assert_eq!(s.total_reads(), 0);
        assert_eq!(s.fraction_at(1), 0.0);
    }

    #[test]
    fn record_attributes_reads_not_streams() {
        let mut s = Slh::new();
        s.record_stream(3);
        assert_eq!(s.reads_at(3), 3, "a length-3 stream holds 3 reads");
        assert_eq!(s.total_reads(), 3);
    }

    #[test]
    fn overflow_bin_collects_long_streams() {
        let s = Slh::from_stream_lengths([17, 40, 16]);
        assert_eq!(s.reads_at(MAX_STREAM_LEN), 17 + 40 + 16);
    }

    #[test]
    fn out_of_range_queries_are_zero() {
        let s = Slh::from_stream_lengths([2]);
        assert_eq!(s.reads_at(0), 0);
        assert_eq!(s.reads_at(17), 0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let s = Slh::from_stream_lengths([1, 2, 3, 4, 5, 30]);
        let sum: f64 = s.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((s.fraction_between(1, MAX_STREAM_LEN) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_between_window() {
        let s = Slh::from_stream_lengths([1, 1, 2]);
        // 2 reads at length 1, 2 reads at length 2.
        assert!((s.fraction_between(2, 5) - 0.5).abs() < 1e-12);
        assert_eq!(s.fraction_between(5, 2), 0.0);
    }

    #[test]
    fn l1_distance_identical_is_zero() {
        let s = Slh::from_stream_lengths([1, 2, 2, 9]);
        assert_eq!(s.l1_distance(&s), 0.0);
    }

    #[test]
    fn l1_distance_disjoint_is_two() {
        let a = Slh::from_stream_lengths([1, 1]);
        let b = Slh::from_stream_lengths([5]);
        assert!((a.l1_distance(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = Slh::from_stream_lengths([1]);
        let b = Slh::from_stream_lengths([2]);
        a += &b;
        assert_eq!(a.reads_at(1), 1);
        assert_eq!(a.reads_at(2), 2);
    }

    #[test]
    fn ascii_chart_has_all_rows() {
        let s = Slh::from_stream_lengths([1, 2, 16]);
        let chart = s.ascii_chart(40);
        assert_eq!(chart.lines().count(), MAX_STREAM_LEN);
        assert!(chart.contains("16+"));
    }

    #[test]
    fn display_is_compact() {
        let s = Slh::from_stream_lengths([2, 2]);
        let txt = s.to_string();
        assert!(txt.starts_with("SLH["));
        assert!(txt.ends_with(']'));
    }
}

//! Property-based tests for the ASD core data structures, driven by
//! deterministic seeded case generation (the workspace builds offline, so
//! no external property-testing framework is used).

use asd_core::rng::Xoshiro256PlusPlus as Rng;
use asd_core::{
    AdaptiveScheduler, AsdConfig, AsdDetector, Direction, LikelihoodTable, LpqPolicy, QueueView,
    Slh, StreamFilter, StreamFilterConfig, MAX_STREAM_LEN,
};

const CASES: u64 = 128;

fn case_rng(test: u64, case: u64) -> Rng {
    Rng::seed_from_u64(0xA5D0_0000 + test * 0x1_0000 + case)
}

/// Mirror of the old `stream_lengths()` strategy: up to 200 lengths in 1..64.
fn stream_lengths(rng: &mut Rng) -> Vec<u32> {
    let n = rng.gen_range_usize(0, 200);
    (0..n).map(|_| rng.gen_range_u64(1, 64) as u32).collect()
}

/// lht(i) is non-increasing in i while recording. (Draining — the paper's
/// LHTcurr decrement — can transiently break monotonicity when the drained
/// stream mix differs from the recorded one; the decision logic is
/// saturating, so we only require that queries stay well-defined and never
/// underflow.)
#[test]
fn lht_monotone_under_record() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let records = stream_lengths(&mut rng);
        let drains = stream_lengths(&mut rng);
        let mut t = LikelihoodTable::new();
        for len in records {
            t.record_stream(len);
            assert!(t.is_monotone());
        }
        let total = t.total_reads();
        for len in drains {
            t.drain_stream(len);
            for k in 0..=MAX_STREAM_LEN + 1 {
                assert!(t.lht(k) <= total, "never exceeds recorded mass");
                let _ = t.should_prefetch(k);
                let _ = t.prefetch_degree(k, 4);
            }
        }
    }
}

/// The SLH derived from a likelihood table partitions exactly the reads
/// that were recorded.
#[test]
fn slh_partitions_reads() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let records = stream_lengths(&mut rng);
        let mut t = LikelihoodTable::new();
        let mut expected = 0u64;
        for &len in &records {
            t.record_stream(len);
            expected += u64::from(len);
        }
        assert_eq!(t.slh().total_reads(), expected);
        assert_eq!(t.total_reads(), expected);
    }
}

/// The prefetch decision (inequality 5) always agrees with the raw
/// probability comparison P(k,k) < P(k+1, Lm).
#[test]
fn decision_matches_probabilities() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let records = stream_lengths(&mut rng);
        let k = rng.gen_range_usize(1, MAX_STREAM_LEN);
        let mut t = LikelihoodTable::new();
        for len in records {
            t.record_stream(len);
        }
        let p_stop = t.probability(k, k);
        let p_go = t.probability(k + 1, MAX_STREAM_LEN);
        if t.total_reads() > 0 {
            assert_eq!(t.should_prefetch(k), p_go > p_stop, "k={k} stop={p_stop} go={p_go}");
        } else {
            assert!(!t.should_prefetch(k));
        }
    }
}

/// prefetch_degree is a prefix: if degree d is granted, every smaller
/// degree would also satisfy inequality (6).
#[test]
fn degree_is_prefix_closed() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let records = stream_lengths(&mut rng);
        let k = rng.gen_range_usize(1, MAX_STREAM_LEN);
        let max_d = rng.gen_range_usize(1, 8);
        let mut t = LikelihoodTable::new();
        for len in records {
            t.record_stream(len);
        }
        let d = t.prefetch_degree(k, max_d);
        assert!(d <= max_d);
        for e in 1..=d {
            assert!(t.lht(k + e) * 2 > t.lht(k), "e={e} within granted degree {d}");
        }
    }
}

/// An SLH built from stream lengths matches the one derived via a
/// likelihood table fed the same streams.
#[test]
fn slh_constructions_agree() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let records = stream_lengths(&mut rng);
        let direct = Slh::from_stream_lengths(records.iter().copied());
        let mut t = LikelihoodTable::new();
        for &len in &records {
            t.record_stream(len);
        }
        assert_eq!(direct, t.slh());
    }
}

/// The stream filter never exceeds its slot capacity and reports every
/// read as belonging to a stream of length >= 1.
#[test]
fn filter_capacity_respected() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let slots = rng.gen_range_usize(1, 16);
        let n = rng.gen_range_usize(1, 300);
        let lines: Vec<u64> = (0..n).map(|_| rng.gen_range_u64(0, 2000)).collect();
        let mut f = StreamFilter::new(StreamFilterConfig { slots, ..Default::default() }).unwrap();
        for (i, &line) in lines.iter().enumerate() {
            let obs = f.observe_read(line, i as u64 * 50);
            assert!(obs.stream_len >= 1);
            assert!(f.live_streams() <= slots);
        }
    }
}

/// Conservation: total stream length evicted (plus untracked singles)
/// accounts for every read fed to a detector, as observed through the
/// epoch histograms.
#[test]
fn detector_conserves_reads() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let n = rng.gen_range_usize(1, 400);
        let lines: Vec<u64> = (0..n).map(|_| rng.gen_range_u64(0, 500)).collect();
        let epoch = rng.gen_range_u64(16, 128);
        let cfg = AsdConfig { epoch_reads: epoch, ..AsdConfig::default() };
        let mut det = AsdDetector::new(cfg).unwrap();
        let mut out = Vec::new();
        let mut accumulated = Slh::new();
        for (i, &line) in lines.iter().enumerate() {
            det.on_read(line, i as u64 * 700, &mut out);
            if det.stats().epochs > accumulated_epochs(&accumulated, epoch) {
                accumulated += det.last_epoch_slh();
            }
        }
        // Completed-epoch histograms hold exactly epoch*epochs reads.
        assert_eq!(accumulated.total_reads(), det.stats().epochs * epoch);
        // Pending histogram + live filter streams cover the remainder.
        let tail = det.pending_slh().total_reads() + live_filter_reads(&det);
        let total = accumulated.total_reads() + tail;
        assert_eq!(total, lines.len() as u64);
    }
}

/// The adaptive scheduler's policy always stays within the five paper
/// policies and reacts monotonically to conflict trends.
#[test]
fn scheduler_policy_bounded() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let rounds = rng.gen_range_usize(0, 50);
        let mut s = AdaptiveScheduler::new();
        for _ in 0..rounds {
            let n = rng.gen_range_u64(0, 20);
            for _ in 0..n {
                s.record_conflict();
            }
            let before = s.policy().number();
            s.on_epoch_end();
            let after = s.policy().number();
            assert!((1..=5).contains(&after));
            assert!((after as i64 - before as i64).abs() <= 1, "moves one step at a time");
        }
    }
}

/// The policies are cumulative relaxations: in any queue state, a policy
/// that allows issue implies every less conservative policy also allows it.
#[test]
fn policy_ordering() {
    for case in 0..CASES * 4 {
        let mut rng = case_rng(9, case);
        let caq_len = rng.gen_range_usize(0, 4);
        let reorder_len = rng.gen_range_usize(0, 8);
        let reorder_issuable = rng.gen_range_usize(0, 8);
        let lpq_len = rng.gen_range_usize(0, 4);
        let lpq_ts = rng.gen_range_u64(0, 10);
        let caq_ts = rng.gen_range_u64(0, 10);
        let v = QueueView {
            caq_len,
            lpq_len,
            lpq_capacity: 3,
            reorder_len: reorder_len.max(reorder_issuable),
            reorder_issuable,
            lpq_head_ts: if lpq_len > 0 { Some(lpq_ts) } else { None },
            caq_head_ts: if caq_len > 0 { Some(caq_ts) } else { None },
        };
        for pair in LpqPolicy::ALL.windows(2) {
            assert!(
                !pair[0].allows(v) || pair[1].allows(v),
                "{:?} allows but {:?} does not",
                pair[0],
                pair[1]
            );
        }
    }
}

/// Directions step symmetrically.
#[test]
fn direction_step_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let line = rng.gen_range_u64(1, u64::MAX - 1);
        for dir in [Direction::Positive, Direction::Negative] {
            let next = dir.step(line).unwrap();
            assert_eq!(dir.opposite().step(next), Some(line));
        }
    }
}

fn accumulated_epochs(acc: &Slh, epoch: u64) -> u64 {
    acc.total_reads() / epoch
}

fn live_filter_reads(det: &AsdDetector) -> u64 {
    // Reads currently held in live filter streams are not yet in any
    // histogram; infer them from the totals.
    let seen = det.stats().reads;
    let in_epochs = det.stats().epochs * det.config().epoch_reads;
    let pending = det.pending_slh().total_reads();
    seen - in_epochs - pending
}

//! Property-based tests for the ASD core data structures.

use asd_core::{
    AdaptiveScheduler, AsdConfig, AsdDetector, Direction, LikelihoodTable, LpqPolicy, QueueView,
    Slh, StreamFilter, StreamFilterConfig, MAX_STREAM_LEN,
};
use proptest::prelude::*;

fn stream_lengths() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(1u32..64, 0..200)
}

proptest! {
    /// lht(i) is non-increasing in i while recording. (Draining — the
    /// paper's LHTcurr decrement — can transiently break monotonicity when
    /// the drained stream mix differs from the recorded one; the decision
    /// logic is saturating, so we only require that queries stay
    /// well-defined and never underflow.)
    #[test]
    fn lht_monotone_under_record(
        records in stream_lengths(),
        drains in stream_lengths(),
    ) {
        let mut t = LikelihoodTable::new();
        for len in records {
            t.record_stream(len);
            prop_assert!(t.is_monotone());
        }
        let total = t.total_reads();
        for len in drains {
            t.drain_stream(len);
            for k in 0..=MAX_STREAM_LEN + 1 {
                prop_assert!(t.lht(k) <= total, "never exceeds recorded mass");
                let _ = t.should_prefetch(k);
                let _ = t.prefetch_degree(k, 4);
            }
        }
    }

    /// The SLH derived from a likelihood table partitions exactly the reads
    /// that were recorded.
    #[test]
    fn slh_partitions_reads(records in stream_lengths()) {
        let mut t = LikelihoodTable::new();
        let mut expected = 0u64;
        for &len in &records {
            t.record_stream(len);
            expected += u64::from(len);
        }
        prop_assert_eq!(t.slh().total_reads(), expected);
        prop_assert_eq!(t.total_reads(), expected);
    }

    /// The prefetch decision (inequality 5) always agrees with the raw
    /// probability comparison P(k,k) < P(k+1, Lm).
    #[test]
    fn decision_matches_probabilities(records in stream_lengths(), k in 1usize..MAX_STREAM_LEN) {
        let mut t = LikelihoodTable::new();
        for len in records {
            t.record_stream(len);
        }
        let p_stop = t.probability(k, k);
        let p_go = t.probability(k + 1, MAX_STREAM_LEN);
        if t.total_reads() > 0 {
            prop_assert_eq!(t.should_prefetch(k), p_go > p_stop,
                "k={} stop={} go={}", k, p_stop, p_go);
        } else {
            prop_assert!(!t.should_prefetch(k));
        }
    }

    /// prefetch_degree is a prefix: if degree d is granted, every smaller
    /// degree would also satisfy inequality (6).
    #[test]
    fn degree_is_prefix_closed(records in stream_lengths(), k in 1usize..MAX_STREAM_LEN, max_d in 1usize..8) {
        let mut t = LikelihoodTable::new();
        for len in records {
            t.record_stream(len);
        }
        let d = t.prefetch_degree(k, max_d);
        prop_assert!(d <= max_d);
        for e in 1..=d {
            prop_assert!(t.lht(k + e) * 2 > t.lht(k), "e={} within granted degree {}", e, d);
        }
    }

    /// An SLH built from stream lengths matches the one derived via a
    /// likelihood table fed the same streams.
    #[test]
    fn slh_constructions_agree(records in stream_lengths()) {
        let direct = Slh::from_stream_lengths(records.iter().copied());
        let mut t = LikelihoodTable::new();
        for &len in &records {
            t.record_stream(len);
        }
        prop_assert_eq!(direct, t.slh());
    }

    /// The stream filter never exceeds its slot capacity and reports every
    /// read as belonging to a stream of length >= 1.
    #[test]
    fn filter_capacity_respected(
        slots in 1usize..16,
        lines in prop::collection::vec(0u64..2000, 1..300),
    ) {
        let mut f = StreamFilter::new(StreamFilterConfig { slots, ..Default::default() }).unwrap();
        for (i, &line) in lines.iter().enumerate() {
            let obs = f.observe_read(line, i as u64 * 50);
            prop_assert!(obs.stream_len >= 1);
            prop_assert!(f.live_streams() <= slots);
        }
    }

    /// Conservation: total stream length evicted (plus untracked singles)
    /// accounts for every read fed to a detector, as observed through the
    /// epoch histograms.
    #[test]
    fn detector_conserves_reads(
        lines in prop::collection::vec(0u64..500, 1..400),
        epoch in 16u64..128,
    ) {
        let cfg = AsdConfig { epoch_reads: epoch, ..AsdConfig::default() };
        let mut det = AsdDetector::new(cfg).unwrap();
        let mut out = Vec::new();
        let mut accumulated = Slh::new();
        for (i, &line) in lines.iter().enumerate() {
            det.on_read(line, i as u64 * 700, &mut out);
            if det.stats().epochs > accumulated_epochs(&accumulated, epoch) {
                accumulated += det.last_epoch_slh();
            }
        }
        // Completed-epoch histograms hold exactly epoch*epochs reads.
        prop_assert_eq!(accumulated.total_reads(), det.stats().epochs * epoch);
        // Pending histogram + live filter streams cover the remainder.
        let tail = det.pending_slh().total_reads()
            + live_filter_reads(&det);
        let total = accumulated.total_reads() + tail;
        prop_assert_eq!(total, lines.len() as u64);
    }

    /// The adaptive scheduler's policy always stays within the five paper
    /// policies and reacts monotonically to conflict trends.
    #[test]
    fn scheduler_policy_bounded(conflict_counts in prop::collection::vec(0u64..20, 0..50)) {
        let mut s = AdaptiveScheduler::new();
        for n in conflict_counts {
            for _ in 0..n {
                s.record_conflict();
            }
            let before = s.policy().number();
            s.on_epoch_end();
            let after = s.policy().number();
            prop_assert!((1..=5).contains(&after));
            prop_assert!((after as i64 - before as i64).abs() <= 1, "moves one step at a time");
        }
    }

    /// The policies are cumulative relaxations: in any queue state, a
    /// policy that allows issue implies every less conservative policy
    /// also allows it.
    #[test]
    fn policy_ordering(
        caq_len in 0usize..4,
        reorder_len in 0usize..8,
        reorder_issuable in 0usize..8,
        lpq_len in 0usize..4,
        lpq_ts in 0u64..10,
        caq_ts in 0u64..10,
    ) {
        let v = QueueView {
            caq_len,
            lpq_len,
            lpq_capacity: 3,
            reorder_len: reorder_len.max(reorder_issuable),
            reorder_issuable,
            lpq_head_ts: if lpq_len > 0 { Some(lpq_ts) } else { None },
            caq_head_ts: if caq_len > 0 { Some(caq_ts) } else { None },
        };
        for pair in LpqPolicy::ALL.windows(2) {
            prop_assert!(
                !pair[0].allows(v) || pair[1].allows(v),
                "{:?} allows but {:?} does not", pair[0], pair[1]
            );
        }
    }

    /// Directions step symmetrically.
    #[test]
    fn direction_step_roundtrip(line in 1u64..u64::MAX - 1) {
        for dir in [Direction::Positive, Direction::Negative] {
            let next = dir.step(line).unwrap();
            prop_assert_eq!(dir.opposite().step(next), Some(line));
        }
    }
}

fn accumulated_epochs(acc: &Slh, epoch: u64) -> u64 {
    acc.total_reads() / epoch
}

fn live_filter_reads(det: &AsdDetector) -> u64 {
    // Reads currently held in live filter streams are not yet in any
    // histogram; infer them from the totals.
    let seen = det.stats().reads;
    let in_epochs = det.stats().epochs * det.config().epoch_reads;
    let pending = det.pending_slh().total_reads();
    seen - in_epochs - pending
}

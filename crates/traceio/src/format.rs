//! The ASDT1 on-disk format: constants, CRC32, varints, and the
//! per-record codec shared by [`crate::writer`] and [`crate::reader`].
//!
//! ```text
//! file    := header chunk* end
//! header  := magic("ASDT") version:u16 line_shift:u8 threads:u8
//!            seed:u64 accesses:u64 name_len:u16 name:bytes
//! chunk   := tag(0xC1) count:u32 payload_len:u32 crc32:u32 payload
//! end     := tag(0xE0) total:u64
//! record  := tag:u8 zigzag_varint(line_delta)
//!            [offset:u8] [thread:u8] [gap:varint]
//! ```
//!
//! All fixed-width integers are little-endian. Record tags pack the
//! access kind (bit 0), an "offset byte follows" flag (bit 1, set when
//! the address is not line-aligned), a "thread byte follows" flag
//! (bit 2, set for nonzero hardware threads), and a 5-bit inline gap
//! (values 0–30; 31 escapes to a trailing varint). Line numbers are
//! encoded as zigzag varints of the delta from the previous record;
//! every chunk resets the delta base to zero, so chunks decode
//! independently.

use asd_trace::{AccessKind, MemAccess};

/// The four magic bytes opening every ASDT file.
pub const MAGIC: [u8; 4] = *b"ASDT";

/// Container version this build writes and reads.
pub const VERSION: u16 = 1;

/// Chunk tag: a data chunk follows.
pub const TAG_CHUNK: u8 = 0xC1;

/// Chunk tag: the end marker (total record count) follows.
pub const TAG_END: u8 = 0xE0;

/// Records per chunk the writer flushes at.
pub const CHUNK_RECORDS: usize = 4096;

/// Upper bound on a chunk's declared record count (sanity check against
/// corrupt headers; the writer never exceeds [`CHUNK_RECORDS`]).
pub const MAX_CHUNK_RECORDS: u32 = 65_536;

/// Upper bound on a chunk's declared payload length in bytes (a record
/// encodes to at most 21 bytes, so this is generous).
pub const MAX_CHUNK_PAYLOAD: u32 = 1 << 22;

/// Longest profile name the header accepts.
pub const MAX_NAME_LEN: usize = 1024;

/// Gap values below this ride inline in the record tag; larger gaps
/// escape to a trailing varint.
pub const GAP_ESCAPE: u32 = 31;

/// Container metadata: everything the ASDT header records about a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Workload profile name the trace was generated from (or a free-form
    /// label for externally captured traces).
    pub profile: String,
    /// Base seed the trace was generated with (0 for external captures).
    pub seed: u64,
    /// log2 of the cache-line size the addresses are expressed against.
    pub line_shift: u8,
    /// Hardware-thread contexts present in the trace (≥ 1).
    pub threads: u8,
    /// Total records in the file, across all threads.
    pub accesses: u64,
}

impl TraceMeta {
    /// Metadata for a generated trace: `accesses` records per thread over
    /// `threads` contexts, at the workspace's 128-byte line size.
    pub fn generated(profile: &str, seed: u64, threads: u8, accesses_per_thread: u64) -> Self {
        TraceMeta {
            profile: profile.to_string(),
            seed,
            line_shift: asd_trace::LINE_SHIFT as u8,
            threads: threads.max(1),
            accesses: accesses_per_thread.saturating_mul(u64::from(threads.max(1))),
        }
    }

    /// Records per thread context (the header count divided evenly).
    pub fn accesses_per_thread(&self) -> u64 {
        self.accesses / u64::from(self.threads.max(1))
    }
}

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes` —
/// the same function `zlib`'s `crc32` computes, hand-rolled so the
/// workspace stays dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[usize::from((c as u8) ^ b)] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Append an LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Read an LEB128 varint from `buf[*pos..]`, advancing `pos`. `None` on
/// overrun or an overlong (> 10 byte) encoding.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Map a signed delta onto an unsigned varint-friendly value.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode one record onto `buf`, updating the delta base `prev_line`.
/// `line_shift` is the container's line-size exponent (7 for 128-byte
/// lines); addresses keep their sub-line offset in a dedicated byte, so
/// the encoding is lossless for any `MemAccess`.
pub fn encode_record(buf: &mut Vec<u8>, prev_line: &mut u64, line_shift: u8, a: &MemAccess) {
    let line = a.addr >> line_shift;
    let offset = (a.addr & ((1u64 << line_shift) - 1)) as u8;
    let mut tag = 0u8;
    if a.kind == AccessKind::Write {
        tag |= 0x01;
    }
    if offset != 0 {
        tag |= 0x02;
    }
    if a.thread != 0 {
        tag |= 0x04;
    }
    let inline_gap = if a.gap < GAP_ESCAPE { a.gap as u8 } else { GAP_ESCAPE as u8 };
    tag |= inline_gap << 3;
    buf.push(tag);
    let delta = (line as i64).wrapping_sub(*prev_line as i64);
    put_varint(buf, zigzag(delta));
    if offset != 0 {
        buf.push(offset);
    }
    if a.thread != 0 {
        buf.push(a.thread);
    }
    if a.gap >= GAP_ESCAPE {
        put_varint(buf, u64::from(a.gap));
    }
    *prev_line = line;
}

/// Decode one record from `buf[*pos..]`, advancing `pos` and the delta
/// base. `None` on any structural problem (overrun, overlong varint,
/// gap out of `u32` range); the caller maps that to
/// [`CorruptChunk`](crate::TraceIoError::CorruptChunk). Arithmetic is
/// wrapping so hostile deltas cannot panic.
pub fn decode_record(
    buf: &[u8],
    pos: &mut usize,
    prev_line: &mut u64,
    line_shift: u8,
) -> Option<MemAccess> {
    let tag = *buf.get(*pos)?;
    *pos += 1;
    let delta = unzigzag(get_varint(buf, pos)?);
    let line = prev_line.wrapping_add(delta as u64);
    *prev_line = line;
    let offset = if tag & 0x02 != 0 {
        let o = *buf.get(*pos)?;
        *pos += 1;
        u64::from(o)
    } else {
        0
    };
    let thread = if tag & 0x04 != 0 {
        let t = *buf.get(*pos)?;
        *pos += 1;
        t
    } else {
        0
    };
    let inline_gap = u32::from(tag >> 3);
    let gap = if inline_gap == GAP_ESCAPE {
        u32::try_from(get_varint(buf, pos)?).ok()?
    } else {
        inline_gap
    };
    let kind = if tag & 0x01 != 0 { AccessKind::Write } else { AccessKind::Read };
    let addr = (line << line_shift) | offset;
    Some(MemAccess { addr, kind, gap, thread })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard zlib/IEEE test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_overrun_and_overlong() {
        assert_eq!(get_varint(&[0x80], &mut 0), None);
        // 11 continuation bytes is an overlong encoding.
        let overlong = [0xffu8; 11];
        assert_eq!(get_varint(&overlong, &mut 0), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn record_roundtrip_all_fields() {
        let cases = [
            MemAccess { addr: 0, kind: AccessKind::Read, gap: 0, thread: 0 },
            MemAccess { addr: 128 * 77, kind: AccessKind::Write, gap: 30, thread: 0 },
            MemAccess { addr: 128 * 5 + 17, kind: AccessKind::Read, gap: 31, thread: 1 },
            MemAccess { addr: u64::MAX, kind: AccessKind::Write, gap: u32::MAX, thread: 255 },
            MemAccess { addr: 1 << 56, kind: AccessKind::Read, gap: 1_000_000, thread: 3 },
        ];
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for a in &cases {
            encode_record(&mut buf, &mut prev, 7, a);
        }
        let mut pos = 0;
        let mut prev = 0u64;
        for a in &cases {
            let d = decode_record(&buf, &mut pos, &mut prev, 7).expect("decodes");
            assert_eq!(&d, a);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn sequential_lines_encode_tightly() {
        // An ascending stream with small gaps: tag + 1-byte delta each.
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for i in 0..1000u64 {
            let a = MemAccess::read_line(5000 + i, 4);
            encode_record(&mut buf, &mut prev, 7, &a);
        }
        // First record pays for the absolute position; the rest are 2 B.
        assert!(buf.len() <= 2 * 1000 + 4, "encoded {} bytes", buf.len());
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let mut buf = Vec::new();
        let mut prev = 0u64;
        let a = MemAccess { addr: 128 * 9999, kind: AccessKind::Read, gap: 100, thread: 2 };
        encode_record(&mut buf, &mut prev, 7, &a);
        for cut in 0..buf.len() {
            let mut pos = 0;
            let mut p = 0u64;
            assert_eq!(decode_record(&buf[..cut], &mut pos, &mut p, 7), None, "cut at {cut}");
        }
    }
}

//! `asd-trace`: corpus management CLI for ASDT trace files.
//!
//! ```text
//! asd-trace record --profile <name> --accesses <n> [--seed S] [--threads T] --out <file>
//! asd-trace info <file>
//! asd-trace verify <file>
//! asd-trace check <file>          # replay-equivalence vs. regenerated trace
//! asd-trace export-csv <file> [--out <csv>]
//! ```

use asd_trace::{suites, thread_seed, AccessKind, TraceGenerator};
use asd_traceio::{record_profile, TraceReader};
use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("export-csv") => cmd_export_csv(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("asd-trace: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
asd-trace: record, inspect, verify, and export ASDT trace files

USAGE:
  asd-trace record --profile <name> --accesses <n> [--seed <s>] [--threads <t>] --out <file>
  asd-trace info <file>
  asd-trace verify <file>
  asd-trace check <file>
  asd-trace export-csv <file> [--out <csv>]

SUBCOMMANDS:
  record      generate a suite profile and write it as an ASDT file
  info        print the header metadata and size statistics
  verify      scan every chunk, checking structure and checksums
  check       verify, then regenerate from the header's profile/seed and
              compare record-by-record (replay-equivalence)
  export-csv  dump records as CSV (addr,kind,gap,thread)

Profiles are the suite benchmarks (e.g. milc, lbm, tonto); run
`asd-trace record --profile help` to list them.
";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse_u64(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{name} needs an unsigned integer, got `{v}`")),
    }
}

fn positional(args: &[String]) -> Result<&Path, String> {
    args.iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| Path::new(s.as_str()))
        .ok_or_else(|| "missing <file> argument".to_string())
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let profile_name = flag_value(args, "--profile").ok_or("record needs --profile <name>")?;
    if profile_name == "help" {
        for p in suites::all_profiles() {
            println!("{}", p.name);
        }
        return Ok(());
    }
    let accesses = parse_u64(args, "--accesses", 0)?;
    if accesses == 0 {
        return Err("record needs --accesses <n> (per thread, nonzero)".into());
    }
    let seed = parse_u64(args, "--seed", 0x5eed)?;
    let threads = parse_u64(args, "--threads", 1)?;
    let threads = u8::try_from(threads).map_err(|_| "--threads must fit in u8")?;
    let out = flag_value(args, "--out").ok_or("record needs --out <file>")?;
    let profile = suites::by_name(profile_name)
        .ok_or_else(|| format!("unknown profile `{profile_name}` (try --profile help)"))?;
    let meta = record_profile(Path::new(out), &profile, seed, threads, accesses)
        .map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(out).map_err(|e| e.to_string())?.len();
    println!(
        "recorded {} accesses of {} (seed {:#x}, {} thread(s)) to {} ({} bytes, {:.2} B/access)",
        meta.accesses,
        meta.profile,
        meta.seed,
        meta.threads,
        out,
        bytes,
        bytes as f64 / meta.accesses as f64
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = positional(args)?;
    let reader = TraceReader::open(path).map_err(|e| e.to_string())?;
    let meta = reader.meta().clone();
    let bytes = std::fs::metadata(path).map_err(|e| e.to_string())?.len();
    println!("file:      {}", path.display());
    println!("container: ASDT version 1");
    println!("profile:   {}", meta.profile);
    println!("seed:      {:#x}", meta.seed);
    println!("line size: {} bytes", 1u32 << meta.line_shift);
    println!("threads:   {}", meta.threads);
    println!("accesses:  {} ({} per thread)", meta.accesses, meta.accesses_per_thread());
    println!("size:      {} bytes ({:.2} B/access)", bytes, bytes as f64 / meta.accesses as f64);
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let path = positional(args)?;
    let reader = TraceReader::open(path).map_err(|e| e.to_string())?;
    let n = reader.verify().map_err(|e| e.to_string())?;
    println!("{}: OK, {} accesses, all chunks verified", path.display(), n);
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = positional(args)?;
    let reader = TraceReader::open(path).map_err(|e| e.to_string())?;
    let meta = reader.meta().clone();
    let profile = suites::by_name(&meta.profile).ok_or_else(|| {
        format!("`{}` is not a suite profile; cannot regenerate for comparison", meta.profile)
    })?;
    let per_thread = meta.accesses_per_thread();
    let mut expected = (0..meta.threads).flat_map(|t| {
        TraceGenerator::new(profile.clone(), thread_seed(meta.seed, t))
            .with_thread(t)
            .take(per_thread as usize)
    });
    for (i, item) in reader.enumerate() {
        let got = item.map_err(|e| e.to_string())?;
        let want = expected.next().ok_or_else(|| format!("record {i}: trace too long"))?;
        if got != want {
            return Err(format!("record {i}: file has {got:?}, generator yields {want:?}"));
        }
    }
    if expected.next().is_some() {
        return Err("trace shorter than the regenerated stream".into());
    }
    println!(
        "{}: replay-equivalent to generator ({}, seed {:#x}, {} accesses)",
        path.display(),
        meta.profile,
        meta.seed,
        meta.accesses
    );
    Ok(())
}

fn cmd_export_csv(args: &[String]) -> Result<(), String> {
    let path = positional(args)?;
    let reader = TraceReader::open(path).map_err(|e| e.to_string())?;
    let mut out: Box<dyn Write> = match flag_value(args, "--out") {
        Some(f) => {
            Box::new(std::io::BufWriter::new(std::fs::File::create(f).map_err(|e| e.to_string())?))
        }
        None => Box::new(std::io::stdout().lock()),
    };
    writeln!(out, "addr,kind,gap,thread").map_err(|e| e.to_string())?;
    for item in reader {
        let a = item.map_err(|e| e.to_string())?;
        let kind = match a.kind {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        };
        writeln!(out, "{:#x},{},{},{}", a.addr, kind, a.gap, a.thread)
            .map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;
    Ok(())
}

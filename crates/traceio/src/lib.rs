//! # ASDT binary trace container
//!
//! The paper's methodology is trace-driven: workloads are captured once
//! and replayed against every memory-controller configuration. This
//! crate gives the reproduction the same capability — a versioned,
//! checksummed on-disk container (`ASDT`, version 1) for
//! [`MemAccess`](asd_trace::MemAccess) streams, so a trace can be
//! recorded once, verified, shared, and replayed bit-identically
//! instead of being regenerated in memory on every run.
//!
//! The format (see [`format`] for the byte-level layout) stores
//! delta+varint-encoded line addresses in independently decodable
//! chunks, each guarded by an in-tree CRC32. [`TraceWriter`] and
//! [`TraceReader`] stream in bounded memory, and every way a file can
//! be malformed surfaces as a typed [`TraceIoError`] — never a panic.
//!
//! The crate sits between `trace` and `sim` in the workspace layering:
//! it knows how to serialize traces but nothing about caches,
//! controllers, or DRAM.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod capture;
mod error;
pub mod format;
mod reader;
mod writer;

pub use capture::record_profile;
pub use error::TraceIoError;
pub use format::TraceMeta;
pub use reader::TraceReader;
pub use writer::TraceWriter;

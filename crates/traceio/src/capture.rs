//! Recording generated workloads to ASDT files.
//!
//! Capture is record-then-replay, not a tee: the generator streams to
//! disk through [`TraceWriter`] in bounded memory, and the simulator
//! then runs from the file exactly as it would for any other replay.
//! Per-thread seeds come from [`asd_trace::thread_seed`] — the same
//! derivation the simulator uses when building generators in memory —
//! so a recorded trace replays bit-identically to a generated one.

use crate::error::TraceIoError;
use crate::format::TraceMeta;
use crate::writer::TraceWriter;
use asd_trace::{thread_seed, TraceGenerator, WorkloadProfile};
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

/// Record `accesses_per_thread` accesses of `profile` per hardware
/// thread to `path`, thread 0 first. Returns the header metadata.
///
/// # Errors
///
/// [`TraceIoError::Io`] if the file cannot be created or written;
/// [`TraceIoError::CorruptHeader`] for invalid metadata (zero threads).
pub fn record_profile(
    path: &Path,
    profile: &WorkloadProfile,
    seed: u64,
    threads: u8,
    accesses_per_thread: u64,
) -> Result<TraceMeta, TraceIoError> {
    let meta = TraceMeta::generated(&profile.name, seed, threads, accesses_per_thread);
    let file = BufWriter::new(File::create(path)?);
    let mut w = TraceWriter::new(file, meta)?;
    for t in 0..threads {
        let mut g = TraceGenerator::new(profile.clone(), thread_seed(seed, t)).with_thread(t);
        w.write_all_accesses(g.iter(accesses_per_thread))?;
    }
    let meta = w.meta().clone();
    w.finish()?;
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::TraceReader;
    use asd_trace::suites;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        // std::process::id(), not wall-clock, for uniqueness: D001 bans
        // time sources and the id is stable enough for a per-run name.
        std::env::temp_dir().join(format!("asd-traceio-{}-{tag}.asdt", std::process::id()))
    }

    #[test]
    fn capture_matches_generator_exactly() {
        let profile = suites::by_name("milc").unwrap();
        let path = temp_path("capture");
        let meta = record_profile(&path, &profile, 42, 1, 300).unwrap();
        assert_eq!(meta.accesses, 300);
        let decoded: Vec<_> = TraceReader::open(&path).unwrap().map(|r| r.unwrap()).collect();
        let mut g = TraceGenerator::new(profile, thread_seed(42, 0)).with_thread(0);
        let expected: Vec<_> = g.iter(300).collect();
        assert_eq!(decoded, expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn smt_capture_orders_threads_sequentially() {
        let profile = suites::by_name("milc").unwrap();
        let path = temp_path("capture-smt");
        let meta = record_profile(&path, &profile, 7, 2, 100).unwrap();
        assert_eq!(meta.threads, 2);
        assert_eq!(meta.accesses, 200);
        assert_eq!(meta.accesses_per_thread(), 100);
        let decoded: Vec<_> = TraceReader::open(&path).unwrap().map(|r| r.unwrap()).collect();
        assert!(decoded[..100].iter().all(|a| a.thread == 0));
        assert!(decoded[100..].iter().all(|a| a.thread == 1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn encoded_size_is_compact() {
        // Acceptance criterion: ≤ 6 bytes per access on average.
        let profile = suites::by_name("lbm").unwrap();
        let path = temp_path("capture-size");
        record_profile(&path, &profile, 1, 1, 4000).unwrap();
        let bytes = std::fs::metadata(&path).unwrap().len();
        let per_access = bytes as f64 / 4000.0;
        assert!(per_access <= 6.0, "{per_access:.2} bytes/access");
        std::fs::remove_file(&path).ok();
    }
}

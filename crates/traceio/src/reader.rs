//! Streaming ASDT decoder.
//!
//! [`TraceReader`] holds at most one chunk of payload in memory and
//! yields `Result<MemAccess, TraceIoError>` items, so replay never
//! materializes a full trace. Corrupt input — flipped bits, truncated
//! tails, impossible chunk headers — surfaces as a typed error item;
//! after the first error the iterator fuses to `None`.

use crate::error::TraceIoError;
use crate::format::{
    crc32, decode_record, TraceMeta, MAGIC, MAX_CHUNK_PAYLOAD, MAX_CHUNK_RECORDS, MAX_NAME_LEN,
    TAG_CHUNK, TAG_END, VERSION,
};
use asd_trace::MemAccess;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Running,
    Finished,
    Failed,
}

/// Streaming decoder for one ASDT trace file.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    meta: TraceMeta,
    payload: Vec<u8>,
    pos: usize,
    remaining_in_chunk: u32,
    prev_line: u64,
    chunk_index: u64,
    delivered: u64,
    state: State,
}

impl TraceReader<BufReader<File>> {
    /// Open `path` and parse its header.
    ///
    /// # Errors
    ///
    /// [`TraceIoError::Io`] if the file cannot be opened, plus every
    /// header error of [`TraceReader::new`].
    pub fn open(path: &Path) -> Result<Self, TraceIoError> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Parse the ASDT header from `r` and return a reader positioned at
    /// the first chunk.
    ///
    /// # Errors
    ///
    /// [`TraceIoError::BadMagic`], [`TraceIoError::UnsupportedVersion`],
    /// [`TraceIoError::CorruptHeader`] for malformed headers;
    /// [`TraceIoError::TruncatedChunk`] when the input ends inside the
    /// header; [`TraceIoError::Io`] for reader failures.
    pub fn new(mut r: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 4];
        read_exact_or(&mut r, &mut magic, 0, "file magic")?;
        if magic != MAGIC {
            return Err(TraceIoError::BadMagic { found: magic });
        }
        let mut fixed = [0u8; 2 + 1 + 1 + 8 + 8 + 2];
        read_exact_or(&mut r, &mut fixed, 0, "header fields")?;
        let version = u16::from_le_bytes([fixed[0], fixed[1]]);
        if version != VERSION {
            return Err(TraceIoError::UnsupportedVersion { found: version });
        }
        let line_shift = fixed[2];
        if line_shift > 8 {
            return Err(TraceIoError::CorruptHeader { detail: "line shift above 8" });
        }
        let threads = fixed[3];
        if threads == 0 {
            return Err(TraceIoError::CorruptHeader { detail: "zero thread contexts" });
        }
        let seed = u64::from_le_bytes(section(&fixed, 4));
        let accesses = u64::from_le_bytes(section(&fixed, 12));
        let name_len = usize::from(u16::from_le_bytes([fixed[20], fixed[21]]));
        if name_len == 0 || name_len > MAX_NAME_LEN {
            return Err(TraceIoError::CorruptHeader { detail: "profile name empty or overlong" });
        }
        let mut name = vec![0u8; name_len];
        read_exact_or(&mut r, &mut name, 0, "profile name")?;
        let profile = String::from_utf8(name)
            .map_err(|_| TraceIoError::CorruptHeader { detail: "profile name not UTF-8" })?;
        Ok(TraceReader {
            r,
            meta: TraceMeta { profile, seed, line_shift, threads, accesses },
            payload: Vec::new(),
            pos: 0,
            remaining_in_chunk: 0,
            prev_line: 0,
            chunk_index: 0,
            delivered: 0,
            state: State::Running,
        })
    }

    /// The metadata parsed from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Records delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Drain the remaining records, verifying every chunk's structure and
    /// checksum, and return the total record count on success.
    ///
    /// # Errors
    ///
    /// The first decoding error of the remaining stream.
    pub fn verify(mut self) -> Result<u64, TraceIoError> {
        for item in &mut self {
            item?;
        }
        Ok(self.delivered)
    }

    fn load_next_chunk(&mut self) -> Result<bool, TraceIoError> {
        let mut tag = [0u8; 1];
        read_exact_or(&mut self.r, &mut tag, self.chunk_index, "chunk tag (missing end marker)")?;
        match tag[0] {
            TAG_END => {
                let mut total = [0u8; 8];
                read_exact_or(&mut self.r, &mut total, self.chunk_index, "end marker total")?;
                let total = u64::from_le_bytes(total);
                if total != self.delivered || self.delivered != self.meta.accesses {
                    return Err(TraceIoError::CountMismatch {
                        declared: self.meta.accesses,
                        found: self.delivered.min(total),
                    });
                }
                let mut extra = [0u8; 1];
                if self.r.read(&mut extra)? != 0 {
                    return Err(TraceIoError::CorruptChunk {
                        chunk: self.chunk_index,
                        detail: "trailing data after end marker",
                    });
                }
                Ok(false)
            }
            TAG_CHUNK => {
                let mut head = [0u8; 12];
                read_exact_or(&mut self.r, &mut head, self.chunk_index, "chunk header")?;
                let count = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
                let payload_len = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
                let stored_crc = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
                if count == 0 || count > MAX_CHUNK_RECORDS {
                    return Err(TraceIoError::CorruptChunk {
                        chunk: self.chunk_index,
                        detail: "impossible record count",
                    });
                }
                if payload_len == 0 || payload_len > MAX_CHUNK_PAYLOAD {
                    return Err(TraceIoError::CorruptChunk {
                        chunk: self.chunk_index,
                        detail: "impossible payload length",
                    });
                }
                self.payload.resize(payload_len as usize, 0);
                let chunk = self.chunk_index;
                read_exact_or(&mut self.r, &mut self.payload, chunk, "chunk payload")?;
                let computed = crc32(&self.payload);
                if computed != stored_crc {
                    return Err(TraceIoError::ChecksumMismatch {
                        chunk: self.chunk_index,
                        stored: stored_crc,
                        computed,
                    });
                }
                self.pos = 0;
                self.prev_line = 0;
                self.remaining_in_chunk = count;
                self.chunk_index += 1;
                Ok(true)
            }
            _ => Err(TraceIoError::CorruptChunk {
                chunk: self.chunk_index,
                detail: "unknown chunk tag",
            }),
        }
    }

    fn next_access(&mut self) -> Result<Option<MemAccess>, TraceIoError> {
        if self.remaining_in_chunk == 0 && !self.load_next_chunk()? {
            return Ok(None);
        }
        let Some(access) =
            decode_record(&self.payload, &mut self.pos, &mut self.prev_line, self.meta.line_shift)
        else {
            return Err(TraceIoError::CorruptChunk {
                chunk: self.chunk_index.saturating_sub(1),
                detail: "record decoding overran the payload",
            });
        };
        self.remaining_in_chunk -= 1;
        if self.remaining_in_chunk == 0 && self.pos != self.payload.len() {
            return Err(TraceIoError::CorruptChunk {
                chunk: self.chunk_index.saturating_sub(1),
                detail: "payload bytes left over after the declared records",
            });
        }
        self.delivered += 1;
        Ok(Some(access))
    }

    /// Decode up to `max` further records and append them to `out`,
    /// returning the number appended. `Ok(0)` marks a cleanly exhausted
    /// (or previously fused) stream.
    ///
    /// The batched counterpart of the [`Iterator`] face: replay consumers
    /// refill a chunk buffer in one call and then read it by index.
    ///
    /// # Errors
    ///
    /// The first decoding error of the batch; records decoded before it
    /// stay appended to `out` and the reader fuses, exactly as it does
    /// after an `Err` item from [`Iterator::next`].
    pub fn fill(&mut self, max: usize, out: &mut Vec<MemAccess>) -> Result<usize, TraceIoError> {
        if self.state != State::Running {
            return Ok(0);
        }
        let start = out.len();
        while out.len() - start < max {
            match self.next_access() {
                Ok(Some(a)) => out.push(a),
                Ok(None) => {
                    self.state = State::Finished;
                    break;
                }
                Err(e) => {
                    self.state = State::Failed;
                    return Err(e);
                }
            }
        }
        Ok(out.len() - start)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<MemAccess, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.state != State::Running {
            return None;
        }
        match self.next_access() {
            Ok(Some(a)) => Some(Ok(a)),
            Ok(None) => {
                self.state = State::Finished;
                None
            }
            Err(e) => {
                self.state = State::Failed;
                Some(Err(e))
            }
        }
    }
}

fn read_exact_or<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    chunk: u64,
    detail: &'static str,
) -> Result<(), TraceIoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceIoError::TruncatedChunk { chunk, detail }
        } else {
            TraceIoError::Io(e)
        }
    })
}

fn section<const N: usize>(buf: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&buf[at..at + N]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use asd_trace::{AccessKind, MemAccess};

    fn sample_trace(n: u64) -> Vec<MemAccess> {
        (0..n)
            .map(|i| MemAccess {
                addr: ((1000 + i * 3) << 7) | ((i % 5) * 7),
                kind: if i % 4 == 0 { AccessKind::Write } else { AccessKind::Read },
                gap: (i % 200) as u32,
                thread: (i % 2) as u8,
            })
            .collect()
    }

    fn encode(trace: &[MemAccess]) -> Vec<u8> {
        let meta = TraceMeta::generated("sample", 9, 1, trace.len() as u64);
        let mut w = TraceWriter::new(Vec::new(), meta).unwrap();
        for a in trace {
            w.write_access(a).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip_identity() {
        let trace = sample_trace(10_000); // spans multiple chunks
        let bytes = encode(&trace);
        let r = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.meta().profile, "sample");
        assert_eq!(r.meta().accesses, 10_000);
        let decoded: Vec<MemAccess> = r.map(|x| x.unwrap()).collect();
        assert_eq!(decoded, trace);
    }

    #[test]
    fn verify_counts_records() {
        let bytes = encode(&sample_trace(5000));
        let r = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.verify().unwrap(), 5000);
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode(&sample_trace(4));
        bytes[0] = b'X';
        assert!(matches!(TraceReader::new(bytes.as_slice()), Err(TraceIoError::BadMagic { .. })));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = encode(&sample_trace(4));
        bytes[4] = 2;
        assert!(matches!(
            TraceReader::new(bytes.as_slice()),
            Err(TraceIoError::UnsupportedVersion { found: 2 })
        ));
    }

    #[test]
    fn payload_bit_flip_is_a_checksum_mismatch() {
        let trace = sample_trace(100);
        let bytes = encode(&trace);
        // Flip a bit in the middle of the (single) chunk payload.
        let mut corrupt = bytes.clone();
        let target = bytes.len() - 20;
        corrupt[target] ^= 0x10;
        let r = TraceReader::new(corrupt.as_slice()).unwrap();
        let err = r.verify().unwrap_err();
        assert!(matches!(err, TraceIoError::ChecksumMismatch { chunk: 0, .. }), "{err}");
    }

    #[test]
    fn truncation_detected_not_panicking() {
        let bytes = encode(&sample_trace(2000));
        // Cut the file at many points; every cut must produce a typed
        // error (or a successful short header parse), never a panic.
        for cut in [5, 20, 40, bytes.len() / 2, bytes.len() - 3] {
            match TraceReader::new(&bytes[..cut]) {
                Ok(r) => {
                    let err = r.verify().unwrap_err();
                    assert!(
                        matches!(
                            err,
                            TraceIoError::TruncatedChunk { .. }
                                | TraceIoError::CountMismatch { .. }
                        ),
                        "cut {cut}: {err}"
                    );
                }
                Err(e) => {
                    assert!(matches!(e, TraceIoError::TruncatedChunk { .. }), "cut {cut}: {e}");
                }
            }
        }
    }

    #[test]
    fn fill_matches_iterator() {
        let trace = sample_trace(10_000); // spans multiple chunks
        let bytes = encode(&trace);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let mut batched = Vec::new();
        loop {
            // A batch size coprime with the chunk record count exercises
            // refills that straddle chunk boundaries.
            if r.fill(777, &mut batched).unwrap() == 0 {
                break;
            }
        }
        assert_eq!(batched, trace);
        assert_eq!(r.fill(10, &mut batched).unwrap(), 0, "exhausted reader stays fused");
    }

    #[test]
    fn fill_surfaces_errors_and_fuses() {
        let mut bytes = encode(&sample_trace(50));
        let target = bytes.len() - 15;
        bytes[target] ^= 0xff;
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let mut out = Vec::new();
        assert!(r.fill(100, &mut out).is_err());
        assert_eq!(r.fill(100, &mut out).unwrap(), 0);
    }

    #[test]
    fn error_fuses_the_iterator() {
        let mut bytes = encode(&sample_trace(50));
        let target = bytes.len() - 15;
        bytes[target] ^= 0xff;
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(r.next().unwrap().is_err());
        assert!(r.next().is_none());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&sample_trace(10));
        bytes.push(0xaa);
        let r = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(r.verify().unwrap_err(), TraceIoError::CorruptChunk { .. }));
    }

    #[test]
    fn empty_input_is_truncated_header() {
        assert!(matches!(
            TraceReader::new(&[][..]),
            Err(TraceIoError::TruncatedChunk { chunk: 0, .. })
        ));
    }
}

//! The trace-I/O error taxonomy.
//!
//! Every way a trace file can be unreadable — wrong format, wrong
//! version, corrupted payload, truncated tail, plain I/O failure —
//! surfaces as a typed [`TraceIoError`]. Nothing in this crate panics on
//! malformed input (lint D005): a fuzzed or bit-flipped `.asdt` file must
//! produce an error value, never abort the process.

use std::fmt;
use std::io;

/// Error produced while reading or writing an ASDT trace file.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The file does not start with the `ASDT` magic bytes.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The container version is newer than this library understands.
    UnsupportedVersion {
        /// The version field of the file.
        found: u16,
    },
    /// A header field is self-contradictory or out of range.
    CorruptHeader {
        /// What was wrong.
        detail: &'static str,
    },
    /// A chunk's stored CRC32 does not match its payload.
    ChecksumMismatch {
        /// 0-based index of the offending chunk.
        chunk: u64,
        /// CRC32 stored in the chunk header.
        stored: u32,
        /// CRC32 computed over the payload actually read.
        computed: u32,
    },
    /// The file ended in the middle of a chunk (or before the end
    /// marker).
    TruncatedChunk {
        /// 0-based index of the chunk being read when input ran out.
        chunk: u64,
        /// What was being read.
        detail: &'static str,
    },
    /// A chunk's structure is invalid: bad tag byte, impossible record
    /// count or payload length, or a payload that does not decode to
    /// exactly the declared number of records.
    CorruptChunk {
        /// 0-based index of the offending chunk.
        chunk: u64,
        /// What was wrong.
        detail: &'static str,
    },
    /// The number of records actually present disagrees with the count
    /// declared in the header (or with the end marker's total).
    CountMismatch {
        /// Record count the header (or writer contract) declared.
        declared: u64,
        /// Records actually seen.
        found: u64,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O failed: {e}"),
            TraceIoError::BadMagic { found } => {
                write!(f, "not an ASDT trace file (magic bytes {found:02x?})")
            }
            TraceIoError::UnsupportedVersion { found } => {
                write!(f, "unsupported ASDT container version {found} (this build reads version 1)")
            }
            TraceIoError::CorruptHeader { detail } => write!(f, "corrupt ASDT header: {detail}"),
            TraceIoError::ChecksumMismatch { chunk, stored, computed } => write!(
                f,
                "chunk {chunk} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            TraceIoError::TruncatedChunk { chunk, detail } => {
                write!(f, "trace file truncated in chunk {chunk}: {detail}")
            }
            TraceIoError::CorruptChunk { chunk, detail } => {
                write!(f, "corrupt chunk {chunk}: {detail}")
            }
            TraceIoError::CountMismatch { declared, found } => write!(
                f,
                "record count mismatch: header declares {declared} accesses, found {found}"
            ),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<TraceIoError> = vec![
            TraceIoError::Io(io::Error::other("boom")),
            TraceIoError::BadMagic { found: *b"ELF\x7f" },
            TraceIoError::UnsupportedVersion { found: 9 },
            TraceIoError::CorruptHeader { detail: "zero line size" },
            TraceIoError::ChecksumMismatch { chunk: 3, stored: 1, computed: 2 },
            TraceIoError::TruncatedChunk { chunk: 0, detail: "payload" },
            TraceIoError::CorruptChunk { chunk: 1, detail: "overlong varint" },
            TraceIoError::CountMismatch { declared: 10, found: 9 },
        ];
        for e in &cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_converts_and_chains() {
        let e: TraceIoError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, TraceIoError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! Streaming ASDT encoder.
//!
//! [`TraceWriter`] buffers at most one chunk ([`CHUNK_RECORDS`] records)
//! of encoded payload, so captures of arbitrarily long traces run in
//! bounded memory. The header declares the total record count up front —
//! the capture path always knows it (`RunOpts::accesses` × threads) —
//! and [`TraceWriter::finish`] fails with
//! [`TraceIoError::CountMismatch`] if the stream delivered a different
//! number, so a partially written file is never silently passed off as
//! complete.

use crate::error::TraceIoError;
use crate::format::{
    crc32, encode_record, TraceMeta, CHUNK_RECORDS, MAGIC, MAX_NAME_LEN, TAG_CHUNK, TAG_END,
    VERSION,
};
use asd_trace::MemAccess;
use std::io::Write;

/// Streaming encoder for one ASDT trace file.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    meta: TraceMeta,
    payload: Vec<u8>,
    records_in_chunk: u32,
    prev_line: u64,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Write the header for `meta` and return a writer ready for records.
    ///
    /// # Errors
    ///
    /// [`TraceIoError::CorruptHeader`] for out-of-range metadata (empty
    /// or overlong profile name, zero threads, a line shift above 8);
    /// [`TraceIoError::Io`] if the sink fails.
    pub fn new(mut w: W, meta: TraceMeta) -> Result<Self, TraceIoError> {
        if meta.profile.is_empty() || meta.profile.len() > MAX_NAME_LEN {
            return Err(TraceIoError::CorruptHeader { detail: "profile name empty or overlong" });
        }
        if meta.threads == 0 {
            return Err(TraceIoError::CorruptHeader { detail: "zero thread contexts" });
        }
        // The sub-line offset travels in one byte, so lines of more than
        // 256 bytes are not representable in container version 1.
        if meta.line_shift > 8 {
            return Err(TraceIoError::CorruptHeader { detail: "line shift above 8" });
        }
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&[meta.line_shift, meta.threads])?;
        w.write_all(&meta.seed.to_le_bytes())?;
        w.write_all(&meta.accesses.to_le_bytes())?;
        w.write_all(&(meta.profile.len() as u16).to_le_bytes())?;
        w.write_all(meta.profile.as_bytes())?;
        Ok(TraceWriter {
            w,
            meta,
            payload: Vec::with_capacity(CHUNK_RECORDS * 4),
            records_in_chunk: 0,
            prev_line: 0,
            written: 0,
        })
    }

    /// The metadata written to the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Append one access.
    ///
    /// # Errors
    ///
    /// [`TraceIoError::CountMismatch`] when writing more records than the
    /// header declared; [`TraceIoError::Io`] if a chunk flush fails.
    pub fn write_access(&mut self, access: &MemAccess) -> Result<(), TraceIoError> {
        if self.written == self.meta.accesses {
            return Err(TraceIoError::CountMismatch {
                declared: self.meta.accesses,
                found: self.written + 1,
            });
        }
        encode_record(&mut self.payload, &mut self.prev_line, self.meta.line_shift, access);
        self.records_in_chunk += 1;
        self.written += 1;
        if self.records_in_chunk as usize >= CHUNK_RECORDS {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Append every access of an iterator (the capture path: feed a lazy
    /// [`TraceGenerator::iter`](asd_trace::TraceGenerator::iter) straight
    /// through without materializing a `Vec`).
    ///
    /// # Errors
    ///
    /// As [`TraceWriter::write_access`].
    pub fn write_all_accesses<I>(&mut self, iter: I) -> Result<(), TraceIoError>
    where
        I: IntoIterator<Item = MemAccess>,
    {
        for a in iter {
            self.write_access(&a)?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), TraceIoError> {
        if self.records_in_chunk == 0 {
            return Ok(());
        }
        self.w.write_all(&[TAG_CHUNK])?;
        self.w.write_all(&self.records_in_chunk.to_le_bytes())?;
        self.w.write_all(&(self.payload.len() as u32).to_le_bytes())?;
        self.w.write_all(&crc32(&self.payload).to_le_bytes())?;
        self.w.write_all(&self.payload)?;
        self.payload.clear();
        self.records_in_chunk = 0;
        // Chunks decode independently: the delta base resets with them.
        self.prev_line = 0;
        Ok(())
    }

    /// Flush the final chunk, write the end marker, and return the sink.
    ///
    /// # Errors
    ///
    /// [`TraceIoError::CountMismatch`] when fewer records were written
    /// than the header declared; [`TraceIoError::Io`] on sink failure.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        if self.written != self.meta.accesses {
            return Err(TraceIoError::CountMismatch {
                declared: self.meta.accesses,
                found: self.written,
            });
        }
        self.flush_chunk()?;
        self.w.write_all(&[TAG_END])?;
        self.w.write_all(&self.written.to_le_bytes())?;
        self.w.flush()?;
        Ok(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(n: u64) -> TraceMeta {
        TraceMeta::generated("test", 1, 1, n)
    }

    #[test]
    fn header_fields_validated() {
        let empty = TraceMeta { profile: String::new(), ..meta(1) };
        assert!(matches!(
            TraceWriter::new(Vec::new(), empty),
            Err(TraceIoError::CorruptHeader { .. })
        ));
        let no_threads = TraceMeta { threads: 0, ..meta(1) };
        assert!(matches!(
            TraceWriter::new(Vec::new(), no_threads),
            Err(TraceIoError::CorruptHeader { .. })
        ));
        let wide = TraceMeta { line_shift: 12, ..meta(1) };
        assert!(matches!(
            TraceWriter::new(Vec::new(), wide),
            Err(TraceIoError::CorruptHeader { .. })
        ));
    }

    #[test]
    fn short_write_is_a_count_mismatch() {
        let mut w = TraceWriter::new(Vec::new(), meta(3)).unwrap();
        w.write_access(&MemAccess::read_line(1, 0)).unwrap();
        assert!(matches!(w.finish(), Err(TraceIoError::CountMismatch { declared: 3, found: 1 })));
    }

    #[test]
    fn over_write_is_a_count_mismatch() {
        let mut w = TraceWriter::new(Vec::new(), meta(1)).unwrap();
        w.write_access(&MemAccess::read_line(1, 0)).unwrap();
        let e = w.write_access(&MemAccess::read_line(2, 0));
        assert!(matches!(e, Err(TraceIoError::CountMismatch { .. })));
    }

    #[test]
    fn file_layout_starts_with_magic_and_version() {
        let mut w = TraceWriter::new(Vec::new(), meta(1)).unwrap();
        w.write_access(&MemAccess::read_line(42, 5)).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(&bytes[..4], b"ASDT");
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), VERSION);
        assert_eq!(*bytes.last().unwrap(), 0); // end-marker total, high byte
    }
}

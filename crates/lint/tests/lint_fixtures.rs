//! Known-bad fixture corpus runner.
//!
//! Walks `tests/lint_fixtures/` at the workspace root. Every top-level
//! `.rs` file is a single-file analysis unit; every subdirectory is one
//! multi-file unit (its files are analyzed together, exercising
//! cross-file call-graph and registry resolution). Fixture headers:
//!
//! ```text
//! //@ crate: <short crate name>
//! //@ kind: <lib|bin|test|bench|example>
//! //@ expect: D010@11, D000@5     (empty list = unit must be clean)
//! ```
//!
//! Each file is lexed and summarized under the synthetic path
//! `crates/<crate>/src/<filename>`, the unit is run through the semantic
//! pass, and the exact `(path, code, line)` finding set is compared
//! against the union of the unit's `expect` headers.

use asd_lint::lints::{FileContext, FileKind};
use asd_lint::{lexer, parse, semantic};
use std::fs;
use std::path::{Path, PathBuf};

/// One fixture file: source plus parsed header fields.
struct Fixture {
    /// Synthetic workspace-relative path used in findings.
    path: String,
    crate_name: String,
    kind: FileKind,
    /// Expected `(code, line)` pairs contributed by this file.
    expect: Vec<(String, u32)>,
    source: String,
}

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint_fixtures")
}

fn parse_kind(s: &str) -> FileKind {
    match s {
        "lib" => FileKind::Lib,
        "bin" => FileKind::Bin,
        "test" => FileKind::Test,
        "bench" => FileKind::Bench,
        "example" => FileKind::Example,
        other => panic!("fixture header names unknown kind `{other}`"),
    }
}

fn load_fixture(file: &Path) -> Fixture {
    let source =
        fs::read_to_string(file).unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
    let mut crate_name = None;
    let mut kind = None;
    let mut expect = None;
    for line in source.lines() {
        let Some(field) = line.strip_prefix("//@ ") else {
            break; // headers are a contiguous prefix
        };
        if let Some(v) = field.strip_prefix("crate:") {
            crate_name = Some(v.trim().to_string());
        } else if let Some(v) = field.strip_prefix("kind:") {
            kind = Some(parse_kind(v.trim()));
        } else if let Some(v) = field.strip_prefix("expect:") {
            expect = Some(
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|pair| {
                        let (code, line) = pair.split_once('@').unwrap_or_else(|| {
                            panic!("bad expect entry `{pair}` in {}", file.display())
                        });
                        let n: u32 =
                            line.parse().unwrap_or_else(|e| panic!("bad line in `{pair}`: {e}"));
                        (code.to_string(), n)
                    })
                    .collect(),
            );
        } else {
            panic!("unknown fixture header `{line}` in {}", file.display());
        }
    }
    let name = file.file_name().unwrap().to_string_lossy().into_owned();
    let crate_name =
        crate_name.unwrap_or_else(|| panic!("{}: missing `//@ crate:` header", file.display()));
    Fixture {
        path: format!("crates/{crate_name}/src/{name}"),
        crate_name,
        kind: kind.unwrap_or_else(|| panic!("{}: missing `//@ kind:` header", file.display())),
        expect: expect
            .unwrap_or_else(|| panic!("{}: missing `//@ expect:` header", file.display())),
        source,
    }
}

/// Run one unit (a set of fixture files analyzed together) and assert
/// its exact finding set.
fn check_unit(label: &str, files: &[Fixture]) {
    let summaries: Vec<_> = files
        .iter()
        .map(|f| {
            let lexed = lexer::lex(&f.source);
            let ctx = FileContext { path: &f.path, crate_name: &f.crate_name, kind: f.kind };
            parse::summarize(ctx, &lexed)
        })
        .collect();
    let findings = semantic::analyze(&summaries);

    let mut got: Vec<(String, String, u32)> =
        findings.iter().map(|f| (f.path.clone(), f.code.to_string(), f.line)).collect();
    let mut want: Vec<(String, String, u32)> = files
        .iter()
        .flat_map(|f| f.expect.iter().map(|(c, l)| (f.path.clone(), c.clone(), *l)))
        .collect();
    got.sort();
    want.sort();
    assert_eq!(
        got,
        want,
        "unit `{label}`: finding set mismatch\nfindings:\n{}",
        findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn fixture_corpus_matches_expectations() {
    let root = fixtures_root();
    let mut entries: Vec<PathBuf> = fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("read {}: {e}", root.display()))
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    let mut units = 0usize;
    for entry in entries {
        if entry.is_dir() {
            let mut members: Vec<PathBuf> = fs::read_dir(&entry)
                .unwrap()
                .map(|e| e.unwrap().path())
                .filter(|p| p.extension().is_some_and(|x| x == "rs"))
                .collect();
            members.sort();
            assert!(!members.is_empty(), "empty fixture dir {}", entry.display());
            let fixtures: Vec<Fixture> = members.iter().map(|p| load_fixture(p)).collect();
            check_unit(&entry.file_name().unwrap().to_string_lossy(), &fixtures);
            units += 1;
        } else if entry.extension().is_some_and(|x| x == "rs") {
            let fixture = load_fixture(&entry);
            check_unit(&entry.file_name().unwrap().to_string_lossy(), &[fixture]);
            units += 1;
        }
    }
    assert!(units >= 15, "expected a full corpus, found {units} units");
}

/// Every lint the tentpole added (D010–D014) must have at least one
/// firing fixture and at least one clean (suppressed / out-of-scope)
/// fixture in the corpus, so regressions in either direction are caught.
#[test]
fn corpus_covers_every_dataflow_lint_both_ways() {
    let root = fixtures_root();
    let mut fires = std::collections::BTreeSet::new();
    let mut quiets = std::collections::BTreeSet::new();
    let mut stack = vec![root];
    while let Some(dir) = stack.pop() {
        for e in fs::read_dir(&dir).unwrap() {
            let p = e.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let fx = load_fixture(&p);
                let code = p.file_name().unwrap().to_string_lossy().get(..4).map(str::to_uppercase);
                if let Some(code) = code {
                    if fx.expect.iter().any(|(c, _)| *c == code) {
                        fires.insert(code);
                    } else if fx.expect.iter().all(|(c, _)| *c != code) && fx.expect.is_empty() {
                        quiets.insert(code);
                    }
                }
            }
        }
    }
    for code in ["D000", "D010", "D011", "D012", "D013", "D014"] {
        assert!(fires.contains(code), "no firing fixture for {code}");
    }
    for code in ["D010", "D011", "D012", "D013", "D014"] {
        assert!(quiets.contains(code), "no suppressed/clean fixture for {code}");
    }
}

//! An item-level parser over the lexed token stream: just enough Rust
//! grammar for semantic analysis of the workspace's own sources.
//!
//! This is deliberately **not** a full Rust parser. It recognises the
//! item shapes the semantic lints need — `fn` items (free, inherent, and
//! trait-impl methods), `impl` blocks, `struct`/`enum`/`trait` types and
//! struct fields, and call expressions inside function bodies — using the
//! same token-tree depth tracking the lexer uses for brackets. Everything
//! else (expressions, patterns, generics beyond bracket matching) is
//! skipped structurally.
//!
//! The output is a [`FileSummary`]: a flat, serialisable digest of one
//! file. Summaries are what the incremental cache stores and what
//! [`crate::semantic`] stitches into the workspace symbol table and call
//! graph. Local (single-file) lints that need item structure — D011
//! (order-sensitive float reductions) and D014 (doc coverage of exported
//! sim types) — are evaluated here and recorded as [`LocalFinding`]s;
//! cross-file lints only record *sites* (calls, allocations, counter
//! subtractions, discarded results) for the semantic pass to resolve.

use crate::lexer::{Allow, Lexed, Tok, Token};
use crate::lints::{self, FileContext, FileKind};

/// A call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// Path qualifier directly before `::name(` — a type name
    /// (`PrefetchBuffer::new`), `Self`, or a crate (`asd_core::foo`).
    pub qualifier: Option<String>,
    /// True for `.name(...)` method-call syntax.
    pub method: bool,
    /// 1-based line of the callee token.
    pub line: u32,
}

/// A heap-allocation site inside a function body (same constructs D009
/// recognises: `Box::new`, `Vec::new`/`with_capacity`/`from`, `vec![…]`,
/// `.collect()`, `.to_vec()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the allocating construct.
    pub what: String,
}

/// One `fn` item: identity, the facts the graph lints need, and its
/// body's call/allocation sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSummary {
    /// Function name.
    pub name: String,
    /// `Some(TypeName)` for methods/associated fns declared in an `impl`
    /// block (for `impl Trait for Type`, the `Type`).
    pub owner: Option<String>,
    /// 1-based line of the `fn` token.
    pub line: u32,
    /// Whether a `// asd-lint: hot` marker anchors to this function.
    pub is_hot: bool,
    /// Whether a `// asd-lint: cold` marker anchors to this function —
    /// declaring it off the per-cycle path, so D010's reachability walk
    /// stops here instead of flagging its (and its callees') allocations.
    pub is_cold: bool,
    /// Whether the return type mentions `Result`.
    pub returns_result: bool,
    /// Call sites in the body (nested closures included, nested `fn`
    /// definitions attributed to this item for reachability purposes).
    pub calls: Vec<Call>,
    /// Heap-allocation sites in the body.
    pub allocs: Vec<AllocSite>,
}

/// An exported type declaration (`pub struct` / `pub enum` / `pub trait`
/// / `pub union`) in sim-crate library code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeSummary {
    /// Type name.
    pub name: String,
    /// 1-based line of the declaring keyword.
    pub line: u32,
    /// Whether a doc comment is adjacent above the item (attributes may
    /// intervene).
    pub documented: bool,
}

/// How a fallible call's `Result` was discarded (D013 sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscardKind {
    /// `let _ = <expr ending in the call>;`
    LetUnderscore,
    /// `<call>.ok();` — converting to `Option` and dropping it.
    OkDropped,
}

/// A site where a call's return value is silently discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discard {
    /// 1-based line.
    pub line: u32,
    /// The discarded call's callee name.
    pub callee: String,
    /// Qualifier before the callee, if any (see [`Call::qualifier`]).
    pub qualifier: Option<String>,
    /// Discard syntax.
    pub kind: DiscardKind,
}

/// An unchecked subtraction on a counter-candidate field (`x.field -= …`
/// or `x.field - …`); resolved against the workspace counter-field set by
/// the semantic pass (D012).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterOp {
    /// 1-based line.
    pub line: u32,
    /// The field name being subtracted from.
    pub field: String,
    /// `-=` or `-`.
    pub op: &'static str,
}

/// A single-file finding recorded at parse time (codes whose evidence is
/// entirely local). The display `hint` is recovered from the catalog by
/// code, so summaries stay compact and cacheable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalFinding {
    /// 1-based line.
    pub line: u32,
    /// Lint code.
    pub code: &'static str,
    /// What was found.
    pub message: String,
}

/// The per-file digest: everything the semantic pass and the incremental
/// cache need to know about one source file.
#[derive(Debug, Clone)]
pub struct FileSummary {
    /// Workspace-relative path.
    pub path: String,
    /// Short crate name.
    pub crate_name: String,
    /// File classification.
    pub kind: FileKind,
    /// Parsed `fn` items.
    pub fns: Vec<FnSummary>,
    /// Exported sim types (D014 candidates), with doc status.
    pub types: Vec<TypeSummary>,
    /// Unsigned-integer fields of `*Stats` / `*Counters` structs declared
    /// in this file — the counter-field registry D012 resolves against.
    pub counter_fields: Vec<String>,
    /// Unchecked counter subtractions (candidate D012 sites).
    pub counter_ops: Vec<CounterOp>,
    /// Discarded call results (candidate D013 sites).
    pub discards: Vec<Discard>,
    /// Findings fully decided at parse time (token lints + D011 + D014).
    pub local: Vec<LocalFinding>,
    /// Suppression directives, for workspace-level allow application.
    pub allows: Vec<Allow>,
}

/// Rust keywords (and keyword-like idents) that must not be mistaken for
/// call names when followed by `(`.
const KEYWORDS: [&str; 28] = [
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "ref", "move",
    "in", "as", "where", "impl", "dyn", "unsafe", "async", "await", "break", "continue", "use",
    "pub", "crate", "super", "mod", "const",
];

/// Parse one lexed file into its summary. Token-level lints (D001–D009)
/// are evaluated via [`lints::local_findings`] and folded into
/// [`FileSummary::local`] together with the parse-level D011/D014 checks.
pub fn summarize(ctx: FileContext<'_>, lexed: &Lexed) -> FileSummary {
    let tokens = &lexed.tokens;
    let test_regions = lints::test_regions(tokens);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| a <= line && line <= b);

    let mut out = FileSummary {
        path: ctx.path.to_string(),
        crate_name: ctx.crate_name.to_string(),
        kind: ctx.kind,
        fns: Vec::new(),
        types: Vec::new(),
        counter_fields: Vec::new(),
        counter_ops: Vec::new(),
        discards: Vec::new(),
        local: Vec::new(),
        allows: lexed.allows.clone(),
    };

    // Token-level lints first (D001–D009), unfiltered: suppression is
    // applied workspace-level by the semantic pass.
    for f in lints::local_findings(ctx, lexed) {
        out.local.push(LocalFinding { line: f.line, code: f.code, message: f.message });
    }

    let mut p = Parser { tokens, lexed, ctx, in_test: &in_test, out: &mut out };
    p.items(0, tokens.len(), None);

    // Mark hot and cold functions: each marker anchors to the first
    // `fn` token at or below its line (same rule as D009).
    for &hot in &lexed.hots {
        if let Some(f) = out.fns.iter_mut().filter(|f| f.line >= hot).min_by_key(|f| f.line) {
            f.is_hot = true;
        }
    }
    for &cold in &lexed.colds {
        if let Some(f) = out.fns.iter_mut().filter(|f| f.line >= cold).min_by_key(|f| f.line) {
            f.is_cold = true;
        }
    }

    out
}

struct Parser<'a> {
    tokens: &'a [Token],
    lexed: &'a Lexed,
    ctx: FileContext<'a>,
    in_test: &'a dyn Fn(u32) -> bool,
    out: &'a mut FileSummary,
}

impl Parser<'_> {
    fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    fn line(&self, i: usize) -> u32 {
        self.tokens.get(i).map_or(0, |t| t.line)
    }

    /// Skip `#[...]` / `#![...]` attributes starting at `i`; returns the
    /// index after them and the line of the first attribute (if any).
    fn skip_attrs(&self, mut i: usize) -> (usize, Option<u32>) {
        let mut first = None;
        while self.punct(i, '#') {
            let open = if self.punct(i + 1, '[') {
                i + 1
            } else if self.punct(i + 1, '!') && self.punct(i + 2, '[') {
                i + 2
            } else {
                break;
            };
            match lints::match_bracket(self.tokens, open, '[', ']') {
                Some(end) => {
                    first.get_or_insert(self.line(i));
                    i = end + 1;
                }
                None => break,
            }
        }
        (i, first)
    }

    /// Skip a generics list `<...>` starting at `i` (which must hold
    /// `<`); returns the index after the closing `>`. `->` inside (fn
    /// pointer types) does not close the list.
    fn skip_generics(&self, i: usize) -> usize {
        if !self.punct(i, '<') {
            return i;
        }
        let mut depth = 0i32;
        let mut j = i;
        while j < self.tokens.len() {
            match &self.tokens[j].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') if j > 0 && matches!(self.tokens[j - 1].tok, Tok::Punct('-')) => {}
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.tokens.len()
    }

    /// Walk the items in `tokens[start..end]`, with `owner` set inside an
    /// `impl` block.
    fn items(&mut self, start: usize, end: usize, owner: Option<&str>) {
        let mut i = start;
        while i < end {
            let (after_attrs, attr_line) = self.skip_attrs(i);
            if after_attrs != i {
                // Re-dispatch on the item the attributes decorate; the
                // attribute line anchors doc adjacency for D014.
                i = self.item(after_attrs, end, owner, attr_line);
                continue;
            }
            i = self.item(i, end, owner, None);
        }
    }

    /// Parse (or skip) one item starting at `i`; returns the index after
    /// it. `attr_line` is the line of its first attribute, if any.
    fn item(&mut self, i: usize, end: usize, owner: Option<&str>, attr_line: Option<u32>) -> usize {
        let Some(name) = self.ident(i) else {
            return i + 1;
        };
        match name {
            "pub" => {
                // `pub`, `pub(crate)`, `pub(in path)` — remember plain-pub
                // for D014 and re-dispatch.
                let restricted = self.punct(i + 1, '(');
                let next = if restricted {
                    lints::match_bracket(self.tokens, i + 1, '(', ')').map_or(i + 2, |e| e + 1)
                } else {
                    i + 1
                };
                self.pub_item(next, owner, attr_line, !restricted)
            }
            "struct" | "enum" | "union" | "trait" => self.type_item(i, owner, attr_line, false),
            "fn" => self.fn_item(i, owner),
            "impl" => self.impl_item(i),
            "mod" => {
                // `mod name { ... }` — recurse; `mod name;` — skip.
                let mut j = i + 1;
                while j < end && !self.punct(j, '{') && !self.punct(j, ';') {
                    j += 1;
                }
                if self.punct(j, '{') {
                    match lints::match_bracket(self.tokens, j, '{', '}') {
                        Some(close) => {
                            self.items(j + 1, close, None);
                            close + 1
                        }
                        None => end,
                    }
                } else {
                    j + 1
                }
            }
            _ => i + 1,
        }
    }

    /// An item directly after `pub` (and after any visibility restriction).
    fn pub_item(
        &mut self,
        i: usize,
        owner: Option<&str>,
        attr_line: Option<u32>,
        exported: bool,
    ) -> usize {
        match self.ident(i) {
            Some("struct" | "enum" | "union" | "trait") => {
                self.type_item(i, owner, attr_line, exported)
            }
            Some("fn") => self.fn_item(i, owner),
            Some("unsafe" | "const" | "async") => self.pub_item(i + 1, owner, attr_line, exported),
            _ => i + 1,
        }
    }

    /// A type declaration (`struct`/`enum`/`union`/`trait`), possibly
    /// exported. Records D014 candidates and counter fields.
    fn type_item(
        &mut self,
        i: usize,
        _owner: Option<&str>,
        attr_line: Option<u32>,
        exported: bool,
    ) -> usize {
        let keyword_line = self.line(i);
        let Some(type_name) = self.ident(i + 1).map(str::to_string) else {
            return i + 1;
        };
        let mut j = self.skip_generics(i + 2);
        // Tuple struct `(…)` / where clauses: scan to the item body `{`
        // or terminating `;` at this nesting level.
        let mut body: Option<(usize, usize)> = None;
        while j < self.tokens.len() {
            if self.punct(j, '(') {
                j = lints::match_bracket(self.tokens, j, '(', ')').map_or(j + 1, |e| e + 1);
                continue;
            }
            if self.punct(j, '<') {
                j = self.skip_generics(j);
                continue;
            }
            if self.punct(j, ';') {
                j += 1;
                break;
            }
            if self.punct(j, '{') {
                match lints::match_bracket(self.tokens, j, '{', '}') {
                    Some(close) => {
                        body = Some((j, close));
                        j = close + 1;
                    }
                    None => j = self.tokens.len(),
                }
                break;
            }
            j += 1;
        }

        if exported
            && self.ctx.kind == FileKind::Lib
            && lints::is_sim_crate(self.ctx.crate_name)
            && !(self.in_test)(keyword_line)
        {
            let anchor = attr_line.unwrap_or(keyword_line);
            let documented = anchor > 0 && self.lexed.doc_lines.contains(&(anchor - 1));
            self.out.types.push(TypeSummary {
                name: type_name.clone(),
                line: keyword_line,
                documented,
            });
        }

        // Counter-field registry: unsigned integer fields of structs
        // named `*Stats` / `*Counters`.
        if (type_name.ends_with("Stats") || type_name.ends_with("Counters"))
            && self.ident(i) == Some("struct")
        {
            if let Some((open, close)) = body {
                let mut k = open + 1;
                while k < close {
                    // Field pattern at depth 1: [pub[(…)]] name : Type
                    if self.ident(k) == Some("pub") {
                        k += 1;
                        if self.punct(k, '(') {
                            k = lints::match_bracket(self.tokens, k, '(', ')')
                                .map_or(k + 1, |e| e + 1);
                        }
                        continue;
                    }
                    if let Some(field) = self.ident(k) {
                        if self.punct(k + 1, ':')
                            && matches!(
                                self.ident(k + 2),
                                Some("u8" | "u16" | "u32" | "u64" | "u128" | "usize")
                            )
                        {
                            self.out.counter_fields.push(field.to_string());
                        }
                    }
                    // Advance to the comma at depth 1.
                    let mut depth = 0usize;
                    k += 1;
                    while k < close {
                        match &self.tokens[k].tok {
                            Tok::Punct('{' | '(' | '[' | '<') => depth += 1,
                            Tok::Punct('}' | ')' | ']') => depth = depth.saturating_sub(1),
                            Tok::Punct('>') if depth > 0 => depth -= 1,
                            Tok::Punct(',') if depth == 0 => {
                                k += 1;
                                break;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
        }

        // Trait bodies contain fn signatures/default bodies; walk them.
        if self.ident(i) == Some("trait") {
            if let Some((open, close)) = body {
                self.items(open + 1, close, None);
            }
        }
        j
    }

    /// An `impl` block: find the implemented type, recurse with `owner`.
    fn impl_item(&mut self, i: usize) -> usize {
        let mut j = self.skip_generics(i + 1);
        // Path up to `for` (trait impl) or `{`; the owner type is the last
        // path segment before the body, after `for` when present.
        let mut last_ident: Option<String> = None;
        let mut owner: Option<String> = None;
        while j < self.tokens.len() {
            if let Some(id) = self.ident(j) {
                if id == "for" {
                    owner = None; // everything before `for` was the trait
                    j += 1;
                    continue;
                }
                last_ident = Some(id.to_string());
                owner = last_ident.clone();
                j += 1;
                continue;
            }
            if self.punct(j, '<') {
                j = self.skip_generics(j);
                continue;
            }
            if self.punct(j, '{') {
                let close = match lints::match_bracket(self.tokens, j, '{', '}') {
                    Some(c) => c,
                    None => return self.tokens.len(),
                };
                let owner = owner.or(last_ident);
                self.items(j + 1, close, owner.as_deref());
                return close + 1;
            }
            if self.punct(j, ';') {
                return j + 1;
            }
            j += 1;
        }
        j
    }

    /// A `fn` item: signature facts plus a body scan for calls,
    /// allocations, discards, counter ops, and D011 sites.
    fn fn_item(&mut self, i: usize, owner: Option<&str>) -> usize {
        let fn_line = self.line(i);
        let Some(name) = self.ident(i + 1).map(str::to_string) else {
            return i + 1;
        };
        // Signature: up to the body `{` or declaration-terminating `;`.
        let mut j = i + 2;
        let mut arrow_at: Option<usize> = None;
        let mut body: Option<(usize, usize)> = None;
        while j < self.tokens.len() {
            if self.punct(j, '(') || self.punct(j, '[') {
                let (o, c) = if self.punct(j, '(') { ('(', ')') } else { ('[', ']') };
                j = lints::match_bracket(self.tokens, j, o, c).map_or(j + 1, |e| e + 1);
                continue;
            }
            if self.punct(j, '<') {
                j = self.skip_generics(j);
                continue;
            }
            if self.punct(j, '-') && self.punct(j + 1, '>') {
                arrow_at = Some(j);
                j += 2;
                continue;
            }
            if self.punct(j, ';') {
                j += 1;
                break;
            }
            if self.punct(j, '{') {
                match lints::match_bracket(self.tokens, j, '{', '}') {
                    Some(close) => {
                        body = Some((j, close));
                        j = close + 1;
                    }
                    None => j = self.tokens.len(),
                }
                break;
            }
            j += 1;
        }
        let returns_result = match (arrow_at, body) {
            (Some(a), Some((open, _))) => (a..open)
                .any(|k| matches!(self.ident(k), Some("Result" | "SimResult" | "IoResult"))),
            (Some(a), None) => {
                (a..j).any(|k| matches!(self.ident(k), Some("Result" | "SimResult" | "IoResult")))
            }
            _ => false,
        };

        let mut f = FnSummary {
            name,
            owner: owner.map(str::to_string),
            line: fn_line,
            is_hot: false,
            is_cold: false,
            returns_result,
            calls: Vec::new(),
            allocs: Vec::new(),
        };
        if let Some((open, close)) = body {
            self.scan_body(open + 1, close, &mut f);
        }
        self.out.fns.push(f);
        j
    }

    /// Scan a function body for call sites, allocations, discards,
    /// counter subtractions, and order-sensitive float reductions.
    fn scan_body(&mut self, start: usize, end: usize, f: &mut FnSummary) {
        let sim_lib = lints::is_sim_crate(self.ctx.crate_name) && self.ctx.kind == FileKind::Lib;
        let mut i = start;
        while i < end {
            let t = &self.tokens[i];
            let line = t.line;
            let tested = (self.in_test)(line);
            let Some(name) = self.ident(i).map(str::to_string) else {
                i += 1;
                continue;
            };
            let name = name.as_str();

            // Nested `fn` definition: its name token is not a call.
            if name == "fn" {
                i += 2;
                continue;
            }

            // Allocation sites (shared detector with D009).
            if !tested {
                if let Some(what) = lints::alloc_at(self.tokens, i) {
                    f.allocs.push(AllocSite { line, what });
                }
            }

            // `let _ = <expr>;` — record the final top-level call.
            if !tested && name == "let" && self.ident(i + 1) == Some("_") && self.punct(i + 2, '=')
            {
                if let Some((callee, qual, stmt_end)) = self.final_call_of_stmt(i + 3, end) {
                    self.out.discards.push(Discard {
                        line,
                        callee,
                        qualifier: qual,
                        kind: DiscardKind::LetUnderscore,
                    });
                    i = stmt_end;
                    continue;
                }
            }

            // Call detection: `name(`, `qual::name(`, `.name(`, and
            // turbofish `name::<..>(`.
            let is_call = !KEYWORDS.contains(&name)
                && !self.punct(i + 1, '!') // macro
                && (self.punct(i + 1, '(')
                    || (self.punct(i + 1, ':')
                        && self.punct(i + 2, ':')
                        && self.punct(i + 3, '<')
                        && self.punct(self.skip_generics(i + 3), '(')));
            if is_call {
                let method = self.punct(i.wrapping_sub(1), '.');
                let qualifier = if !method
                    && self.punct(i.wrapping_sub(1), ':')
                    && self.punct(i.wrapping_sub(2), ':')
                {
                    self.ident(i.wrapping_sub(3)).map(str::to_string)
                } else {
                    None
                };
                if !tested {
                    f.calls.push(Call { name: name.to_string(), qualifier, method, line });
                }

                // `<call>.ok();` — fallible result downgraded and dropped.
                if !tested && name == "ok" && method && self.punct(i + 1, '(') {
                    if let Some(close) = lints::match_bracket(self.tokens, i + 1, '(', ')') {
                        if self.punct(close + 1, ';') {
                            if let Some((callee, qual)) = self.call_before(i.wrapping_sub(1)) {
                                self.out.discards.push(Discard {
                                    line,
                                    callee,
                                    qualifier: qual,
                                    kind: DiscardKind::OkDropped,
                                });
                            }
                        }
                    }
                }
            }

            // D011: order-sensitive float reductions (sim-crate lib code).
            if sim_lib && !tested {
                self.check_d011(i, name, line);
            }

            // D012 candidate: `.field -= …` / `.field - …` (not `->`).
            if !tested
                && sim_lib
                && self.punct(i.wrapping_sub(1), '.')
                && self.punct(i + 1, '-')
                && !self.punct(i + 2, '>')
            {
                let op = if self.punct(i + 2, '=') { "-=" } else { "-" };
                self.out.counter_ops.push(CounterOp { line, field: name.to_string(), op });
            }

            i += 1;
        }
    }

    /// D011 at one token: `.sum::<f64>()` / `.product::<f64>()`
    /// turbofished to a float, or `.fold(<float literal>, …)`.
    fn check_d011(&mut self, i: usize, name: &str, line: u32) {
        if !self.punct(i.wrapping_sub(1), '.') {
            return;
        }
        let float_turbofish = matches!(name, "sum" | "product")
            && self.punct(i + 1, ':')
            && self.punct(i + 2, ':')
            && self.punct(i + 3, '<')
            && matches!(self.ident(i + 4), Some("f32" | "f64"));
        let float_fold = name == "fold"
            && self.punct(i + 1, '(')
            && matches!(
                self.tokens.get(i + 2).map(|t| &t.tok),
                Some(Tok::Number(n)) if n.contains('.') || n.ends_with("f32") || n.ends_with("f64")
            );
        if float_turbofish || float_fold {
            let what = if float_fold {
                format!(".{name}(<float>, …)")
            } else {
                format!(".{name}::<float>()")
            };
            self.out.local.push(LocalFinding {
                line,
                code: "D011",
                message: format!("order-sensitive float reduction `{what}`"),
            });
        }
    }

    /// The final top-level call of the statement starting at `i` (for
    /// `let _ = …;`): scan to the `;` at depth 0, remembering the last
    /// `name(` at depth 0. Returns `(callee, qualifier, index after ;)`.
    fn final_call_of_stmt(
        &self,
        start: usize,
        end: usize,
    ) -> Option<(String, Option<String>, usize)> {
        let mut depth = 0usize;
        let mut last: Option<(String, Option<String>)> = None;
        let mut i = start;
        while i < end {
            match &self.tokens[i].tok {
                Tok::Punct('(' | '[' | '{') => depth += 1,
                Tok::Punct(')' | ']' | '}') => depth = depth.saturating_sub(1),
                Tok::Punct(';') if depth == 0 => {
                    return last.map(|(c, q)| (c, q, i + 1));
                }
                Tok::Ident(name)
                    if depth == 0
                        && !KEYWORDS.contains(&name.as_str())
                        && self.punct(i + 1, '(')
                        && !self.punct(i.wrapping_sub(1), '!') =>
                {
                    let qualifier = if self.punct(i.wrapping_sub(1), ':')
                        && self.punct(i.wrapping_sub(2), ':')
                    {
                        self.ident(i.wrapping_sub(3)).map(str::to_string)
                    } else {
                        None
                    };
                    last = Some((name.clone(), qualifier));
                }
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Walk left from `i` (which holds the `.` of `.ok()`) to the call
    /// whose result is being `.ok()`-ed: `name(…)` or `name::<..>(…)`
    /// directly before the dot.
    fn call_before(&self, dot: usize) -> Option<(String, Option<String>)> {
        if !self.punct(dot, '.') {
            return None;
        }
        let before = dot.checked_sub(1)?;
        if !self.punct(before, ')') {
            return None;
        }
        // Find the matching `(` by walking backwards.
        let mut depth = 0usize;
        let mut j = before;
        loop {
            match &self.tokens[j].tok {
                Tok::Punct(')') => depth += 1,
                Tok::Punct('(') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j = j.checked_sub(1)?;
        }
        let callee_at = j.checked_sub(1)?;
        let name = self.ident(callee_at)?;
        if KEYWORDS.contains(&name) {
            return None;
        }
        let qualifier = if self.punct(callee_at.wrapping_sub(1), ':')
            && self.punct(callee_at.wrapping_sub(2), ':')
        {
            self.ident(callee_at.wrapping_sub(3)).map(str::to_string)
        } else {
            None
        };
        Some((name.to_string(), qualifier))
    }
}

//! The incremental lint cache: per-file [`FileSummary`] digests keyed by
//! `(size, mtime, content hash)`, persisted under `target/asd-lint/`.
//!
//! A re-lint of an unchanged tree then skips lexing and parsing entirely
//! — each file is admitted by a `stat` call (size + mtime match) or, when
//! the mtime moved but the bytes did not, by an FNV-1a content hash — and
//! the semantic pass replays the cached summaries. Because the cache
//! stores *summaries* (not findings), the workspace-level lints (D010,
//! D012, D013, stale-allow detection) are recomputed every run and see
//! cross-file edits even when only one file changed; output is therefore
//! bit-identical with the cache hot, cold, or disabled.
//!
//! The store is a versioned, line-oriented text file. Any parse anomaly
//! (truncation, version bump, hand edits) silently degrades to a cold
//! scan — the cache is an accelerator, never a source of truth.

use crate::lexer::Allow;
use crate::lints::FileKind;
use crate::parse::{
    AllocSite, Call, CounterOp, Discard, DiscardKind, FileSummary, FnSummary, LocalFinding,
    TypeSummary,
};
use std::fs;
use std::path::{Path, PathBuf};

/// Bump when the summary schema or any lint's site collection changes:
/// stale-format caches must never replay.
const VERSION: &str = "asd-lint-cache/3";

/// One cached file entry: the freshness key plus the summary.
#[derive(Debug)]
pub struct Entry {
    /// File size in bytes.
    pub size: u64,
    /// Modification time, nanoseconds since the Unix epoch (0 when the
    /// platform provides none — those entries re-hash every run).
    pub mtime_ns: u128,
    /// FNV-1a 64 hash of the file contents.
    pub hash: u64,
    /// The parsed summary.
    pub summary: FileSummary,
}

/// The cache store: entries keyed by workspace-relative path.
#[derive(Debug, Default)]
pub struct Store {
    entries: Vec<Entry>,
}

/// FNV-1a 64-bit over `bytes` — tiny, dependency-free, and stable across
/// platforms (this is a freshness check, not a security boundary).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `(size, mtime_ns)` for a file; mtime degrades to 0 when unavailable.
pub fn stat_key(path: &Path) -> Option<(u64, u128)> {
    let meta = fs::metadata(path).ok()?;
    let mtime = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map_or(0u128, |d| d.as_nanos());
    Some((meta.len(), mtime))
}

/// Where the cache lives for a given workspace root.
pub fn store_path(root: &Path) -> PathBuf {
    root.join("target").join("asd-lint").join("summaries.v3.txt")
}

impl Store {
    /// Load the store from disk; a missing, unreadable, or
    /// version-mismatched file is simply an empty cache.
    pub fn load(root: &Path) -> Store {
        let Ok(text) = fs::read_to_string(store_path(root)) else {
            return Store::default();
        };
        parse_store(&text).unwrap_or_default()
    }

    /// Look up `rel_path`, admitting the entry if the stat key matches
    /// exactly, or — on mtime drift — if the content hash still matches
    /// (`hash_if_needed` supplies it lazily so untouched files never get
    /// read).
    pub fn lookup(
        &self,
        rel_path: &str,
        size: u64,
        mtime_ns: u128,
        hash_if_needed: impl FnOnce() -> Option<u64>,
    ) -> Option<&FileSummary> {
        let e = self.entries.iter().find(|e| e.summary.path == rel_path)?;
        if e.size != size {
            return None;
        }
        if e.mtime_ns == mtime_ns && mtime_ns != 0 {
            return Some(&e.summary);
        }
        if hash_if_needed()? == e.hash {
            return Some(&e.summary);
        }
        None
    }

    /// Insert or replace the entry for `summary.path`.
    pub fn put(&mut self, size: u64, mtime_ns: u128, hash: u64, summary: FileSummary) {
        self.entries.retain(|e| e.summary.path != summary.path);
        self.entries.push(Entry { size, mtime_ns, hash, summary });
    }

    /// Persist to disk (atomically via a temp file + rename). Errors are
    /// swallowed: failing to write a cache must never fail the lint run.
    pub fn save(&self, root: &Path) {
        let path = store_path(root);
        let Some(dir) = path.parent() else { return };
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        let mut entries: Vec<&Entry> = self.entries.iter().collect();
        entries.sort_by(|a, b| a.summary.path.cmp(&b.summary.path));
        let mut out = String::new();
        out.push_str(VERSION);
        out.push('\n');
        for e in entries {
            render_entry(&mut out, e);
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if fs::write(&tmp, &out).is_ok() {
            let _ = fs::rename(&tmp, &path);
        }
    }
}

// ---------------------------------------------------------------------
// Serialisation: one record per line, tab-separated fields, `esc()`ed
// strings. `file` lines open an entry; the lines that follow attach to
// it (`fn` lines open a function; `call`/`alloc` lines attach to the
// most recent `fn`).
// ---------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => break,
        }
    }
    out
}

fn kind_tag(kind: FileKind) -> &'static str {
    match kind {
        FileKind::Lib => "lib",
        FileKind::Bin => "bin",
        FileKind::Bench => "bench",
        FileKind::Example => "example",
        FileKind::Test => "test",
    }
}

fn parse_kind(tag: &str) -> Option<FileKind> {
    Some(match tag {
        "lib" => FileKind::Lib,
        "bin" => FileKind::Bin,
        "bench" => FileKind::Bench,
        "example" => FileKind::Example,
        "test" => FileKind::Test,
        _ => return None,
    })
}

fn render_entry(out: &mut String, e: &Entry) {
    let s = &e.summary;
    out.push_str(&format!(
        "file\t{}\t{}\t{}\t{}\t{}\t{}\n",
        esc(&s.path),
        e.size,
        e.mtime_ns,
        e.hash,
        esc(&s.crate_name),
        kind_tag(s.kind)
    ));
    for f in &s.fns {
        out.push_str(&format!(
            "fn\t{}\t{}\t{}\t{}\t{}\t{}\n",
            esc(&f.name),
            f.owner.as_deref().map(esc).unwrap_or_default(),
            f.line,
            u8::from(f.is_hot),
            u8::from(f.is_cold),
            u8::from(f.returns_result),
        ));
        for c in &f.calls {
            out.push_str(&format!(
                "call\t{}\t{}\t{}\t{}\n",
                esc(&c.name),
                c.qualifier.as_deref().map(esc).unwrap_or_default(),
                u8::from(c.method),
                c.line
            ));
        }
        for a in &f.allocs {
            out.push_str(&format!("alloc\t{}\t{}\n", a.line, esc(&a.what)));
        }
    }
    for t in &s.types {
        out.push_str(&format!("type\t{}\t{}\t{}\n", esc(&t.name), t.line, u8::from(t.documented)));
    }
    for c in &s.counter_fields {
        out.push_str(&format!("cfield\t{}\n", esc(c)));
    }
    for o in &s.counter_ops {
        out.push_str(&format!("cop\t{}\t{}\t{}\n", o.line, esc(&o.field), o.op));
    }
    for d in &s.discards {
        let kind = match d.kind {
            DiscardKind::LetUnderscore => "let",
            DiscardKind::OkDropped => "ok",
        };
        out.push_str(&format!(
            "discard\t{}\t{}\t{}\t{}\n",
            d.line,
            esc(&d.callee),
            d.qualifier.as_deref().map(esc).unwrap_or_default(),
            kind
        ));
    }
    for lf in &s.local {
        out.push_str(&format!("find\t{}\t{}\t{}\n", lf.line, lf.code, esc(&lf.message)));
    }
    for a in &s.allows {
        out.push_str(&format!(
            "allow\t{}\t{}\t{}\n",
            a.line,
            u8::from(a.well_formed),
            esc(&a.codes.join(","))
        ));
    }
}

fn parse_store(text: &str) -> Option<Store> {
    let mut lines = text.lines();
    if lines.next()? != VERSION {
        return None;
    }
    let mut entries: Vec<Entry> = Vec::new();
    for line in lines {
        let mut f = line.split('\t');
        let tag = f.next()?;
        match tag {
            "file" => {
                let path = unesc(f.next()?);
                let size = f.next()?.parse().ok()?;
                let mtime_ns = f.next()?.parse().ok()?;
                let hash = f.next()?.parse().ok()?;
                let crate_name = unesc(f.next()?);
                let kind = parse_kind(f.next()?)?;
                entries.push(Entry {
                    size,
                    mtime_ns,
                    hash,
                    summary: FileSummary {
                        path,
                        crate_name,
                        kind,
                        fns: Vec::new(),
                        types: Vec::new(),
                        counter_fields: Vec::new(),
                        counter_ops: Vec::new(),
                        discards: Vec::new(),
                        local: Vec::new(),
                        allows: Vec::new(),
                    },
                });
            }
            "fn" => {
                let s = &mut entries.last_mut()?.summary;
                let name = unesc(f.next()?);
                let owner_raw = f.next()?;
                let owner = if owner_raw.is_empty() { None } else { Some(unesc(owner_raw)) };
                s.fns.push(FnSummary {
                    name,
                    owner,
                    line: f.next()?.parse().ok()?,
                    is_hot: f.next()? == "1",
                    is_cold: f.next()? == "1",
                    returns_result: f.next()? == "1",
                    calls: Vec::new(),
                    allocs: Vec::new(),
                });
            }
            "call" => {
                let func = entries.last_mut()?.summary.fns.last_mut()?;
                let name = unesc(f.next()?);
                let q_raw = f.next()?;
                let qualifier = if q_raw.is_empty() { None } else { Some(unesc(q_raw)) };
                func.calls.push(Call {
                    name,
                    qualifier,
                    method: f.next()? == "1",
                    line: f.next()?.parse().ok()?,
                });
            }
            "alloc" => {
                let func = entries.last_mut()?.summary.fns.last_mut()?;
                func.allocs
                    .push(AllocSite { line: f.next()?.parse().ok()?, what: unesc(f.next()?) });
            }
            "type" => {
                let s = &mut entries.last_mut()?.summary;
                s.types.push(TypeSummary {
                    name: unesc(f.next()?),
                    line: f.next()?.parse().ok()?,
                    documented: f.next()? == "1",
                });
            }
            "cfield" => {
                entries.last_mut()?.summary.counter_fields.push(unesc(f.next()?));
            }
            "cop" => {
                let s = &mut entries.last_mut()?.summary;
                let line = f.next()?.parse().ok()?;
                let field = unesc(f.next()?);
                let op = match f.next()? {
                    "-=" => "-=",
                    "-" => "-",
                    _ => return None,
                };
                s.counter_ops.push(CounterOp { line, field, op });
            }
            "discard" => {
                let s = &mut entries.last_mut()?.summary;
                let line = f.next()?.parse().ok()?;
                let callee = unesc(f.next()?);
                let q_raw = f.next()?;
                let qualifier = if q_raw.is_empty() { None } else { Some(unesc(q_raw)) };
                let kind = match f.next()? {
                    "let" => DiscardKind::LetUnderscore,
                    "ok" => DiscardKind::OkDropped,
                    _ => return None,
                };
                s.discards.push(Discard { line, callee, qualifier, kind });
            }
            "find" => {
                let s = &mut entries.last_mut()?.summary;
                let line = f.next()?.parse().ok()?;
                let code_raw = f.next()?;
                // Codes intern back to the catalog's static strings; an
                // unknown code means a schema drift -> reject the store.
                let code = crate::lints::CATALOG.iter().map(|l| l.code).find(|c| *c == code_raw)?;
                s.local.push(LocalFinding { line, code, message: unesc(f.next()?) });
            }
            "allow" => {
                let s = &mut entries.last_mut()?.summary;
                let line = f.next()?.parse().ok()?;
                let well_formed = f.next()? == "1";
                let codes_raw = unesc(f.next()?);
                let codes: Vec<String> = if codes_raw.is_empty() {
                    Vec::new()
                } else {
                    codes_raw.split(',').map(str::to_string).collect()
                };
                s.allows.push(Allow { line, codes, well_formed });
            }
            _ => return None,
        }
    }
    Some(Store { entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> FileSummary {
        FileSummary {
            path: "crates/mc/src/x.rs".into(),
            crate_name: "mc".into(),
            kind: FileKind::Lib,
            fns: vec![FnSummary {
                name: "advance".into(),
                owner: Some("MemoryController".into()),
                line: 10,
                is_hot: true,
                is_cold: false,
                returns_result: false,
                calls: vec![Call { name: "push".into(), qualifier: None, method: true, line: 12 }],
                allocs: vec![AllocSite { line: 14, what: "vec![...]".into() }],
            }],
            types: vec![TypeSummary { name: "McStats".into(), line: 3, documented: true }],
            counter_fields: vec!["reads".into()],
            counter_ops: vec![CounterOp { line: 20, field: "reads".into(), op: "-=" }],
            discards: vec![Discard {
                line: 22,
                callee: "flush".into(),
                qualifier: Some("Self".into()),
                kind: DiscardKind::OkDropped,
            }],
            local: vec![LocalFinding {
                line: 5,
                code: "D002",
                message: "tab\there, newline\nthere".into(),
            }],
            allows: vec![Allow { line: 4, codes: vec!["D002".into()], well_formed: true }],
        }
    }

    #[test]
    fn roundtrip_preserves_summary() {
        let mut out = String::new();
        out.push_str(VERSION);
        out.push('\n');
        let e = Entry { size: 123, mtime_ns: 456, hash: 789, summary: sample_summary() };
        render_entry(&mut out, &e);
        let store = parse_store(&out).expect("roundtrip parses");
        let got = &store.entries[0];
        assert_eq!(got.size, 123);
        assert_eq!(got.mtime_ns, 456);
        assert_eq!(got.hash, 789);
        let s = &got.summary;
        let orig = sample_summary();
        assert_eq!(s.path, orig.path);
        assert_eq!(s.fns, orig.fns);
        assert_eq!(s.types, orig.types);
        assert_eq!(s.counter_fields, orig.counter_fields);
        assert_eq!(s.counter_ops, orig.counter_ops);
        assert_eq!(s.discards, orig.discards);
        assert_eq!(s.local, orig.local);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].codes, ["D002"]);
    }

    #[test]
    fn version_mismatch_rejects_store() {
        assert!(parse_store("asd-lint-cache/0\n").is_none());
        assert!(parse_store("").is_none());
    }

    #[test]
    fn truncated_store_rejects() {
        let mut out = String::new();
        out.push_str(VERSION);
        out.push('\n');
        out.push_str("fn\torphan\t\t1\t0\t0\t\n"); // fn before any file line
        assert!(parse_store(&out).is_none());
    }

    #[test]
    fn fnv_reference_values() {
        // FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}

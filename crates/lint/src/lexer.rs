//! A minimal hand-rolled Rust lexer: just enough fidelity for static
//! analysis of the workspace's own sources.
//!
//! The lexer understands the constructs that defeat naive `grep`-style
//! scanning — line and nested block comments, string / raw-string / byte /
//! char literals, lifetimes vs. char literals, raw identifiers — and
//! reduces everything else to identifiers and single-character
//! punctuation. String/char literal *contents* are deliberately
//! discarded: no lint cares what a string says, only that it is not
//! code. Number literals keep their text, because D008 must tell
//! `remove(0)` apart from `remove(idx)`.
//!
//! Suppression directives (`// asd-lint: allow(Dxxx) -- reason`),
//! hot-path markers (`// asd-lint: hot`), and cold-path markers
//! (`// asd-lint: cold`) are recognised while scanning line comments and
//! surfaced separately so the driver can match them against findings
//! (respectively: suppress them; anchor D009's per-function allocation
//! scan and D010's reachability roots; and cut D010's call-graph walk at
//! functions that are off the per-cycle path).

/// One lexed token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `static`, `unwrap`, ...).
    Ident(String),
    /// A lifetime or loop label (`'a`, `'static`) — kept distinct so
    /// `&'static mut T` never reads as `static mut`.
    Lifetime(String),
    /// A non-numeric literal: string, raw string, byte string, or char.
    Literal,
    /// A number literal, with its source text (suffixes and `_`
    /// separators included).
    Number(String),
    /// A single punctuation character (`.`, `!`, `:`, `{`, ...).
    Punct(char),
}

/// A token plus the 1-based source line it starts on and its span.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
    /// Char offset (0-based, inclusive) of the token's first character.
    pub start: u32,
    /// Char offset (exclusive) one past the token's last character.
    pub end: u32,
}

/// A `// asd-lint: allow(...)` suppression directive found in a comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the directive appears on.
    pub line: u32,
    /// The lint codes listed inside `allow(...)`.
    pub codes: Vec<String>,
    /// Whether the directive is well-formed: valid `Dxxx` codes and a
    /// non-empty `-- reason` trailer.
    pub well_formed: bool,
}

/// The full result of lexing one source file.
#[derive(Debug)]
pub struct Lexed {
    /// Token stream with comments and literal contents stripped.
    pub tokens: Vec<Token>,
    /// Every suppression directive encountered, well-formed or not.
    pub allows: Vec<Allow>,
    /// 1-based lines carrying a `// asd-lint: hot` hot-path marker
    /// (D009 scans the function that follows each one).
    pub hots: Vec<u32>,
    /// 1-based lines carrying a `// asd-lint: cold` marker: the function
    /// that follows is declared off the per-cycle path (exposition,
    /// amortized growth), and D010's reachability walk stops there.
    pub colds: Vec<u32>,
    /// Every 1-based line covered by a doc comment (`///`, `//!`, or a
    /// `/** ... */` / `/*! ... */` block). D014 uses adjacency to these
    /// lines to decide whether an exported item is documented.
    pub doc_lines: Vec<u32>,
}

/// Lex `src` into tokens and suppression directives. Never fails: any
/// byte sequence produces *some* token stream (unterminated literals run
/// to end of file).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        tokens: Vec::new(),
        allows: Vec::new(),
        hots: Vec::new(),
        colds: Vec::new(),
        doc_lines: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    tokens: Vec<Token>,
    allows: Vec<Allow>,
    hots: Vec<u32>,
    colds: Vec<u32>,
    doc_lines: Vec<u32>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0);
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    /// Push a token that started at char offset `start` on `line` and
    /// ends at the current cursor.
    fn push_span(&mut self, tok: Tok, line: u32, start: usize) {
        self.tokens.push(Token { tok, line, start: start as u32, end: self.i as u32 });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.quote(),
                'r' | 'b' if self.literal_prefix() => {}
                c if is_ident_start(c) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let start = self.i;
                    if let Some(c) = self.bump() {
                        self.push_span(Tok::Punct(c), line, start);
                    }
                }
            }
        }
        Lexed {
            tokens: self.tokens,
            allows: self.allows,
            hots: self.hots,
            colds: self.colds,
            doc_lines: self.doc_lines,
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        // Doc comments (`///`, `//!`) are documentation: suppression
        // syntax quoted in them describes the directive rather than
        // invoking it. (`////...` is an ordinary comment again.)
        let doc = matches!(self.peek(2), Some('!'))
            || (self.peek(2) == Some('/') && self.peek(3) != Some('/'));
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if doc {
            self.doc_lines.push(line);
            return;
        }
        match parse_directive(&text, line) {
            Some(Directive::Allow(allow)) => self.allows.push(allow),
            Some(Directive::Hot) => self.hots.push(line),
            Some(Directive::Cold) => self.colds.push(line),
            None => {}
        }
    }

    fn block_comment(&mut self) {
        // `/** ... */` and `/*! ... */` are doc blocks (`/**/` and `/***/`
        // degenerate forms are not).
        let doc = (self.peek(2) == Some('*') && !matches!(self.peek(3), Some('/' | '*')))
            || self.peek(2) == Some('!');
        let first_line = self.line;
        // Rust block comments nest.
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        if doc {
            self.doc_lines.extend(first_line..=self.line);
        }
    }

    fn string_literal(&mut self) {
        let line = self.line;
        let start = self.i;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push_span(Tok::Literal, line, start);
    }

    /// `r"..."`, `r#"..."#`, `b"..."`, `br##"..."##`, `b'x'`, or a raw
    /// identifier `r#name`. Returns true if a prefixed construct was
    /// consumed; false means the leading `r`/`b` is an ordinary identifier
    /// and the caller should lex it as such.
    fn literal_prefix(&mut self) -> bool {
        let c0 = match self.peek(0) {
            Some(c) => c,
            None => return false,
        };
        if c0 == 'b' && self.peek(1) == Some('\'') {
            // Byte char literal: consume `b`, then reuse char-literal logic.
            let line = self.line;
            self.bump();
            self.char_literal(line);
            return true;
        }
        if c0 == 'b' && self.peek(1) == Some('"') {
            // Byte string: escapes work like an ordinary string.
            self.bump();
            self.string_literal();
            return true;
        }
        // Remaining prefixed forms are raw: `r`/`br` + hashes + quote.
        let prefix = match (c0, self.peek(1)) {
            ('b', Some('r')) => 2,
            ('r', _) => 1,
            _ => return false,
        };
        let mut hashes = 0usize;
        while self.peek(prefix + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(prefix + hashes) {
            Some('"') => {
                self.raw_string(prefix, hashes);
                true
            }
            Some(c) if c0 == 'r' && hashes == 1 && is_ident_start(c) => {
                // Raw identifier `r#type`: skip the prefix, lex the ident.
                self.bump();
                self.bump();
                self.ident();
                true
            }
            _ => false,
        }
    }

    fn raw_string(&mut self, prefix: usize, hashes: usize) {
        let line = self.line;
        let start = self.i;
        for _ in 0..prefix + hashes + 1 {
            self.bump(); // prefix chars, hashes, opening quote
        }
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // The closing quote must be followed by exactly the
                // opening hash count (`r##"…"##`); fewer hashes mean the
                // quote was literal text and scanning continues.
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push_span(Tok::Literal, line, start);
    }

    /// A `'`: either a lifetime/label or a char literal.
    fn quote(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let lifetime = match next {
            Some(c) if is_ident_start(c) => self.peek(2) != Some('\''),
            _ => false,
        };
        if lifetime {
            let start = self.i;
            self.bump(); // '
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                name.push(c);
                self.bump();
            }
            self.push_span(Tok::Lifetime(name), line, start);
        } else {
            self.char_literal(line);
        }
    }

    /// A char or byte-char literal body starting at the opening `'`.
    /// Escapes are consumed uniformly: `\u{…}` runs to its brace, `\x41`
    /// (and byte escapes like `\xff` in `b'…'`) take their hex digits, and
    /// single-char escapes (`\'`, `\\`, `\n`, …) take one char.
    fn char_literal(&mut self, line: u32) {
        let start = self.i;
        self.bump(); // opening '
        match self.bump() {
            Some('\\') => match self.bump() {
                Some('u') if self.peek(0) == Some('{') => {
                    while let Some(c) = self.bump() {
                        if c == '}' {
                            break;
                        }
                    }
                }
                Some('x') => {
                    for _ in 0..2 {
                        if self.peek(0).is_some_and(|c| c.is_ascii_hexdigit()) {
                            self.bump();
                        }
                    }
                }
                _ => {} // single-char escape, already consumed
            },
            Some('\'') => {
                // Empty literal `''` — malformed Rust, but recover.
                self.push_span(Tok::Literal, line, start);
                return;
            }
            _ => {} // the literal's char itself
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        self.push_span(Tok::Literal, line, start);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.i;
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            name.push(c);
            self.bump();
        }
        self.push_span(Tok::Ident(name), line, start);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `1..5` does not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_span(Tok::Number(text), line, start);
    }
}

/// One recognised `asd-lint:` comment directive.
enum Directive {
    /// A suppression (`allow(...)`), well-formed or not.
    Allow(Allow),
    /// A hot-path marker (`hot`).
    Hot,
    /// A cold-path marker (`cold`).
    Cold,
}

/// Parse a directive out of one line comment's text, if the marker
/// `asd-lint:` is present. Well-formed directives look like
/// `asd-lint: allow(D005) -- reason text` (codes may be a comma list) or
/// the path markers `asd-lint: hot` / `asd-lint: cold`, each optionally
/// followed by a `-- reason` trailer. Anything else after the marker is
/// reported as a malformed (suppression-shaped) directive so typos fail
/// loudly (D000).
fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let idx = comment.find("asd-lint:")?;
    let rest = comment[idx + "asd-lint:".len()..].trim_start();
    // `hot` / `cold`, bare or with a `-- reason` trailer.
    let marker = |kw: &str| {
        rest.strip_prefix(kw).is_some_and(|t| {
            let t = t.trim_start();
            t.is_empty() || t.strip_prefix("--").is_some_and(|r| !r.trim().is_empty())
        })
    };
    if marker("hot") {
        return Some(Directive::Hot);
    }
    if marker("cold") {
        return Some(Directive::Cold);
    }
    let Some(body) = rest.strip_prefix("allow(") else {
        return Some(Directive::Allow(Allow { line, codes: Vec::new(), well_formed: false }));
    };
    let Some(close) = body.find(')') else {
        return Some(Directive::Allow(Allow { line, codes: Vec::new(), well_formed: false }));
    };
    let codes: Vec<String> =
        body[..close].split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    let valid_codes = !codes.is_empty()
        && codes.iter().all(|c| {
            c.len() == 4 && c.starts_with('D') && c.chars().skip(1).all(|d| d.is_ascii_digit())
        });
    let reason = body[close + 1..].trim_start();
    let has_reason = reason.strip_prefix("--").is_some_and(|r| !r.trim().is_empty());
    Some(Directive::Allow(Allow { line, codes, well_formed: valid_codes && has_reason }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_stripped() {
        let src = "let a = 1; // HashMap in a comment\n/* Instant\n * spanning /* nested */ lines */ let b;";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"b".to_string()));
    }

    #[test]
    fn strings_are_opaque() {
        let ids = idents(r##"let s = "HashMap::unwrap()"; let r = r#"panic!"#; "##);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r##\"quote \"# inside\"##; after";
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "after"]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { '\\'' }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Lifetime(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
    }

    #[test]
    fn static_lifetime_is_not_static_ident() {
        let src = "fn f(x: &'static mut u8) {}";
        let ids = idents(src);
        assert!(!ids.contains(&"static".to_string()));
        assert!(ids.contains(&"mut".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "line1\n\"multi\nline\nstring\"\nafter";
        let lexed = lex(src);
        let after =
            lexed.tokens.iter().find(|t| t.tok == Tok::Ident("after".to_string())).map(|t| t.line);
        assert_eq!(after, Some(5));
    }

    #[test]
    fn raw_identifiers() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 1..40 { x(i); }";
        let lexed = lex(src);
        let dots = lexed.tokens.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        assert_eq!(dots, 2, "both dots of `..` survive");
    }

    #[test]
    fn allow_directive_parsed() {
        let src = "let x = 1; // asd-lint: allow(D005) -- invariant upheld by constructor\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.codes, ["D005"]);
        assert!(a.well_formed);
        assert_eq!(a.line, 1);
    }

    #[test]
    fn allow_directive_multiple_codes() {
        let src = "// asd-lint: allow(D002, D005) -- both justified here\n";
        let a = &lex(src).allows[0];
        assert_eq!(a.codes, ["D002", "D005"]);
        assert!(a.well_formed);
    }

    #[test]
    fn allow_directive_without_reason_is_malformed() {
        let src = "// asd-lint: allow(D005)\n";
        let a = &lex(src).allows[0];
        assert!(!a.well_formed);
    }

    #[test]
    fn allow_directive_bad_code_is_malformed() {
        let src = "// asd-lint: allow(D5) -- typo\n";
        let a = &lex(src).allows[0];
        assert!(!a.well_formed);
    }

    #[test]
    fn hot_marker_recorded() {
        let src = "// asd-lint: hot\nfn fast() {}\nlet x = 1; // asd-lint: hot\n";
        let lexed = lex(src);
        assert_eq!(lexed.hots, [1, 3]);
        assert!(lexed.allows.is_empty());
    }

    #[test]
    fn hot_marker_with_trailing_text_is_malformed() {
        let src = "// asd-lint: hot path below\n";
        let lexed = lex(src);
        assert!(lexed.hots.is_empty());
        assert_eq!(lexed.allows.len(), 1);
        assert!(!lexed.allows[0].well_formed);
    }

    #[test]
    fn doc_comments_do_not_carry_directives() {
        let src = "/// Suppress with `// asd-lint: allow(D005) -- reason`.\n//! asd-lint: allow(D001) -- also just documentation\nfn f() {}\n";
        assert!(lex(src).allows.is_empty());
    }

    #[test]
    fn deeply_nested_raw_strings() {
        // Hash counts above one, for both `r` and `br` prefixes, with
        // shorter closing candidates embedded in the body.
        let src =
            "let s = r###\"outer \"## still \"# inside\"###; let b = br##\"bytes \"# ok\"##; tail";
        assert_eq!(idents(src), ["let", "s", "let", "b", "tail"]);
    }

    #[test]
    fn byte_literals_take_hex_escapes() {
        // `b'\xff'` consumes both hex digits; byte-string escapes must
        // not terminate the literal early.
        let src = "let a = b'\\xff'; let s = b\"\\xde\\xad\\\"q\\\"\"; end";
        assert_eq!(idents(src), ["let", "a", "let", "s", "end"]);
    }

    #[test]
    fn doc_lines_recorded_for_line_and_block_doc() {
        let src = "/// one\nfn a() {}\n/** two\nspans */\nfn b() {}\n//! inner\n";
        assert_eq!(lex(src).doc_lines, vec![1, 3, 4, 6]);
    }

    #[test]
    fn cold_marker_recorded_with_optional_reason() {
        let src = "// asd-lint: cold\nfn a() {}\n// asd-lint: cold -- exposition only\nfn b() {}\n// asd-lint: hot -- per-cycle tick\nfn c() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.colds, [1, 3]);
        assert_eq!(lexed.hots, [5]);
        assert!(lexed.allows.is_empty());
    }

    #[test]
    fn marker_with_empty_reason_or_glued_suffix_is_malformed() {
        for src in ["// asd-lint: cold --\n", "// asd-lint: coldly\n", "// asd-lint: hot --  \n"] {
            let lexed = lex(src);
            assert!(lexed.colds.is_empty() && lexed.hots.is_empty(), "{src:?}");
            assert_eq!(lexed.allows.len(), 1, "{src:?}");
            assert!(!lexed.allows[0].well_formed, "{src:?}");
        }
    }

    #[test]
    fn spans_are_monotone_and_in_bounds_on_tricky_source() {
        let src = "let s = r##\"x\"##; /* c /* n */ */ b'\\x00'; 'a'; r#type 1..2\n\"m\nl\"\nend";
        let lexed = lex(src);
        let n = src.chars().count() as u32;
        let mut prev = 0;
        for t in &lexed.tokens {
            assert!(t.start >= prev, "span starts before previous token ends");
            assert!(t.start < t.end && t.end <= n, "span out of bounds");
            prev = t.end;
        }
        assert_eq!(lexed.tokens.last().map(|t| t.line), Some(4));
    }
}

//! The workspace-level semantic pass: symbol table, call graph, the
//! transitive/dataflow lints (D010, D012, D013), D014 exposition, and
//! unified suppression handling.
//!
//! Input is a set of [`FileSummary`] digests (from [`crate::parse`],
//! either freshly parsed or replayed from the incremental cache). The
//! pass:
//!
//! 1. builds a name-indexed **symbol table** of every `fn` in the set and
//!    a **call graph** by resolving each call site against it (method
//!    calls match impl methods by name, `Type::assoc` and `asd_crate::fn`
//!    qualifiers narrow candidates, unqualified calls match free
//!    functions) — resolution is conservative: ambiguity keeps all
//!    candidates, and names that resolve to nothing in the workspace
//!    (std / external calls) produce no edge;
//! 2. walks reachability from every `// asd-lint: hot` function and flags
//!    allocations in reached functions (**D010**), with the witness call
//!    chain in the message — the walk stops at functions marked
//!    `// asd-lint: cold` (the documented escape hatch for exposition
//!    and amortized-growth paths that a hot function calls off-cycle);
//! 3. resolves counter-subtraction sites against the union of
//!    `*Stats`/`*Counters` unsigned fields (**D012**) and discarded
//!    results against workspace functions returning `Result` (**D013**);
//! 4. reports undocumented exported sim types (**D014**);
//! 5. applies `// asd-lint: allow(...)` directives to the merged finding
//!    set and reports directive hygiene (**D000**): malformed syntax,
//!    unknown codes, and **stale** directives that matched no finding.

use crate::lints::{hint_for, Finding, CATALOG};
use crate::parse::{DiscardKind, FileSummary};
use std::collections::{BTreeMap, BTreeSet};

/// Analyze a set of file summaries as one workspace and return the final
/// (suppression-applied) findings, sorted by `(path, line, code)`.
pub fn analyze(files: &[FileSummary]) -> Vec<Finding> {
    let mut findings: Vec<Finding> = Vec::new();

    // ---- Local findings replayed from parse time -------------------
    for fs in files {
        for lf in &fs.local {
            findings.push(Finding {
                path: fs.path.clone(),
                line: lf.line,
                code: lf.code,
                message: lf.message.clone(),
                hint: hint_for(lf.code),
            });
        }
    }

    // ---- Symbol table & call graph ---------------------------------
    // Node id = (file index, fn index). The name index maps a bare fn
    // name to every definition sharing it.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, fs) in files.iter().enumerate() {
        for (ki, f) in fs.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push((fi, ki));
        }
    }

    let resolve = |fi: usize, ki: usize| -> Vec<(usize, usize)> {
        let fs = &files[fi];
        let f = &fs.fns[ki];
        let mut out = Vec::new();
        for call in &f.calls {
            let Some(cands) = by_name.get(call.name.as_str()) else { continue };
            for &(cfi, cki) in cands {
                let cand = &files[cfi].fns[cki];
                let ok = match (&call.qualifier, call.method) {
                    // `.name(...)`: any impl method of that name.
                    (_, true) => cand.owner.is_some(),
                    // `Self::name(...)`: same impl type as the caller.
                    (Some(q), false) if q == "Self" => cand.owner == f.owner,
                    // `asd_xxx::name(...)`: free fn in that crate.
                    (Some(q), false) if q.starts_with("asd_") => {
                        cand.owner.is_none() && files[cfi].crate_name == q["asd_".len()..]
                    }
                    // `Type::name(...)`: associated fn of that type.
                    (Some(q), false) => cand.owner.as_deref() == Some(q.as_str()),
                    // Bare `name(...)`: a free function.
                    (None, false) => cand.owner.is_none(),
                };
                if ok {
                    out.push((cfi, cki));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    };

    // ---- D010: transitive hot-path allocation ----------------------
    // Depth-first walk from every hot fn; the first path to reach each
    // node is kept as the witness chain (deterministic: candidate lists
    // are name-sorted). Allocations in reached non-hot functions are
    // findings at the allocation site (D009 already polices hot fns
    // directly, and an alloc's own allow(D009) covers the direct case).
    let mut d010: BTreeMap<(usize, u32, String), Finding> = BTreeMap::new();
    for (fi, fs) in files.iter().enumerate() {
        if !crate::lints::is_sim_crate(&fs.crate_name) {
            continue;
        }
        for (ki, f) in fs.fns.iter().enumerate() {
            if !f.is_hot {
                continue;
            }
            let root = (fi, ki);
            let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
            let mut parent: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
            let mut queue: Vec<(usize, usize)> = vec![root];
            seen.insert(root);
            while let Some((ci, ck)) = queue.pop() {
                for next in resolve(ci, ck) {
                    // A cold marker declares the callee off the per-cycle
                    // path; the walk stops at (and never enters) it.
                    if files[next.0].fns[next.1].is_cold {
                        continue;
                    }
                    if seen.insert(next) {
                        parent.insert(next, (ci, ck));
                        queue.push(next);
                    }
                }
            }
            for &(ti, tk) in &seen {
                if (ti, tk) == root {
                    continue; // the hot fn's own allocs are D009's job
                }
                let target = &files[ti].fns[tk];
                if target.is_hot {
                    continue; // its allocs are its own D009 findings
                }
                if target.allocs.is_empty() {
                    continue;
                }
                // Witness chain root -> ... -> target, by fn name.
                let mut chain = vec![target.name.clone()];
                let mut cur = (ti, tk);
                while let Some(&p) = parent.get(&cur) {
                    chain.push(files[p.0].fns[p.1].name.clone());
                    cur = p;
                    if cur == root {
                        break;
                    }
                }
                chain.reverse();
                for site in &target.allocs {
                    let key = (ti, site.line, site.what.clone());
                    // Keep the first (deterministic: lowest file/fn order)
                    // hot root as the reported witness.
                    d010.entry(key).or_insert_with(|| Finding {
                        path: files[ti].path.clone(),
                        line: site.line,
                        code: "D010",
                        message: format!(
                            "heap allocation `{}` in `{}` is reachable from hot path `{}` (via {})",
                            site.what,
                            target.name,
                            f.name,
                            chain.join(" -> "),
                        ),
                        hint: hint_for("D010"),
                    });
                }
            }
        }
    }
    findings.extend(d010.into_values());

    // ---- D012: unchecked counter subtraction -----------------------
    let counter_fields: BTreeSet<&str> =
        files.iter().flat_map(|fs| fs.counter_fields.iter().map(String::as_str)).collect();
    for fs in files {
        for op in &fs.counter_ops {
            if counter_fields.contains(op.field.as_str()) {
                findings.push(Finding {
                    path: fs.path.clone(),
                    line: op.line,
                    code: "D012",
                    message: format!(
                        "unchecked `{}` on sim-state counter field `{}`",
                        op.op, op.field
                    ),
                    hint: hint_for("D012"),
                });
            }
        }
    }

    // ---- D013: silently discarded Result ---------------------------
    // A discard site fires when its callee resolves to at least one
    // workspace fn and *every* workspace fn it can resolve to returns
    // Result (ambiguity across fallible/infallible same-name fns stays
    // quiet to avoid false positives).
    for fs in files {
        if fs.kind != crate::lints::FileKind::Lib {
            continue;
        }
        for d in &fs.discards {
            let Some(cands) = by_name.get(d.callee.as_str()) else { continue };
            let matching: Vec<_> = cands
                .iter()
                .filter(|&&(cfi, cki)| {
                    let cand = &files[cfi].fns[cki];
                    match &d.qualifier {
                        Some(q) if q == "Self" => true,
                        Some(q) if q.starts_with("asd_") => {
                            files[cfi].crate_name == q["asd_".len()..]
                        }
                        Some(q) => cand.owner.as_deref() == Some(q.as_str()),
                        None => true,
                    }
                })
                .collect();
            if !matching.is_empty()
                && matching.iter().all(|&&(cfi, cki)| files[cfi].fns[cki].returns_result)
            {
                let how = match d.kind {
                    DiscardKind::LetUnderscore => "let _ =",
                    DiscardKind::OkDropped => ".ok() dropped",
                };
                findings.push(Finding {
                    path: fs.path.clone(),
                    line: d.line,
                    code: "D013",
                    message: format!(
                        "`Result` of fallible `{}` silently discarded ({how})",
                        d.callee
                    ),
                    hint: hint_for("D013"),
                });
            }
        }
    }

    // ---- D014: exported sim types without docs ---------------------
    for fs in files {
        for ty in &fs.types {
            if !ty.documented {
                findings.push(Finding {
                    path: fs.path.clone(),
                    line: ty.line,
                    code: "D014",
                    message: format!("exported sim type `{}` has no doc comment", ty.name),
                    hint: hint_for("D014"),
                });
            }
        }
    }

    // ---- Suppression + directive hygiene (D000) --------------------
    let known_codes: BTreeSet<&str> = CATALOG.iter().map(|l| l.code).collect();
    let mut out: Vec<Finding> = Vec::new();
    // allows_used[(file, allow index)] = suppressed at least one finding.
    let mut used: BTreeSet<(usize, usize)> = BTreeSet::new();
    for f in findings {
        let mut suppressed = false;
        for (fi, fs) in files.iter().enumerate() {
            if fs.path != f.path {
                continue;
            }
            for (ai, a) in fs.allows.iter().enumerate() {
                if a.well_formed
                    && (a.line == f.line || a.line + 1 == f.line)
                    && a.codes.iter().any(|c| c == f.code)
                {
                    suppressed = true;
                    used.insert((fi, ai));
                }
            }
        }
        if !suppressed {
            out.push(f);
        }
    }
    for (fi, fs) in files.iter().enumerate() {
        for (ai, a) in fs.allows.iter().enumerate() {
            if !a.well_formed {
                out.push(Finding {
                    path: fs.path.clone(),
                    line: a.line,
                    code: "D000",
                    message: "malformed asd-lint suppression directive".to_string(),
                    hint: hint_for("D000"),
                });
                continue;
            }
            if let Some(unknown) = a.codes.iter().find(|c| !known_codes.contains(c.as_str())) {
                out.push(Finding {
                    path: fs.path.clone(),
                    line: a.line,
                    code: "D000",
                    message: format!("suppression names unknown lint code `{unknown}`"),
                    hint: hint_for("D000"),
                });
                continue;
            }
            if !used.contains(&(fi, ai)) {
                out.push(Finding {
                    path: fs.path.clone(),
                    line: a.line,
                    code: "D000",
                    message: format!(
                        "stale suppression: no {} finding on this or the next line",
                        a.codes.join("/")
                    ),
                    hint: hint_for("D000"),
                });
            }
        }
    }

    out.sort_by(|a, b| (a.path.as_str(), a.line, a.code).cmp(&(b.path.as_str(), b.line, b.code)));
    out.dedup();
    out
}

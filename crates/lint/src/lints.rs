//! The simulator invariant catalog (D001–D009) and the token-level
//! checks that enforce it.
//!
//! Every lint exists to protect one property: **bit-determinism** of the
//! simulation results. The parallel [`Sweep`] runner's correctness claim
//! ("bit-identical to serial execution") and every figure driver built on
//! it assume that a run is a pure function of `(SystemConfig,
//! WorkloadProfile, RunOpts)`. These lints make the assumptions that
//! claim rests on mechanically checkable.
//!
//! [`Sweep`]: ../asd_sim/sweep/struct.Sweep.html

use crate::lexer::{Lexed, Tok, Token};

/// Which kind of source file is being linted; several lints scope by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `crates/<c>/src` (excluding `bin/` and
    /// `main.rs`).
    Lib,
    /// Binary code (`src/main.rs`, `src/bin/**`).
    Bin,
    /// Bench harness code under `benches/`.
    Bench,
    /// Example code under `examples/`.
    Example,
    /// Test code (`crates/<c>/tests/**` or the workspace `tests/`).
    Test,
}

/// Per-file context handed to the checks.
#[derive(Debug, Clone, Copy)]
pub struct FileContext<'a> {
    /// Workspace-relative path, `/`-separated (for findings).
    pub path: &'a str,
    /// Short crate name (`core`, `mc`, ... — without the `asd-` prefix).
    pub crate_name: &'a str,
    /// File classification.
    pub kind: FileKind,
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Lint code (`D001`...).
    pub code: &'static str,
    /// What was found.
    pub message: String,
    /// One-line fix hint.
    pub hint: &'static str,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {} {} — {}", self.path, self.line, self.code, self.message, self.hint)
    }
}

/// Catalog entry: one row of the DESIGN.md lint table.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Lint code.
    pub code: &'static str,
    /// One-line rule statement.
    pub rule: &'static str,
}

/// The full catalog, in code order (D000 is the meta-lint for malformed
/// suppression directives).
pub const CATALOG: [LintInfo; 15] = [
    LintInfo { code: "D000", rule: "suppression directives must be well-formed, known, and used" },
    LintInfo { code: "D001", rule: "no wall-clock (`Instant`/`SystemTime`) in simulation crates" },
    LintInfo { code: "D002", rule: "no default-hasher `HashMap`/`HashSet` in simulation state" },
    LintInfo { code: "D003", rule: "randomness only via `asd_core::rng` (no `rand` crate)" },
    LintInfo { code: "D004", rule: "no `static mut` / mutable globals in simulation crates" },
    LintInfo { code: "D005", rule: "no `unwrap`/`expect`/panicking macros in library code" },
    LintInfo { code: "D006", rule: "crate roots carry the canonical lint-header block" },
    LintInfo { code: "D007", rule: "crate dependencies follow the workspace layering" },
    LintInfo {
        code: "D008",
        rule: "no front-of-`Vec` shifting (`.remove(0)`/`.insert(0, _)`) in simulation crates",
    },
    LintInfo { code: "D009", rule: "no heap allocation in functions marked `// asd-lint: hot`" },
    LintInfo {
        code: "D010",
        rule: "no heap allocation transitively reachable from a hot-path function (call graph)",
    },
    LintInfo {
        code: "D011",
        rule: "no order-sensitive float reductions (`.sum::<f64>()`, float `fold`) in sim crates",
    },
    LintInfo {
        code: "D012",
        rule: "no unchecked subtraction on sim-state counter fields (`*Stats`/`*Counters`)",
    },
    LintInfo {
        code: "D013",
        rule: "no silently discarded `Result` from fallible workspace calls in library code",
    },
    LintInfo {
        code: "D014",
        rule: "exported sim types carry doc comments stating their invariants",
    },
];

/// The canonical one-line fix hint for each lint code. Findings carry the
/// hint by value so renderers (text, SARIF) need no lookup, but cached
/// and parse-level findings are reconstituted through this table.
pub fn hint_for(code: &str) -> &'static str {
    match code {
        "D000" => "use `// asd-lint: allow(Dxxx) -- reason` with a nonempty reason, a known code, and a matching finding",
        "D001" => "simulated time comes from asd_core::clock cycle counts; wall-clock reads are nondeterministic",
        "D002" => "iteration order depends on hasher seed; use BTreeMap/BTreeSet or allow(D002) with a proof that order is unobservable",
        "D003" => "use the seeded asd_core::rng::SmallRng so every run is reproducible from RunOpts::seed",
        "D004" => "globals leak state between runs and break run-to-run determinism; thread state through the owning struct",
        "D005" => "return a typed error (e.g. asd_sim::SimError / asd_core::ConfigError), or allow(D005) with the invariant that makes this unreachable",
        "D006" => "every crate root carries the same three-line header block (see DESIGN.md, D006)",
        "D007" => "dependency direction is core/telemetry <- {trace,dram} <- {traceio,cache,cpu,mc} <- engines <- sim <- bench; invert the reference or move the code down a layer",
        "D008" => "index-0 remove/insert memmoves the whole Vec every call; use a ring buffer (VecDeque, calendar queue) or push/swap at the back, or allow(D008) with why this path is cold",
        "D009" => "functions marked `// asd-lint: hot` run per simulated cycle; reuse a buffer owned by the struct, or allow(D009) with why this branch is cold",
        "D010" => "this function is reachable from a `// asd-lint: hot` marker through the call graph; hoist the buffer to the owning struct, mark the callee `// asd-lint: cold` if it runs off-cycle, or allow(D010) at the allocation with why the path is cold",
        "D011" => "float addition is not associative, so the reduced value depends on iteration order; pin the order (sorted/slice iteration) and allow(D011) with the ordering argument, or restructure",
        "D012" => "an underflowing counter panics in debug and wraps in release — two different results; use saturating_sub/checked_sub/wrapping_sub, or allow(D012) with why underflow is impossible",
        "D013" => "a dropped Result hides sim-state corruption; propagate with `?`, handle the error, or allow(D013) with why failure is benign here",
        "D014" => "exported simulation types document the invariants callers rely on; add a doc comment (see DESIGN.md, D014)",
        _ => "see the lint catalog in DESIGN.md",
    }
}

/// The deterministic-simulation crates D001/D002/D004 scope to. `bench`
/// is excluded (its whole purpose is wall-clock timing) and `lint` is
/// included (this tool polices itself).
pub const SIM_CRATES: [&str; 12] = [
    "core",
    "telemetry",
    "cache",
    "cpu",
    "dram",
    "mc",
    "trace",
    "traceio",
    "engines",
    "sim",
    "serve",
    "lint",
];

/// Workspace layering: each crate may depend only on the crates listed
/// for it (plus itself, for tests/benches/examples of that crate).
/// Direction: `core`/`telemetry` ← {`trace`,`dram`} ←
/// {`traceio`,`cache`,`cpu`,`mc`} ← `engines` ← `sim` ← `bench` ←
/// `serve`; `lint` depends on nothing. `telemetry` sits beside `core` at the bottom so
/// every sim crate can carry instruments; `engines` (the prefetcher zoo)
/// sits between `mc` (whose `PrefetchEngine` trait it implements) and
/// `sim` (whose registry resolves zoo engines by name).
pub const LAYERS: [(&str, &[&str]); 13] = [
    ("core", &[]),
    ("telemetry", &["core"]),
    ("trace", &["core", "telemetry"]),
    ("dram", &["core", "telemetry"]),
    ("traceio", &["core", "telemetry", "trace"]),
    ("cache", &["core", "telemetry", "trace"]),
    ("cpu", &["core", "telemetry", "trace", "cache"]),
    ("mc", &["core", "telemetry", "trace", "dram"]),
    ("engines", &["core", "telemetry", "trace", "dram", "mc"]),
    ("sim", &["core", "telemetry", "trace", "traceio", "dram", "cache", "cpu", "mc", "engines"]),
    (
        "bench",
        &["core", "telemetry", "trace", "traceio", "dram", "cache", "cpu", "mc", "engines", "sim"],
    ),
    (
        "serve",
        &[
            "core",
            "telemetry",
            "trace",
            "traceio",
            "dram",
            "cache",
            "cpu",
            "mc",
            "engines",
            "sim",
            "bench",
        ],
    ),
    ("lint", &[]),
];

/// The canonical crate-root header block D006 requires, verbatim.
pub const CANONICAL_HEADER: [&str; 3] =
    ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]", "#![warn(rust_2018_idioms)]"];

fn allowed_deps(crate_name: &str) -> Option<&'static [&'static str]> {
    LAYERS.iter().find(|(n, _)| *n == crate_name).map(|(_, deps)| *deps)
}

/// Whether `name` is one of the deterministic-simulation crates the
/// scoped lints apply to.
pub fn is_sim_crate(name: &str) -> bool {
    SIM_CRATES.contains(&name)
}

/// Analyze one file end to end: token-level lints, the item parser's
/// local lints (D011/D014), the single-file slice of the graph lints
/// (D010/D012/D013 over this file's own call graph), suppression
/// directives, and directive hygiene (D000). Equivalent to running
/// [`crate::semantic::analyze`] over a one-file workspace; the
/// whole-workspace driver is [`crate::run_workspace`].
pub fn check_file(ctx: FileContext<'_>, lexed: &Lexed) -> Vec<Finding> {
    let summary = crate::parse::summarize(ctx, lexed);
    crate::semantic::analyze(&[summary])
}

/// Run every token-level lint (D001–D009) on one lexed file, with **no**
/// suppression applied: the semantic pass owns allow application so that
/// graph-lint findings participate in stale-directive detection.
pub fn local_findings(ctx: FileContext<'_>, lexed: &Lexed) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let test_regions = test_regions(tokens);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| a <= line && line <= b);

    let mut findings = Vec::new();
    check_d001(&ctx, tokens, &mut findings);
    check_d002(&ctx, tokens, &in_test, &mut findings);
    check_d003(&ctx, tokens, &mut findings);
    check_d004(&ctx, tokens, &mut findings);
    check_d005(&ctx, tokens, &in_test, &mut findings);
    if ctx.kind == FileKind::Lib && ctx.path.ends_with("/src/lib.rs") {
        check_d006(&ctx, tokens, &mut findings);
    }
    check_d007_source(&ctx, tokens, &mut findings);
    check_d008(&ctx, tokens, &in_test, &mut findings);
    check_d009(&ctx, tokens, &lexed.hots, &in_test, &mut findings);
    findings
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Find the index of the token closing the bracket opened at `open`
/// (which must hold `open_c`), honouring nesting. Returns `None` on
/// unbalanced input.
pub(crate) fn match_bracket(
    tokens: &[Token],
    open: usize,
    open_c: char,
    close_c: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match &t.tok {
            Tok::Punct(c) if *c == open_c => depth += 1,
            Tok::Punct(c) if *c == close_c => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Line ranges covered by `#[cfg(test)]` items (modules, functions, use
/// declarations). `#[cfg(not(test))]` does not count.
pub(crate) fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(punct_at(tokens, i, '#') && punct_at(tokens, i + 1, '[')) {
            i += 1;
            continue;
        }
        let Some(end) = match_bracket(tokens, i + 1, '[', ']') else {
            break;
        };
        if !attr_is_cfg_test(&tokens[i + 2..end]) {
            i = end + 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes on the same item.
        let mut j = end + 1;
        while punct_at(tokens, j, '#') && punct_at(tokens, j + 1, '[') {
            match match_bracket(tokens, j + 1, '[', ']') {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        // The item body: up to the matching `}` of its first brace, or to
        // a `;` for brace-less items.
        let mut end_line = start_line;
        while let Some(t) = tokens.get(j) {
            match &t.tok {
                Tok::Punct(';') => {
                    end_line = t.line;
                    break;
                }
                Tok::Punct('{') => {
                    if let Some(close) = match_bracket(tokens, j, '{', '}') {
                        end_line = tokens[close].line;
                        j = close;
                    }
                    break;
                }
                _ => j += 1,
            }
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

/// Does this attribute token slice (the inside of `#[...]`) mean
/// "compiled only under test"?
fn attr_is_cfg_test(attr: &[Token]) -> bool {
    let has_cfg = attr.iter().any(|t| matches!(&t.tok, Tok::Ident(s) if s == "cfg"));
    if !has_cfg {
        return false;
    }
    for (k, t) in attr.iter().enumerate() {
        if let Tok::Ident(s) = &t.tok {
            if s == "test" {
                // Reject `not(test)`: look back past the opening paren.
                let negated = k >= 2
                    && matches!(&attr[k - 1].tok, Tok::Punct('('))
                    && matches!(&attr[k - 2].tok, Tok::Ident(n) if n == "not");
                if !negated {
                    return true;
                }
            }
        }
    }
    false
}

fn push(
    findings: &mut Vec<Finding>,
    ctx: &FileContext<'_>,
    line: u32,
    code: &'static str,
    message: String,
    hint: &'static str,
) {
    findings.push(Finding { path: ctx.path.to_string(), line, code, message, hint });
}

/// D001: wall-clock sources in simulation crates.
fn check_d001(ctx: &FileContext<'_>, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !is_sim_crate(ctx.crate_name) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if let Some(name @ ("Instant" | "SystemTime")) = ident_at(tokens, i) {
            push(
                findings,
                ctx,
                t.line,
                "D001",
                format!("wall-clock type `{name}` in a simulation crate"),
                "simulated time comes from asd_core::clock cycle counts; wall-clock reads are nondeterministic",
            );
        }
    }
}

/// D002: default-hasher maps in simulation state.
fn check_d002(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !is_sim_crate(ctx.crate_name) || ctx.kind != FileKind::Lib {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if let Some(name @ ("HashMap" | "HashSet")) = ident_at(tokens, i) {
            if !in_test(t.line) {
                push(
                    findings,
                    ctx,
                    t.line,
                    "D002",
                    format!("default-hasher `{name}` in simulation state"),
                    "iteration order depends on hasher seed; use BTreeMap/BTreeSet or allow(D002) with a proof that order is unobservable",
                );
            }
        }
    }
}

/// D003: the `rand` crate (or OS entropy) must not come back; all
/// randomness goes through the seeded `asd_core::rng`.
fn check_d003(ctx: &FileContext<'_>, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = ident_at(tokens, i) else { continue };
        let flagged = match name {
            "thread_rng" | "ThreadRng" | "OsRng" | "from_entropy" | "getrandom" => true,
            "rand" => {
                punct_at(tokens, i + 1, ':')
                    || ident_at(tokens, i.wrapping_sub(1)) == Some("crate")
                    || (ident_at(tokens, i.wrapping_sub(1)) == Some("use")
                        && punct_at(tokens, i + 1, ';'))
            }
            _ => false,
        };
        if flagged {
            push(
                findings,
                ctx,
                t.line,
                "D003",
                format!("unseeded/external randomness via `{name}`"),
                "use the seeded asd_core::rng::SmallRng so every run is reproducible from RunOpts::seed",
            );
        }
    }
}

/// D004: mutable global state in simulation crates.
fn check_d004(ctx: &FileContext<'_>, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !is_sim_crate(ctx.crate_name) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if ident_at(tokens, i) == Some("static") && ident_at(tokens, i + 1) == Some("mut") {
            push(
                findings,
                ctx,
                t.line,
                "D004",
                "`static mut` global in a simulation crate".to_string(),
                "globals leak state between runs and break run-to-run determinism; thread state through the owning struct",
            );
        }
    }
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// D005: panicking escape hatches in non-test library code.
fn check_d005(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        let Some(name) = ident_at(tokens, i) else { continue };
        let method_call = matches!(name, "unwrap" | "expect")
            && punct_at(tokens, i.wrapping_sub(1), '.')
            && punct_at(tokens, i + 1, '(');
        let panic_macro = PANIC_MACROS.contains(&name) && punct_at(tokens, i + 1, '!');
        if method_call || panic_macro {
            let what = if method_call { format!(".{name}()") } else { format!("{name}!") };
            push(
                findings,
                ctx,
                t.line,
                "D005",
                format!("`{what}` in non-test library code"),
                "return a typed error (e.g. asd_sim::SimError / asd_core::ConfigError), or allow(D005) with the invariant that makes this unreachable",
            );
        }
    }
}

/// D006: crate roots must carry the canonical header block.
fn check_d006(ctx: &FileContext<'_>, tokens: &[Token], findings: &mut Vec<Finding>) {
    // Collect the ident sets of all inner attributes `#![...]`.
    let mut groups: Vec<Vec<String>> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if punct_at(tokens, i, '#') && punct_at(tokens, i + 1, '!') && punct_at(tokens, i + 2, '[')
        {
            if let Some(end) = match_bracket(tokens, i + 2, '[', ']') {
                groups.push(
                    tokens[i + 3..end]
                        .iter()
                        .filter_map(|t| match &t.tok {
                            Tok::Ident(s) => Some(s.clone()),
                            _ => None,
                        })
                        .collect(),
                );
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    let required: [(&str, &str, &str); 3] = [
        ("forbid", "unsafe_code", "#![forbid(unsafe_code)]"),
        ("warn", "missing_docs", "#![warn(missing_docs)]"),
        ("warn", "rust_2018_idioms", "#![warn(rust_2018_idioms)]"),
    ];
    for (level, lint, text) in required {
        let present =
            groups.iter().any(|g| g.iter().any(|s| s == level) && g.iter().any(|s| s == lint));
        if !present {
            push(
                findings,
                ctx,
                1,
                "D006",
                format!("crate root is missing `{text}`"),
                "every crate root carries the same three-line header block (see DESIGN.md, D006)",
            );
        }
    }
}

/// D007 (source half): `asd_*` references must respect the layer map.
fn check_d007_source(ctx: &FileContext<'_>, tokens: &[Token], findings: &mut Vec<Finding>) {
    let Some(allowed) = allowed_deps(ctx.crate_name) else {
        if ctx.crate_name.is_empty() {
            return;
        }
        push(
            findings,
            ctx,
            1,
            "D007",
            format!("crate `{}` is not in the workspace layer map", ctx.crate_name),
            "add it to LAYERS in crates/lint/src/lints.rs with an explicit allowed-dependency list",
        );
        return;
    };
    let mut seen: Vec<&str> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = ident_at(tokens, i) else { continue };
        let Some(dep) = name.strip_prefix("asd_") else { continue };
        if dep == ctx.crate_name || seen.contains(&dep) {
            continue;
        }
        // Only idents naming real workspace crates count — `asd_`-prefixed
        // test/function names are not references. New crates are caught by
        // the manifest half (unknown crates fail the layer-map check).
        if allowed_deps(dep).is_none() {
            continue;
        }
        if !allowed.contains(&dep) {
            seen.push(dep);
            push(
                findings,
                ctx,
                t.line,
                "D007",
                format!("crate `{}` must not depend on `asd_{dep}`", ctx.crate_name),
                "dependency direction is core/telemetry <- {trace,dram} <- {traceio,cache,cpu,mc} <- engines <- sim <- bench; invert the reference or move the code down a layer",
            );
        }
    }
}

/// D008: front-of-`Vec` shifting in the simulation hot path. `.remove(0)`
/// and `.insert(0, value)` on a `Vec` are O(len) memmoves; inside the
/// per-cycle kernel loops they turn O(1) queue operations into quadratic
/// scans (the pre-calendar completion queue did exactly this). Flagged on
/// a literal-`0` index in non-test library code of simulation crates;
/// ring buffers ([`asd_core`]'s calendar queue, `VecDeque`) or back-of-vec
/// layouts are the fix, and a genuine cold-path use can carry
/// `// asd-lint: allow(D008) -- reason`.
fn check_d008(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !is_sim_crate(ctx.crate_name) || ctx.kind != FileKind::Lib {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        let Some(name @ ("remove" | "insert")) = ident_at(tokens, i) else { continue };
        // `.remove(` / `.insert(` followed by a literal zero index.
        if !(punct_at(tokens, i.wrapping_sub(1), '.') && punct_at(tokens, i + 1, '(')) {
            continue;
        }
        let Some(Tok::Number(text)) = tokens.get(i + 2).map(|t| &t.tok) else { continue };
        if !number_is_zero(text) {
            continue;
        }
        // `remove(0)` ends the call; `insert(0,` takes the shifted value.
        let closes = match name {
            "remove" => punct_at(tokens, i + 3, ')'),
            _ => punct_at(tokens, i + 3, ','),
        };
        if closes {
            push(
                findings,
                ctx,
                t.line,
                "D008",
                format!("front-of-Vec shift `.{name}(0{})`", if name == "remove" { "" } else { ", _" }),
                "index-0 remove/insert memmoves the whole Vec every call; use a ring buffer (VecDeque, calendar queue) or push/swap at the back, or allow(D008) with why this path is cold",
            );
        }
    }
}

/// D009: heap allocation inside a hot-path function. Functions marked
/// with `// asd-lint: hot` are the per-cycle kernel of the simulator —
/// scheduler scans, controller stages, the event loop. An allocation
/// there (`Box::new`, `Vec::new`, `vec![...]`, `.collect()`,
/// `.to_vec()`) runs millions of times per figure; buffers belong in the
/// owning struct, reused across cycles. The marker anchors the scan to
/// the next `fn` item's body; a deliberate cold-path allocation inside
/// one can carry `// asd-lint: allow(D009) -- reason`.
fn check_d009(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    hots: &[u32],
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !is_sim_crate(ctx.crate_name) {
        return;
    }
    for &hot_line in hots {
        // The function the marker anchors to: the first `fn` at or below
        // the marker's line.
        let Some(fn_idx) = tokens
            .iter()
            .position(|t| t.line >= hot_line && matches!(&t.tok, Tok::Ident(s) if s == "fn"))
        else {
            continue;
        };
        // Its body: the first `{` after the signature, to its match.
        let Some(open) = (fn_idx..tokens.len()).find(|&j| punct_at(tokens, j, '{')) else {
            continue;
        };
        let Some(close) = match_bracket(tokens, open, '{', '}') else {
            continue;
        };
        for i in open..close {
            let t = &tokens[i];
            if in_test(t.line) {
                continue;
            }
            if let Some(what) = alloc_at(tokens, i) {
                push(
                    findings,
                    ctx,
                    t.line,
                    "D009",
                    format!("heap allocation `{what}` in a hot-path function"),
                    "functions marked `// asd-lint: hot` run per simulated cycle; reuse a buffer owned by the struct, or allow(D009) with why this branch is cold",
                );
            }
        }
    }
}

/// Recognise a heap-allocating construct at token `i`: `Box::new(` /
/// `Vec::new(` / `Vec::with_capacity(` / `Vec::from(`, `vec![…]`,
/// `.collect()` (turbofished or not), and `.to_vec()`. Shared between
/// D009's direct scan and the parser's per-function allocation sites
/// (which D010 resolves transitively).
pub(crate) fn alloc_at(tokens: &[Token], i: usize) -> Option<String> {
    let name = ident_at(tokens, i)?;
    match name {
        // `Box::new(` / `Vec::new(` (and `Vec::with_capacity(`).
        "Box" | "Vec" if punct_at(tokens, i + 1, ':') && punct_at(tokens, i + 2, ':') => {
            match ident_at(tokens, i + 3) {
                Some(m @ ("new" | "with_capacity" | "from")) => Some(format!("{name}::{m}(...)")),
                _ => None,
            }
        }
        // `vec![...]`.
        "vec" if punct_at(tokens, i + 1, '!') => Some("vec![...]".to_string()),
        // `.collect(` / `.collect::<...>(` / `.to_vec(`.
        "collect" | "to_vec"
            if punct_at(tokens, i.wrapping_sub(1), '.')
                && (punct_at(tokens, i + 1, '(') || punct_at(tokens, i + 1, ':')) =>
        {
            Some(format!(".{name}()"))
        }
        _ => None,
    }
}

/// Is this number-literal text an integer zero? Handles `_` separators,
/// type suffixes (`0usize`, `0_u64`), and base prefixes (`0x0`, `0b00`).
fn number_is_zero(text: &str) -> bool {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    let body = t
        .strip_prefix("0x")
        .or_else(|| t.strip_prefix("0o"))
        .or_else(|| t.strip_prefix("0b"))
        .unwrap_or(&t);
    let digits: String = body.chars().take_while(char::is_ascii_hexdigit).collect();
    !digits.is_empty() && digits.chars().all(|c| c == '0')
}

/// D007 (manifest half): check the `asd-*` dependency declarations of one
/// crate's `Cargo.toml` against the layer map. `manifest_path` is the
/// workspace-relative path used in findings.
pub fn check_manifest(crate_name: &str, manifest_path: &str, manifest: &str) -> Vec<Finding> {
    let ctx = FileContext { path: manifest_path, crate_name, kind: FileKind::Lib };
    let mut findings = Vec::new();
    let Some(allowed) = allowed_deps(crate_name) else {
        push(
            &mut findings,
            &ctx,
            1,
            "D007",
            format!("crate `{crate_name}` is not in the workspace layer map"),
            "add it to LAYERS in crates/lint/src/lints.rs with an explicit allowed-dependency list",
        );
        return findings;
    };
    let mut in_deps = false;
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line.starts_with("[dependencies")
                || line.starts_with("[dev-dependencies")
                || line.starts_with("[build-dependencies");
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some(rest) = line.strip_prefix("asd-") {
            let dep: String =
                rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if dep != crate_name && !allowed.contains(&dep.as_str()) {
                push(
                    &mut findings,
                    &ctx,
                    (idx + 1) as u32,
                    "D007",
                    format!("crate `{crate_name}` declares a dependency on `asd-{dep}`"),
                    "dependency direction is core/telemetry <- {trace,dram} <- {traceio,cache,cpu,mc} <- engines <- sim <- bench; invert the reference or move the code down a layer",
                );
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint(crate_name: &str, kind: FileKind, src: &str) -> Vec<Finding> {
        let path = format!("crates/{crate_name}/src/lib.rs");
        let lexed = lex(src);
        check_file(FileContext { path: &path, crate_name, kind }, &lexed)
    }

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    const HEADER: &str =
        "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n#![warn(rust_2018_idioms)]\n";

    fn with_header(body: &str) -> String {
        format!("{HEADER}{body}")
    }

    #[test]
    fn d001_flags_wall_clock_in_sim_crate() {
        let f = lint("mc", FileKind::Lib, &with_header("use std::time::Instant;\n"));
        assert_eq!(codes(&f), ["D001"]);
        assert!(f[0].message.contains("Instant"));
    }

    #[test]
    fn d001_ignores_bench_crate() {
        let src = "use std::time::Instant;\nfn t() { let _ = Instant::now(); }\n";
        let lexed = lex(src);
        let f = check_file(
            FileContext {
                path: "crates/bench/benches/figures.rs",
                crate_name: "bench",
                kind: FileKind::Bench,
            },
            &lexed,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d001_ignores_comments_and_strings() {
        let f = lint(
            "mc",
            FileKind::Lib,
            &with_header("// Instant is banned\nconst S: &str = \"SystemTime\";\n"),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d002_flags_hashmap_outside_tests() {
        let f = lint(
            "trace",
            FileKind::Lib,
            &with_header("use std::collections::HashMap;\nstruct S { m: HashMap<u64, u32> }\n"),
        );
        assert_eq!(codes(&f), ["D002", "D002"]);
    }

    #[test]
    fn d002_skips_cfg_test_modules() {
        let src = with_header(
            "struct S;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() { let _m: HashMap<u8, u8> = HashMap::new(); }\n}\n",
        );
        let f = lint("trace", FileKind::Lib, &src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d002_not_fooled_by_cfg_not_test() {
        let src =
            with_header("#[cfg(not(test))]\nmod real {\n    use std::collections::HashMap;\n}\n");
        let f = lint("trace", FileKind::Lib, &src);
        assert_eq!(codes(&f), ["D002"]);
    }

    #[test]
    fn d002_suppressed_with_reason() {
        let src = with_header(
            "// asd-lint: allow(D002) -- drained unordered into a sorted Vec before use\nstruct S { m: HashMap<u64, u32> }\n",
        );
        let f = lint("trace", FileKind::Lib, &src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d003_flags_rand_reintroduction() {
        let f = lint("core", FileKind::Lib, &with_header("use rand::Rng;\n"));
        assert_eq!(codes(&f), ["D003"]);
        let f = lint("core", FileKind::Lib, &with_header("fn f() { let r = thread_rng(); }\n"));
        assert_eq!(codes(&f), ["D003"]);
    }

    #[test]
    fn d003_allows_in_tree_rng() {
        let f = lint(
            "trace",
            FileKind::Lib,
            &with_header(
                "use asd_core::rng::SmallRng;\nfn f(r: &mut SmallRng) { r.next_u64(); }\n",
            ),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d004_flags_static_mut() {
        let f = lint("cpu", FileKind::Lib, &with_header("static mut COUNTER: u64 = 0;\n"));
        assert_eq!(codes(&f), ["D004"]);
    }

    #[test]
    fn d004_not_fooled_by_static_lifetime() {
        let f = lint("cpu", FileKind::Lib, &with_header("fn f(x: &'static mut u8) {}\n"));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d005_flags_unwrap_expect_panic() {
        let src = with_header(
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g(x: Option<u8>) -> u8 { x.expect(\"msg\") }\nfn h() { panic!(\"boom\"); }\n",
        );
        let f = lint("sim", FileKind::Lib, &src);
        assert_eq!(codes(&f), ["D005", "D005", "D005"]);
    }

    #[test]
    fn d005_ignores_unwrap_or_variants() {
        let src = with_header(
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_default()) }\n",
        );
        let f = lint("sim", FileKind::Lib, &src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d005_skips_tests_and_non_lib() {
        let src = with_header(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n",
        );
        assert!(lint("sim", FileKind::Lib, &src).is_empty());
        let lexed = lex("fn main() { std::env::args().next().unwrap(); }");
        let f = check_file(
            FileContext {
                path: "crates/bench/src/bin/figures.rs",
                crate_name: "bench",
                kind: FileKind::Bin,
            },
            &lexed,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d005_suppression_on_same_or_previous_line() {
        let same = with_header(
            "fn f(x: Option<u8>) -> u8 { x.expect(\"nonempty\") } // asd-lint: allow(D005) -- constructor guarantees Some\n",
        );
        assert!(lint("sim", FileKind::Lib, &same).is_empty());
        let above = with_header(
            "// asd-lint: allow(D005) -- constructor guarantees Some\nfn f(x: Option<u8>) -> u8 { x.expect(\"nonempty\") }\n",
        );
        assert!(lint("sim", FileKind::Lib, &above).is_empty());
    }

    #[test]
    fn d000_reports_reasonless_suppression() {
        let src =
            with_header("// asd-lint: allow(D005)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        let f = lint("sim", FileKind::Lib, &src);
        let mut c = codes(&f);
        c.sort_unstable();
        assert_eq!(c, ["D000", "D005"], "reasonless allow both fails and does not suppress");
    }

    #[test]
    fn d006_flags_missing_header_lines() {
        let f = lint("dram", FileKind::Lib, "#![forbid(unsafe_code)]\npub fn x() {}\n");
        assert_eq!(codes(&f), ["D006", "D006"]);
        assert!(f[0].message.contains("missing_docs"));
        assert!(f[1].message.contains("rust_2018_idioms"));
    }

    #[test]
    fn d006_accepts_canonical_header() {
        let f = lint("dram", FileKind::Lib, &with_header("pub fn x() {}\n"));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d007_flags_upward_source_reference() {
        let f = lint("core", FileKind::Lib, &with_header("use asd_sim::RunOpts;\n"));
        assert_eq!(codes(&f), ["D007"]);
        let f = lint("trace", FileKind::Lib, &with_header("fn f() { asd_mc::x(); }\n"));
        assert_eq!(codes(&f), ["D007"]);
    }

    #[test]
    fn d007_accepts_downward_reference_and_self() {
        let f =
            lint("sim", FileKind::Lib, &with_header("use asd_core::Slh;\nuse asd_mc::McStats;\n"));
        assert!(f.is_empty(), "{f:?}");
        let lexed = lex("use asd_lint::run_workspace;\n");
        let f = check_file(
            FileContext { path: "tests/lint.rs", crate_name: "lint", kind: FileKind::Test },
            &lexed,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d007_ignores_asd_prefixed_non_crate_idents() {
        let src = with_header("fn asd_learns_streams() { let asd_cfg = 1; }\n");
        let f = lint("core", FileKind::Lib, &src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d008_flags_front_of_vec_shifts() {
        let src = with_header(
            "fn f(v: &mut Vec<u8>) -> u8 { v.remove(0) }\nfn g(v: &mut Vec<u8>) { v.insert(0, 7); }\n",
        );
        let f = lint("mc", FileKind::Lib, &src);
        assert_eq!(codes(&f), ["D008", "D008"]);
        assert!(f[0].message.contains("remove"));
        assert!(f[1].message.contains("insert"));
    }

    #[test]
    fn d008_flags_suffixed_and_based_zeros() {
        let src = with_header(
            "fn f(v: &mut Vec<u8>) -> u8 { v.remove(0usize) }\nfn g(v: &mut Vec<u8>) -> u8 { v.remove(0x0) }\n",
        );
        assert_eq!(codes(&lint("sim", FileKind::Lib, &src)), ["D008", "D008"]);
    }

    #[test]
    fn d008_ignores_variable_and_nonzero_indices() {
        let src = with_header(
            "fn f(v: &mut Vec<u8>, i: usize) -> u8 { v.remove(i) }\nfn g(v: &mut Vec<u8>) -> u8 { v.remove(1) }\nfn h(v: &mut Vec<u8>) -> u8 { v.remove(0x10) }\nfn k(m: &mut std::collections::BTreeMap<u64, u8>) { m.remove(&0); }\n",
        );
        let f = lint("mc", FileKind::Lib, &src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d008_scopes_to_sim_crate_lib_code() {
        let src = "fn f(v: &mut Vec<u8>) -> u8 { v.remove(0) }\n";
        // Bench crate: out of scope.
        let lexed = lex(src);
        let f = check_file(
            FileContext {
                path: "crates/bench/benches/figures.rs",
                crate_name: "bench",
                kind: FileKind::Bench,
            },
            &lexed,
        );
        assert!(f.is_empty(), "{f:?}");
        // Test code in a sim crate: out of scope.
        let in_test = with_header(
            "#[cfg(test)]\nmod tests {\n    fn t(v: &mut Vec<u8>) -> u8 { v.remove(0) }\n}\n",
        );
        assert!(lint("mc", FileKind::Lib, &in_test).is_empty());
    }

    #[test]
    fn d008_suppressed_with_reason() {
        let src = with_header(
            "// asd-lint: allow(D008) -- config parsing, runs once per process\nfn f(v: &mut Vec<u8>) -> u8 { v.remove(0) }\n",
        );
        assert!(lint("sim", FileKind::Lib, &src).is_empty());
    }

    #[test]
    fn d009_flags_allocation_in_hot_function() {
        let src = with_header(
            "// asd-lint: hot\nfn f(xs: &[u8]) -> Vec<u8> { xs.iter().copied().collect() }\n",
        );
        let f = lint("mc", FileKind::Lib, &src);
        assert_eq!(codes(&f), ["D009"]);
        assert!(f[0].message.contains("collect"));
    }

    #[test]
    fn d009_flags_box_vec_and_macro_allocations() {
        let src = with_header(
            "// asd-lint: hot\nfn f() { let a = Box::new(1); let b: Vec<u8> = Vec::new(); let c = vec![0u8; 4]; }\n",
        );
        let f = lint("sim", FileKind::Lib, &src);
        assert_eq!(codes(&f), ["D009", "D009", "D009"]);
    }

    #[test]
    fn d009_ignores_unmarked_functions_and_cold_code() {
        let src = with_header(
            "fn cold() -> Vec<u8> { Vec::new() }\n// asd-lint: hot\nfn hot(x: u64) -> u64 { x + 1 }\nfn later() -> Vec<u8> { vec![1] }\n",
        );
        let f = lint("mc", FileKind::Lib, &src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d009_scan_stops_at_the_marked_functions_closing_brace() {
        // The allocation sits in the *next* function; the marker must not
        // bleed past the marked body.
        let src = with_header(
            "// asd-lint: hot\nfn hot() -> u64 { 7 }\nfn build() -> Vec<u8> { Vec::with_capacity(8) }\n",
        );
        let f = lint("sim", FileKind::Lib, &src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d009_suppressed_with_reason() {
        let src = with_header(
            "// asd-lint: hot\nfn f(grow: bool, buf: &mut Vec<u8>) {\n    if grow {\n        // asd-lint: allow(D009) -- resize happens once per run, not per cycle\n        *buf = Vec::with_capacity(1024);\n    }\n}\n",
        );
        let f = lint("mc", FileKind::Lib, &src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d009_scopes_to_sim_crates() {
        let src = "// asd-lint: hot\nfn f() -> Vec<u8> { Vec::new() }\n";
        let lexed = lex(src);
        let f = check_file(
            FileContext {
                path: "crates/bench/benches/figures.rs",
                crate_name: "bench",
                kind: FileKind::Bench,
            },
            &lexed,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d007_manifest_declarations_checked() {
        let bad =
            "[package]\nname = \"asd-core\"\n[dependencies]\nasd-sim = { workspace = true }\n";
        let f = check_manifest("core", "crates/core/Cargo.toml", bad);
        assert_eq!(codes(&f), ["D007"]);
        assert_eq!(f[0].line, 4);
        let good = "[package]\nname = \"asd-sim\"\n[dependencies]\nasd-core = { workspace = true }\nasd-mc = { workspace = true }\n";
        assert!(check_manifest("sim", "crates/sim/Cargo.toml", good).is_empty());
    }

    #[test]
    fn unknown_crate_is_a_layering_finding() {
        let f = check_manifest("newcrate", "crates/newcrate/Cargo.toml", "[dependencies]\n");
        assert_eq!(codes(&f), ["D007"]);
        assert!(f[0].message.contains("layer map"));
    }
}

//! # `asd-lint`: the workspace determinism & invariant linter
//!
//! A zero-dependency static-analysis pass over every simulator crate,
//! enforcing the invariants the paper's reproducibility rests on: the
//! parallel [`Sweep`] runner promises results **bit-identical** to serial
//! execution, and every figure driver builds on that promise. The lints
//! (catalogued in [`lints::CATALOG`] and DESIGN.md) ban the ways that
//! promise could silently rot — wall-clock reads, hasher-ordered
//! iteration, unseeded randomness, mutable globals, panicking library
//! paths, missing crate-root lint headers, layering inversions, and (via
//! the semantic pass) transitive hot-path allocation, order-sensitive
//! float reductions, unchecked counter arithmetic, swallowed `Result`s,
//! and undocumented exported sim types.
//!
//! The pipeline is `lexer` → [`parse`] (per-file [`parse::FileSummary`]
//! digests, cacheable) → [`semantic`] (workspace symbol table, call
//! graph, graph lints, suppression). The [`cache`] module persists the
//! digests keyed by content hash, so a re-lint of an unchanged tree skips
//! lexing and parsing entirely; the semantic pass always recomputes, so
//! output is bit-identical with the cache hot, cold, or disabled.
//! [`output`] renders SARIF 2.1.0 and JSON for CI.
//!
//! Three entry points, one implementation:
//!
//! * `cargo run -p asd-lint` — the CLI, exits nonzero on any finding;
//! * `scripts/check.sh` — runs the CLI before the build;
//! * `tests/lint.rs` — a tier-1 `#[test]` wrapper, so `cargo test -q`
//!   catches regressions.
//!
//! Per-site suppression: `// asd-lint: allow(Dxxx) -- reason` on the
//! finding's line or the line directly above it. Reasonless, malformed,
//! unknown-code, or **stale** (matching no finding) directives are
//! themselves findings (D000).
//!
//! [`Sweep`]: ../asd_sim/sweep/struct.Sweep.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod lexer;
pub mod lints;
pub mod output;
pub mod parse;
pub mod semantic;

pub use lints::{FileContext, FileKind, Finding, LintInfo, CATALOG};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The outcome of linting the whole workspace.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed findings, sorted by `(path, line, code)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of crate manifests checked.
    pub manifests_checked: usize,
    /// Files whose summary was replayed from the incremental cache.
    pub cache_hits: usize,
    /// Files that were lexed and parsed fresh this run.
    pub cache_misses: usize,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the report the way the CLI prints it. Deliberately does
    /// not mention cache state: stdout must be bit-identical whether the
    /// cache was hot, cold, or disabled (`--stats` goes to stderr).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "asd-lint: {} finding(s) in {} files, {} manifests\n",
            self.findings.len(),
            self.files_scanned,
            self.manifests_checked
        ));
        out
    }
}

/// Ascend from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Lint the workspace with the incremental cache enabled (the default
/// entry point — equivalent to [`run_workspace_with`]`(root, true)`).
pub fn run_workspace(root: &Path) -> io::Result<Report> {
    run_workspace_with(root, true)
}

/// Lint every `crates/*/src`, `crates/*/tests`, `crates/*/benches`,
/// workspace `tests/`, and workspace `examples/` file, plus every crate
/// manifest, under `root`. With `use_cache`, per-file summaries are
/// replayed from `target/asd-lint/` when the file is unchanged (size +
/// mtime, falling back to a content hash) and persisted after the run.
pub fn run_workspace_with(root: &Path, use_cache: bool) -> io::Result<Report> {
    let mut findings = Vec::new();
    let mut manifests_checked = 0usize;
    // Workspace-level [[test]]/[[example]] targets declared by a crate
    // with `path = "../../..."`: the declaring crate owns that file.
    let mut owners: Vec<(String, String)> = Vec::new();
    // (absolute path, workspace-relative path, crate, kind) per file.
    let mut units: Vec<(PathBuf, String, String, FileKind)> = Vec::new();

    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(root.join("crates"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for dir in &crate_dirs {
        let crate_name = match dir.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => continue,
        };
        let manifest_path = dir.join("Cargo.toml");
        let Ok(manifest) = fs::read_to_string(&manifest_path) else {
            continue;
        };
        manifests_checked += 1;
        findings.extend(lints::check_manifest(&crate_name, &rel(root, &manifest_path), &manifest));
        for line in manifest.lines() {
            if let Some(p) = parse_workspace_target_path(line) {
                owners.push((p, crate_name.clone()));
            }
        }

        for (sub, base_kind) in
            [("src", FileKind::Lib), ("tests", FileKind::Test), ("benches", FileKind::Bench)]
        {
            for file in rs_files(&dir.join(sub))? {
                let rel_path = rel(root, &file);
                let kind = if base_kind == FileKind::Lib
                    && (rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs"))
                {
                    FileKind::Bin
                } else {
                    base_kind
                };
                units.push((file, rel_path, crate_name.clone(), kind));
            }
        }
    }

    for (sub, kind) in [("tests", FileKind::Test), ("examples", FileKind::Example)] {
        for file in rs_files(&root.join(sub))? {
            let rel_path = rel(root, &file);
            let crate_name = owners
                .iter()
                .find(|(p, _)| *p == rel_path)
                .map(|(_, c)| c.as_str())
                // Unclaimed workspace-level files default to the top
                // simulation crate.
                .unwrap_or("sim")
                .to_string();
            units.push((file, rel_path, crate_name, kind));
        }
    }

    // Per-file summaries: replayed from the cache when fresh, parsed
    // otherwise. The semantic pass below always runs over the full set,
    // so cross-file lints see every edit regardless of cache state.
    let mut store = if use_cache { cache::Store::load(root) } else { cache::Store::default() };
    let mut summaries: Vec<parse::FileSummary> = Vec::with_capacity(units.len());
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    for (file, rel_path, crate_name, kind) in &units {
        let stat = if use_cache { cache::stat_key(file) } else { None };
        let cached = stat.and_then(|(size, mtime_ns)| {
            store
                .lookup(rel_path, size, mtime_ns, || fs::read(file).ok().map(|b| cache::fnv1a(&b)))
                .cloned()
        });
        if let Some(summary) = cached {
            cache_hits += 1;
            summaries.push(summary);
            continue;
        }
        cache_misses += 1;
        let src = fs::read_to_string(file)?;
        let lexed = lexer::lex(&src);
        let summary =
            parse::summarize(FileContext { path: rel_path, crate_name, kind: *kind }, &lexed);
        if let Some((size, mtime_ns)) = stat {
            store.put(size, mtime_ns, cache::fnv1a(src.as_bytes()), summary.clone());
        }
        summaries.push(summary);
    }
    if use_cache && cache_misses > 0 {
        store.save(root);
    }

    findings.extend(semantic::analyze(&summaries));
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.code).cmp(&(b.path.as_str(), b.line, b.code)));
    // Two identical constructs on one line (e.g. chained `.expect()`s)
    // produce identical findings; report each site once.
    findings.dedup();
    Ok(Report { findings, files_scanned: units.len(), manifests_checked, cache_hits, cache_misses })
}

/// `path = "../../tests/sweep.rs"` in a manifest target section →
/// `tests/sweep.rs`.
fn parse_workspace_target_path(line: &str) -> Option<String> {
    let trimmed = line.trim();
    let value = trimmed.strip_prefix("path")?.trim_start().strip_prefix('=')?.trim_start();
    let quoted = value.strip_prefix('"')?;
    let end = quoted.find('"')?;
    quoted[..end].strip_prefix("../../").map(str::to_string)
}

/// All `.rs` files under `dir`, recursively, sorted for deterministic
/// output. A missing directory is simply empty. Directories named
/// `lint_fixtures` hold the known-bad lint corpus and are never part of
/// the workspace scan.
fn rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "lint_fixtures") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_target_path_parsing() {
        assert_eq!(
            parse_workspace_target_path("path = \"../../tests/sweep.rs\""),
            Some("tests/sweep.rs".to_string())
        );
        assert_eq!(parse_workspace_target_path("path = \"src/bin/figures.rs\""), None);
        assert_eq!(parse_workspace_target_path("name = \"sweep\""), None);
    }

    #[test]
    fn find_root_ascends() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn fixture_dirs_are_excluded_from_scans() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = rs_files(&root.join("tests")).expect("scan tests/");
        assert!(
            files.iter().all(|p| !p.to_string_lossy().contains("lint_fixtures")),
            "lint fixture corpus must not be linted as workspace code"
        );
    }
}

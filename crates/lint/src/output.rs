//! Machine-readable renderings of a lint [`Report`]: SARIF 2.1.0 for CI
//! annotation (GitHub code scanning, `upload-sarif`) and a flat JSON
//! shape for ad-hoc tooling. Both are hand-rolled — the workspace is
//! dependency-free — and deterministic: findings are already sorted by
//! `(path, line, code)`, and every map key is emitted in a fixed order,
//! so identical trees produce byte-identical documents.

use crate::lints::CATALOG;
use crate::Report;
use std::fmt::Write as _;

/// Escape `s` as the inside of a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the report as a SARIF 2.1.0 log with one run, the full rule
/// catalog, and one `result` per finding (level `error`, the fix hint
/// folded into the message).
pub fn to_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"asd-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.com/asd-prefetch\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        json_escape(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("          \"rules\": [\n");
    for (i, info) in CATALOG.iter().enumerate() {
        let _ = writeln!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \"help\": {{\"text\": \"{}\"}}}}{}",
            info.code,
            json_escape(info.rule),
            json_escape(crate::lints::hint_for(info.code)),
            if i + 1 < CATALOG.len() { "," } else { "" }
        );
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let _ = writeln!(
            out,
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\", \"uriBaseId\": \"SRCROOT\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}",
            f.code,
            json_escape(&format!("{} — {}", f.message, f.hint)),
            json_escape(&f.path),
            f.line.max(1),
            if i + 1 < report.findings.len() { "," } else { "" }
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Render the report as flat JSON: the finding list plus scan counters.
pub fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"path\": \"{}\", \"line\": {}, \"code\": \"{}\", \"message\": \"{}\", \"hint\": \"{}\"}}{}",
            json_escape(&f.path),
            f.line,
            f.code,
            json_escape(&f.message),
            json_escape(f.hint),
            if i + 1 < report.findings.len() { "," } else { "" }
        );
    }
    let _ = write!(
        out,
        "  ],\n  \"files_scanned\": {},\n  \"manifests_checked\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {}\n}}\n",
        report.files_scanned, report.manifests_checked, report.cache_hits, report.cache_misses
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Finding;

    fn report_with(findings: Vec<Finding>) -> Report {
        Report { findings, files_scanned: 2, manifests_checked: 1, cache_hits: 1, cache_misses: 1 }
    }

    #[test]
    fn sarif_contains_rules_and_results() {
        let r = report_with(vec![Finding {
            path: "crates/mc/src/x.rs".into(),
            line: 7,
            code: "D005",
            message: "`.unwrap()` in non-test library code".into(),
            hint: "return a typed error",
        }]);
        let sarif = to_sarif(&r);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"id\": \"D010\""), "rule catalog present");
        assert!(sarif.contains("\"ruleId\": \"D005\""));
        assert!(sarif.contains("\"startLine\": 7"));
        assert!(sarif.contains("crates/mc/src/x.rs"));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_report_is_valid_shape() {
        let sarif = to_sarif(&report_with(Vec::new()));
        assert!(sarif.contains("\"results\": [\n      ]"));
        let json = to_json(&report_with(Vec::new()));
        assert!(json.contains("\"findings\": [\n  ]"));
        assert!(json.contains("\"cache_hits\": 1"));
    }
}

//! CLI driver for `asd-lint`. Usage:
//!
//! ```text
//! cargo run -q -p asd-lint [--catalog] [--format text|json|sarif]
//!                          [--out FILE] [--no-cache] [--stats] [ROOT]
//! ```
//!
//! Exits 0 on a clean tree, 1 on findings, 2 on internal errors (bad
//! flags, unreadable files, missing workspace root). `--stats` prints
//! scan and cache counters to **stderr**, so stdout stays bit-identical
//! across cache-hot, cache-cold, and `--no-cache` runs.

#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut out_file: Option<PathBuf> = None;
    let mut use_cache = true;
    let mut stats = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--catalog" => {
                for info in asd_lint::CATALOG {
                    println!("{}  {}", info.code, info.rule);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("asd-lint: determinism & invariant linter for the ASD workspace");
                println!("usage: asd-lint [--catalog] [--format text|json|sarif] [--out FILE]");
                println!("                [--no-cache] [--stats] [ROOT]");
                println!("suppress per site with: // asd-lint: allow(Dxxx) -- reason");
                return ExitCode::SUCCESS;
            }
            "--format" => match args.next() {
                Some(f) if matches!(f.as_str(), "text" | "json" | "sarif") => format = f,
                Some(f) => {
                    eprintln!("asd-lint: unknown format `{f}` (expected text, json, or sarif)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("asd-lint: --format requires a value");
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out_file = Some(PathBuf::from(p)),
                None => {
                    eprintln!("asd-lint: --out requires a file path");
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => use_cache = false,
            "--stats" => stats = true,
            other if other.starts_with('-') => {
                eprintln!("asd-lint: unknown flag `{other}` (see --help)");
                return ExitCode::from(2);
            }
            other => root_arg = Some(PathBuf::from(other)),
        }
    }

    let start = match root_arg {
        Some(p) => p,
        None => match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("asd-lint: cannot determine working directory: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let Some(root) = asd_lint::find_workspace_root(&start) else {
        eprintln!("asd-lint: no workspace root (Cargo.toml with [workspace]) above {start:?}");
        return ExitCode::from(2);
    };

    match asd_lint::run_workspace_with(&root, use_cache) {
        Ok(report) => {
            let rendered = match format.as_str() {
                "json" => asd_lint::output::to_json(&report),
                "sarif" => asd_lint::output::to_sarif(&report),
                _ => report.render(),
            };
            if let Some(path) = out_file {
                if let Err(e) = std::fs::write(&path, &rendered) {
                    eprintln!("asd-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            } else {
                print!("{rendered}");
            }
            if stats {
                let total = report.cache_hits + report.cache_misses;
                let rate =
                    if total == 0 { 0.0 } else { 100.0 * report.cache_hits as f64 / total as f64 };
                eprintln!(
                    "asd-lint: stats: {} files, {} manifests, cache {} hit / {} miss ({rate:.1}% hit rate{})",
                    report.files_scanned,
                    report.manifests_checked,
                    report.cache_hits,
                    report.cache_misses,
                    if use_cache { "" } else { ", cache disabled" },
                );
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("asd-lint: I/O error while scanning: {e}");
            ExitCode::from(2)
        }
    }
}

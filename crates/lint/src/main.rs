//! CLI driver for `asd-lint`. Usage:
//!
//! ```text
//! cargo run -q -p asd-lint [--catalog] [ROOT]
//! ```
//!
//! Exits 0 on a clean tree, 1 on findings, 2 on I/O errors.

#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--catalog" => {
                for info in asd_lint::CATALOG {
                    println!("{}  {}", info.code, info.rule);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("asd-lint: determinism & invariant linter for the ASD workspace");
                println!("usage: asd-lint [--catalog] [ROOT]");
                println!("suppress per site with: // asd-lint: allow(Dxxx) -- reason");
                return ExitCode::SUCCESS;
            }
            other => root_arg = Some(PathBuf::from(other)),
        }
    }

    let start = match root_arg {
        Some(p) => p,
        None => match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("asd-lint: cannot determine working directory: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let Some(root) = asd_lint::find_workspace_root(&start) else {
        eprintln!("asd-lint: no workspace root (Cargo.toml with [workspace]) above {start:?}");
        return ExitCode::from(2);
    };

    match asd_lint::run_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("asd-lint: I/O error while scanning: {e}");
            ExitCode::from(2)
        }
    }
}

//! Wire protocol: length-prefixed frames carrying newline-JSON, the job
//! spec vocabulary, and the canonical JSON rendering of results.
//!
//! A frame is `<decimal byte length>\n<payload>\n`. JSON frames carry a
//! request or response object; binary frames (trace upload/download and
//! shard-worker result chunks) carry raw bytes under the same framing,
//! with the preceding JSON exchange establishing their meaning.
//!
//! **Bit-identity.** Responses embed results as [`result_to_value`]
//! objects rendered by `asd_bench::json` — the same float formatter the
//! figure pipeline uses, and `f64`'s `Display` round-trips — so
//! comparing rendered documents is comparing exact bits. Figure, arena,
//! and ablation jobs return the same rendered text the CLI prints, via
//! one shared dispatch ([`asd_sim::figures::figure_text`]).

use crate::error::ServeError;
use asd_bench::json::{self, Value};
use asd_sim::sweep::Sweep;
use asd_sim::{PrefetchKind, RunOpts, RunResult, SystemConfig};
use asd_trace::suites;
use std::io::{BufRead, Write};

/// Hard cap on a single frame's payload, request or response. Trace
/// uploads are the largest legitimate frames; 64 MiB holds ~5M accesses.
pub const MAX_FRAME: usize = 64 << 20;

/// Write one frame: decimal length, newline, payload, newline.
///
/// # Errors
///
/// [`ServeError::Io`] on any write failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServeError> {
    let io = |e: std::io::Error| ServeError::Io {
        context: "writing frame".to_string(),
        message: e.to_string(),
    };
    w.write_all(format!("{}\n", payload.len()).as_bytes()).map_err(io)?;
    w.write_all(payload).map_err(io)?;
    w.write_all(b"\n").map_err(io)?;
    w.flush().map_err(io)
}

/// Read one frame's payload. `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection); errors on oversize,
/// non-numeric, or truncated frames.
///
/// # Errors
///
/// [`ServeError::MalformedRequest`] for framing violations,
/// [`ServeError::Io`] for transport failures.
pub fn read_frame(r: &mut impl BufRead) -> Result<Option<Vec<u8>>, ServeError> {
    let io = |e: std::io::Error| ServeError::Io {
        context: "reading frame".to_string(),
        message: e.to_string(),
    };
    let mut header = String::new();
    if r.read_line(&mut header).map_err(io)? == 0 {
        return Ok(None);
    }
    let len: usize = header.trim().parse().map_err(|_| ServeError::MalformedRequest {
        message: format!("frame header `{}` is not a length", header.trim()),
    })?;
    if len > MAX_FRAME {
        return Err(ServeError::MalformedRequest {
            message: format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(io)?;
    let mut tail = [0u8; 1];
    r.read_exact(&mut tail).map_err(io)?;
    if tail != *b"\n" {
        return Err(ServeError::MalformedRequest {
            message: "frame payload not terminated by newline".to_string(),
        });
    }
    Ok(Some(payload))
}

/// Write a JSON value as one frame.
///
/// # Errors
///
/// As [`write_frame`].
pub fn write_json(w: &mut impl Write, v: &Value) -> Result<(), ServeError> {
    write_frame(w, v.render().as_bytes())
}

/// Read one frame and parse it as JSON. `Ok(None)` on clean EOF.
///
/// # Errors
///
/// As [`read_frame`], plus [`ServeError::MalformedRequest`] for frames
/// that are not UTF-8 JSON.
pub fn read_json(r: &mut impl BufRead) -> Result<Option<Value>, ServeError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload).map_err(|_| ServeError::MalformedRequest {
        message: "frame payload is not UTF-8".to_string(),
    })?;
    json::parse(text)
        .map(Some)
        .map_err(|e| ServeError::MalformedRequest { message: format!("bad JSON: {e}") })
}

/// An `{"ok":true}` response skeleton.
pub fn ok_obj() -> Value {
    let mut v = Value::obj();
    v.set("ok", true);
    v
}

/// The structured error response for `e`.
pub fn err_obj(e: &ServeError) -> Value {
    let mut err = Value::obj();
    err.set("kind", e.kind());
    err.set("message", e.to_string());
    let mut v = Value::obj();
    v.set("ok", false);
    v.set("error", err);
    v
}

/// Reconstruct a [`ServeError`] from a response's `error` object
/// (client side). Unknown kinds fold into
/// [`ServeError::MalformedRequest`] carrying the message.
pub fn err_of_value(v: &Value) -> ServeError {
    let err = v.get("error");
    let kind = err.and_then(|e| e.str_field("kind")).unwrap_or("");
    let message =
        err.and_then(|e| e.str_field("message")).unwrap_or("unspecified error").to_string();
    match kind {
        "busy" => ServeError::Busy { depth: 0, cap: 0 },
        "shutting-down" => ServeError::ShuttingDown,
        "unknown-job" => {
            ServeError::UnknownJob { id: err.and_then(|e| e.u64_field("id")).unwrap_or(0) }
        }
        "io" => ServeError::Io { context: "server".to_string(), message },
        _ => ServeError::MalformedRequest { message },
    }
}

/// A job the daemon knows how to run. The spec is the unit of
/// submission, of shard handoff (the dispatcher re-serializes it to
/// worker subprocesses), and of bit-identity testing (the same spec
/// built locally must produce the same document).
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// A raw (benchmark × config) sweep; the result document carries one
    /// [`result_to_value`] object per pair, in push order.
    Sweep {
        /// Workload profile names ([`asd_trace::suites::by_name`]).
        benchmarks: Vec<String>,
        /// Configuration names: `NP`/`PS`/`MS`/`PMS` or any engine
        /// registry name.
        configs: Vec<String>,
        /// Access budget per run.
        accesses: u64,
        /// Base RNG seed.
        seed: u64,
        /// Two-thread SMT mode.
        smt: bool,
    },
    /// One figure/table from the regeneration catalog; the result is its
    /// rendered text.
    Figure {
        /// Catalog name (`fig2`..`fig16`, `cost`, `sched`, `smt`,
        /// `ablations`).
        figure: String,
        /// Access budget (catalog-specific overrides still apply).
        accesses: u64,
        /// Base RNG seed.
        seed: u64,
    },
    /// A prefetcher-arena tournament; the result is the league table.
    Arena {
        /// Engine roster (empty = default roster).
        engines: Vec<String>,
        /// Profile restriction (empty = all 30).
        profiles: Vec<String>,
        /// Access budget per run.
        accesses: u64,
        /// Base RNG seed.
        seed: u64,
    },
}

impl JobSpec {
    /// The run options this spec implies.
    pub fn opts(&self) -> RunOpts {
        let (accesses, seed, smt) = match self {
            JobSpec::Sweep { accesses, seed, smt, .. } => (*accesses, *seed, *smt),
            JobSpec::Figure { accesses, seed, .. } => (*accesses, *seed, false),
            JobSpec::Arena { accesses, seed, .. } => (*accesses, *seed, false),
        };
        RunOpts { accesses, seed, smt }
    }

    /// Canonical JSON form: the inverse of [`parse_spec`], used for
    /// shard handoff and job listings.
    pub fn to_value(&self) -> Value {
        fn arr(names: &[String]) -> Value {
            Value::Arr(names.iter().map(|n| Value::Str(n.clone())).collect())
        }
        let mut v = Value::obj();
        match self {
            JobSpec::Sweep { benchmarks, configs, accesses, seed, smt } => {
                v.set("kind", "sweep");
                v.set("benchmarks", arr(benchmarks));
                v.set("configs", arr(configs));
                v.set("accesses", *accesses);
                v.set("seed", *seed);
                v.set("smt", *smt);
            }
            JobSpec::Figure { figure, accesses, seed } => {
                v.set("kind", "figure");
                v.set("figure", figure.clone());
                v.set("accesses", *accesses);
                v.set("seed", *seed);
            }
            JobSpec::Arena { engines, profiles, accesses, seed } => {
                v.set("kind", "arena");
                v.set("engines", arr(engines));
                v.set("profiles", arr(profiles));
                v.set("accesses", *accesses);
                v.set("seed", *seed);
            }
        }
        v
    }

    /// Number of simulation runs the spec fans out (the progress
    /// denominator). Figure and arena totals are advisory (their inner
    /// sweeps report coarser progress).
    pub fn total_runs(&self) -> usize {
        match self {
            JobSpec::Sweep { benchmarks, configs, .. } => benchmarks.len() * configs.len(),
            JobSpec::Figure { .. } => 1,
            JobSpec::Arena { engines, profiles, .. } => {
                let e = if engines.is_empty() {
                    asd_sim::arena::default_roster().len()
                } else {
                    engines.len()
                };
                let p =
                    if profiles.is_empty() { suites::all_profiles().len() } else { profiles.len() };
                (e + 1) * p
            }
        }
    }
}

fn str_list(v: &Value, key: &str) -> Result<Vec<String>, ServeError> {
    let Some(field) = v.get(key) else {
        return Ok(Vec::new());
    };
    let arr = field.as_arr().ok_or_else(|| ServeError::MalformedRequest {
        message: format!("`{key}` must be an array of strings"),
    })?;
    arr.iter()
        .map(|e| {
            e.as_str().map(String::from).ok_or_else(|| ServeError::MalformedRequest {
                message: format!("`{key}` must be an array of strings"),
            })
        })
        .collect()
}

/// Parse and validate a job spec object. Unknown kinds, unknown
/// benchmark/figure names, and empty sweeps are rejected here, before
/// the job is accepted — a queued job can only fail inside the
/// simulator.
///
/// # Errors
///
/// [`ServeError::MalformedRequest`] with a message naming the offending
/// field.
pub fn parse_spec(v: &Value) -> Result<JobSpec, ServeError> {
    let accesses = v.u64_field("accesses").unwrap_or_else(|| asd_bench::full_opts().accesses);
    let seed = v.u64_field("seed").unwrap_or_else(|| RunOpts::default().seed);
    let spec = match v.str_field("kind") {
        Some("sweep") => JobSpec::Sweep {
            benchmarks: str_list(v, "benchmarks")?,
            configs: str_list(v, "configs")?,
            accesses,
            seed,
            smt: v.get("smt").and_then(Value::as_bool).unwrap_or(false),
        },
        Some("figure") => JobSpec::Figure {
            figure: v
                .str_field("figure")
                .ok_or_else(|| ServeError::MalformedRequest {
                    message: "figure job needs a `figure` name".to_string(),
                })?
                .to_string(),
            accesses,
            seed,
        },
        Some("arena") => JobSpec::Arena {
            engines: str_list(v, "engines")?,
            profiles: str_list(v, "profiles")?,
            accesses,
            seed,
        },
        Some(other) => {
            return Err(ServeError::MalformedRequest {
                message: format!("unknown job kind `{other}` (sweep|figure|arena)"),
            })
        }
        None => {
            return Err(ServeError::MalformedRequest {
                message: "job spec needs a `kind` field".to_string(),
            })
        }
    };
    validate_spec(&spec)?;
    Ok(spec)
}

/// Reject specs that could not possibly run: empty fan-outs, unknown
/// benchmark / figure / engine names. Submission-time validation keeps
/// the failure close to the client instead of deep in a queued job.
///
/// # Errors
///
/// [`ServeError::MalformedRequest`] or a folded
/// [`ServeError::Sim`] naming the unresolvable item.
pub fn validate_spec(spec: &JobSpec) -> Result<(), ServeError> {
    match spec {
        JobSpec::Sweep { benchmarks, configs, .. } => {
            if benchmarks.is_empty() || configs.is_empty() {
                return Err(ServeError::MalformedRequest {
                    message: "sweep needs at least one benchmark and one config".to_string(),
                });
            }
            build_sweep(spec)?;
        }
        JobSpec::Figure { figure, .. } => {
            if !asd_bench::FIGURES.contains(&figure.as_str())
                && figure != "smt"
                && figure != "ablations"
            {
                return Err(ServeError::MalformedRequest {
                    message: format!("unknown figure `{figure}`"),
                });
            }
        }
        JobSpec::Arena { engines, profiles, .. } => {
            for name in engines {
                asd_sim::engine_by_name(name).map_err(ServeError::Sim)?;
            }
            for name in profiles {
                if suites::by_name(name).is_none() {
                    return Err(ServeError::Sim(asd_sim::SimError::UnknownProfile {
                        name: name.clone(),
                    }));
                }
            }
        }
    }
    Ok(())
}

/// Build the [`Sweep`] a sweep spec describes: benchmarks in spec order,
/// configs nested inside each benchmark, labels equal to the config
/// names. Every executor — the in-process path, each shard worker, and
/// the bit-identity tests — calls this one constructor, so they run
/// byte-identical job lists by construction.
///
/// # Errors
///
/// [`SimError::UnknownProfile`] / [`SimError::UnknownEngine`] for
/// unresolvable names; non-sweep specs are a caller bug reported as
/// [`SimError::UnknownProfile`] on the spec kind.
pub fn build_sweep(spec: &JobSpec) -> Result<Sweep, asd_sim::SimError> {
    let JobSpec::Sweep { benchmarks, configs, smt, .. } = spec else {
        return Err(asd_sim::SimError::UnknownProfile { name: "<non-sweep spec>".to_string() });
    };
    let threads = if *smt { 2 } else { 1 };
    let opts = spec.opts();
    let mut sweep = Sweep::new(&opts);
    for bench in benchmarks {
        let profile = suites::by_name(bench)
            .ok_or_else(|| asd_sim::SimError::UnknownProfile { name: bench.clone() })?;
        for config in configs {
            let cfg = match config.as_str() {
                "NP" => SystemConfig::for_kind(PrefetchKind::Np, threads),
                "PS" => SystemConfig::for_kind(PrefetchKind::Ps, threads),
                "MS" => SystemConfig::for_kind(PrefetchKind::Ms, threads),
                "PMS" => SystemConfig::for_kind(PrefetchKind::Pms, threads),
                engine => {
                    SystemConfig::for_kind(PrefetchKind::Np, threads).with_engine_named(engine)?
                }
            };
            sweep.push(&profile, cfg, config);
        }
    }
    Ok(sweep)
}

/// The result document for a sweep's run: what the daemon returns and
/// what the bit-identity harness recomputes locally through the same
/// [`build_sweep`] constructor. One function so the two can never
/// diverge.
pub fn sweep_doc(results: &[RunResult]) -> Value {
    let mut doc = Value::obj();
    doc.set("kind", "sweep");
    doc.set("results", Value::Arr(results.iter().map(result_to_value).collect()));
    doc
}

/// Render one simulation result as the canonical response object: every
/// counter the wire codec persists, as JSON. Cycle counts at realistic
/// run lengths sit far below 2^53, so the `f64` numbers are exact.
pub fn result_to_value(r: &RunResult) -> Value {
    fn cache_level(s: &asd_cache::CacheStats) -> Value {
        let mut v = Value::obj();
        v.set("hits", s.hits);
        v.set("misses", s.misses);
        v.set("evictions", s.evictions);
        v.set("dirty_evictions", s.dirty_evictions);
        v
    }
    let mut core = Value::obj();
    core.set("accesses", r.core.accesses);
    core.set("reads", r.core.reads);
    core.set("writes", r.core.writes);
    core.set("demand_memory_reads", r.core.demand_memory_reads);
    core.set("ps_reads_sent", r.core.ps_reads_sent);
    core.set("stall_cycles", r.core.stall_cycles);
    core.set("memory_writebacks", r.core.cache.memory_writebacks);
    core.set("l1", cache_level(&r.core.cache.l1));
    core.set("l2", cache_level(&r.core.cache.l2));
    core.set("l3", cache_level(&r.core.cache.l3));
    let mut mc = Value::obj();
    mc.set("reads", r.mc.reads);
    mc.set("writes", r.mc.writes);
    mc.set("pb_hits_on_arrival", r.mc.pb_hits_on_arrival);
    mc.set("pb_hits_at_caq", r.mc.pb_hits_at_caq);
    mc.set("merged_with_prefetch", r.mc.merged_with_prefetch);
    mc.set("prefetches_issued", r.mc.prefetches_issued);
    mc.set("lpq_dropped", r.mc.lpq_dropped);
    mc.set("prefetch_redundant", r.mc.prefetch_redundant);
    mc.set("lpq_squashed", r.mc.lpq_squashed);
    mc.set("delayed_regular", r.mc.delayed_regular);
    mc.set("read_rejects", r.mc.read_rejects);
    mc.set("write_rejects", r.mc.write_rejects);
    let mut dram = Value::obj();
    dram.set("reads", r.dram.reads);
    dram.set("writes", r.dram.writes);
    dram.set("activations", r.dram.activations);
    dram.set("row_hits", r.dram.row_hits);
    let mut power = Value::obj();
    power.set("energy_j", r.power.energy_j);
    power.set("background_j", r.power.background_j);
    power.set("activate_j", r.power.activate_j);
    power.set("read_j", r.power.read_j);
    power.set("write_j", r.power.write_j);
    power.set("elapsed_s", r.power.elapsed_s);
    power.set("average_power_w", r.power.average_power_w);
    let mut v = Value::obj();
    v.set("benchmark", r.benchmark.clone());
    v.set("config", r.config.clone());
    v.set("cycles", r.cycles);
    v.set("core", core);
    v.set("mc", mc);
    v.set("dram", dram);
    v.set("power", power);
    if let Some(a) = &r.asd {
        let mut asd = Value::obj();
        asd.set("reads", a.reads);
        asd.set("prefetches", a.prefetches);
        asd.set("streams_observed", a.streams_observed);
        asd.set("untracked_reads", a.untracked_reads);
        asd.set("epochs", a.epochs);
        v.set("asd", asd);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn bad_frames_are_typed_errors() {
        let cases: [&[u8]; 4] = [b"x\n", b"99999999999999\n", b"5\nab", b"2\nabX"];
        for case in cases {
            let mut r = BufReader::new(case);
            assert!(read_frame(&mut r).is_err(), "{case:?}");
        }
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = JobSpec::Sweep {
            benchmarks: vec!["milc".into(), "lbm".into()],
            configs: vec!["NP".into(), "PMS".into()],
            accesses: 3_000,
            seed: 42,
            smt: false,
        };
        let back = parse_spec(&spec.to_value()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.total_runs(), 4);
    }

    #[test]
    fn bad_specs_are_rejected_at_parse_time() {
        let mut v = Value::obj();
        v.set("kind", "sweep");
        assert!(parse_spec(&v).is_err(), "empty sweep");
        let mut v = Value::obj();
        v.set("kind", "teleport");
        assert!(parse_spec(&v).is_err(), "unknown kind");
        let mut v = Value::obj();
        v.set("kind", "figure");
        v.set("figure", "fig99");
        assert!(parse_spec(&v).is_err(), "unknown figure");
        let spec = JobSpec::Sweep {
            benchmarks: vec!["not-a-benchmark".into()],
            configs: vec!["NP".into()],
            accesses: 1_000,
            seed: 1,
            smt: false,
        };
        assert!(validate_spec(&spec).is_err(), "unknown benchmark");
    }

    #[test]
    fn build_sweep_orders_bench_major() {
        let spec = JobSpec::Sweep {
            benchmarks: vec!["milc".into(), "lbm".into()],
            configs: vec!["NP".into(), "next-line".into()],
            accesses: 1_000,
            seed: 1,
            smt: false,
        };
        let sweep = build_sweep(&spec).unwrap();
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep.job_name(0), Some(("milc", "NP")));
        assert_eq!(sweep.job_name(1), Some(("milc", "next-line")));
        assert_eq!(sweep.job_name(3), Some(("lbm", "next-line")));
    }

    #[test]
    fn error_objects_roundtrip_kind() {
        let e = ServeError::Busy { depth: 3, cap: 2 };
        let v = err_obj(&e);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(matches!(err_of_value(&v), ServeError::Busy { .. }));
        let e = ServeError::ShuttingDown;
        assert!(matches!(err_of_value(&err_obj(&e)), ServeError::ShuttingDown));
    }
}

//! Cross-process sharding: split one sweep job's chunks between N
//! worker subprocesses of this same binary.
//!
//! The dispatcher re-serializes the job spec to each worker (so every
//! process builds the identical job list through
//! [`crate::proto::build_sweep`]), then drives the shared
//! [`Chunker`](asd_sim::sweep::Chunker) discipline over pipes: each
//! worker-feeder thread claims a range from the job's
//! [`Scheduler`](asd_sim::sweep::Scheduler), sends `R <start> <end>` on
//! the worker's stdin, and deposits the wire-decoded results under
//! their push indices — so the merged output is byte-identical to an
//! in-process [`Sweep::run`](asd_sim::sweep::Sweep::run), regardless of shard count or scheduling.
//!
//! A worker that dies or breaks protocol ([`ServeError::ShardWorker`])
//! does not fail the job: its feeder thread recomputes the affected
//! range locally and keeps claiming, degraded to in-process execution.
//! Workers inherit the parent's disk-cache directory via the
//! `ASD_DISK_CACHE` environment variable, so shards dedupe through the
//! same persistent tier.

use crate::error::ServeError;
use crate::proto::{build_sweep, read_frame, write_frame, write_json, JobSpec};
use asd_sim::sweep::Scheduler;
use asd_sim::{RunResult, SimError};
use asd_traceio::format::{get_varint, put_varint};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;

/// Encode one claimed range's outcomes: per job a tag byte (1 = ok,
/// 0 = error), a varint length, and either the wire-encoded result or
/// the rendered error text.
pub fn encode_chunk(results: &[Result<RunResult, SimError>]) -> Vec<u8> {
    let mut buf = Vec::new();
    for r in results {
        match r.as_ref().ok().and_then(asd_sim::wire::encode_result) {
            Some(bytes) => {
                buf.push(1);
                put_varint(&mut buf, bytes.len() as u64);
                buf.extend_from_slice(&bytes);
            }
            None => {
                let text = match r {
                    Ok(_) => "result not wire-encodable".to_string(),
                    Err(e) => e.to_string(),
                };
                buf.push(0);
                put_varint(&mut buf, text.len() as u64);
                buf.extend_from_slice(text.as_bytes());
            }
        }
    }
    buf
}

/// Decode a chunk of exactly `expected` outcomes. `None` on any
/// structural corruption — the dispatcher then recomputes the range
/// locally rather than trusting partial bytes.
pub fn decode_chunk(buf: &[u8], expected: usize) -> Option<Vec<Result<RunResult, String>>> {
    let mut out = Vec::with_capacity(expected);
    let mut pos = 0usize;
    for _ in 0..expected {
        let tag = *buf.get(pos)?;
        pos += 1;
        let len = usize::try_from(get_varint(buf, &mut pos)?).ok()?;
        let end = pos.checked_add(len)?;
        let body = buf.get(pos..end)?;
        pos = end;
        match tag {
            1 => out.push(Ok(asd_sim::wire::decode_result(body)?)),
            0 => out.push(Err(String::from_utf8(body.to_vec()).ok()?)),
            _ => return None,
        }
    }
    if pos != buf.len() {
        return None;
    }
    Some(out)
}

fn spawn_worker(shard: usize) -> Result<Child, ServeError> {
    let exe = std::env::current_exe()
        .map_err(|e| ServeError::ShardWorker { shard, message: format!("no current_exe: {e}") })?;
    let disk =
        asd_sim::cache::disk_dir().map_or_else(|| "0".to_string(), |d| d.display().to_string());
    Command::new(exe)
        .arg("shard-worker")
        .env("ASD_DISK_CACHE", disk)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| ServeError::ShardWorker { shard, message: format!("spawn failed: {e}") })
}

/// One feeder's channel to its worker subprocess.
struct WorkerPipe {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
}

fn open_pipe(shard: usize, spec: &JobSpec) -> Result<WorkerPipe, ServeError> {
    let mut child = spawn_worker(shard)?;
    let dead = |what: &str| ServeError::ShardWorker { shard, message: what.to_string() };
    let mut stdin = child.stdin.take().ok_or_else(|| dead("no stdin pipe"))?;
    let stdout = child.stdout.take().ok_or_else(|| dead("no stdout pipe"))?;
    write_json(&mut stdin, &spec.to_value())
        .map_err(|e| dead(&format!("spec handoff failed: {e}")))?;
    Ok(WorkerPipe { child, stdin, stdout: BufReader::new(stdout) })
}

fn roundtrip(
    pipe: &mut WorkerPipe,
    shard: usize,
    start: usize,
    end: usize,
) -> Result<Vec<Result<RunResult, String>>, ServeError> {
    let dead = |message: String| ServeError::ShardWorker { shard, message };
    pipe.stdin
        .write_all(format!("R {start} {end}\n").as_bytes())
        .and_then(|()| pipe.stdin.flush())
        .map_err(|e| dead(format!("request write failed: {e}")))?;
    let frame = read_frame(&mut pipe.stdout)
        .map_err(|e| dead(format!("result read failed: {e}")))?
        .ok_or_else(|| dead("worker closed its pipe mid-job".to_string()))?;
    decode_chunk(&frame, end - start)
        .ok_or_else(|| dead("worker returned a corrupt result chunk".to_string()))
}

/// Run a sweep spec across `shards` local worker subprocesses and merge
/// push-order-deterministically. Returns the results plus any
/// [`ServeError::ShardWorker`] warnings survived via local fallback.
///
/// # Errors
///
/// The earliest (push-order) failing job's [`SimError`], exactly like
/// [`Sweep::run`](asd_sim::sweep::Sweep::run) — worker deaths alone never fail the job.
pub fn run_sharded(
    spec: &JobSpec,
    shards: usize,
    progress: &(dyn Fn(usize, usize) + Sync),
) -> Result<(Vec<RunResult>, Vec<ServeError>), ServeError> {
    let sweep = build_sweep(spec).map_err(ServeError::Sim)?;
    let total = sweep.len();
    let shards = shards.clamp(1, total.max(1));
    let sched: Scheduler<Result<RunResult, String>> = Scheduler::new(total, shards);
    let warnings: Mutex<Vec<ServeError>> = Mutex::new(Vec::new());
    let warn = |e: ServeError| {
        // asd-lint: allow(D005) -- warnings list poisoning means a sibling feeder panicked; propagating is correct
        warnings.lock().expect("warnings poisoned").push(e);
    };
    std::thread::scope(|scope| {
        for shard in 0..shards {
            let sweep = &sweep;
            let sched = &sched;
            let warn = &warn;
            scope.spawn(move || {
                let mut pipe = match open_pipe(shard, spec) {
                    Ok(p) => Some(p),
                    Err(e) => {
                        warn(e);
                        None
                    }
                };
                while let Some((start, end)) = sched.claim() {
                    let outcome = match pipe.as_mut() {
                        Some(p) => match roundtrip(p, shard, start, end) {
                            Ok(items) => Some(items),
                            Err(e) => {
                                warn(e);
                                pipe = None;
                                None
                            }
                        },
                        None => None,
                    };
                    // Worker gone (or never started): run this range in
                    // process. Determinism is untouched — the same jobs
                    // land in the same slots.
                    let items = outcome.unwrap_or_else(|| {
                        sweep
                            .run_range(start, end)
                            .into_iter()
                            .map(|r| r.map_err(|e| e.to_string()))
                            .collect()
                    });
                    for (offset, item) in items.into_iter().enumerate() {
                        sched.deposit(start + offset, item);
                        progress(sched.done(), total);
                    }
                }
                if let Some(mut p) = pipe {
                    // Best-effort quit + reap: every chunk is already
                    // deposited, so the worker's exit status carries no
                    // information the job still needs.
                    let _ = p.stdin.write_all(b"Q\n");
                    let _ = p.stdin.flush();
                    drop(p.stdin);
                    // asd-lint: allow(D013) -- reaping an already-drained worker; failure leaves only a zombie
                    let _ = p.child.wait();
                }
            });
        }
    });
    let merged = sched.into_results().ok_or_else(|| ServeError::Io {
        context: "merging shard results".to_string(),
        message: "a result slot was left unfilled".to_string(),
    })?;
    // Push-order error selection, with errors re-run locally to recover
    // the typed SimError the wire protocol flattened to text.
    let mut out = Vec::with_capacity(total);
    for (index, item) in merged.into_iter().enumerate() {
        match item {
            Ok(r) => out.push(r),
            Err(_) => match sweep.run_range(index, index + 1).pop() {
                Some(Ok(r)) => out.push(r),
                Some(Err(e)) => return Err(ServeError::Sim(e)),
                None => {
                    return Err(ServeError::Io {
                        context: "recomputing failed shard job".to_string(),
                        message: format!("job {index} vanished"),
                    })
                }
            },
        }
    }
    // asd-lint: allow(D005) -- the scope joined all feeders: the warnings mutex cannot be poisoned here
    let warnings = warnings.into_inner().expect("warnings poisoned");
    Ok((out, warnings))
}

/// The `shard-worker` subprocess entry point: read the spec frame on
/// stdin, then serve `R <start> <end>` range requests with binary result
/// frames on stdout until `Q` or EOF. Returns the process exit code.
pub fn worker_main() -> u8 {
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let stdout = std::io::stdout();
    let mut output = stdout.lock();
    let spec = match crate::proto::read_json(&mut input) {
        Ok(Some(v)) => match crate::proto::parse_spec(&v) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("shard-worker: bad spec: {e}");
                return 2;
            }
        },
        Ok(None) => return 0,
        Err(e) => {
            eprintln!("shard-worker: {e}");
            return 2;
        }
    };
    let sweep = match build_sweep(&spec) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("shard-worker: {e}");
            return 2;
        }
    };
    let mut line = String::new();
    loop {
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) => return 0,
            Ok(_) => {}
            Err(e) => {
                eprintln!("shard-worker: stdin: {e}");
                return 1;
            }
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            ["Q"] => return 0,
            ["R", a, b] => {
                let (Ok(start), Ok(end)) = (a.parse::<usize>(), b.parse::<usize>()) else {
                    eprintln!("shard-worker: bad range `{}`", line.trim());
                    return 1;
                };
                let chunk = encode_chunk(&sweep.run_range(start, end));
                if let Err(e) = write_frame(&mut output, &chunk) {
                    eprintln!("shard-worker: stdout: {e}");
                    return 1;
                }
            }
            [] => {}
            _ => {
                eprintln!("shard-worker: bad request `{}`", line.trim());
                return 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asd_sim::{PrefetchKind, RunOpts, System, SystemConfig};

    fn results() -> Vec<Result<RunResult, SimError>> {
        let profile = asd_trace::suites::by_name("milc").expect("profile");
        let opts = RunOpts::quick();
        let ok = System::new(SystemConfig::for_kind(PrefetchKind::Ms, 1), &profile, &opts)
            .expect("valid")
            .with_label("MS")
            .run();
        vec![Ok(ok), Err(SimError::UnknownProfile { name: "ghost".into() })]
    }

    #[test]
    fn chunk_codec_roundtrips_ok_and_err() {
        let items = results();
        let bytes = encode_chunk(&items);
        let back = decode_chunk(&bytes, 2).expect("decodes");
        assert_eq!(back.len(), 2);
        let first = back[0].as_ref().expect("ok item");
        if let Ok(orig) = &items[0] {
            assert_eq!(format!("{first:?}"), format!("{orig:?}"));
        }
        let err = back[1].as_ref().expect_err("err item");
        assert!(err.contains("ghost"));
    }

    #[test]
    fn chunk_codec_rejects_corruption() {
        let bytes = encode_chunk(&results());
        assert!(decode_chunk(&bytes, 3).is_none(), "wrong count");
        assert!(decode_chunk(&bytes, 1).is_none(), "trailing bytes");
        for cut in 0..bytes.len() {
            assert!(decode_chunk(&bytes[..cut], 2).is_none(), "cut at {cut}");
        }
        let mut bad = bytes.clone();
        bad[0] = 7;
        assert!(decode_chunk(&bad, 2).is_none(), "bad tag");
    }
}

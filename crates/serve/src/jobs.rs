//! The job table: a bounded FIFO queue of submitted specs plus the
//! lifecycle state every connection handler reads.
//!
//! One executor thread claims jobs with [`JobTable::claim_next`]
//! (blocking); handler threads submit, poll, watch (blocking on the
//! same condvar), and cancel. The queue depth is capped — a submit
//! beyond the cap returns the typed [`ServeError::Busy`] rejection
//! instead of growing without bound — and [`JobTable::begin_shutdown`]
//! flips the table into draining mode: new submissions are refused with
//! [`ServeError::ShuttingDown`] while queued and running jobs complete.

use crate::error::ServeError;
use crate::proto::JobSpec;
use asd_bench::json::Value;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Where a job is in its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for the executor.
    Queued,
    /// The executor is running it.
    Running,
    /// Finished with a result document.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled while queued (running jobs finish their sweep; their
    /// result is then discarded).
    Cancelled,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job will never change state again.
    pub fn terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// A point-in-time copy of one job's externally visible state.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The id issued at submit time.
    pub id: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Completed simulation runs.
    pub done: usize,
    /// Total simulation runs (progress denominator).
    pub total: usize,
    /// The result document, present when `state == Done`.
    pub result: Option<Value>,
    /// The failure, present when `state == Failed`.
    pub error: Option<ServeError>,
}

struct JobRecord {
    spec: JobSpec,
    state: JobState,
    done: usize,
    total: usize,
    result: Option<Value>,
    error: Option<ServeError>,
}

struct Inner {
    jobs: BTreeMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    next_id: u64,
    accepted: u64,
    completed: u64,
    shutting_down: bool,
}

/// The shared table; every clone of the surrounding `Arc` sees the same
/// queue, ids, and condvar.
pub struct JobTable {
    inner: Mutex<Inner>,
    cv: Condvar,
    cap: usize,
}

impl JobTable {
    /// An empty table refusing more than `cap` queued jobs at a time.
    pub fn new(cap: usize) -> Self {
        JobTable {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                next_id: 1,
                accepted: 0,
                completed: 0,
                shutting_down: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // asd-lint: allow(D005) -- table poisoning means a sibling daemon thread panicked; propagating is correct
        self.inner.lock().expect("job table poisoned")
    }

    /// Accept a validated spec, or refuse with the typed busy /
    /// shutting-down rejection.
    ///
    /// # Errors
    ///
    /// [`ServeError::Busy`] at the queue cap, [`ServeError::ShuttingDown`]
    /// while draining.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, ServeError> {
        let total = spec.total_runs();
        let mut g = self.lock();
        if g.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if g.queue.len() >= self.cap {
            return Err(ServeError::Busy { depth: g.queue.len(), cap: self.cap });
        }
        let id = g.next_id;
        g.next_id += 1;
        g.accepted += 1;
        g.jobs.insert(
            id,
            JobRecord { spec, state: JobState::Queued, done: 0, total, result: None, error: None },
        );
        g.queue.push_back(id);
        drop(g);
        self.cv.notify_all();
        Ok(id)
    }

    /// Block until a job is available and claim it (marking it
    /// `Running`), or return `None` once the table is draining and the
    /// queue is empty. Cancelled entries are skipped.
    pub fn claim_next(&self) -> Option<(u64, JobSpec)> {
        let mut g = self.lock();
        loop {
            while let Some(id) = g.queue.pop_front() {
                if let Some(rec) = g.jobs.get_mut(&id) {
                    if rec.state == JobState::Queued {
                        rec.state = JobState::Running;
                        return Some((id, rec.spec.clone()));
                    }
                }
            }
            if g.shutting_down {
                return None;
            }
            // asd-lint: allow(D005) -- table poisoning means a sibling daemon thread panicked; propagating is correct
            g = self.cv.wait(g).expect("job table poisoned");
        }
    }

    /// Record progress on a running job and wake watchers.
    pub fn progress(&self, id: u64, done: usize, total: usize) {
        let mut g = self.lock();
        if let Some(rec) = g.jobs.get_mut(&id) {
            rec.done = done;
            if total > 0 {
                rec.total = total;
            }
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Terminate a job with its outcome. A job cancelled while running
    /// stays `Cancelled`; its late result is discarded.
    pub fn finish(&self, id: u64, outcome: Result<Value, ServeError>) {
        let mut g = self.lock();
        g.completed += 1;
        if let Some(rec) = g.jobs.get_mut(&id) {
            if rec.state != JobState::Cancelled {
                match outcome {
                    Ok(doc) => {
                        rec.done = rec.total;
                        rec.result = Some(doc);
                        rec.state = JobState::Done;
                    }
                    Err(e) => {
                        rec.error = Some(e);
                        rec.state = JobState::Failed;
                    }
                }
            }
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Cancel a job. Queued jobs never run; running jobs finish their
    /// current sweep and are then discarded; terminal jobs are left
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for an id the table never issued.
    pub fn cancel(&self, id: u64) -> Result<JobState, ServeError> {
        let mut g = self.lock();
        let rec = g.jobs.get_mut(&id).ok_or(ServeError::UnknownJob { id })?;
        if !rec.state.terminal() {
            rec.state = JobState::Cancelled;
        }
        let state = rec.state;
        drop(g);
        self.cv.notify_all();
        Ok(state)
    }

    /// A point-in-time copy of one job.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for an id the table never issued.
    pub fn status(&self, id: u64) -> Result<JobSnapshot, ServeError> {
        let g = self.lock();
        let rec = g.jobs.get(&id).ok_or(ServeError::UnknownJob { id })?;
        Ok(JobSnapshot {
            id,
            state: rec.state,
            done: rec.done,
            total: rec.total,
            result: rec.result.clone(),
            error: rec.error.clone(),
        })
    }

    /// Block until the job reaches a terminal state, then return its
    /// final snapshot. `step` fires on every observed change (progress
    /// streaming) **with the table unlocked** — a slow consumer never
    /// stalls the daemon; return `false` from it to stop waiting early.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for an id the table never issued.
    pub fn wait_terminal(
        &self,
        id: u64,
        mut step: impl FnMut(&JobSnapshot) -> bool,
    ) -> Result<JobSnapshot, ServeError> {
        let mut last = (usize::MAX, JobState::Queued);
        let mut g = self.lock();
        loop {
            let snap = {
                let rec = g.jobs.get(&id).ok_or(ServeError::UnknownJob { id })?;
                JobSnapshot {
                    id,
                    state: rec.state,
                    done: rec.done,
                    total: rec.total,
                    result: rec.result.clone(),
                    error: rec.error.clone(),
                }
            };
            if (snap.done, snap.state) != last {
                last = (snap.done, snap.state);
                drop(g);
                if !step(&snap) || snap.state.terminal() {
                    return Ok(snap);
                }
                g = self.lock();
                continue; // re-read: state may have moved while unlocked
            }
            if snap.state.terminal() {
                return Ok(snap);
            }
            // asd-lint: allow(D005) -- table poisoning means a sibling daemon thread panicked; propagating is correct
            g = self.cv.wait(g).expect("job table poisoned");
        }
    }

    /// Flip into draining mode: refuse new submissions, let queued and
    /// running jobs complete, and wake every blocked thread.
    pub fn begin_shutdown(&self) {
        self.lock().shutting_down = true;
        self.cv.notify_all();
    }

    /// Whether [`JobTable::begin_shutdown`] has been called.
    pub fn shutting_down(&self) -> bool {
        self.lock().shutting_down
    }

    /// `(accepted, completed, queue_depth)` counters for the health
    /// gauges.
    pub fn counts(&self) -> (u64, u64, usize) {
        let g = self.lock();
        (g.accepted, g.completed, g.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::Figure { figure: "cost".to_string(), accesses: 1_000, seed: 1 }
    }

    #[test]
    fn queue_cap_yields_typed_busy() {
        let table = JobTable::new(2);
        table.submit(spec()).unwrap();
        table.submit(spec()).unwrap();
        match table.submit(spec()) {
            Err(ServeError::Busy { depth, cap }) => {
                assert_eq!((depth, cap), (2, 2));
            }
            other => panic!("expected busy, got {other:?}"),
        }
        // Claiming one frees a slot.
        let (id, _) = table.claim_next().unwrap();
        assert_eq!(id, 1);
        table.submit(spec()).unwrap();
    }

    #[test]
    fn lifecycle_and_watchers() {
        let table = JobTable::new(8);
        let id = table.submit(spec()).unwrap();
        assert_eq!(table.status(id).unwrap().state, JobState::Queued);
        let (claimed, _) = table.claim_next().unwrap();
        assert_eq!(claimed, id);
        assert_eq!(table.status(id).unwrap().state, JobState::Running);
        table.progress(id, 1, 4);
        assert_eq!(table.status(id).unwrap().done, 1);
        table.finish(id, Ok(Value::obj()));
        let snap = table.wait_terminal(id, |_| true).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(snap.done, 4, "finish snaps progress to total");
        assert!(snap.result.is_some());
    }

    #[test]
    fn unknown_ids_are_typed() {
        let table = JobTable::new(2);
        assert!(matches!(table.status(99), Err(ServeError::UnknownJob { id: 99 })));
        assert!(matches!(table.cancel(99), Err(ServeError::UnknownJob { id: 99 })));
        assert!(matches!(
            table.wait_terminal(99, |_| true),
            Err(ServeError::UnknownJob { id: 99 })
        ));
    }

    #[test]
    fn cancelled_queued_jobs_never_run() {
        let table = JobTable::new(8);
        let a = table.submit(spec()).unwrap();
        let b = table.submit(spec()).unwrap();
        table.cancel(a).unwrap();
        let (claimed, _) = table.claim_next().unwrap();
        assert_eq!(claimed, b, "cancelled job skipped");
        assert_eq!(table.status(a).unwrap().state, JobState::Cancelled);
        // A cancelled-while-running job discards its late result.
        table.cancel(b).unwrap();
        table.finish(b, Ok(Value::obj()));
        let snap = table.status(b).unwrap();
        assert_eq!(snap.state, JobState::Cancelled);
        assert!(snap.result.is_none());
    }

    #[test]
    fn shutdown_drains_then_refuses() {
        let table = JobTable::new(8);
        let id = table.submit(spec()).unwrap();
        table.begin_shutdown();
        assert!(matches!(table.submit(spec()), Err(ServeError::ShuttingDown)));
        // The queued job is still claimable; after it, the claim loop
        // reports drained.
        assert_eq!(table.claim_next().map(|(i, _)| i), Some(id));
        assert!(table.claim_next().is_none());
    }
}

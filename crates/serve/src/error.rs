//! The daemon-level error taxonomy, folded into the [`SimError`]
//! conventions: typed, `Clone`/`PartialEq`, `non_exhaustive`, rendered
//! by `Display`, and carried over the wire as a structured
//! `{"ok":false,"error":{"kind":...,"message":...}}` response instead
//! of a panic or a dropped connection.

use asd_sim::SimError;
use std::fmt;

/// Everything that can go wrong between a client request and a job
/// result.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The daemon could not bind its listen address.
    Bind {
        /// The `host:port` that failed.
        addr: String,
        /// The OS error text.
        message: String,
    },
    /// A request frame was not valid protocol input: bad framing, bad
    /// JSON, an unknown `op`, or a spec that fails validation.
    MalformedRequest {
        /// What was wrong with it.
        message: String,
    },
    /// A job id that the table has never issued.
    UnknownJob {
        /// The id the client asked about.
        id: u64,
    },
    /// A shard-worker subprocess died or broke protocol mid-job. The
    /// dispatcher recomputes the affected chunks locally, so this
    /// surfaces as a warning event unless the local fallback also fails.
    ShardWorker {
        /// Zero-based shard index.
        shard: usize,
        /// What happened to it.
        message: String,
    },
    /// The bounded job queue is full; resubmit later.
    Busy {
        /// Jobs currently queued.
        depth: usize,
        /// The configured queue cap.
        cap: usize,
    },
    /// The daemon is draining for shutdown and refuses new work.
    ShuttingDown,
    /// A trace-corpus operation failed: unknown name, invalid ASDT
    /// payload, or an I/O error underneath the store.
    Corpus {
        /// The trace name involved.
        name: String,
        /// What went wrong.
        message: String,
    },
    /// A connection-level I/O failure (read/write/accept).
    Io {
        /// What the daemon was doing.
        context: String,
        /// The OS error text.
        message: String,
    },
    /// A job failed inside the simulator.
    Sim(SimError),
}

impl ServeError {
    /// Stable machine-readable discriminant used in wire responses and
    /// matched by clients (`error.kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Bind { .. } => "bind",
            ServeError::MalformedRequest { .. } => "malformed",
            ServeError::UnknownJob { .. } => "unknown-job",
            ServeError::ShardWorker { .. } => "shard",
            ServeError::Busy { .. } => "busy",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::Corpus { .. } => "corpus",
            ServeError::Io { .. } => "io",
            ServeError::Sim(_) => "sim",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, message } => {
                write!(f, "could not bind {addr}: {message}")
            }
            ServeError::MalformedRequest { message } => {
                write!(f, "malformed request: {message}")
            }
            ServeError::UnknownJob { id } => write!(f, "unknown job id {id}"),
            ServeError::ShardWorker { shard, message } => {
                write!(f, "shard worker {shard} failed: {message}")
            }
            ServeError::Busy { depth, cap } => {
                write!(f, "server busy: {depth} jobs queued (cap {cap})")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Corpus { name, message } => {
                write!(f, "trace corpus `{name}`: {message}")
            }
            ServeError::Io { context, message } => write!(f, "{context}: {message}"),
            ServeError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let all = [
            ServeError::Bind { addr: "x:1".into(), message: "m".into() }.kind(),
            ServeError::MalformedRequest { message: "m".into() }.kind(),
            ServeError::UnknownJob { id: 7 }.kind(),
            ServeError::ShardWorker { shard: 0, message: "m".into() }.kind(),
            ServeError::Busy { depth: 9, cap: 8 }.kind(),
            ServeError::ShuttingDown.kind(),
            ServeError::Corpus { name: "t".into(), message: "m".into() }.kind(),
            ServeError::Io { context: "c".into(), message: "m".into() }.kind(),
            ServeError::Sim(SimError::UnknownProfile { name: "x".into() }).kind(),
        ];
        let mut dedup = all.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "kinds must be distinct");
    }

    #[test]
    fn display_carries_context() {
        let e = ServeError::Busy { depth: 65, cap: 64 };
        assert!(e.to_string().contains("65"));
        assert!(e.to_string().contains("64"));
        let e = ServeError::UnknownJob { id: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn sim_errors_fold_in_and_chain() {
        let e: ServeError = SimError::UnknownProfile { name: "zeus".into() }.into();
        assert_eq!(e.kind(), "sim");
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("zeus"));
    }
}

//! The ASDT trace-corpus store: named trace files under one directory,
//! with streaming validation on ingestion.
//!
//! Uploads are verified record-by-record through
//! [`asd_traceio::TraceReader`] (bounded memory — the reader streams
//! chunk by chunk and checks every CRC) before the bytes are committed
//! with an atomic temp-file + rename, so the store never holds a trace
//! that does not parse. Names are restricted to `[A-Za-z0-9._-]` and
//! must not start with a dot, which rules out path traversal by
//! construction.

use crate::error::ServeError;
use asd_traceio::TraceReader;
use std::io::Cursor;
use std::path::{Path, PathBuf};

/// Extension every stored trace carries.
pub const TRACE_EXT: &str = "asdt";

/// A directory of named ASDT traces.
pub struct Corpus {
    dir: PathBuf,
}

/// One stored trace, as listed to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Store name (without the `.asdt` extension).
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Profile recorded in the container header.
    pub profile: String,
    /// Total access records.
    pub accesses: u64,
    /// Hardware-thread contexts.
    pub threads: u8,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && name.len() <= 128
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

impl Corpus {
    /// A store rooted at `dir` (created on first use).
    pub fn new(dir: PathBuf) -> Self {
        Corpus { dir }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, name: &str) -> Result<PathBuf, ServeError> {
        if !valid_name(name) {
            return Err(ServeError::Corpus {
                name: name.to_string(),
                message: "names are 1-128 chars of [A-Za-z0-9._-], not starting with a dot"
                    .to_string(),
            });
        }
        Ok(self.dir.join(format!("{name}.{TRACE_EXT}")))
    }

    /// Validate and store `bytes` under `name`, replacing any previous
    /// trace of that name. Returns the verified access count.
    ///
    /// # Errors
    ///
    /// [`ServeError::Corpus`] for a bad name, an ASDT payload that fails
    /// verification, or an I/O failure.
    pub fn put(&self, name: &str, bytes: &[u8]) -> Result<u64, ServeError> {
        let path = self.path_of(name)?;
        let fail = |message: String| ServeError::Corpus { name: name.to_string(), message };
        let reader = TraceReader::new(Cursor::new(bytes))
            .map_err(|e| fail(format!("invalid ASDT container: {e}")))?;
        let accesses = reader.verify().map_err(|e| fail(format!("corrupt ASDT payload: {e}")))?;
        std::fs::create_dir_all(&self.dir).map_err(|e| fail(e.to_string()))?;
        let tmp = self.dir.join(format!(".upload-{}.tmp", std::process::id()));
        std::fs::write(&tmp, bytes).map_err(|e| fail(e.to_string()))?;
        std::fs::rename(&tmp, &path).map_err(|e| fail(e.to_string()))?;
        Ok(accesses)
    }

    /// Fetch a stored trace's bytes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Corpus`] for a bad or unknown name.
    pub fn get(&self, name: &str) -> Result<Vec<u8>, ServeError> {
        let path = self.path_of(name)?;
        std::fs::read(&path)
            .map_err(|e| ServeError::Corpus { name: name.to_string(), message: e.to_string() })
    }

    /// Every stored trace, sorted by name. Files that no longer parse
    /// (e.g. corrupted on disk after ingestion) are skipped rather than
    /// breaking the listing.
    pub fn list(&self) -> Vec<TraceEntry> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out: Vec<TraceEntry> = entries
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                let name = path.file_stem()?.to_str()?.to_string();
                if path.extension()?.to_str()? != TRACE_EXT || !valid_name(&name) {
                    return None;
                }
                let bytes = e.metadata().ok()?.len();
                let file = std::fs::File::open(&path).ok()?;
                let reader = TraceReader::new(std::io::BufReader::new(file)).ok()?;
                let meta = reader.meta();
                Some(TraceEntry {
                    name,
                    bytes,
                    profile: meta.profile.clone(),
                    accesses: meta.accesses,
                    threads: meta.threads,
                })
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asd_traceio::record_profile;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("asd-corpus-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace() -> Vec<u8> {
        let path = std::env::temp_dir()
            .join(format!("asd-corpus-test-{}-sample.asdt", std::process::id()));
        let profile = asd_trace::suites::by_name("milc").expect("known profile");
        record_profile(&path, &profile, 0x5eed, 1, 500).expect("record");
        let bytes = std::fs::read(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        bytes
    }

    #[test]
    fn put_list_get_roundtrip() {
        let corpus = Corpus::new(scratch("roundtrip"));
        let bytes = sample_trace();
        let accesses = corpus.put("milc-short", &bytes).unwrap();
        assert_eq!(accesses, 500);
        let listed = corpus.list();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name, "milc-short");
        assert_eq!(listed[0].profile, "milc");
        assert_eq!(listed[0].accesses, 500);
        assert_eq!(corpus.get("milc-short").unwrap(), bytes);
        let _ = std::fs::remove_dir_all(corpus.dir());
    }

    #[test]
    fn traversal_and_garbage_are_rejected() {
        let corpus = Corpus::new(scratch("reject"));
        let bytes = sample_trace();
        for name in ["../evil", "a/b", "", ".hidden", "name with spaces"] {
            assert!(corpus.put(name, &bytes).is_err(), "{name:?}");
        }
        assert!(corpus.put("ok", b"not an asdt file").is_err(), "garbage payload");
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 3);
        assert!(corpus.put("ok", &truncated).is_err(), "truncated payload");
        assert!(corpus.get("never-stored").is_err());
        assert!(corpus.list().is_empty());
        let _ = std::fs::remove_dir_all(corpus.dir());
    }
}

//! # Sim-as-a-service: the `asd-serve` daemon
//!
//! A long-lived sweep server over plain `std::net` TCP — zero external
//! dependencies, like the rest of the workspace. Clients speak a
//! length-prefixed newline-JSON frame protocol ([`proto`]) to submit
//! sweep / figure / arena jobs, poll or stream their progress, fetch
//! results, and manage an ASDT trace corpus ([`corpus`]). Results are
//! **bit-identical** to running the equivalent CLI drivers directly:
//! every executor path — in-process, shard-worker subprocesses
//! ([`shard`]), and the client-side reference harness
//! ([`client::reference_doc`]) — builds its job list through the single
//! [`proto::build_sweep`] constructor and renders documents through
//! [`proto::sweep_doc`].
//!
//! Three layers make the daemon restart-proof and bounded:
//!
//! - the **job table** ([`jobs::JobTable`]): a bounded FIFO with typed
//!   `Busy` rejection, cancellation, progress watching, and a
//!   protocol-driven drain for graceful shutdown;
//! - the **persistent run cache** (`asd_sim::cache`'s disk tier):
//!   CRC-checked content-addressed records under `<root>/cache`, so a
//!   restarted daemon serves previously computed sweeps with zero new
//!   simulation runs;
//! - the **shard dispatcher** ([`shard`]): N worker subprocesses of this
//!   same binary splitting a sweep's chunks, with local fallback when a
//!   worker dies — results stay push-order deterministic either way.
//!
//! Every failure mode is a typed [`ServeError`] with a stable `kind`
//! string that survives the wire ([`proto::err_obj`] /
//! [`proto::err_of_value`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod corpus;
pub mod error;
pub mod jobs;
pub mod proto;
pub mod server;
pub mod shard;

pub use client::{load_bench, BenchOpts, BenchReport, Client};
pub use error::ServeError;
pub use jobs::{JobSnapshot, JobState, JobTable};
pub use proto::JobSpec;
pub use server::{Server, ServerConfig};

//! The daemon core: a worker-pool accept loop over `std::net`, a pool
//! of executor threads draining the [`JobTable`], and the request
//! dispatcher.
//!
//! Connection handlers are a fixed pool of threads all blocked in
//! `accept` on the shared listener — no thread-per-connection growth —
//! and every job runs on one of `executors` executor threads (its
//! *simulations* fan out through [`Sweep`](asd_sim::sweep::Sweep)'s
//! thread pool or the shard dispatcher), so memory stays bounded no
//! matter how many clients connect: at most `queue_cap` queued specs
//! plus `executors` running jobs. With more than one executor,
//! concurrent jobs that request the same simulation share it through
//! the run cache's single-flight registry: the first claimant
//! simulates, the rest park and reuse its result (the `stats` gauges
//! `cache_flight_leads` / `cache_flight_joins` count both sides).
//!
//! Shutdown is protocol-driven (`{"op":"shutdown"}`; the workspace
//! forbids `unsafe`, so there is no signal handler): the table flips to
//! draining, the executor finishes queued jobs, handler threads are
//! nudged out of `accept` by loopback connections, and the persistent
//! cache index is written before `run` returns.

use crate::corpus::Corpus;
use crate::error::ServeError;
use crate::jobs::{JobSnapshot, JobTable};
use crate::proto::{
    self, err_obj, ok_obj, parse_spec, read_json, write_frame, write_json, JobSpec,
};
use asd_bench::json::Value;
use asd_sim::RunOpts;
use asd_telemetry::{expo, names, Registry, TelemetryConfig, Unit};
use asd_trace::suites;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shard-worker failures survived via local fallback (a `serve.*`
/// gauge).
static SHARD_FAILURES: AtomicU64 = AtomicU64::new(0);

/// How the daemon is wired up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen host (default loopback).
    pub host: String,
    /// Listen port; 0 picks an ephemeral port.
    pub port: u16,
    /// Connection-handler pool size.
    pub handlers: usize,
    /// Executor-thread pool size: jobs running concurrently. Beyond 1,
    /// overlapping jobs share identical simulations through the run
    /// cache's single-flight registry instead of repeating them.
    pub executors: usize,
    /// Job-queue cap ([`ServeError::Busy`] beyond it).
    pub queue_cap: usize,
    /// Shard-worker subprocesses per sweep job (1 = in-process).
    pub shards: usize,
    /// State root: the persistent run cache lives in `<root>/cache`, the
    /// trace corpus in `<root>/corpus`.
    pub root: PathBuf,
    /// Per-read socket timeout; idle connections are dropped after it.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            handlers: 8,
            executors: 1,
            queue_cap: 64,
            shards: 1,
            root: PathBuf::from("target/asd-serve"),
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// A bound daemon, ready to [`Server::run`].
pub struct Server {
    cfg: ServerConfig,
    listener: TcpListener,
    table: Arc<JobTable>,
    corpus: Arc<Corpus>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listen socket and wire the persistent tiers: unless the
    /// `ASD_DISK_CACHE` environment variable already pins a location (or
    /// disables the tier with `0`), the run cache persists under
    /// `<root>/cache`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address cannot be bound.
    pub fn bind(cfg: ServerConfig) -> Result<Server, ServeError> {
        let addr = format!("{}:{}", cfg.host, cfg.port);
        let listener = TcpListener::bind(&addr)
            .map_err(|e| ServeError::Bind { addr: addr.clone(), message: e.to_string() })?;
        if std::env::var("ASD_DISK_CACHE").is_err() {
            asd_sim::cache::set_disk_dir(Some(cfg.root.join("cache")));
        }
        let corpus = Arc::new(Corpus::new(cfg.root.join("corpus")));
        Ok(Server {
            table: Arc::new(JobTable::new(cfg.queue_cap)),
            stop: Arc::new(AtomicBool::new(false)),
            listener,
            corpus,
            cfg,
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(|e| ServeError::Io {
            context: "resolving listen address".to_string(),
            message: e.to_string(),
        })
    }

    /// Serve until a `shutdown` request completes the drain: queued jobs
    /// finish, the disk-cache index is persisted, and every pool thread
    /// is joined.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] for listener-level failures.
    pub fn run(self) -> Result<(), ServeError> {
        let addr = self.local_addr()?;
        let Server { cfg, listener, table, corpus, stop } = self;
        let listener = Arc::new(listener);
        std::thread::scope(|scope| {
            let mut executors = Vec::new();
            for _ in 0..cfg.executors.max(1) {
                let table = Arc::clone(&table);
                let shards = cfg.shards;
                executors.push(scope.spawn(move || {
                    while let Some((id, spec)) = table.claim_next() {
                        let outcome = execute(&spec, id, &table, shards);
                        table.finish(id, outcome);
                    }
                }));
            }
            let mut handlers = Vec::new();
            for _ in 0..cfg.handlers.max(1) {
                let listener = Arc::clone(&listener);
                let table = Arc::clone(&table);
                let corpus = Arc::clone(&corpus);
                let stop = Arc::clone(&stop);
                let timeout = cfg.read_timeout;
                handlers.push(scope.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                                handle_conn(stream, timeout, &table, &corpus);
                            }
                            Err(_) => {
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                            }
                        }
                    }
                }));
            }
            // The executors return once a shutdown request drained the
            // queue. Then release the accept pool: raise the stop flag
            // and nudge each blocked accept with a loopback connection.
            for executor in executors {
                let _ = executor.join();
            }
            stop.store(true, Ordering::Release);
            for _ in &handlers {
                let _ = TcpStream::connect(addr);
            }
        });
        match asd_sim::cache::persist_disk_index() {
            Ok(n) => eprintln!("asd-serve: persisted cache index ({n} entries)"),
            Err(e) => eprintln!("asd-serve: could not persist cache index: {e}"),
        }
        Ok(())
    }
}

/// Run one job spec to its result document. Shared by the executor
/// thread and (indirectly, through the same underlying drivers) the CLI
/// paths the bit-identity tests compare against.
fn execute(spec: &JobSpec, id: u64, table: &JobTable, shards: usize) -> Result<Value, ServeError> {
    let progress = |done: usize, total: usize| table.progress(id, done, total);
    match spec {
        JobSpec::Sweep { .. } => {
            let results = if shards > 1 {
                let (results, warnings) = crate::shard::run_sharded(spec, shards, &progress)?;
                for w in warnings {
                    SHARD_FAILURES.fetch_add(1, Ordering::Relaxed);
                    eprintln!("asd-serve: job {id}: {w}");
                }
                results
            } else {
                let sweep = proto::build_sweep(spec).map_err(ServeError::Sim)?;
                sweep.run_observed(&progress).map_err(ServeError::Sim)?
            };
            Ok(proto::sweep_doc(&results))
        }
        JobSpec::Figure { figure, .. } => {
            let output = figure_output(figure, &spec.opts()).map_err(ServeError::Sim)?;
            progress(1, 1);
            let mut doc = Value::obj();
            doc.set("kind", "figure");
            doc.set("figure", figure.clone());
            doc.set("text", output.text);
            Ok(doc)
        }
        JobSpec::Arena { engines, profiles, .. } => {
            let result = run_arena(engines, profiles, &spec.opts()).map_err(ServeError::Sim)?;
            progress(1, 1);
            let mut doc = Value::obj();
            doc.set("kind", "arena");
            doc.set("text", result.text.clone());
            if let Some(best) = result.rows.first() {
                doc.set("winner", best.engine.clone());
            }
            Ok(doc)
        }
    }
}

/// Resolve and run one figure by catalog name. Barrier mode
/// (`ASD_PIPELINE=barrier`) runs the plan's own sweep; the default graph
/// mode routes it through a single-figure
/// [`Pipeline`](asd_sim::pipeline::Pipeline). Either way every
/// simulation lands in the run cache's single-flight registry, so two
/// connections requesting overlapping figures run each shared point
/// once — the second joins the first's in-flight run. Text output is
/// bit-identical to the CLI in both modes.
fn figure_output(
    figure: &str,
    opts: &RunOpts,
) -> Result<asd_sim::pipeline::FigureOutput, asd_sim::SimError> {
    let plan = asd_sim::figures::plan(figure, opts)?;
    if asd_sim::pipeline::barrier_mode() {
        return plan.run();
    }
    let mut pipe = asd_sim::pipeline::Pipeline::new();
    pipe.submit(plan);
    let mut run = pipe.run(&|| 0.0)?;
    match run.figures.pop() {
        Some(f) => Ok(f.output),
        // Unreachable: a one-figure pipeline that returns Ok always
        // yields exactly one output.
        None => Err(asd_sim::SimError::UnknownFigure { name: figure.to_string() }),
    }
}

/// The arena exactly as the CLI runs it: empty roster/profile lists mean
/// the defaults.
fn run_arena(
    engines: &[String],
    profiles: &[String],
    opts: &RunOpts,
) -> Result<asd_sim::arena::ArenaResult, asd_sim::SimError> {
    let roster =
        if engines.is_empty() { asd_sim::arena::default_roster() } else { engines.to_vec() };
    let roster: Vec<&str> = roster.iter().map(String::as_str).collect();
    let profiles = if profiles.is_empty() {
        suites::all_profiles()
    } else {
        profiles
            .iter()
            .map(|n| {
                suites::by_name(n)
                    .ok_or_else(|| asd_sim::SimError::UnknownProfile { name: n.clone() })
            })
            .collect::<Result<Vec<_>, _>>()?
    };
    asd_sim::arena::arena_with(&roster, &profiles, opts)
}

fn snapshot_value(snap: &JobSnapshot) -> Value {
    let mut v = ok_obj();
    v.set("id", snap.id);
    v.set("state", snap.state.name());
    v.set("done", snap.done);
    v.set("total", snap.total);
    v
}

/// The `stats` response: job/queue/cache counters plus the `serve.*`
/// Prometheus exposition, all read from one telemetry snapshot so the
/// numbers and the text can never disagree.
fn stats_value(table: &JobTable) -> Value {
    let (accepted, completed, depth) = table.counts();
    let (run_hits, run_misses) = asd_sim::cache::stats();
    let (disk_hits, disk_misses, disk_writes, disk_evictions) = asd_sim::cache::disk_stats();
    let (flight_leads, flight_joins) = asd_sim::cache::flight_stats();
    let mut tel = Registry::section("serve.", &TelemetryConfig::metrics_only());
    for (metric, help, v) in [
        ("jobs_accepted", "jobs accepted into the queue", accepted),
        ("jobs_completed", "jobs run to a terminal state", completed),
        ("queue_depth", "jobs currently queued", depth as u64),
        ("shard_failures", "shard workers lost and recovered locally", {
            SHARD_FAILURES.load(Ordering::Relaxed)
        }),
        ("cache_run_hits", "runs served from the memory or disk cache", run_hits),
        ("cache_run_misses", "runs actually simulated", run_misses),
        ("cache_disk_hits", "runs served from the persistent disk tier", disk_hits),
        ("cache_disk_misses", "disk-tier lookups that missed", disk_misses),
        ("cache_disk_writes", "records written to the disk tier", disk_writes),
        ("cache_disk_evictions", "corrupt disk records evicted", disk_evictions),
        ("cache_flight_leads", "cacheable runs this process simulated as single-flight leader", {
            flight_leads
        }),
        ("cache_flight_joins", "runs that joined another caller's in-flight simulation", {
            flight_joins
        }),
    ] {
        tel.fill_gauge(&names::serve_metric(metric), Unit::Events, help, v as f64);
    }
    let snap = tel.snapshot();
    let mut v = ok_obj();
    for metric in [
        "jobs_accepted",
        "jobs_completed",
        "queue_depth",
        "shard_failures",
        "cache_run_hits",
        "cache_run_misses",
        "cache_disk_hits",
        "cache_disk_misses",
        "cache_disk_writes",
        "cache_disk_evictions",
        "cache_flight_leads",
        "cache_flight_joins",
    ] {
        v.set(metric, snap.gauge(&format!("serve.{metric}")).unwrap_or(0.0));
    }
    v.set("disk_entries", asd_sim::cache::disk_entry_count());
    v.set("prom", expo::prom::render(&snap));
    v
}

fn terminal_value(snap: &JobSnapshot) -> Value {
    match (&snap.result, &snap.error) {
        (Some(doc), _) => {
            let mut v = snapshot_value(snap);
            v.set("result", doc.clone());
            v
        }
        (None, Some(e)) => {
            let mut v = err_obj(e);
            v.set("state", snap.state.name());
            v
        }
        (None, None) => {
            let mut v = snapshot_value(snap);
            v.set("ok", snap.state.name() == "cancelled");
            v
        }
    }
}

/// Serve one connection: a request/response loop over frames until the
/// peer closes, errs, or asks for shutdown.
fn handle_conn(stream: TcpStream, timeout: Duration, table: &JobTable, corpus: &Corpus) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let request = match read_json(&mut reader) {
            Ok(Some(v)) => v,
            Ok(None) => return,
            Err(e) => {
                // Structured error response, then drop the connection —
                // after a framing violation the stream position is
                // unreliable.
                // asd-lint: allow(D013) -- best-effort notification; the connection is being dropped either way
                let _ = write_json(&mut writer, &err_obj(&e));
                return;
            }
        };
        let response = dispatch(&request, &mut reader, &mut writer, table, corpus);
        match response {
            Ok(Some(v)) => {
                if write_json(&mut writer, &v).is_err() {
                    return;
                }
            }
            Ok(None) => {} // the op wrote its own frames (watch/trace-get)
            Err(e) => {
                if write_json(&mut writer, &err_obj(&e)).is_err() {
                    return;
                }
            }
        }
    }
}

/// Handle one request. `Ok(Some(v))` sends `v`; `Ok(None)` means the op
/// already wrote its response frames; `Err(e)` sends the structured
/// error.
fn dispatch(
    request: &Value,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    table: &JobTable,
    corpus: &Corpus,
) -> Result<Option<Value>, ServeError> {
    let op = request.str_field("op").ok_or_else(|| ServeError::MalformedRequest {
        message: "request needs an `op` field".to_string(),
    })?;
    let id_of = |request: &Value| {
        request.u64_field("id").ok_or_else(|| ServeError::MalformedRequest {
            message: format!("`{op}` needs a numeric `id`"),
        })
    };
    match op {
        "ping" => {
            let mut v = ok_obj();
            v.set("pong", true);
            v.set("version", env!("CARGO_PKG_VERSION"));
            Ok(Some(v))
        }
        "submit" => {
            let job = request.get("job").ok_or_else(|| ServeError::MalformedRequest {
                message: "`submit` needs a `job` spec".to_string(),
            })?;
            let spec = parse_spec(job)?;
            let id = table.submit(spec)?;
            let mut v = ok_obj();
            v.set("id", id);
            Ok(Some(v))
        }
        "status" => Ok(Some(snapshot_value(&table.status(id_of(request)?)?))),
        "result" => {
            let snap = table.status(id_of(request)?)?;
            if !snap.state.terminal() {
                return Err(ServeError::MalformedRequest {
                    message: format!(
                        "job {} is not finished (state {})",
                        snap.id,
                        snap.state.name()
                    ),
                });
            }
            Ok(Some(terminal_value(&snap)))
        }
        "wait" => {
            let snap = table.wait_terminal(id_of(request)?, |_| true)?;
            Ok(Some(terminal_value(&snap)))
        }
        "watch" => {
            let id = id_of(request)?;
            let ok = std::cell::Cell::new(true);
            let snap = table.wait_terminal(id, |s| {
                let mut ev = Value::obj();
                ev.set("event", "progress");
                ev.set("id", s.id);
                ev.set("state", s.state.name());
                ev.set("done", s.done);
                ev.set("total", s.total);
                let sent = write_json(writer, &ev).is_ok();
                ok.set(sent);
                sent
            })?;
            if !ok.get() {
                return Ok(None); // peer went away mid-stream
            }
            let mut end = terminal_value(&snap);
            end.set("event", "end");
            Ok(Some(end))
        }
        "cancel" => {
            let state = table.cancel(id_of(request)?)?;
            let mut v = ok_obj();
            v.set("state", state.name());
            Ok(Some(v))
        }
        "stats" => Ok(Some(stats_value(table))),
        "trace-put" => {
            let name = request.str_field("name").ok_or_else(|| ServeError::MalformedRequest {
                message: "`trace-put` needs a `name`".to_string(),
            })?;
            let bytes = proto::read_frame(reader)?.ok_or_else(|| ServeError::MalformedRequest {
                message: "`trace-put` needs a binary payload frame".to_string(),
            })?;
            let accesses = corpus.put(name, &bytes)?;
            let mut v = ok_obj();
            v.set("name", name);
            v.set("accesses", accesses);
            Ok(Some(v))
        }
        "trace-list" => {
            let traces = corpus
                .list()
                .into_iter()
                .map(|t| {
                    let mut v = Value::obj();
                    v.set("name", t.name);
                    v.set("bytes", t.bytes);
                    v.set("profile", t.profile);
                    v.set("accesses", t.accesses);
                    v.set("threads", u64::from(t.threads));
                    v
                })
                .collect();
            let mut v = ok_obj();
            v.set("traces", Value::Arr(traces));
            Ok(Some(v))
        }
        "trace-get" => {
            let name = request.str_field("name").ok_or_else(|| ServeError::MalformedRequest {
                message: "`trace-get` needs a `name`".to_string(),
            })?;
            let bytes = corpus.get(name)?;
            let mut v = ok_obj();
            v.set("name", name);
            v.set("bytes", bytes.len());
            write_json(writer, &v)?;
            write_frame(writer, &bytes)?;
            Ok(None)
        }
        "shutdown" => {
            table.begin_shutdown();
            let mut v = ok_obj();
            v.set("draining", true);
            Ok(Some(v))
        }
        other => Err(ServeError::MalformedRequest { message: format!("unknown op `{other}`") }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_failure_is_typed() {
        // 300.0.0.1 is not a parseable IPv4 address, so the bind fails
        // on every platform without touching the network.
        let cfg = ServerConfig { host: "300.0.0.1".to_string(), port: 1, ..Default::default() };
        match Server::bind(cfg) {
            Err(ServeError::Bind { addr, .. }) => assert!(addr.contains("300.0.0.1")),
            other => panic!("expected bind error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn stats_value_carries_prom_exposition() {
        let table = JobTable::new(4);
        let v = stats_value(&table);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let prom = v.str_field("prom").unwrap_or_default();
        assert!(prom.contains("serve.jobs_accepted") || prom.contains("serve_jobs_accepted"));
        assert!(expo::prom::validate(prom).is_ok(), "exposition must validate");
    }

    #[test]
    fn execute_runs_figure_jobs() {
        let table = JobTable::new(4);
        let id = table
            .submit(JobSpec::Figure { figure: "cost".to_string(), accesses: 1_000, seed: 1 })
            .unwrap();
        let (claimed, spec) = table.claim_next().unwrap();
        assert_eq!(claimed, id);
        let doc = execute(&spec, id, &table, 1).unwrap();
        let text = doc.str_field("text").unwrap_or_default();
        assert_eq!(text, asd_sim::figures::hardware_cost_table());
    }
}

//! Blocking protocol client, daemon process helpers, and the load-test
//! harness behind `asd-serve bench`.
//!
//! [`Client`] speaks the frame protocol of [`crate::proto`] over one
//! persistent TCP connection; server-side failures come back as the same
//! typed [`ServeError`] values the daemon raised (reconstructed from the
//! structured error object). [`load_bench`] fires a duplicate-heavy mix
//! of concurrent sweep requests at a daemon and checks **every**
//! response bit-for-bit against a direct [`build_sweep`] +
//! [`Sweep::run`](asd_sim::sweep::Sweep::run) of the same spec — the
//! daemon, its cache tiers, and its shard workers must be invisible in
//! the bytes.

use crate::error::ServeError;
use crate::proto::{
    build_sweep, err_of_value, read_frame, read_json, sweep_doc, write_frame, write_json, JobSpec,
};
use asd_bench::json::Value;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

fn op(name: &str) -> Value {
    let mut v = Value::obj();
    v.set("op", name);
    v
}

fn with_id(name: &str, id: u64) -> Value {
    let mut v = op(name);
    v.set("id", id);
    v
}

/// A blocking connection to an `asd-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connection cannot be established.
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        let io =
            |message: String| ServeError::Io { context: format!("connecting to {addr}"), message };
        let writer = TcpStream::connect(addr).map_err(|e| io(e.to_string()))?;
        let _ = writer.set_nodelay(true);
        let read_half = writer.try_clone().map_err(|e| io(e.to_string()))?;
        Ok(Client { reader: BufReader::new(read_half), writer })
    }

    /// Send one raw request object and read one response frame.
    /// Responses carrying `"ok": false` come back as the reconstructed
    /// typed error.
    ///
    /// # Errors
    ///
    /// Transport failures as [`ServeError::Io`]; server-side failures as
    /// the error the daemon reported.
    pub fn request(&mut self, req: &Value) -> Result<Value, ServeError> {
        write_json(&mut self.writer, req)?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Value, ServeError> {
        match read_json(&mut self.reader)? {
            Some(v) => {
                if v.get("ok").and_then(Value::as_bool) == Some(false) {
                    Err(err_of_value(&v))
                } else {
                    Ok(v)
                }
            }
            None => Err(ServeError::Io {
                context: "reading response".to_string(),
                message: "server closed the connection".to_string(),
            }),
        }
    }

    /// Health check; returns the daemon's version string.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn ping(&mut self) -> Result<String, ServeError> {
        let v = self.request(&op("ping"))?;
        Ok(v.str_field("version").unwrap_or("unknown").to_string())
    }

    /// Submit a job; returns its id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Busy`] at queue capacity, [`ServeError::ShuttingDown`]
    /// while draining, [`ServeError::MalformedRequest`] for bad specs.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ServeError> {
        let mut req = op("submit");
        req.set("job", spec.to_value());
        let v = self.request(&req)?;
        v.u64_field("id").ok_or_else(|| ServeError::MalformedRequest {
            message: "submit response carried no job id".to_string(),
        })
    }

    /// One progress/terminal snapshot of a job.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for ids the daemon never issued.
    pub fn status(&mut self, id: u64) -> Result<Value, ServeError> {
        self.request(&with_id("status", id))
    }

    /// Block until the job is terminal; returns the final document
    /// (result embedded under `"result"`).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`], or the job's own failure.
    pub fn wait(&mut self, id: u64) -> Result<Value, ServeError> {
        self.request(&with_id("wait", id))
    }

    /// Stream progress events until the job is terminal; `on_event`
    /// fires per event, and the terminal document is returned.
    ///
    /// # Errors
    ///
    /// As [`Client::wait`].
    pub fn watch(
        &mut self,
        id: u64,
        mut on_event: impl FnMut(&Value),
    ) -> Result<Value, ServeError> {
        write_json(&mut self.writer, &with_id("watch", id))?;
        loop {
            let v = self.read_response()?;
            if v.str_field("event") == Some("end") {
                return Ok(v);
            }
            on_event(&v);
        }
    }

    /// Fetch a finished job's document without blocking.
    ///
    /// # Errors
    ///
    /// [`ServeError::MalformedRequest`] if the job is still running.
    pub fn result(&mut self, id: u64) -> Result<Value, ServeError> {
        self.request(&with_id("result", id))
    }

    /// Cancel a queued job; returns its resulting state name.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for ids the daemon never issued.
    pub fn cancel(&mut self, id: u64) -> Result<String, ServeError> {
        let v = self.request(&with_id("cancel", id))?;
        Ok(v.str_field("state").unwrap_or("unknown").to_string())
    }

    /// The daemon's counter snapshot plus its `serve.*` Prometheus
    /// exposition.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn server_stats(&mut self) -> Result<Value, ServeError> {
        self.request(&op("stats"))
    }

    /// Ask the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn shutdown(&mut self) -> Result<Value, ServeError> {
        self.request(&op("shutdown"))
    }

    /// Upload a trace into the corpus; returns its verified access
    /// count.
    ///
    /// # Errors
    ///
    /// [`ServeError::Corpus`] for bad names or payloads that fail
    /// verification.
    pub fn trace_put(&mut self, name: &str, bytes: &[u8]) -> Result<u64, ServeError> {
        let mut req = op("trace-put");
        req.set("name", name);
        write_json(&mut self.writer, &req)?;
        write_frame(&mut self.writer, bytes)?;
        let v = self.read_response()?;
        Ok(v.u64_field("accesses").unwrap_or(0))
    }

    /// List the stored traces (the `"traces"` array).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn trace_list(&mut self) -> Result<Value, ServeError> {
        self.request(&op("trace-list"))
    }

    /// Download a stored trace's bytes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Corpus`] for unknown names.
    pub fn trace_get(&mut self, name: &str) -> Result<Vec<u8>, ServeError> {
        let mut req = op("trace-get");
        req.set("name", name);
        write_json(&mut self.writer, &req)?;
        self.read_response()?;
        read_frame(&mut self.reader)?.ok_or_else(|| ServeError::Io {
            context: "reading trace payload".to_string(),
            message: "server closed the connection mid-download".to_string(),
        })
    }
}

/// The stdout banner `asd-serve serve` prints once bound; process
/// helpers and tests parse the address off it.
pub const LISTEN_BANNER: &str = "asd-serve listening on ";

/// A daemon subprocess spawned through [`spawn_daemon`].
pub struct DaemonHandle {
    child: Child,
    // Held open so the child never sees a closed stdout pipe.
    _stdout: BufReader<ChildStdout>,
    /// The bound address parsed from the listen banner.
    pub addr: String,
}

/// Spawn `program serve <args>` and wait for its listen banner.
///
/// # Errors
///
/// [`ServeError::Io`] if the process cannot be spawned or never prints
/// the banner (e.g. it exited with a bind failure).
pub fn spawn_daemon(program: &Path, args: &[&str]) -> Result<DaemonHandle, ServeError> {
    let fail = |message: String| ServeError::Io {
        context: format!("spawning daemon {}", program.display()),
        message,
    };
    let mut child = Command::new(program)
        .arg("serve")
        .args(args)
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| fail(e.to_string()))?;
    let Some(out) = child.stdout.take() else {
        let _ = child.kill();
        return Err(fail("no stdout pipe".to_string()));
    };
    let mut reader = BufReader::new(out);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| fail(e.to_string()))?;
    let Some(addr) = line.trim().strip_prefix(LISTEN_BANNER) else {
        let _ = child.kill();
        // asd-lint: allow(D013) -- reaping a just-killed child; its status carries no information
        let _ = child.wait();
        return Err(fail(format!("expected listen banner, got {line:?}")));
    };
    Ok(DaemonHandle { addr: addr.to_string(), _stdout: reader, child })
}

impl DaemonHandle {
    /// Request a graceful drain and wait for the process to exit;
    /// returns its exit code.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the daemon cannot be reached or waited on.
    pub fn shutdown(mut self) -> Result<i32, ServeError> {
        let mut client = Client::connect(&self.addr)?;
        client.shutdown()?;
        drop(client);
        let status = self.child.wait().map_err(|e| ServeError::Io {
            context: "waiting for daemon exit".to_string(),
            message: e.to_string(),
        })?;
        Ok(status.code().unwrap_or(-1))
    }

    /// Wait for the daemon to exit on its own (after a `shutdown`
    /// request some client already sent); returns its exit code.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the process cannot be waited on.
    pub fn wait_exit(mut self) -> Result<i32, ServeError> {
        let status = self.child.wait().map_err(|e| ServeError::Io {
            context: "waiting for daemon exit".to_string(),
            message: e.to_string(),
        })?;
        Ok(status.code().unwrap_or(-1))
    }

    /// Kill the daemon without draining (test teardown for failure
    /// paths).
    pub fn kill(mut self) {
        let _ = self.child.kill();
        // asd-lint: allow(D013) -- reaping a just-killed child; its status carries no information
        let _ = self.child.wait();
    }
}

/// The duplicate-heavy spec mix the load harness fires: four distinct
/// (benchmark, config) sweeps, so a run of N requests contains N/4
/// duplicates of each — exactly the shape a run cache exists for.
pub fn bench_specs(accesses: u64) -> Vec<JobSpec> {
    [("milc", "NP"), ("milc", "PMS"), ("lbm", "PS"), ("tpcc", "MS")]
        .iter()
        .map(|(bench, config)| JobSpec::Sweep {
            benchmarks: vec![(*bench).to_string()],
            configs: vec![(*config).to_string()],
            accesses,
            seed: 7,
            smt: false,
        })
        .collect()
}

/// The reference document for `spec`, computed directly through
/// [`build_sweep`] + [`Sweep::run`](asd_sim::sweep::Sweep::run): the
/// rendered string the daemon's response must match byte for byte.
///
/// # Errors
///
/// [`ServeError::Sim`] if the spec cannot build or the run fails.
pub fn reference_doc(spec: &JobSpec) -> Result<String, ServeError> {
    let sweep = build_sweep(spec).map_err(ServeError::Sim)?;
    let results = sweep.run().map_err(ServeError::Sim)?;
    Ok(sweep_doc(&results).render())
}

/// Load-harness knobs.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client issues on its connection.
    pub requests_per_client: usize,
    /// Access budget per simulated run (small: the harness measures the
    /// daemon, not the simulator).
    pub accesses: u64,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts { clients: 100, requests_per_client: 3, accesses: 2_000 }
    }
}

/// What [`load_bench`] measured.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Concurrent connections used.
    pub clients: usize,
    /// Total requests issued.
    pub requests: usize,
    /// Responses that were not bit-identical to the local reference.
    pub mismatches: usize,
    /// Typed `Busy` rejections absorbed by retry.
    pub busy_retries: u64,
    /// Wall-clock seconds for the whole load phase.
    pub seconds: f64,
    /// The daemon's `stats` document after the load.
    pub stats: Value,
}

impl BenchReport {
    /// Requests per second over the load phase.
    pub fn throughput(&self) -> f64 {
        if self.seconds > 0.0 {
            self.requests as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn stat(&self, key: &str) -> f64 {
        self.stats.get(key).and_then(Value::as_f64).unwrap_or(0.0)
    }

    /// Hits over lookups in the persistent disk tier (0.0 when the tier
    /// was never consulted, i.e. everything hit in memory).
    pub fn disk_hit_rate(&self) -> f64 {
        let hits = self.stat("cache_disk_hits");
        let lookups = hits + self.stat("cache_disk_misses");
        if lookups > 0.0 {
            hits / lookups
        } else {
            0.0
        }
    }

    /// The human-readable report `asd-serve bench` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "asd-serve bench: {} clients x {} requests = {} total\n",
            self.clients,
            self.requests / self.clients.max(1),
            self.requests
        ));
        out.push_str(&format!("  wall time        : {:.3} s\n", self.seconds));
        out.push_str(&format!("  throughput       : {:.1} req/s\n", self.throughput()));
        out.push_str(&format!("  bit mismatches   : {}\n", self.mismatches));
        out.push_str(&format!("  busy retries     : {}\n", self.busy_retries));
        out.push_str(&format!(
            "  run cache        : {} hits / {} misses\n",
            self.stat("cache_run_hits"),
            self.stat("cache_run_misses")
        ));
        out.push_str(&format!(
            "  disk tier        : {} hits / {} misses / {} writes ({:.0}% hit rate)\n",
            self.stat("cache_disk_hits"),
            self.stat("cache_disk_misses"),
            self.stat("cache_disk_writes"),
            self.disk_hit_rate() * 100.0
        ));
        out
    }
}

fn connect_retry(addr: &str) -> Result<Client, ServeError> {
    for _ in 0..50 {
        if let Ok(c) = Client::connect(addr) {
            return Ok(c);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Client::connect(addr)
}

fn client_session(
    addr: &str,
    lane: usize,
    per_client: usize,
    specs: &[JobSpec],
    expected: &[String],
) -> Result<(usize, u64), ServeError> {
    let mut client = connect_retry(addr)?;
    let mut mismatches = 0;
    let mut busy = 0u64;
    for i in 0..per_client {
        let k = (lane + i) % specs.len();
        let id = loop {
            match client.submit(&specs[k]) {
                Ok(id) => break id,
                Err(ServeError::Busy { .. }) => {
                    busy += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        };
        let resp = client.wait(id)?;
        let got = resp.get("result").map(|v| v.render()).unwrap_or_default();
        if got != expected[k] {
            mismatches += 1;
        }
    }
    Ok((mismatches, busy))
}

/// Fire `opts.clients` concurrent connections at the daemon on `addr`,
/// each issuing `opts.requests_per_client` submit+wait round trips over
/// the duplicate-heavy [`bench_specs`] mix, and check every response
/// bit-for-bit against [`reference_doc`].
///
/// # Errors
///
/// The first transport or job failure any client hit; bit mismatches
/// are *not* errors — they are counted in the report so the caller can
/// decide (the `bench` subcommand exits nonzero on any).
pub fn load_bench(addr: &str, opts: &BenchOpts) -> Result<BenchReport, ServeError> {
    let specs = bench_specs(opts.accesses);
    let mut expected = Vec::new();
    for spec in &specs {
        expected.push(reference_doc(spec)?);
    }
    let clients = opts.clients.max(1);
    let per_client = opts.requests_per_client.max(1);
    // asd-lint: allow(D001) -- the harness reports real wall-clock throughput; no simulated result depends on it
    let start = std::time::Instant::now();
    let outcomes: Vec<Result<(usize, u64), ServeError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|lane| {
                let specs = &specs;
                let expected = &expected;
                scope.spawn(move || client_session(addr, lane, per_client, specs, expected))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(ServeError::Io {
                        context: "joining bench client".to_string(),
                        message: "client thread panicked".to_string(),
                    })
                })
            })
            .collect()
    });
    let seconds = start.elapsed().as_secs_f64();
    let mut mismatches = 0;
    let mut busy_retries = 0u64;
    for outcome in outcomes {
        let (m, b) = outcome?;
        mismatches += m;
        busy_retries += b;
    }
    let stats = connect_retry(addr)?.server_stats()?;
    Ok(BenchReport {
        clients,
        requests: clients * per_client,
        mismatches,
        busy_retries,
        seconds,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    fn in_process_server(queue_cap: usize) -> (String, std::thread::JoinHandle<()>) {
        let root = std::env::temp_dir()
            .join(format!("asd-serve-client-test-{}-{queue_cap}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cfg = ServerConfig { queue_cap, root, ..Default::default() };
        let server = Server::bind(cfg).expect("bind ephemeral");
        let addr = server.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || {
            server.run().expect("server run");
        });
        (addr, handle)
    }

    #[test]
    fn client_roundtrip_is_bit_identical_and_errors_are_typed() {
        let (addr, handle) = in_process_server(8);
        let mut client = Client::connect(&addr).expect("connect");
        assert_eq!(client.ping().expect("ping"), env!("CARGO_PKG_VERSION"));

        let spec = &bench_specs(1_200)[0];
        let id = client.submit(spec).expect("submit");
        let resp = client.wait(id).expect("wait");
        let got = resp.get("result").map(|v| v.render()).unwrap_or_default();
        assert_eq!(got, reference_doc(spec).expect("reference"), "daemon must be bit-identical");
        let again = client.result(id).expect("result replay");
        assert_eq!(again.get("result").map(|v| v.render()).unwrap_or_default(), got);

        match client.status(999_999) {
            Err(ServeError::UnknownJob { .. }) => {}
            other => panic!("expected UnknownJob, got {other:?}"),
        }
        let mut bogus = Value::obj();
        bogus.set("op", "teleport");
        match client.request(&bogus) {
            Err(ServeError::MalformedRequest { .. }) => {}
            other => panic!("expected MalformedRequest, got {other:?}"),
        }

        client.shutdown().expect("shutdown");
        drop(client);
        handle.join().expect("server thread");
    }

    #[test]
    fn load_bench_runs_clean_against_in_process_server() {
        let (addr, handle) = in_process_server(64);
        let opts = BenchOpts { clients: 8, requests_per_client: 2, accesses: 1_100 };
        let report = load_bench(&addr, &opts).expect("load bench");
        assert_eq!(report.requests, 16);
        assert_eq!(report.mismatches, 0, "every response must be bit-identical");
        assert!(report.throughput() >= 0.0);
        assert!(!report.render().is_empty());
        Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
        handle.join().expect("server thread");
    }
}

//! CLI entry point for `asd-serve`. Usage:
//!
//! ```text
//! asd-serve serve [--host H] [--port P] [--handlers N] [--executors N]
//!                 [--shards N] [--queue-cap N] [--dir PATH]
//!                 [--read-timeout SECS]
//! asd-serve client ADDR OP [ARGS...]
//! asd-serve bench [--clients N] [--requests N] [--accesses N] [--dir PATH]
//! asd-serve shard-worker
//! ```
//!
//! Exit codes: 0 success, 1 runtime/job failures (a job errored, a bench
//! found mismatches), 2 usage and startup errors (bad flags, bind
//! failure, malformed specs).

#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

use asd_bench::json::{self, Value};
use asd_serve::client::{spawn_daemon, BenchOpts, Client, LISTEN_BANNER};
use asd_serve::{Server, ServerConfig};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!("asd-serve: sharded sweep daemon with a persistent run cache");
    eprintln!("usage:");
    eprintln!("  asd-serve serve [--host H] [--port P] [--handlers N] [--executors N]");
    eprintln!("                  [--shards N] [--queue-cap N] [--dir PATH]");
    eprintln!("                  [--read-timeout SECS]");
    eprintln!("  asd-serve client ADDR OP [ARGS...]");
    eprintln!("      ops: ping | stats | shutdown | trace-list");
    eprintln!("           submit JSON | status ID | result ID | wait ID | watch ID | cancel ID");
    eprintln!("           trace-put NAME FILE | trace-get NAME FILE");
    eprintln!("  asd-serve bench [--clients N] [--requests N] [--accesses N] [--dir PATH]");
    eprintln!("  asd-serve shard-worker");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("shard-worker") => ExitCode::from(asd_serve::shard::worker_main()),
        _ => usage(),
    }
}

/// Parse `--flag VALUE` pairs; returns None (usage error) on unknown
/// flags or missing/bad values.
fn parse_flags(args: &[String], known: &[&str]) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if !known.contains(&flag.as_str()) {
            eprintln!("asd-serve: unknown flag `{flag}`");
            return None;
        }
        let Some(value) = it.next() else {
            eprintln!("asd-serve: `{flag}` requires a value");
            return None;
        };
        out.push((flag.clone(), value.clone()));
    }
    Some(out)
}

fn numeric<T: std::str::FromStr>(flag: &str, value: &str) -> Option<T> {
    match value.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("asd-serve: `{flag}` needs a number, got `{value}`");
            None
        }
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let known = [
        "--host",
        "--port",
        "--handlers",
        "--executors",
        "--shards",
        "--queue-cap",
        "--dir",
        "--read-timeout",
    ];
    let Some(flags) = parse_flags(args, &known) else {
        return usage();
    };
    let mut cfg = ServerConfig::default();
    for (flag, value) in flags {
        let ok = match flag.as_str() {
            "--host" => {
                cfg.host = value;
                true
            }
            "--port" => numeric(&flag, &value).map(|p| cfg.port = p).is_some(),
            "--handlers" => numeric(&flag, &value).map(|n| cfg.handlers = n).is_some(),
            "--executors" => numeric(&flag, &value).map(|n| cfg.executors = n).is_some(),
            "--shards" => numeric(&flag, &value).map(|n| cfg.shards = n).is_some(),
            "--queue-cap" => numeric(&flag, &value).map(|n| cfg.queue_cap = n).is_some(),
            "--dir" => {
                cfg.root = PathBuf::from(value);
                true
            }
            "--read-timeout" => numeric(&flag, &value)
                .map(|s: u64| cfg.read_timeout = Duration::from_secs(s))
                .is_some(),
            _ => false,
        };
        if !ok {
            return usage();
        }
    }
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("asd-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("asd-serve: {e}");
            return ExitCode::from(2);
        }
    };
    println!("{LISTEN_BANNER}{addr}");
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("asd-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_client(args: &[String]) -> ExitCode {
    let (Some(addr), Some(op)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("asd-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let arg = args.get(2).map(String::as_str);
    let id_arg = || -> Option<u64> { arg.and_then(|a| a.parse().ok()) };
    let outcome = match (op.as_str(), arg) {
        ("ping", _) => client.request(&op_obj("ping")),
        ("stats", _) => client.server_stats(),
        ("shutdown", _) => client.shutdown(),
        ("trace-list", _) => client.trace_list(),
        ("submit", Some(spec_text)) => match json::parse(spec_text) {
            Ok(job) => {
                let mut req = op_obj("submit");
                req.set("job", job);
                client.request(&req)
            }
            Err(e) => {
                eprintln!("asd-serve: bad job spec: {e}");
                return usage();
            }
        },
        ("status" | "result" | "wait" | "cancel", Some(_)) => match id_arg() {
            Some(id) => {
                let mut req = op_obj(op);
                req.set("id", id);
                client.request(&req)
            }
            None => return usage(),
        },
        ("watch", Some(_)) => match id_arg() {
            Some(id) => client.watch(id, |event| println!("{}", event.render())),
            None => return usage(),
        },
        ("trace-put", Some(name)) => match args.get(3).map(std::fs::read) {
            Some(Ok(bytes)) => client.trace_put(name, &bytes).map(|accesses| {
                let mut v = Value::obj();
                v.set("ok", true);
                v.set("accesses", accesses);
                v
            }),
            Some(Err(e)) => {
                eprintln!("asd-serve: cannot read trace file: {e}");
                return ExitCode::FAILURE;
            }
            None => return usage(),
        },
        ("trace-get", Some(name)) => {
            let Some(path) = args.get(3) else {
                return usage();
            };
            match client.trace_get(name) {
                Ok(bytes) => match std::fs::write(path, &bytes) {
                    Ok(()) => {
                        let mut v = Value::obj();
                        v.set("ok", true);
                        v.set("bytes", bytes.len());
                        Ok(v)
                    }
                    Err(e) => {
                        eprintln!("asd-serve: cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                Err(e) => Err(e),
            }
        }
        _ => return usage(),
    };
    match outcome {
        Ok(v) => {
            println!("{}", v.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("asd-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn op_obj(name: &str) -> Value {
    let mut v = Value::obj();
    v.set("op", name);
    v
}

/// Two-phase load test: warm a fresh daemon's disk cache, restart it,
/// then fire the concurrent duplicate-heavy load at the warm-disk
/// daemon. Exits 1 on any bit mismatch, and 1 if the restarted daemon
/// simulated anything at all (the disk tier must serve every run).
fn cmd_bench(args: &[String]) -> ExitCode {
    let known = ["--clients", "--requests", "--accesses", "--dir"];
    let Some(flags) = parse_flags(args, &known) else {
        return usage();
    };
    let mut opts = BenchOpts::default();
    let mut dir: Option<PathBuf> = None;
    for (flag, value) in flags {
        let ok = match flag.as_str() {
            "--clients" => numeric(&flag, &value).map(|n| opts.clients = n).is_some(),
            "--requests" => numeric(&flag, &value).map(|n| opts.requests_per_client = n).is_some(),
            "--accesses" => numeric(&flag, &value).map(|n| opts.accesses = n).is_some(),
            "--dir" => {
                dir = Some(PathBuf::from(value));
                true
            }
            _ => false,
        };
        if !ok {
            return usage();
        }
    }
    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("asd-serve-bench-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir);
    let program = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("asd-serve: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dir_text = dir.display().to_string();
    let daemon_args = ["--port", "0", "--dir", dir_text.as_str(), "--queue-cap", "256"];

    // Phase 1: cold daemon — simulate each unique spec once, writing the
    // disk tier.
    eprintln!("asd-serve bench: phase 1 (cold cache warm-up) in {dir_text}");
    let warm = match spawn_daemon(&program, &daemon_args) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("asd-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warm_opts = BenchOpts { clients: 4, requests_per_client: 1, accesses: opts.accesses };
    let phase1 = asd_serve::load_bench(&warm.addr, &warm_opts);
    let phase1 = match phase1 {
        Ok(r) => r,
        Err(e) => {
            eprintln!("asd-serve: warm-up failed: {e}");
            warm.kill();
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = warm.shutdown() {
        eprintln!("asd-serve: warm-up shutdown failed: {e}");
        return ExitCode::FAILURE;
    }

    // Phase 2: restarted daemon — cold memory, warm disk. The load must
    // be served without a single new simulation run.
    eprintln!("asd-serve bench: phase 2 (restart, warm disk) — {} clients", opts.clients);
    let daemon = match spawn_daemon(&program, &daemon_args) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("asd-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match asd_serve::load_bench(&daemon.addr, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("asd-serve: load failed: {e}");
            daemon.kill();
            return ExitCode::FAILURE;
        }
    };
    let run_misses = report.stats.get("cache_run_misses").and_then(Value::as_f64).unwrap_or(-1.0);
    let disk_hits = report.stats.get("cache_disk_hits").and_then(Value::as_f64).unwrap_or(0.0);
    match daemon.shutdown() {
        Ok(0) => {}
        Ok(code) => {
            eprintln!("asd-serve: daemon exited with code {code}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("asd-serve: shutdown failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    print!("{}", report.render());
    println!(
        "  phase 1 sims     : {} (disk writes {})",
        phase1.stats.get("cache_run_misses").and_then(Value::as_f64).unwrap_or(0.0),
        phase1.stats.get("cache_disk_writes").and_then(Value::as_f64).unwrap_or(0.0)
    );
    println!("  phase 2 sims     : {run_misses} (disk hits {disk_hits})");
    let _ = std::fs::remove_dir_all(&dir);
    if report.mismatches > 0 {
        eprintln!("asd-serve bench: FAILED — {} bit mismatches", report.mismatches);
        return ExitCode::FAILURE;
    }
    if run_misses != 0.0 {
        eprintln!("asd-serve bench: FAILED — restarted daemon simulated {run_misses} runs");
        return ExitCode::FAILURE;
    }
    if disk_hits <= 0.0 {
        eprintln!("asd-serve bench: FAILED — disk tier never hit after restart");
        return ExitCode::FAILURE;
    }
    println!("asd-serve bench: OK");
    ExitCode::SUCCESS
}

//! Shared plumbing for the figure-regeneration harness.
//!
//! Every table and figure of *"Memory Prefetching Using Adaptive Stream
//! Detection"* (Hur & Lin, MICRO 2006) has two regeneration paths:
//!
//! * the `figures` **binary** (`cargo run --release -p asd-bench --bin
//!   figures [all|fig2|fig3|...|cost|smt|sched]`) prints the full table at
//!   publication-quality run lengths, and
//! * the **bench** target (`cargo bench -p asd-bench`, a plain
//!   `std::time` harness — the workspace has no external dependencies)
//!   times one reduced-size regeneration of each figure, so `cargo bench`
//!   exercises the entire experimental surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use asd_sim::RunOpts;

pub mod json;

/// Run options for the publication-size tables printed by the binary.
pub fn full_opts() -> RunOpts {
    RunOpts::default().with_accesses(60_000)
}

/// Reduced sizes for the timing benches (each iteration still runs the
/// complete pipeline for its figure).
pub fn bench_opts() -> RunOpts {
    RunOpts::default().with_accesses(4_000)
}

/// The figure identifiers the harness understands.
pub const FIGURES: [&str; 17] = [
    "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "cost", "sched", "arena",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_are_ordered() {
        assert!(full_opts().accesses > bench_opts().accesses);
    }

    #[test]
    fn figure_list_is_complete() {
        assert!(FIGURES.contains(&"fig2"));
        assert!(FIGURES.contains(&"fig16"));
        assert!(FIGURES.contains(&"cost"));
        assert!(FIGURES.contains(&"arena"));
    }
}

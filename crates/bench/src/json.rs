//! A minimal JSON document builder for the machine-readable bench
//! reports (`BENCH_figures.json`).
//!
//! The workspace has no external dependencies, so this is the smallest
//! emitter that produces valid RFC 8259 output: objects keep insertion
//! order (reports stay diffable run-to-run), strings are escaped, and
//! non-finite floats serialize as `null` rather than producing an
//! invalid document.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (serialized as `null` when not finite).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered, not deduplicated.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object, to be filled with [`Value::set`].
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Add a field to an object (no-op on non-objects).
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        if let Value::Obj(fields) = self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) if n.is_finite() => {
                // `{}` on f64 always includes enough digits to round-trip.
                let _ = write!(out, "{n}");
            }
            Value::Num(_) => out.push_str("null"),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let mut inner = Value::obj();
        inner.set("gain", 12.5).set("name", "milc");
        let mut doc = Value::obj();
        doc.set("schema", "asd-bench-figures/1");
        doc.set("rows", Value::Arr(vec![inner, Value::Null]));
        assert_eq!(
            doc.render(),
            r#"{"schema":"asd-bench-figures/1","rows":[{"gain":12.5,"name":"milc"},null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
        assert_eq!(Value::Num(0.25).render(), "0.25");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::from(42u64).render(), "42");
        assert_eq!(Value::from(7usize).render(), "7");
    }

    #[test]
    fn set_ignores_non_objects() {
        let mut v = Value::Null;
        v.set("k", 1.0);
        assert_eq!(v, Value::Null);
    }
}

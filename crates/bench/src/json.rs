//! A minimal JSON document builder **and parser** for the
//! machine-readable bench reports (`BENCH_figures.json`) and the
//! `asd-serve` wire protocol.
//!
//! The workspace has no external dependencies, so this is the smallest
//! emitter that produces valid RFC 8259 output: objects keep insertion
//! order (reports stay diffable run-to-run), strings are escaped, and
//! non-finite floats serialize as `null` rather than producing an
//! invalid document. [`parse`] is the matching recursive-descent reader:
//! it accepts exactly the documents [`Value::render`] emits (plus
//! insignificant whitespace), returns a typed [`JsonError`] on malformed
//! input instead of panicking, and bounds nesting depth so hostile
//! network input cannot blow the stack.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (serialized as `null` when not finite).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered, not deduplicated.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object, to be filled with [`Value::set`].
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Object field lookup (first occurrence); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric payload, if this is a [`Value::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer: `None` unless
    /// this is a finite, non-negative [`Value::Num`] with no fractional
    /// part inside `u64` range (2^53 round-trips losslessly; protocol
    /// counters stay far below that).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.is_finite() && *n >= 0.0 && n.fract() == 0.0 && *n <= 2e18 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is a [`Value::Arr`].
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then [`Value::as_str`].
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Convenience: `get(key)` then [`Value::as_u64`].
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Value::as_u64)
    }

    /// Add a field to an object (no-op on non-objects).
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        if let Value::Obj(fields) = self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) if n.is_finite() => {
                // `{}` on f64 always includes enough digits to round-trip.
                let _ = write!(out, "{n}");
            }
            Value::Num(_) => out.push_str("null"),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Arr(items)
    }
}

/// Why a document failed to parse: the byte offset and a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What was wrong there.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Deepest object/array nesting [`parse`] accepts. Protocol messages
/// nest a handful of levels; 128 leaves a wide margin while keeping the
/// recursive parser safe on untrusted network input.
pub const MAX_PARSE_DEPTH: usize = 128;

/// Parse one JSON document. The entire input must be consumed (trailing
/// whitespace allowed); duplicate object keys are kept in order, exactly
/// as [`Value::set`] would have produced them.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first malformed construct.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(input, bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing data after document"));
    }
    Ok(v)
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError { at, message: message.to_string() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, "unexpected character"))
    }
}

fn parse_value(
    input: &str,
    bytes: &[u8],
    pos: &mut usize,
    depth: usize,
) -> Result<Value, JsonError> {
    if depth > MAX_PARSE_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(input, bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(input, bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(input, bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':').map_err(|e| err(e.at, "expected `:` after key"))?;
                let value = parse_value(input, bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(b) if *b == b'-' || b.is_ascii_digit() => parse_number(input, bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
        *pos += 1;
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            *pos += 1;
        }
    }
    input[start..*pos].parse::<f64>().map(Value::Num).map_err(|_| err(start, "malformed number"))
}

fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect_byte(bytes, pos, b'"').map_err(|e| err(e.at, "expected string"))?;
    let mut out = String::new();
    loop {
        let start = *pos;
        // Fast path: run of plain bytes up to the next quote or escape.
        while let Some(&b) = bytes.get(*pos) {
            if b == b'"' || b == b'\\' || b < 0x20 {
                break;
            }
            *pos += 1;
        }
        // The slice boundaries land on ASCII delimiters, so this is
        // always a valid char boundary of the UTF-8 input.
        out.push_str(&input[start..*pos]);
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(input, bytes, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let low = parse_hex4(input, bytes, *pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(err(*pos, "invalid low surrogate"));
                                }
                                *pos += 6;
                                let joined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(joined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(err(*pos, "invalid \\u escape")),
                        }
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => return Err(err(*pos, "unescaped control character")),
        }
    }
}

fn parse_hex4(input: &str, bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    if at + 4 > bytes.len() || !input.is_char_boundary(at) || !input.is_char_boundary(at + 4) {
        return Err(err(at, "truncated \\u escape"));
    }
    u32::from_str_radix(&input[at..at + 4], 16).map_err(|_| err(at, "invalid \\u escape"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let mut inner = Value::obj();
        inner.set("gain", 12.5).set("name", "milc");
        let mut doc = Value::obj();
        doc.set("schema", "asd-bench-figures/1");
        doc.set("rows", Value::Arr(vec![inner, Value::Null]));
        assert_eq!(
            doc.render(),
            r#"{"schema":"asd-bench-figures/1","rows":[{"gain":12.5,"name":"milc"},null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
        assert_eq!(Value::Num(0.25).render(), "0.25");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::from(42u64).render(), "42");
        assert_eq!(Value::from(7usize).render(), "7");
    }

    #[test]
    fn set_ignores_non_objects() {
        let mut v = Value::Null;
        v.set("k", 1.0);
        assert_eq!(v, Value::Null);
    }

    #[test]
    fn parse_roundtrips_rendered_documents() {
        let mut inner = Value::obj();
        inner.set("gain", 12.5).set("name", "milc").set("ok", true).set("none", Value::Null);
        let mut doc = Value::obj();
        doc.set("schema", "asd-serve/1");
        doc.set("rows", Value::Arr(vec![inner, Value::Num(-3.25), Value::Num(1e21)]));
        let text = doc.render();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.render(), text);
        assert_eq!(parsed.get("schema").and_then(Value::as_str), Some("asd-serve/1"));
        let rows = parsed.get("rows").and_then(Value::as_arr).unwrap();
        assert_eq!(rows[0].get("gain").and_then(Value::as_f64), Some(12.5));
        assert_eq!(rows[0].get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(rows[1].as_f64(), Some(-3.25));
    }

    #[test]
    fn parse_handles_whitespace_and_escapes() {
        let v = parse(" { \"a\\n\\\"b\" : [ 1 , 2.5e2 , \"\\u0041\\ud83d\\ude00\" ] } ").unwrap();
        let arr = v.get("a\n\"b").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(250.0));
        assert_eq!(arr[2].as_str(), Some("A\u{1F600}"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lone\"",
            "{} trailing",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bound: a pathological bracket run errors instead of
        // overflowing the stack.
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(Value::Num(42.0).as_u64(), Some(42));
        assert_eq!(Value::Num(0.0).as_u64(), Some(0));
        assert_eq!(Value::Num(1.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(f64::NAN).as_u64(), None);
        assert_eq!(Value::Str("7".into()).as_u64(), None);
    }

    #[test]
    fn field_accessors() {
        let mut v = Value::obj();
        v.set("s", "x").set("n", 9u64);
        assert_eq!(v.str_field("s"), Some("x"));
        assert_eq!(v.u64_field("n"), Some(9));
        assert_eq!(v.str_field("missing"), None);
        assert_eq!(Value::Null.get("s"), None);
    }
}

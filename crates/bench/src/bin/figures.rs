//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p asd-bench --bin figures            # everything
//! cargo run --release -p asd-bench --bin figures fig5 fig13 # a subset
//! ```
//!
//! `smt` is included in `all` but is by far the slowest item (it runs all
//! 30 benchmarks under three configurations with two threads each).
//!
//! Every requested figure resolves to a declarative
//! `asd_sim::pipeline::FigurePlan` (its simulation jobs plus an assembly
//! closure), and by default the whole set executes as **one job graph**
//! through `asd_sim::pipeline::Pipeline`: jobs shared between figures
//! (the NP baselines of the suites, the arena, and `sched`, for example)
//! are deduplicated at submission, all unique jobs drain through one
//! work-stealing queue with no per-figure barrier, and each figure's
//! table is assembled the moment its last dependency lands. Figure text
//! still prints in the fixed catalog order and is bit-identical to the
//! sequential path. Set `ASD_PIPELINE=barrier` to restore the one-sweep-
//! per-figure behavior (an A/B lever the identity tests use), and
//! `ASD_SWEEP_THREADS=1` to force serial execution; the results are
//! bit-identical in every combination.
//!
//! Besides the human-readable tables on stdout, the binary writes
//! `BENCH_figures.json` to the working directory: one record per figure
//! regenerated, with its wall-clock time and headline metrics, under the
//! `asd-bench-figures/1` schema, plus a `pipeline` block with the
//! scheduler's dedup counters and the end-to-end wall time. Per-figure
//! `wall_ms` is time-to-completion: in barrier mode that is the figure's
//! exclusive regeneration time (figures run one after another); in graph
//! mode figures overlap, so it is time-to-ready measured from pipeline
//! start and the per-figure values do not sum to `pipeline.total_wall_ms`
//! (the difference is `pipeline.barrier_delta_ms`). Set
//! `ASD_FIGURES_JSON` to change the output path, or to `-` to suppress
//! the file. `ASD_FIGURES_ACCESSES` overrides the run length for *every*
//! figure uniformly (suppressing the catalog's per-figure size
//! overrides) — the cross-mode identity tests use it to keep full
//! catalog runs cheap.
//!
//! The `telemetry` item runs one fully-instrumented PMS simulation and
//! prints the registry-derived summary (Figure 13 ratios, CAQ occupancy,
//! DRAM power breakdown); set `ASD_TELEMETRY_DIR` to also write the
//! Prometheus text, Chrome trace-event JSON, and CSV renderings there.
//!
//! The `arena` item runs the prefetcher tournament: every registered
//! engine (built-ins plus the `asd-engines` zoo) over all 30 profiles,
//! ranked into a league table. `ASD_ARENA_ENGINES` and
//! `ASD_ARENA_PROFILES` (comma-separated names) restrict the roster
//! and workload set — the CI smoke runs 2 engines over 2 profiles.

use asd_bench::full_opts;
use asd_bench::json::Value;
use asd_sim::arena::{arena_plan, default_roster};
use asd_sim::figures::plan_sized;
use asd_sim::pipeline::{barrier_mode, FigureOutput, FigurePlan, MetricValue, Pipeline};
use asd_sim::RunOpts;
use asd_telemetry::{names, Registry, TelemetryConfig, Unit};
use asd_trace::suites;
use std::time::Instant;

/// Every figure the binary can regenerate, in print order (`all` runs
/// the whole list top to bottom; a subset keeps this relative order).
const CATALOG: [&str; 20] = [
    "fig2",
    "fig3",
    "fig5",
    "fig8",
    "fig6",
    "fig9",
    "fig7",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "cost",
    "sched",
    "arena",
    "telemetry",
    "ablations",
    "smt",
];

/// How the selected figures were scheduled, for the JSON report.
struct PipelineSummary {
    mode: &'static str,
    figures: usize,
    submitted_jobs: usize,
    unique_jobs: usize,
    inflight_joins: u64,
    peak_live_jobs: usize,
    total_wall_ms: f64,
}

/// Collects one record per regenerated figure. Wall-clock times live on a
/// telemetry registry (`bench.<figure>.wall_ms` gauges), and the JSON
/// document reads them back from the snapshot — the same source of truth
/// the exposition backends use.
struct Report {
    figures: Vec<(String, Value)>,
    tel: Registry,
}

impl Report {
    fn new() -> Self {
        Report {
            figures: Vec::new(),
            tel: Registry::section("bench.", &TelemetryConfig::metrics_only()),
        }
    }

    /// Record a figure: name, wall time to its completion, and its
    /// metrics. In barrier mode `wall_ms` is the figure's exclusive
    /// regeneration time; in graph mode it is time-to-ready from
    /// pipeline start (figures overlap).
    fn add(&mut self, name: &str, wall_ms: f64, metrics: Value) {
        self.tel.fill_gauge(
            &format!("{name}.wall_ms"),
            Unit::Millis,
            "host wall-clock time to this figure's completion",
            wall_ms,
        );
        self.figures.push((name.to_string(), metrics));
    }

    fn document(mut self, opts: &RunOpts, pipeline: &PipelineSummary) -> Value {
        // Surface the cross-figure run cache through the same registry the
        // wall-time gauges live on, so every exposition backend (and this
        // JSON document) sees how much of the pipeline was deduplicated.
        let (run_hits, run_misses) = asd_sim::cache::stats();
        let (trace_hits, trace_misses) = asd_sim::cache::trace_stats();
        for (name, help, v) in [
            ("cache.run_hits", "figure points served from the cross-figure run cache", run_hits),
            ("cache.run_misses", "figure points actually simulated", run_misses),
            ("cache.trace_hits", "per-thread traces served from the trace memo", trace_hits),
            ("cache.trace_misses", "per-thread traces materialized", trace_misses),
        ] {
            self.tel.fill_gauge(name, Unit::Events, help, v as f64);
        }
        // The scheduler's own counters, under `bench.pipeline.*`.
        for (metric, unit, help, v) in [
            (
                "figures",
                Unit::Events,
                "figures regenerated by this invocation",
                pipeline.figures as f64,
            ),
            (
                "submitted_jobs",
                Unit::Events,
                "simulation jobs requested across all figures, before dedup",
                pipeline.submitted_jobs as f64,
            ),
            (
                "unique_jobs",
                Unit::Events,
                "distinct simulation jobs actually scheduled",
                pipeline.unique_jobs as f64,
            ),
            (
                "inflight_joins",
                Unit::Events,
                "jobs that joined another figure's identical job instead of re-running",
                pipeline.inflight_joins as f64,
            ),
            (
                "peak_live_jobs",
                Unit::Events,
                "high-water mark of job results held live at once",
                pipeline.peak_live_jobs as f64,
            ),
            (
                "total_wall_ms",
                Unit::Millis,
                "end-to-end wall time across every requested figure",
                pipeline.total_wall_ms,
            ),
        ] {
            self.tel.fill_gauge(&names::pipeline_metric(metric), unit, help, v);
        }
        let snap = self.tel.snapshot();
        // Summed per-figure walls vs. the true total: the delta is the
        // overlap the graph scheduler reclaimed (about zero in barrier
        // mode, where figures run back to back).
        let wall_sum: f64 = self
            .figures
            .iter()
            .map(|(name, _)| snap.gauge(&format!("bench.{name}.wall_ms")).unwrap_or(0.0))
            .sum();
        let mut cache = Value::obj();
        cache.set("enabled", asd_sim::cache::enabled());
        for key in ["run_hits", "run_misses", "trace_hits", "trace_misses"] {
            cache.set(key, snap.gauge(&format!("bench.cache.{key}")).unwrap_or(0.0));
        }
        let mut pipe = Value::obj();
        pipe.set("mode", pipeline.mode);
        for key in ["figures", "submitted_jobs", "unique_jobs", "inflight_joins", "peak_live_jobs"]
        {
            let name = format!("bench.{}", names::pipeline_metric(key));
            pipe.set(key, snap.gauge(&name).unwrap_or(0.0));
        }
        let total = snap
            .gauge(&format!("bench.{}", names::pipeline_metric("total_wall_ms")))
            .unwrap_or(0.0);
        pipe.set("total_wall_ms", total);
        pipe.set("figure_wall_sum_ms", wall_sum);
        pipe.set("barrier_delta_ms", wall_sum - total);
        let mut o = Value::obj();
        o.set("accesses", opts.accesses).set("seed", opts.seed);
        let mut doc = Value::obj();
        doc.set("schema", "asd-bench-figures/1");
        doc.set("opts", o);
        doc.set("cache", cache);
        doc.set("pipeline", pipe);
        let rows = self
            .figures
            .into_iter()
            .map(|(name, metrics)| {
                let mut rec = Value::obj();
                let wall = snap.gauge(&format!("bench.{name}.wall_ms")).unwrap_or(0.0);
                rec.set("name", name);
                rec.set("wall_ms", wall);
                rec.set("metrics", metrics);
                rec
            })
            .collect();
        doc.set("figures", Value::Arr(rows));
        doc
    }
}

/// Convert a figure's typed metric to the report's JSON value.
fn metric_to_json(v: MetricValue) -> Value {
    match v {
        MetricValue::U64(n) => Value::from(n),
        MetricValue::F64(n) => Value::from(n),
        MetricValue::Str(s) => Value::from(s),
        MetricValue::Rows(rows) => Value::Arr(
            rows.into_iter()
                .map(|row| {
                    let mut o = Value::obj();
                    for (k, v) in row {
                        o.set(&k, metric_to_json(v));
                    }
                    o
                })
                .collect(),
        ),
    }
}

fn metrics_to_json(metrics: Vec<(String, MetricValue)>) -> Value {
    let mut m = Value::obj();
    for (k, v) in metrics {
        m.set(&k, metric_to_json(v));
    }
    m
}

/// Parse a comma-separated env list (empty entries dropped).
fn env_list(var: &str) -> Option<Vec<String>> {
    let raw = std::env::var(var).ok()?;
    Some(raw.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect())
}

/// The arena plan honoring the `ASD_ARENA_ENGINES` / `ASD_ARENA_PROFILES`
/// restrictions (full roster over all 30 profiles by default).
fn arena_env_plan(opts: &RunOpts) -> Result<FigurePlan, asd_sim::SimError> {
    let roster = env_list("ASD_ARENA_ENGINES").unwrap_or_else(default_roster);
    let engines: Vec<&str> = roster.iter().map(String::as_str).collect();
    let profiles = match env_list("ASD_ARENA_PROFILES") {
        Some(names) => names
            .iter()
            .map(|n| {
                suites::by_name(n)
                    .ok_or_else(|| asd_sim::SimError::UnknownProfile { name: n.clone() })
            })
            .collect::<Result<Vec<_>, _>>()?,
        None => suites::all_profiles(),
    };
    arena_plan(&engines, &profiles, opts)
}

/// Resolve one catalog name to its plan. The arena goes through the env
/// roster; everything else comes straight from the figure catalog.
fn build_plan(name: &str, opts: &RunOpts, uniform: bool) -> Result<FigurePlan, asd_sim::SimError> {
    if name == "arena" {
        return arena_env_plan(opts);
    }
    plan_sized(name, opts, uniform)
}

/// Write a figure's artifact bodies (the telemetry demo's exposition
/// renderings) into `dir`, created if needed.
fn write_artifacts(dir: &str, artifacts: &[(String, String)]) {
    let dir = std::path::Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("figures: could not create {}: {e}", dir.display());
        return;
    }
    for (file, body) in artifacts {
        let path = dir.join(file);
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("figures: could not write {}: {e}", path.display()),
        }
    }
}

/// Print one finished figure, write its artifacts if a target directory
/// is configured, and record it in the report.
fn emit(report: &mut Report, name: &str, wall_ms: f64, output: FigureOutput) {
    println!("{}\n", output.text);
    if !output.artifacts.is_empty() {
        if let Ok(dir) = std::env::var("ASD_TELEMETRY_DIR") {
            if dir != "-" && !dir.is_empty() {
                write_artifacts(&dir, &output.artifacts);
            }
        }
    }
    report.add(name, wall_ms, metrics_to_json(output.metrics));
}

/// Sequential fallback (`ASD_PIPELINE=barrier`): one plan at a time,
/// each through its own sweep — today's per-figure behavior.
fn run_barrier(
    selected: &[&str],
    opts: &RunOpts,
    uniform: bool,
    report: &mut Report,
    t0: Instant,
) -> Result<PipelineSummary, asd_sim::SimError> {
    let mut submitted = 0;
    for name in selected {
        let f0 = Instant::now();
        let plan = build_plan(name, opts, uniform)?;
        submitted += plan.job_count();
        let output = plan.run()?;
        emit(report, name, f0.elapsed().as_secs_f64() * 1e3, output);
    }
    Ok(PipelineSummary {
        mode: "barrier",
        figures: selected.len(),
        submitted_jobs: submitted,
        unique_jobs: submitted,
        inflight_joins: 0,
        peak_live_jobs: 0,
        total_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    })
}

/// Default path: submit every plan into one job graph, run it, then
/// print the outputs in catalog order.
fn run_graph(
    selected: &[&str],
    opts: &RunOpts,
    uniform: bool,
    report: &mut Report,
    t0: Instant,
) -> Result<PipelineSummary, asd_sim::SimError> {
    let mut pipe = Pipeline::new();
    for name in selected {
        pipe.submit(build_plan(name, opts, uniform)?);
    }
    eprintln!(
        "pipeline: {} figures, {} jobs ({} unique, {} deduplicated at submission)...",
        pipe.figure_count(),
        pipe.submitted_jobs(),
        pipe.unique_jobs(),
        pipe.inflight_joins(),
    );
    let run = pipe.run(&|| t0.elapsed().as_secs_f64() * 1e3)?;
    for fig in run.figures {
        emit(report, &fig.name, fig.wall_ms, fig.output);
    }
    let s = run.stats;
    Ok(PipelineSummary {
        mode: "graph",
        figures: s.figures,
        submitted_jobs: s.submitted_jobs,
        unique_jobs: s.unique_jobs,
        inflight_joins: s.inflight_joins,
        peak_live_jobs: s.peak_live_jobs,
        total_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    })
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("figures: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), asd_sim::SimError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);
    let selected: Vec<&str> = CATALOG.iter().copied().filter(|n| want(n)).collect();

    // Uniform sizing: override every figure's run length, including the
    // catalog's per-figure absolute overrides (fig3, smt).
    let (opts, uniform) =
        match std::env::var("ASD_FIGURES_ACCESSES").ok().and_then(|v| v.parse::<u64>().ok()) {
            Some(n) => (full_opts().with_accesses(n), true),
            None => (full_opts(), false),
        };

    let mut report = Report::new();
    let t0 = Instant::now();
    let summary = if barrier_mode() {
        run_barrier(&selected, &opts, uniform, &mut report, t0)?
    } else {
        run_graph(&selected, &opts, uniform, &mut report, t0)?
    };

    let json_path =
        std::env::var("ASD_FIGURES_JSON").unwrap_or_else(|_| "BENCH_figures.json".to_string());
    if json_path != "-" {
        let doc = report.document(&opts, &summary);
        match std::fs::write(&json_path, doc.render() + "\n") {
            Ok(()) => eprintln!("wrote {json_path}"),
            Err(e) => eprintln!("figures: could not write {json_path}: {e}"),
        }
    }
    Ok(())
}

//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p asd-bench --bin figures            # everything
//! cargo run --release -p asd-bench --bin figures fig5 fig13 # a subset
//! ```
//!
//! `smt` is included in `all` but is by far the slowest item (it runs all
//! 30 benchmarks under three configurations with two threads each).
//!
//! Every multi-run figure fans its simulations across cores through
//! `asd_sim::sweep::Sweep`; set `ASD_SWEEP_THREADS=1` to force serial
//! execution (the results are bit-identical either way).

use asd_bench::full_opts;
use asd_sim::experiment::FourWay;
use asd_sim::figures::{
    fig11_scheduling, fig12_stream_lengths, fig13_efficiency, fig14_buffer_size, fig15_filter_size,
    fig16_slh_accuracy, fig2_slh, fig3_slh_epochs, hardware_cost_table, perf_figure, power_figure,
    scheduler_interaction_table, smt_table, suite_results,
};
use asd_sim::RunOpts;
use asd_trace::suites::Suite;

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("figures: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), asd_sim::SimError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);
    let opts = full_opts();

    // The three suite sweeps feed two figures each (5+8, 6+9, 7+10); run
    // each suite once and reuse.
    let mut spec: Option<Vec<FourWay>> = None;
    let mut nas: Option<Vec<FourWay>> = None;
    let mut com: Option<Vec<FourWay>> = None;
    let get = |suite: Suite, slot: &mut Option<Vec<FourWay>>, opts: &RunOpts| {
        if slot.is_none() {
            eprintln!(
                "running {} suite (4 configs x {} benchmarks, parallel)...",
                suite.name(),
                suite.profiles().len()
            );
            *slot = Some(suite_results(suite, opts));
        }
        slot.clone().expect("filled above")
    };

    if want("fig2") {
        println!("{}\n", fig2_slh(&opts)?.1);
    }
    if want("fig3") {
        let long = RunOpts { accesses: 150_000, ..opts.clone() };
        println!("{}\n", fig3_slh_epochs(&long)?.1);
    }
    if want("fig5") || want("fig8") {
        let r = get(Suite::Spec2006Fp, &mut spec, &opts);
        if want("fig5") {
            println!("{}\n", perf_figure(&r, "Figure 5: SPEC2006fp performance gains").1);
        }
        if want("fig8") {
            println!(
                "{}\n",
                power_figure(&r, "Figure 8: SPEC2006fp DRAM power/energy (PMS vs PS)").1
            );
        }
    }
    if want("fig6") || want("fig9") {
        let r = get(Suite::Nas, &mut nas, &opts);
        if want("fig6") {
            println!("{}\n", perf_figure(&r, "Figure 6: NAS performance gains").1);
        }
        if want("fig9") {
            println!("{}\n", power_figure(&r, "Figure 9: NAS DRAM power/energy (PMS vs PS)").1);
        }
    }
    if want("fig7") || want("fig10") {
        let r = get(Suite::Commercial, &mut com, &opts);
        if want("fig7") {
            println!("{}\n", perf_figure(&r, "Figure 7: commercial performance gains").1);
        }
        if want("fig10") {
            println!(
                "{}\n",
                power_figure(&r, "Figure 10: commercial DRAM power/energy (PMS vs PS)").1
            );
        }
    }
    if want("fig11") {
        println!("{}\n", fig11_scheduling(&opts).1);
    }
    if want("fig12") {
        println!("{}\n", fig12_stream_lengths(&opts)?.1);
    }
    if want("fig13") {
        println!("{}\n", fig13_efficiency(&opts).1);
    }
    if want("fig14") {
        println!("{}\n", fig14_buffer_size(&opts).1);
    }
    if want("fig15") {
        println!("{}\n", fig15_filter_size(&opts).1);
    }
    if want("fig16") {
        println!("{}\n", fig16_slh_accuracy(&opts)?.1);
    }
    if want("cost") {
        println!("{}\n", hardware_cost_table());
    }
    if want("sched") {
        println!("{}\n", scheduler_interaction_table(&opts));
    }
    if want("ablations") {
        let profiles: Vec<_> = ["milc", "tpcc"]
            .iter()
            .map(|n| asd_trace::suites::by_name(n).expect("known"))
            .collect();
        println!("{}\n", asd_sim::ablations::full_report(&profiles, &opts));
    }
    if want("smt") {
        let smt_opts = RunOpts { accesses: 30_000, ..opts };
        println!("{}\n", smt_table(&smt_opts));
    }
    Ok(())
}

//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p asd-bench --bin figures            # everything
//! cargo run --release -p asd-bench --bin figures fig5 fig13 # a subset
//! ```
//!
//! `smt` is included in `all` but is by far the slowest item (it runs all
//! 30 benchmarks under three configurations with two threads each).
//!
//! Every multi-run figure fans its simulations across cores through
//! `asd_sim::sweep::Sweep`; set `ASD_SWEEP_THREADS=1` to force serial
//! execution (the results are bit-identical either way).
//!
//! Besides the human-readable tables on stdout, the binary writes
//! `BENCH_figures.json` to the working directory: one record per figure
//! regenerated, with its wall-clock time and headline metrics, under the
//! `asd-bench-figures/1` schema. Set `ASD_FIGURES_JSON` to change the
//! output path, or to `-` to suppress the file.
//!
//! The `telemetry` item runs one fully-instrumented PMS simulation and
//! prints the registry-derived summary (Figure 13 ratios, CAQ occupancy,
//! DRAM power breakdown); set `ASD_TELEMETRY_DIR` to also write the
//! Prometheus text, Chrome trace-event JSON, and CSV renderings there.
//!
//! The `arena` item runs the prefetcher tournament: every registered
//! engine (built-ins plus the `asd-engines` zoo) over all 30 profiles in
//! one memoized sweep, ranked into a league table. `ASD_ARENA_ENGINES`
//! and `ASD_ARENA_PROFILES` (comma-separated names) restrict the roster
//! and workload set — the CI smoke runs 2 engines over 2 profiles.

use asd_bench::full_opts;
use asd_bench::json::Value;
use asd_sim::arena::{arena_with, default_roster, ArenaResult};
use asd_sim::experiment::{mean, FourWay};
use asd_sim::figures::{
    fig11_scheduling, fig12_stream_lengths, fig13_efficiency, fig14_buffer_size, fig15_filter_size,
    fig16_slh_accuracy, fig2_slh, fig3_slh_epochs, hardware_cost_table, perf_figure, power_figure,
    scheduler_interaction_table, smt_table, suite_results, telemetry_demo, TelemetryDemo,
};
use asd_sim::RunOpts;
use asd_telemetry::{names, Registry, TelemetryConfig, Unit};
use asd_trace::suites::{self, Suite};
use std::time::Instant;

/// Collects one record per regenerated figure. Wall-clock times live on a
/// telemetry registry (`bench.<figure>.wall_ms` gauges), and the JSON
/// document reads them back from the snapshot — the same source of truth
/// the exposition backends use.
struct Report {
    figures: Vec<(String, Value)>,
    tel: Registry,
}

impl Report {
    fn new() -> Self {
        Report {
            figures: Vec::new(),
            tel: Registry::section("bench.", &TelemetryConfig::metrics_only()),
        }
    }

    /// Record a figure: name, wall time since `start`, and its metrics.
    fn add(&mut self, name: &str, start: Instant, metrics: Value) {
        self.tel.fill_gauge(
            &format!("{name}.wall_ms"),
            Unit::Millis,
            "host wall-clock time to regenerate this figure",
            start.elapsed().as_secs_f64() * 1e3,
        );
        self.figures.push((name.to_string(), metrics));
    }

    fn document(mut self, opts: &RunOpts) -> Value {
        // Surface the cross-figure run cache through the same registry the
        // wall-time gauges live on, so every exposition backend (and this
        // JSON document) sees how much of the pipeline was deduplicated.
        let (run_hits, run_misses) = asd_sim::cache::stats();
        let (trace_hits, trace_misses) = asd_sim::cache::trace_stats();
        for (name, help, v) in [
            ("cache.run_hits", "figure points served from the cross-figure run cache", run_hits),
            ("cache.run_misses", "figure points actually simulated", run_misses),
            ("cache.trace_hits", "per-thread traces served from the trace memo", trace_hits),
            ("cache.trace_misses", "per-thread traces materialized", trace_misses),
        ] {
            self.tel.fill_gauge(name, Unit::Events, help, v as f64);
        }
        let snap = self.tel.snapshot();
        let mut cache = Value::obj();
        cache.set("enabled", asd_sim::cache::enabled());
        for key in ["run_hits", "run_misses", "trace_hits", "trace_misses"] {
            cache.set(key, snap.gauge(&format!("bench.cache.{key}")).unwrap_or(0.0));
        }
        let mut o = Value::obj();
        o.set("accesses", opts.accesses).set("seed", opts.seed);
        let mut doc = Value::obj();
        doc.set("schema", "asd-bench-figures/1");
        doc.set("opts", o);
        doc.set("cache", cache);
        let rows = self
            .figures
            .into_iter()
            .map(|(name, metrics)| {
                let mut rec = Value::obj();
                let wall = snap.gauge(&format!("bench.{name}.wall_ms")).unwrap_or(0.0);
                rec.set("name", name);
                rec.set("wall_ms", wall);
                rec.set("metrics", metrics);
                rec
            })
            .collect();
        doc.set("figures", Value::Arr(rows));
        doc
    }
}

fn perf_metrics(rows: &[asd_sim::figures::PerfRow]) -> Value {
    let mut m = Value::obj();
    m.set("benchmarks", rows.len());
    m.set("mean_pms_vs_np_pct", mean(&rows.iter().map(|r| r.pms_vs_np).collect::<Vec<_>>()));
    m.set("mean_pms_vs_ps_pct", mean(&rows.iter().map(|r| r.pms_vs_ps).collect::<Vec<_>>()));
    m
}

fn power_metrics(rows: &[asd_sim::figures::PowerRow]) -> Value {
    let mut m = Value::obj();
    m.set("benchmarks", rows.len());
    m.set(
        "mean_power_increase_pct",
        mean(&rows.iter().map(|r| r.power_increase).collect::<Vec<_>>()),
    );
    m.set(
        "mean_energy_reduction_pct",
        mean(&rows.iter().map(|r| r.energy_reduction).collect::<Vec<_>>()),
    );
    m
}

/// Parse a comma-separated env list (empty entries dropped).
fn env_list(var: &str) -> Option<Vec<String>> {
    let raw = std::env::var(var).ok()?;
    Some(raw.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect())
}

/// Run the arena honoring the `ASD_ARENA_ENGINES` / `ASD_ARENA_PROFILES`
/// restrictions (full roster over all 30 profiles by default).
fn run_arena(opts: &RunOpts) -> Result<ArenaResult, asd_sim::SimError> {
    let roster = env_list("ASD_ARENA_ENGINES").unwrap_or_else(default_roster);
    let engines: Vec<&str> = roster.iter().map(String::as_str).collect();
    let profiles = match env_list("ASD_ARENA_PROFILES") {
        Some(names) => names
            .iter()
            .map(|n| {
                suites::by_name(n)
                    .ok_or_else(|| asd_sim::SimError::UnknownProfile { name: n.clone() })
            })
            .collect::<Result<Vec<_>, _>>()?,
        None => suites::all_profiles(),
    };
    arena_with(&engines, &profiles, opts)
}

/// The arena's JSON block, read back from a per-engine telemetry section
/// (`arena.<engine>.<metric>` gauges) so the exposition backends and the
/// JSON document share one source of truth.
fn arena_metrics(a: &ArenaResult) -> Value {
    let mut tel = Registry::section("arena.", &TelemetryConfig::metrics_only());
    for r in &a.rows {
        for (metric, unit, help, v) in [
            ("ipc_delta_pct", Unit::None, "mean IPC delta over NP, percent", r.ipc_delta_pct),
            ("coverage_pct", Unit::None, "mean prefetch coverage, percent", r.coverage_pct),
            ("accuracy_pct", Unit::None, "mean useful-prefetch fraction, percent", r.accuracy_pct),
            (
                "energy_delta_pct",
                Unit::None,
                "mean DRAM energy delta over NP, percent",
                r.energy_delta_pct,
            ),
            (
                "traffic_per_kread",
                Unit::Commands,
                "mean prefetches issued per thousand demand reads",
                r.traffic_per_kread,
            ),
        ] {
            tel.fill_gauge(&names::arena_metric(&r.engine, metric), unit, help, v);
        }
    }
    let snap = tel.snapshot();
    let league = a
        .rows
        .iter()
        .map(|r| {
            let mut rec = Value::obj();
            rec.set("engine", r.engine.clone());
            for metric in [
                "ipc_delta_pct",
                "coverage_pct",
                "accuracy_pct",
                "energy_delta_pct",
                "traffic_per_kread",
            ] {
                let name = format!("arena.{}", names::arena_metric(&r.engine, metric));
                rec.set(metric, snap.gauge(&name).unwrap_or(0.0));
            }
            rec
        })
        .collect();
    let mut m = Value::obj();
    m.set("engines", a.rows.len());
    m.set("profiles", a.profiles.len());
    if let Some(best) = a.rows.first() {
        m.set("winner", best.engine.clone());
    }
    m.set("league", Value::Arr(league));
    m
}

/// Write the three exposition renderings of a telemetry demo run into
/// `dir` (created if needed): `telemetry.prom`, `telemetry.trace.json`
/// (Perfetto-loadable), and `telemetry.csv`.
fn write_telemetry_files(dir: &str, demo: &TelemetryDemo) {
    let dir = std::path::Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("figures: could not create {}: {e}", dir.display());
        return;
    }
    for (file, body) in [
        ("telemetry.prom", &demo.prom),
        ("telemetry.trace.json", &demo.trace),
        ("telemetry.csv", &demo.csv),
    ] {
        let path = dir.join(file);
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("figures: could not write {}: {e}", path.display()),
        }
    }
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("figures: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run() -> Result<(), asd_sim::SimError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);
    let opts = full_opts();
    let mut report = Report::new();

    // The three suite sweeps feed two figures each (5+8, 6+9, 7+10); run
    // each suite once and reuse.
    let mut spec: Option<Vec<FourWay>> = None;
    let mut nas: Option<Vec<FourWay>> = None;
    let mut com: Option<Vec<FourWay>> = None;
    let get = |suite: Suite,
               slot: &mut Option<Vec<FourWay>>,
               opts: &RunOpts|
     -> Result<Vec<FourWay>, asd_sim::SimError> {
        if slot.is_none() {
            eprintln!(
                "running {} suite (4 configs x {} benchmarks, parallel)...",
                suite.name(),
                suite.profiles().len()
            );
            *slot = Some(suite_results(suite, opts)?);
        }
        Ok(slot.clone().expect("filled above"))
    };

    if want("fig2") {
        let t0 = Instant::now();
        let (sample, text) = fig2_slh(&opts)?;
        println!("{text}\n");
        let mut m = Value::obj();
        m.set("epoch", sample.epoch);
        report.add("fig2", t0, m);
    }
    if want("fig3") {
        let t0 = Instant::now();
        let long = RunOpts { accesses: 150_000, ..opts.clone() };
        let (epochs, text) = fig3_slh_epochs(&long)?;
        println!("{text}\n");
        let mut m = Value::obj();
        m.set("epochs", epochs.len());
        report.add("fig3", t0, m);
    }
    if want("fig5") || want("fig8") {
        let t0 = Instant::now();
        let r = get(Suite::Spec2006Fp, &mut spec, &opts)?;
        if want("fig5") {
            let (rows, text) = perf_figure(&r, "Figure 5: SPEC2006fp performance gains");
            println!("{text}\n");
            report.add("fig5", t0, perf_metrics(&rows));
        }
        if want("fig8") {
            let t8 = Instant::now();
            let (rows, text) =
                power_figure(&r, "Figure 8: SPEC2006fp DRAM power/energy (PMS vs PS)");
            println!("{text}\n");
            report.add("fig8", t8, power_metrics(&rows));
        }
    }
    if want("fig6") || want("fig9") {
        let t0 = Instant::now();
        let r = get(Suite::Nas, &mut nas, &opts)?;
        if want("fig6") {
            let (rows, text) = perf_figure(&r, "Figure 6: NAS performance gains");
            println!("{text}\n");
            report.add("fig6", t0, perf_metrics(&rows));
        }
        if want("fig9") {
            let t9 = Instant::now();
            let (rows, text) = power_figure(&r, "Figure 9: NAS DRAM power/energy (PMS vs PS)");
            println!("{text}\n");
            report.add("fig9", t9, power_metrics(&rows));
        }
    }
    if want("fig7") || want("fig10") {
        let t0 = Instant::now();
        let r = get(Suite::Commercial, &mut com, &opts)?;
        if want("fig7") {
            let (rows, text) = perf_figure(&r, "Figure 7: commercial performance gains");
            println!("{text}\n");
            report.add("fig7", t0, perf_metrics(&rows));
        }
        if want("fig10") {
            let t10 = Instant::now();
            let (rows, text) =
                power_figure(&r, "Figure 10: commercial DRAM power/energy (PMS vs PS)");
            println!("{text}\n");
            report.add("fig10", t10, power_metrics(&rows));
        }
    }
    if want("fig11") {
        let t0 = Instant::now();
        let (rows, text) = fig11_scheduling(&opts)?;
        println!("{text}\n");
        let mut m = Value::obj();
        m.set("benchmarks", rows.len());
        m.set("configs", rows.first().map_or(0, |r| r.bars.len()));
        report.add("fig11", t0, m);
    }
    if want("fig12") {
        let t0 = Instant::now();
        let (rows, text) = fig12_stream_lengths(&opts)?;
        println!("{text}\n");
        let mut m = Value::obj();
        m.set("benchmarks", rows.len());
        report.add("fig12", t0, m);
    }
    if want("fig13") {
        let t0 = Instant::now();
        let (rows, text) = fig13_efficiency(&opts)?;
        println!("{text}\n");
        let mut m = Value::obj();
        m.set("benchmarks", rows.len());
        m.set("mean_useful_pct", mean(&rows.iter().map(|r| r.useful).collect::<Vec<_>>()));
        m.set("mean_coverage_pct", mean(&rows.iter().map(|r| r.coverage).collect::<Vec<_>>()));
        report.add("fig13", t0, m);
    }
    if want("fig14") {
        let t0 = Instant::now();
        let (rows, text) = fig14_buffer_size(&opts)?;
        println!("{text}\n");
        let mut m = Value::obj();
        m.set("benchmarks", rows.len());
        report.add("fig14", t0, m);
    }
    if want("fig15") {
        let t0 = Instant::now();
        let (rows, text) = fig15_filter_size(&opts)?;
        println!("{text}\n");
        let mut m = Value::obj();
        m.set("benchmarks", rows.len());
        report.add("fig15", t0, m);
    }
    if want("fig16") {
        let t0 = Instant::now();
        let (epochs, text) = fig16_slh_accuracy(&opts)?;
        println!("{text}\n");
        let mut m = Value::obj();
        m.set("epochs", epochs.len());
        report.add("fig16", t0, m);
    }
    if want("cost") {
        let t0 = Instant::now();
        println!("{}\n", hardware_cost_table());
        report.add("cost", t0, Value::obj());
    }
    if want("sched") {
        let t0 = Instant::now();
        println!("{}\n", scheduler_interaction_table(&opts)?);
        report.add("sched", t0, Value::obj());
    }
    if want("arena") {
        let t0 = Instant::now();
        let result = run_arena(&opts)?;
        println!("{}\n", result.text);
        report.add("arena", t0, arena_metrics(&result));
    }
    if want("telemetry") {
        let t0 = Instant::now();
        let demo = telemetry_demo("tpcc", &opts)?;
        println!("{}\n", demo.text);
        if let Ok(dir) = std::env::var("ASD_TELEMETRY_DIR") {
            if dir != "-" && !dir.is_empty() {
                write_telemetry_files(&dir, &demo);
            }
        }
        let snap = demo.result.telemetry.clone().unwrap_or_default();
        let mut m = Value::obj();
        m.set("metrics", snap.metrics.len());
        m.set("events", snap.events.len());
        m.set("dropped_events", snap.dropped_events);
        report.add("telemetry", t0, m);
    }
    if want("ablations") {
        let t0 = Instant::now();
        let profiles: Vec<_> = ["milc", "tpcc"]
            .iter()
            .map(|n| asd_trace::suites::by_name(n).expect("known"))
            .collect();
        println!("{}\n", asd_sim::ablations::full_report(&profiles, &opts)?);
        report.add("ablations", t0, Value::obj());
    }
    if want("smt") {
        let t0 = Instant::now();
        let smt_opts = RunOpts { accesses: 30_000, ..opts.clone() };
        println!("{}\n", smt_table(&smt_opts)?);
        report.add("smt", t0, Value::obj());
    }

    let json_path =
        std::env::var("ASD_FIGURES_JSON").unwrap_or_else(|_| "BENCH_figures.json".to_string());
    if json_path != "-" {
        let doc = report.document(&opts);
        match std::fs::write(&json_path, doc.render() + "\n") {
            Ok(()) => eprintln!("wrote {json_path}"),
            Err(e) => eprintln!("figures: could not write {json_path}: {e}"),
        }
    }
    Ok(())
}

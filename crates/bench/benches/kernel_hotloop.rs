//! Kernel hot-loop throughput: raw simulated accesses per second of the
//! event loop itself, per paper configuration.
//!
//! Unlike the figure benches (which time whole regeneration pipelines),
//! this target isolates [`System::run`] on a single benchmark at full
//! trace length, so a regression in the calendar queue, the lazy
//! component stepping, or the controller's per-cycle stages shows up here
//! first and unamortized. The PMS row exercises every hot structure at
//! once (stream filter, LPQ, prefetch buffer, CAQ, reorder queues); the
//! NP row is the floor the queues alone cost.
//!
//! Run with `cargo bench -p asd-bench --bench kernel_hotloop`. Set
//! `ASD_BENCH_ITERS` to change the best-of count (default 5; the
//! `scripts/check.sh` smoke uses 3), and `ASD_BENCH_ONLY` to a
//! comma-separated config list (e.g. `pms` or `np,ms`) to time a subset
//! — handy under a profiler.

use asd_sim::experiment::run_benchmark;
use asd_sim::{PrefetchKind, RunOpts};
use asd_trace::suites;
use std::hint::black_box;
use std::time::{Duration, Instant};

const ACCESSES: u64 = 60_000;

/// Process CPU time (user + system) in clock ticks from `/proc/self/stat`,
/// or `None` off Linux. On a shared/virtualized host, wall-clock minima
/// still include scheduler steal; CPU time summed over all iterations is
/// the noise-robust number (tick granularity is ~10 ms, so it is only
/// meaningful across the whole loop, never per iteration).
fn cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field (2) may contain spaces; fields resume after `)`.
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some(utime + stime)
}

fn main() {
    // Cache-off: every iteration must run the simulator, not a map lookup.
    std::env::set_var("ASD_RUN_CACHE", "0");
    let iters: u32 = std::env::var("ASD_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5);
    let only = std::env::var("ASD_BENCH_ONLY").ok();
    let opts = RunOpts::default().with_accesses(ACCESSES);
    let profile = suites::by_name("milc").expect("known profile");

    for kind in PrefetchKind::ALL {
        if let Some(ref list) = only {
            let name = kind.name().to_lowercase();
            if !list.split(',').any(|w| w.trim().eq_ignore_ascii_case(&name)) {
                continue;
            }
        }
        let run = || {
            let r = run_benchmark(&profile, kind, &opts).expect("run");
            black_box(r.cycles);
        };
        run(); // warm-up
        let mut best = Duration::MAX;
        let ticks0 = cpu_ticks();
        for _ in 0..iters {
            let t0 = Instant::now();
            run();
            best = best.min(t0.elapsed());
        }
        let cpu = cpu_ticks().zip(ticks0).map(|(t1, t0)| t1 - t0);
        let per_sec = ACCESSES as f64 / best.as_secs_f64();
        let cpu_col = match cpu {
            Some(ticks) => format!("  cpu {:>8.3} ms/iter", ticks as f64 * 10.0 / iters as f64),
            None => String::new(),
        };
        println!(
            "kernel_hotloop_{:<4} best of {iters}: {:>9.3} ms  ({:>10.0} accesses/s){cpu_col}",
            kind.name().to_lowercase(),
            best.as_secs_f64() * 1e3,
            per_sec,
        );
    }
    println!("({ACCESSES} accesses of milc per iteration, trace generation included)");
}

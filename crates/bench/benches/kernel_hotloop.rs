//! Kernel hot-loop throughput: raw simulated accesses per second of the
//! event loop itself, per paper configuration.
//!
//! Unlike the figure benches (which time whole regeneration pipelines),
//! this target isolates [`System::run`] on a single benchmark at full
//! trace length, so a regression in the calendar queue, the lazy
//! component stepping, or the controller's per-cycle stages shows up here
//! first and unamortized. The PMS row exercises every hot structure at
//! once (stream filter, LPQ, prefetch buffer, CAQ, reorder queues); the
//! NP row is the floor the queues alone cost.
//!
//! Run with `cargo bench -p asd-bench --bench kernel_hotloop`.

use asd_sim::experiment::run_benchmark;
use asd_sim::{PrefetchKind, RunOpts};
use asd_trace::suites;
use std::hint::black_box;
use std::time::{Duration, Instant};

const ITERS: u32 = 5;
const ACCESSES: u64 = 60_000;

fn main() {
    // Cache-off: every iteration must run the simulator, not a map lookup.
    std::env::set_var("ASD_RUN_CACHE", "0");
    let opts = RunOpts::default().with_accesses(ACCESSES);
    let profile = suites::by_name("milc").expect("known profile");

    for kind in PrefetchKind::ALL {
        let run = || {
            let r = run_benchmark(&profile, kind, &opts).expect("run");
            black_box(r.cycles);
        };
        run(); // warm-up
        let mut best = Duration::MAX;
        for _ in 0..ITERS {
            let t0 = Instant::now();
            run();
            best = best.min(t0.elapsed());
        }
        let per_sec = ACCESSES as f64 / best.as_secs_f64();
        println!(
            "kernel_hotloop_{:<4} best of {ITERS}: {:>9.3} ms  ({:>10.0} accesses/s)",
            kind.name().to_lowercase(),
            best.as_secs_f64() * 1e3,
            per_sec,
        );
    }
    println!("({ACCESSES} accesses of milc per iteration, trace generation included)");
}

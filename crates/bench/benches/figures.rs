//! Manual benches: one target per table/figure of the paper.
//!
//! Each target runs the complete regeneration pipeline for its figure at a
//! reduced trace length, so `cargo bench` both times the simulator and
//! proves every experiment still runs end to end. The harness is plain
//! `std::time` (the workspace builds offline with no external crates);
//! each target is repeated a few times and the best wall-clock time is
//! reported. The printed tables of record come from the `figures` binary
//! (see EXPERIMENTS.md).
//!
//! Run with `cargo bench -p asd-bench`; pass a substring to filter
//! targets, e.g. `cargo bench -p asd-bench -- sweep`.

use asd_bench::bench_opts;
use asd_sim::experiment::FourWay;
use asd_sim::figures as figs;
use asd_sim::sweep::Sweep;
use asd_sim::{PrefetchKind, RunOpts, SystemConfig};
use asd_trace::suites::{self, Suite};
use std::hint::black_box;
use std::time::{Duration, Instant};

const ITERS: u32 = 3;

fn bench(filter: &str, name: &str, mut f: impl FnMut()) {
    if !name.contains(filter) {
        return;
    }
    // Warm-up once, then keep the best of `ITERS` timed runs.
    f();
    let mut best = Duration::MAX;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    println!("{name:<32} best of {ITERS}: {:>10.3} ms", best.as_secs_f64() * 1e3);
}

fn suite_bench(filter: &str, name: &str, suite: Suite) {
    let opts = bench_opts();
    // One representative benchmark per suite keeps iterations tractable;
    // the full sweep lives in the `figures` binary.
    let profiles = suite.profiles();
    let profile = &profiles[2];
    bench(filter, name, || {
        black_box(FourWay::run(profile, &opts).expect("fourway").pms_vs_np());
    });
}

fn main() {
    // The run cache would satisfy every iteration after the first from
    // memory, so timed repeats would measure a BTreeMap lookup instead of
    // the simulator. Benches always run cache-off.
    std::env::set_var("ASD_RUN_CACHE", "0");
    let filter = std::env::args().nth(1).unwrap_or_default();
    let f = filter.as_str();

    bench(f, "fig02_slh_gemsfdtd_epoch", || {
        let opts = RunOpts { accesses: 30_000, ..bench_opts() };
        black_box(figs::fig2_slh(&opts).expect("fig2").0);
    });

    bench(f, "fig03_slh_across_epochs", || {
        let opts = RunOpts { accesses: 60_000, ..bench_opts() };
        black_box(figs::fig3_slh_epochs(&opts).expect("fig3").0.len());
    });

    suite_bench(f, "fig05_spec_fourway", Suite::Spec2006Fp);
    suite_bench(f, "fig06_nas_fourway", Suite::Nas);
    suite_bench(f, "fig07_commercial_fourway", Suite::Commercial);

    bench(f, "fig08_10_power_energy", || {
        let opts = bench_opts();
        let profile = suites::by_name("milc").unwrap();
        let four = FourWay::run(&profile, &opts).expect("fourway");
        black_box((four.power_increase(), four.energy_reduction()));
    });

    bench(f, "fig11_mc_configs", || {
        let opts = bench_opts();
        // One benchmark across all eight MC configurations per iteration.
        let profile = suites::by_name("milc").unwrap();
        let mut sweep = Sweep::new(&opts);
        for (label, mc) in figs::fig11_configs() {
            let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1).with_mc(mc);
            sweep.push(&profile, cfg, &label);
        }
        let total: u64 = sweep.run().expect("sweep").iter().map(|r| r.cycles).sum();
        black_box(total);
    });

    bench(f, "fig12_stream_shares", || {
        let opts = RunOpts { accesses: 20_000, ..bench_opts() };
        black_box(
            asd_sim::slh_study::stream_shares(
                &suites::by_name("notesbench").unwrap(),
                opts.accesses as usize,
                opts.seed,
            )
            .expect("stream shares")
            .len2_to_5(),
        );
    });

    bench(f, "fig13_prefetch_efficiency", || {
        let opts = bench_opts();
        let profile = suites::by_name("tpcc").unwrap();
        let r = asd_sim::experiment::run_benchmark(&profile, PrefetchKind::Pms, &opts)
            .expect("benchmark");
        black_box((r.mc.coverage(), r.mc.useful_prefetch_fraction(), r.mc.delayed_fraction()));
    });

    for (name, sizes) in [("fig14_pb_size_sweep", true), ("fig15_filter_size_sweep", false)] {
        bench(f, name, || {
            let opts = bench_opts();
            let profile = suites::by_name("milc").unwrap();
            let mut sweep = Sweep::new(&opts);
            for size in [8usize, 16] {
                let mc = if sizes {
                    asd_mc::McConfig { pb_lines: size, pb_assoc: 4, ..asd_mc::McConfig::default() }
                } else {
                    asd_mc::McConfig {
                        engine: asd_mc::EngineKind::Asd(
                            asd_core::AsdConfig::default().with_filter_slots(size),
                        ),
                        ..asd_mc::McConfig::default()
                    }
                };
                let cfg = SystemConfig::for_kind(PrefetchKind::Pms, 1).with_mc(mc);
                sweep.push(&profile, cfg, "sweep");
            }
            let total: u64 = sweep.run().expect("sweep").iter().map(|r| r.cycles).sum();
            black_box(total);
        });
    }

    bench(f, "fig16_slh_accuracy", || {
        let opts = RunOpts { accesses: 30_000, ..bench_opts() };
        black_box(figs::fig16_slh_accuracy(&opts).expect("fig16").0.len());
    });

    bench(f, "table_hardware_cost", || {
        black_box(figs::hardware_cost_table().len());
    });

    bench(f, "arena_two_by_two", || {
        // The smoke-sized tournament: 2 engines x 2 profiles through the
        // full league-table pipeline (the 30-profile arena of record
        // lives in the `figures` binary).
        let opts = bench_opts();
        let profiles: Vec<_> =
            ["milc", "tpcc"].iter().map(|n| suites::by_name(n).expect("known")).collect();
        let a =
            asd_sim::arena::arena_with(&["asd", "stream-table"], &profiles, &opts).expect("arena");
        black_box(a.rows.len());
    });

    // Serial vs parallel four-way suite: the wall-clock ratio the sweep
    // runner exists for. Reported explicitly so the speedup is visible in
    // every bench run.
    if "suite_serial_vs_parallel".contains(f) || f.is_empty() {
        let opts = bench_opts();
        let profiles = Suite::Spec2006Fp.profiles();
        let build = || {
            let mut sweep = Sweep::new(&opts);
            for p in &profiles {
                for kind in PrefetchKind::ALL {
                    let cfg = SystemConfig::for_kind(kind, 1);
                    sweep.push(p, cfg, kind.name());
                }
            }
            sweep
        };
        let t0 = Instant::now();
        let serial = build().run_serial().expect("sweep");
        let t_serial = t0.elapsed();
        let t1 = Instant::now();
        let parallel = build().run().expect("sweep");
        let t_parallel = t1.elapsed();
        assert_eq!(serial.len(), parallel.len());
        println!(
            "suite_serial_vs_parallel         serial {:>8.1} ms, parallel {:>8.1} ms ({:.2}x)",
            t_serial.as_secs_f64() * 1e3,
            t_parallel.as_secs_f64() * 1e3,
            t_serial.as_secs_f64() / t_parallel.as_secs_f64().max(1e-9),
        );
    }

    // Trace replay vs regeneration: the traceio subsystem's reason to
    // exist. Record the heaviest SLH-study profile once, then compare
    // draining the decoded file against re-running the generator for the
    // same accesses. Reported explicitly, like the sweep speedup above.
    if "trace_replay_vs_generate".contains(f) || f.is_empty() {
        use asd_trace::{thread_seed, TraceGenerator};
        use asd_traceio::{record_profile, TraceReader};
        let accesses: u64 = 200_000;
        let profile = suites::by_name("GemsFDTD").expect("known profile");
        let path =
            std::env::temp_dir().join(format!("asd-bench-replay-{}.asdt", std::process::id()));
        record_profile(&path, &profile, 0x5eed, 1, accesses).expect("record");
        let drain_generate = || {
            let g = TraceGenerator::new(profile.clone(), thread_seed(0x5eed, 0)).with_thread(0);
            g.take(accesses as usize).map(|a| a.addr).fold(0u64, u64::wrapping_add)
        };
        let drain_replay = || {
            TraceReader::open(&path)
                .expect("open")
                .map(|r| r.expect("verified file decodes").addr)
                .fold(0u64, u64::wrapping_add)
        };
        assert_eq!(drain_generate(), drain_replay(), "replay must decode the same stream");
        let time = |run: &mut dyn FnMut() -> u64| {
            let mut best = Duration::MAX;
            for _ in 0..ITERS {
                let t0 = Instant::now();
                black_box(run());
                best = best.min(t0.elapsed());
            }
            best
        };
        let t_gen = time(&mut { drain_generate });
        let t_rep = time(&mut { drain_replay });
        println!(
            "trace_replay_vs_generate         generate {:>6.1} ms, replay {:>6.1} ms ({:.2}x)",
            t_gen.as_secs_f64() * 1e3,
            t_rep.as_secs_f64() * 1e3,
            t_gen.as_secs_f64() / t_rep.as_secs_f64().max(1e-9),
        );
        std::fs::remove_file(&path).ok();
    }
}

//! Criterion benches: one target per table/figure of the paper.
//!
//! Each bench runs the complete regeneration pipeline for its figure at a
//! reduced trace length, so `cargo bench` both times the simulator and
//! proves every experiment still runs end to end. The printed tables of
//! record come from the `figures` binary (see EXPERIMENTS.md).

use asd_bench::bench_opts;
use asd_sim::experiment::FourWay;
use asd_sim::figures as figs;
use asd_sim::RunOpts;
use asd_trace::suites::{self, Suite};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig02_slh(c: &mut Criterion) {
    let opts = RunOpts { accesses: 30_000, ..bench_opts() };
    c.bench_function("fig02_slh_gemsfdtd_epoch", |b| {
        b.iter(|| black_box(figs::fig2_slh(&opts).0))
    });
}

fn bench_fig03_slh_epochs(c: &mut Criterion) {
    let opts = RunOpts { accesses: 60_000, ..bench_opts() };
    c.bench_function("fig03_slh_across_epochs", |b| {
        b.iter(|| black_box(figs::fig3_slh_epochs(&opts).0.len()))
    });
}

fn suite_bench(c: &mut Criterion, name: &str, suite: Suite) {
    let opts = bench_opts();
    // One representative benchmark per suite keeps iterations tractable;
    // the full sweep lives in the `figures` binary.
    let profile = &suite.profiles()[2];
    c.bench_function(name, |b| b.iter(|| black_box(FourWay::run(profile, &opts).pms_vs_np())));
}

fn bench_fig05_spec_perf(c: &mut Criterion) {
    suite_bench(c, "fig05_spec_fourway", Suite::Spec2006Fp);
}

fn bench_fig06_nas_perf(c: &mut Criterion) {
    suite_bench(c, "fig06_nas_fourway", Suite::Nas);
}

fn bench_fig07_commercial_perf(c: &mut Criterion) {
    suite_bench(c, "fig07_commercial_fourway", Suite::Commercial);
}

fn bench_fig08_10_power(c: &mut Criterion) {
    let opts = bench_opts();
    let profile = suites::by_name("milc").unwrap();
    c.bench_function("fig08_10_power_energy", |b| {
        b.iter(|| {
            let f = FourWay::run(&profile, &opts);
            black_box((f.power_increase(), f.energy_reduction()))
        })
    });
}

fn bench_fig11_scheduling(c: &mut Criterion) {
    let opts = bench_opts();
    // One benchmark across all eight MC configurations per iteration.
    let profile = suites::by_name("milc").unwrap();
    let configs = figs::fig11_configs();
    c.bench_function("fig11_mc_configs", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for (label, mc) in &configs {
                let cfg = asd_sim::SystemConfig::for_kind(asd_sim::PrefetchKind::Pms, 1)
                    .with_mc(mc.clone());
                total += asd_sim::experiment::run_custom(&profile, cfg, label, &opts).cycles;
            }
            black_box(total)
        })
    });
}

fn bench_fig12_stream_lengths(c: &mut Criterion) {
    let opts = RunOpts { accesses: 20_000, ..bench_opts() };
    let profile = suites::by_name("notesbench").unwrap();
    c.bench_function("fig12_stream_shares", |b| {
        b.iter(|| black_box(asd_sim::slh_study::stream_shares(&profile, opts.accesses as usize, opts.seed).len2_to_5()))
    });
}

fn bench_fig13_efficiency(c: &mut Criterion) {
    let opts = bench_opts();
    let profile = suites::by_name("tpcc").unwrap();
    c.bench_function("fig13_prefetch_efficiency", |b| {
        b.iter(|| {
            let r = asd_sim::experiment::run_benchmark(&profile, asd_sim::PrefetchKind::Pms, &opts);
            black_box((r.mc.coverage(), r.mc.useful_prefetch_fraction(), r.mc.delayed_fraction()))
        })
    });
}

fn sweep_bench(c: &mut Criterion, name: &str, mk: impl Fn(usize) -> asd_mc::McConfig) {
    let opts = bench_opts();
    let profile = suites::by_name("milc").unwrap();
    c.bench_function(name, |b| {
        b.iter(|| {
            let mut total = 0u64;
            for size in [8usize, 16] {
                let cfg = asd_sim::SystemConfig::for_kind(asd_sim::PrefetchKind::Pms, 1)
                    .with_mc(mk(size));
                total += asd_sim::experiment::run_custom(&profile, cfg, "sweep", &opts).cycles;
            }
            black_box(total)
        })
    });
}

fn bench_fig14_buffer_size(c: &mut Criterion) {
    sweep_bench(c, "fig14_pb_size_sweep", |s| asd_mc::McConfig {
        pb_lines: s,
        pb_assoc: 4,
        ..asd_mc::McConfig::default()
    });
}

fn bench_fig15_filter_size(c: &mut Criterion) {
    sweep_bench(c, "fig15_filter_size_sweep", |s| asd_mc::McConfig {
        engine: asd_mc::EngineKind::Asd(asd_core::AsdConfig::default().with_filter_slots(s)),
        ..asd_mc::McConfig::default()
    });
}

fn bench_fig16_slh_accuracy(c: &mut Criterion) {
    let opts = RunOpts { accesses: 30_000, ..bench_opts() };
    c.bench_function("fig16_slh_accuracy", |b| {
        b.iter(|| black_box(figs::fig16_slh_accuracy(&opts).0.len()))
    });
}

fn bench_hardware_cost(c: &mut Criterion) {
    c.bench_function("table_hardware_cost", |b| b.iter(|| black_box(figs::hardware_cost_table().len())));
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig02_slh,
        bench_fig03_slh_epochs,
        bench_fig05_spec_perf,
        bench_fig06_nas_perf,
        bench_fig07_commercial_perf,
        bench_fig08_10_power,
        bench_fig11_scheduling,
        bench_fig12_stream_lengths,
        bench_fig13_efficiency,
        bench_fig14_buffer_size,
        bench_fig15_filter_size,
        bench_fig16_slh_accuracy,
        bench_hardware_cost,
);
criterion_main!(figures);

//! Telemetry overhead guard: the observability layer must cost ≤2% of
//! simulation wall-clock when fully enabled, and ~0% when disabled (the
//! disabled path is a single branch on a detached registry).
//!
//! Three configurations of the same PMS run are timed — telemetry off,
//! metrics only, and metrics + event ring — and the run results are
//! asserted bit-identical (minus the snapshot itself) before any timing,
//! so the bench doubles as a neutrality check. The reported numbers of
//! record live in EXPERIMENTS.md.
//!
//! Run with `cargo bench -p asd-bench --bench telemetry_overhead`.

use asd_sim::experiment::run_custom;
use asd_sim::{PrefetchKind, RunOpts, SystemConfig};
use asd_telemetry::TelemetryConfig;
use asd_trace::suites;
use std::hint::black_box;
use std::time::{Duration, Instant};

const ITERS: u32 = 5;
const ACCESSES: u64 = 40_000;

fn config(tel: TelemetryConfig) -> SystemConfig {
    SystemConfig::for_kind(PrefetchKind::Pms, 1).with_telemetry(tel)
}

fn main() {
    // Cache-off: repeated identical runs are the whole point here, and the
    // run cache would turn every repeat into a map lookup.
    std::env::set_var("ASD_RUN_CACHE", "0");
    let opts = RunOpts::default().with_accesses(ACCESSES);
    let profile = suites::by_name("milc").expect("known profile");
    let variants: [(&str, TelemetryConfig); 3] = [
        ("off", TelemetryConfig::off()),
        ("metrics", TelemetryConfig::metrics_only()),
        ("full", TelemetryConfig::full()),
    ];

    // Neutrality first: identical simulation outcomes in all three modes.
    let baseline = run_custom(&profile, config(TelemetryConfig::off()), "off", &opts).expect("run");
    for (name, tel) in &variants {
        let r = run_custom(&profile, config(*tel), name, &opts).expect("run");
        assert_eq!(r.cycles, baseline.cycles, "{name}: cycles drifted");
        assert_eq!(r.core, baseline.core, "{name}: core stats drifted");
        assert_eq!(r.mc, baseline.mc, "{name}: MC stats drifted");
        assert_eq!(r.dram, baseline.dram, "{name}: DRAM stats drifted");
    }

    let run_once = |tel: &TelemetryConfig| -> Duration {
        let t0 = Instant::now();
        let r = run_custom(&profile, config(*tel), "bench", &opts).expect("run");
        black_box(r.cycles);
        t0.elapsed()
    };

    // Interleave the variants round-robin so host-load drift during the
    // bench hits all three equally instead of biasing whichever ran last;
    // keep the best time per variant. One warm-up round first.
    let mut best = [Duration::MAX; 3];
    for (_, tel) in &variants {
        run_once(tel);
    }
    for _ in 0..ITERS {
        for (i, (_, tel)) in variants.iter().enumerate() {
            best[i] = best[i].min(run_once(tel));
        }
    }

    let base_ms = best[0].as_secs_f64() * 1e3;
    for (i, (name, _)) in variants.iter().enumerate() {
        let ms = best[i].as_secs_f64() * 1e3;
        let overhead = if base_ms > 0.0 { (ms / base_ms - 1.0) * 100.0 } else { 0.0 };
        println!("telemetry_{name:<8} best of {ITERS}: {ms:>9.3} ms  ({overhead:+.2}% vs off)");
    }
    println!("({ACCESSES} accesses of milc under PMS per iteration)");
}
